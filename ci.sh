#!/usr/bin/env bash
# Local CI gate: everything a pull request must pass, fully offline.
#
#   ./ci.sh          # build + test + fmt + clippy
#   ./ci.sh --quick  # skip the release build (debug test run only)
#
# The workspace vendors its only external dev-dependencies (proptest and
# criterion API shims under shims/), so --offline always works and no
# network access is ever required.

set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

step() { printf '\n==> %s\n' "$*"; }

if [[ $quick -eq 0 ]]; then
  step "cargo build --release --offline --workspace"
  cargo build --release --offline --workspace
fi

step "cargo test --offline"
cargo test -q --offline --workspace

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

step "OK"

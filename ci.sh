#!/usr/bin/env bash
# Local CI gate: everything a pull request must pass, fully offline.
#
#   ./ci.sh          # build + test + fmt + clippy + rustdoc + determinism gate
#   ./ci.sh --quick  # skip the release build and rustdoc (debug test run,
#                    # fmt, clippy and the determinism gate still run)
#
# The workspace vendors its only external dev-dependencies (proptest and
# criterion API shims under shims/), so --offline always works and no
# network access is ever required.

set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

step() { printf '\n==> %s\n' "$*"; }

if [[ $quick -eq 0 ]]; then
  step "cargo build --release --offline --workspace"
  cargo build --release --offline --workspace
fi

step "cargo test --offline"
cargo test -q --offline --workspace

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
  step "cargo doc --offline --no-deps (warnings are errors)"
  RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --no-deps --workspace
fi

# Determinism gate: the sweep report must be byte-identical no matter how
# many workers ran it. Run a small fig13 sweep serially and maximally
# parallel with the same configuration and diff the JSON reports; any
# byte of difference fails CI. (Runs in --quick too — it is the core
# contract of the sweep harness.)
step "sweep determinism gate (--jobs 1 vs --jobs max)"
profile_dir=debug
if [[ $quick -eq 0 ]]; then
  profile_dir=release
  build_flags=(--release)
else
  build_flags=()
fi
cargo build -q --offline "${build_flags[@]}" -p drishti-bench --bin fig13_main_performance
gate_args=(--mixes 2 --cores 4 --accesses 10000)
# Gate outputs land in a per-invocation temp dir under target/ so
# concurrent ci.sh runs cannot clobber each other's reports; it is removed
# on success and left behind on failure for artifact upload (CI globs
# target/ci-gate.*).
mkdir -p target
out=$(mktemp -d target/ci-gate.XXXXXX)
"target/$profile_dir/fig13_main_performance" "${gate_args[@]}" \
  --jobs 1 --report "$out/determinism_j1.json" >/dev/null
"target/$profile_dir/fig13_main_performance" "${gate_args[@]}" \
  --jobs 8 --report "$out/determinism_j8.json" >/dev/null
if ! diff -u "$out/determinism_j1.json" "$out/determinism_j8.json"; then
  echo "FAIL: sweep report differs between --jobs 1 and --jobs 8" >&2
  exit 1
fi
echo "reports byte-identical across worker counts"

# Telemetry gate: epoch sampling is observation-only, so the same sweep
# with --telemetry must produce a main report byte-identical to the
# telemetry-off one — timelines land in separate *.timeline.json files.
step "telemetry gate (--telemetry report must byte-match)"
rm -f "$out"/telemetry_on.cell*.timeline.json
"target/$profile_dir/fig13_main_performance" "${gate_args[@]}" \
  --jobs 8 --telemetry --epoch 2000 --report "$out/telemetry_on.json" >/dev/null
if ! diff -u "$out/determinism_j8.json" "$out/telemetry_on.json"; then
  echo "FAIL: --telemetry changed the sweep report bytes" >&2
  exit 1
fi
timelines=("$out"/telemetry_on.cell*.timeline.json)
if [[ ! -e "${timelines[0]}" ]]; then
  echo "FAIL: --telemetry produced no timeline files in $out" >&2
  exit 1
fi
if ! grep -q '"schema": "drishti-telemetry/v1"' "${timelines[0]}"; then
  echo "FAIL: ${timelines[0]} lacks the drishti-telemetry/v1 schema stamp" >&2
  exit 1
fi
echo "telemetry-on report byte-identical; ${#timelines[@]} timeline file(s)"

# Record/replay gate: a sweep replayed from on-disk drishti-trace/v1
# files must produce a byte-identical drishti-sweep/v1 report to the same
# sweep over freshly generated traces, at --jobs 1 and --jobs 8. (Runs in
# --quick too — bit-identity is the whole point of the trace store.)
step "record/replay gate (on-disk traces vs generated, --jobs 1/8)"
cargo build -q --offline "${build_flags[@]}" -p drishti-sim --bin drishti-sim
sim="target/$profile_dir/drishti-sim"
rr_args=(--cores 4 --mix homo:mcf --policy lru,hawkeye --org baseline,drishti
         --accesses 8000 --warmup 2000)
"$sim" "${rr_args[@]}" --record "$out/rr_trace" \
  --jobs 2 --report "$out/rr_generated.json" >/dev/null 2>&1
"$sim" "${rr_args[@]}" --trace-file "$out/rr_trace" \
  --jobs 1 --report "$out/rr_replay_j1.json" >/dev/null
"$sim" "${rr_args[@]}" --trace-file "$out/rr_trace" \
  --jobs 8 --report "$out/rr_replay_j8.json" >/dev/null
for replay in "$out/rr_replay_j1.json" "$out/rr_replay_j8.json"; do
  if ! diff -u "$out/rr_generated.json" "$replay"; then
    echo "FAIL: replayed sweep report $replay differs from the generated run" >&2
    exit 1
  fi
done
echo "replayed reports byte-identical to the generated run at --jobs 1 and 8"

# Event-engine gate: the discrete-event scheduler and the legacy lockstep
# loop are contractually bit-identical (DESIGN.md §16). Run the fig13
# sweep under --engine lockstep and --engine event at --jobs 1 and
# --jobs 8 and demand all four reports are byte-identical — engine mode
# is deliberately absent from the report config, so any scheduler
# divergence shows up as a byte diff. (Runs in --quick too — equivalence
# is the event engine's core contract.)
step "event-engine gate (lockstep vs event, --jobs 1/8 byte-diff)"
ee_args=(--cores 4 --mix homo:mcf --policy lru,mockingjay --org baseline,drishti
         --accesses 8000 --warmup 2000)
"$sim" "${ee_args[@]}" --engine lockstep --jobs 1 \
  --report "$out/engine_lockstep_j1.json" >/dev/null
"$sim" "${ee_args[@]}" --engine lockstep --jobs 8 \
  --report "$out/engine_lockstep_j8.json" >/dev/null
"$sim" "${ee_args[@]}" --engine event --jobs 1 \
  --report "$out/engine_event_j1.json" >/dev/null
"$sim" "${ee_args[@]}" --engine event --jobs 8 \
  --report "$out/engine_event_j8.json" >/dev/null
for variant in engine_lockstep_j8 engine_event_j1 engine_event_j8; do
  if ! diff -u "$out/engine_lockstep_j1.json" "$out/$variant.json"; then
    echo "FAIL: $variant report differs from lockstep --jobs 1" >&2
    exit 1
  fi
done
echo "lockstep and event reports byte-identical at --jobs 1 and 8"

# Scaling-smoke gate: the multi-chip topology must preserve the sweep
# harness's core contracts — worker-count determinism and lockstep/event
# equivalence — with inter-chip link queues in the loop. Run one small
# 2-chip rung of the scaling study under --jobs 1|8 × --engine
# lockstep|event and demand all four reports are byte-identical. (Runs in
# --quick too — the inter-chip links are new event-engine surface.)
step "scaling-smoke gate (2-chip sweep, jobs x engine byte-diff)"
cargo build -q --offline "${build_flags[@]}" -p drishti-bench --bin scaling
scaling="target/$profile_dir/scaling"
sc_args=(--mixes 1 --cores 16 --accesses 6000)
for engine in lockstep event; do
  for jobs in 1 8; do
    "$scaling" "${sc_args[@]}" --engine "$engine" --jobs "$jobs" \
      --report "$out/scaling_${engine}_j${jobs}.json" >/dev/null
  done
done
for variant in scaling_lockstep_j8 scaling_event_j1 scaling_event_j8; do
  if ! diff -u "$out/scaling_lockstep_j1.json" "$out/$variant.json"; then
    echo "FAIL: $variant scaling report differs from lockstep --jobs 1" >&2
    exit 1
  fi
done
echo "2-chip scaling reports byte-identical across jobs and engine modes"

# Crash-resume gate: SIGKILL a journaled sweep mid-flight, resume it with
# --resume, and demand the final report is byte-identical to an
# uninterrupted run's — and that the clean completion removed the
# journal. If the victim finishes before the kill lands the gate degrades
# to a no-op resume, which must still byte-match. (Runs in --quick too —
# crash-resumability is a core contract of the sweep harness.)
step "crash-resume gate (SIGKILL mid-sweep, --resume byte-identity)"
fig13="target/$profile_dir/fig13_main_performance"
resume_report="$out/resume_gate.json"
resume_journal="$resume_report.journal"
rm -f "$resume_report" "$resume_journal"
"$fig13" "${gate_args[@]}" --jobs 8 --report "$out/resume_ref.json" >/dev/null
"$fig13" "${gate_args[@]}" --jobs 8 --report "$resume_report" >/dev/null 2>&1 &
victim=$!
# Kill once at least one cell landed in the journal (28-byte header, then
# one entry per completed cell); give up waiting after ~10s.
for _ in $(seq 1 200); do
  journal_bytes=$(wc -c < "$resume_journal" 2>/dev/null || echo 0)
  [[ "$journal_bytes" -gt 28 ]] && break
  kill -0 "$victim" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
if [[ -e "$resume_report" ]]; then
  echo "note: sweep completed before SIGKILL; resuming a finished sweep instead"
fi
"$fig13" "${gate_args[@]}" --jobs 8 --report "$resume_report" --resume >/dev/null
if ! diff -u "$out/resume_ref.json" "$resume_report"; then
  echo "FAIL: resumed sweep report differs from the uninterrupted run" >&2
  exit 1
fi
if [[ -e "$resume_journal" ]]; then
  echo "FAIL: clean completion left $resume_journal behind" >&2
  exit 1
fi
echo "killed sweep resumed to a byte-identical report; journal cleaned up"

# Fuzz-smoke gate: 64 seed-derived conformance cells (differential
# RefCache shadow + metamorphic re-runs) with the pinned CI seed must run
# clean; failures persist shrunk target/fuzz/*.drtr repro files for
# upload. The gate then proves the harness detects real violations:
# --inject-violation arms the hidden fill-miscount sabotage, which must
# be caught, shrunk, persisted, and replayed bit-identically. (Runs in
# --quick too — the fuzzer is fast and is the conformance safety net.)
step "fuzz-smoke gate (drishti-fuzz, pinned seed)"
cargo build -q --offline "${build_flags[@]}" -p drishti-sim --bin drishti-fuzz
fuzz="target/$profile_dir/drishti-fuzz"
"$fuzz" --cells 64 --steps 2000 --seed 0xd15c0 --out target/fuzz
echo "64 cells clean"
inject_out=target/fuzz-selftest
rm -rf "$inject_out"
if "$fuzz" --cells 2 --steps 2000 --seed 0xd15c0 --inject-violation \
    --out "$inject_out" >/dev/null 2>&1; then
  echo "FAIL: --inject-violation cells were not detected" >&2
  exit 1
fi
repros=("$inject_out"/failure-*.drtr)
if [[ ! -e "${repros[0]}" ]]; then
  echo "FAIL: injected failures produced no .drtr repro files" >&2
  exit 1
fi
# A reproducing replay exits 1 by design — that exact status is asserted.
replay_status=0
replay_out=$("$fuzz" --replay "${repros[0]}" --inject-violation) || replay_status=$?
if [[ $replay_status -ne 1 ]] || ! grep -q "reproduced:" <<<"$replay_out"; then
  echo "FAIL: persisted repro ${repros[0]} did not replay the violation" >&2
  echo "$replay_out" >&2
  exit 1
fi
rm -rf "$inject_out"
echo "injected violation caught, shrunk, persisted and replayed"

# Scenario-smoke gate: the scenario families and the coverage table must
# preserve the harness's byte-determinism contracts, and ChampSim
# ingestion must be deterministic and end-to-end usable. Part 1 runs the
# scenarios study (adversarial search + all three families) under
# --jobs 1|8 × --engine lockstep|event and demands all four reports —
# scenario_coverage table included — are byte-identical. Part 2
# synthesizes a demo ChampSim trace, ingests it twice (byte-diffing the
# .drtr outputs), and replays the ingested trace through a sweep, whose
# report must carry the "ingested" coverage family. (Runs in --quick too
# — the coverage table is new report surface.)
step "scenario-smoke gate (families x jobs x engine, ingest round-trip)"
cargo build -q --offline "${build_flags[@]}" -p drishti-bench --bin scenarios
scenarios="target/$profile_dir/scenarios"
scn_args=(--mixes 1 --cores 4 --accesses 6000)
for engine in lockstep event; do
  for jobs in 1 8; do
    "$scenarios" "${scn_args[@]}" --engine "$engine" --jobs "$jobs" \
      --report "$out/scenarios_${engine}_j${jobs}.json" >/dev/null
  done
done
for variant in scenarios_lockstep_j8 scenarios_event_j1 scenarios_event_j8; do
  if ! diff -u "$out/scenarios_lockstep_j1.json" "$out/$variant.json"; then
    echo "FAIL: $variant scenarios report differs from lockstep --jobs 1" >&2
    exit 1
  fi
done
if ! grep -q '"scenario_coverage"' "$out/scenarios_lockstep_j1.json"; then
  echo "FAIL: scenarios report lacks the scenario_coverage table" >&2
  exit 1
fi
echo "scenario reports byte-identical across jobs and engine modes"
"$sim" --ingest-demo "$out/demo.champsim" >/dev/null
"$sim" --ingest "$out/demo.champsim" --ingest-out "$out/ingest_a.drtr" >/dev/null
"$sim" --ingest "$out/demo.champsim" --ingest-out "$out/ingest_b.drtr" >/dev/null
if ! cmp "$out/ingest_a.drtr" "$out/ingest_b.drtr"; then
  echo "FAIL: ingesting the same ChampSim input twice produced different .drtr bytes" >&2
  exit 1
fi
cp "$out/ingest_a.drtr" "$out/scn_ext.core00.drtr"
"$sim" --cores 1 --mix homo:mcf --policy lru --org baseline \
  --accesses 2000 --warmup 500 --trace-file "$out/scn_ext" \
  --jobs 1 --report "$out/scn_ingested.json" >/dev/null 2>&1
if ! grep -q '"family": "ingested"' "$out/scn_ingested.json"; then
  echo "FAIL: externally-ingested replay report lacks the ingested coverage family" >&2
  exit 1
fi
echo "ingest round-trip byte-identical; ingested replay covered as 'ingested'"

if [[ $quick -eq 0 ]]; then
  step "release-mode oracle/golden/telemetry/event-engine/scenario tests"
  cargo test -q --offline --release --test oracle --test golden --test telemetry \
    --test event_engine --test scenarios --test ingest
fi

# Perf snapshot: run the pinned drishti-perf matrix in --quick mode and
# compare against the newest committed BENCH_*.json. Report-only — a >10%
# regression prints a warning but never fails CI (shared runners are too
# noisy for a hard throughput gate; the committed baselines track the
# trajectory instead). Skipped under ci.sh --quick.
if [[ $quick -eq 0 ]]; then
  step "perf snapshot (drishti-perf --quick, report-only)"
  cargo build -q --offline --release -p drishti-bench --bin drishti-perf
  perf_args=(--quick --out "$out/perf_snapshot.json")
  newest_bench=$(ls -1 BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)
  if [[ -n "$newest_bench" ]]; then
    perf_args+=(--compare "$newest_bench")
  else
    echo "note: no committed BENCH_*.json baseline; reporting without comparison"
  fi
  target/release/drishti-perf "${perf_args[@]}"
fi

rm -rf "$out"
step "OK"

//! # Drishti — a reproduction of "Do Not Forget Slicing While Designing
//! # Last-Level Cache Replacement Policies for Many-Core Systems" (MICRO 2025)
//!
//! This crate is the facade over the reproduction's workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`noc`] | mesh NoC, NOCSTAR side-band interconnect, slice hashing |
//! | [`mem`] | caches, sliced LLC, DRAM, prefetchers |
//! | [`core`] | **the paper's contribution**: predictor organisations, dynamic sampled cache, storage budget |
//! | [`policies`] | LRU, SRRIP, DIP, SHiP++, Hawkeye, Mockingjay, Glider, CHROME, Belady OPT |
//! | [`trace`] | synthetic SPEC/GAP/server-like workloads and mixes |
//! | [`sim`] | the trace-driven many-core engine, metrics, energy |
//!
//! The paper in one paragraph: modern LLC replacement policies (Hawkeye,
//! Mockingjay, …) pair a *sampled cache* with a PC-indexed *reuse
//! predictor*. On commercial many-core parts the LLC is *sliced* — one
//! slice per core, addresses spread by a complex hash — and the naive port
//! instantiates both structures per slice. The paper shows that (i) each
//! slice's predictor then trains on a myopic fragment of every PC's
//! behaviour, and (ii) randomly chosen sampled sets often carry no
//! training signal. Drishti fixes both: a *per-core-yet-global* predictor
//! reachable from every slice over a 3-cycle NOCSTAR interconnect, and a
//! *dynamic sampled cache* that samples the highest-MPKA sets — improving
//! 32-core weighted speedup over LRU from 3.3%→5.6% (Hawkeye) and
//! 6.7%→13.2% (Mockingjay) while *saving* storage.
//!
//! # Quickstart
//!
//! ```
//! use drishti::core::config::DrishtiConfig;
//! use drishti::policies::factory::PolicyKind;
//! use drishti::sim::config::SystemConfig;
//! use drishti::sim::runner::{run_mix, RunConfig};
//! use drishti::trace::mix::Mix;
//! use drishti::trace::presets::Benchmark;
//!
//! let cores = 4;
//! let mix = Mix::homogeneous(Benchmark::Mcf, cores, 1);
//! let rc = RunConfig {
//!     system: SystemConfig::paper_baseline(cores),
//!     accesses_per_core: 20_000,
//!     warmup_accesses: 5_000,
//!     record_llc_stream: false,
//!     sampling: drishti::sim::sampling::SamplingSpec::off(),
//!     telemetry: drishti::sim::telemetry::TelemetrySpec::off(),
//!     engine: Default::default(),
//! };
//! let baseline = run_mix(&mix, PolicyKind::Mockingjay, DrishtiConfig::baseline(cores), &rc);
//! let drishti = run_mix(&mix, PolicyKind::Mockingjay, DrishtiConfig::drishti(cores), &rc);
//! println!("mockingjay {:.3} vs d-mockingjay {:.3}", baseline.total_ipc(), drishti.total_ipc());
//! ```
//!
//! See `examples/` for runnable scenarios, `crates/bench/src/bin/` for the
//! per-table/figure reproduction harness, DESIGN.md for the system
//! inventory and EXPERIMENTS.md for paper-vs-measured results.

pub use drishti_core as core;
pub use drishti_mem as mem;
pub use drishti_noc as noc;
pub use drishti_policies as policies;
pub use drishti_sim as sim;
pub use drishti_trace as trace;

//! SDBP: sampling dead block prediction [Khan, Tian & Jiménez, MICRO 2010
//! — paper ref 34].
//!
//! SDBP learns whether the loads of a PC produce *dead* blocks (never
//! reused before eviction). A sampler — a handful of sets with their own
//! small LRU tag arrays — observes evictions: a sampler victim that was
//! never re-referenced trains its PC "dead", a sampler hit trains "live".
//! A skewed three-table predictor votes at fill and access time; blocks
//! predicted dead become preferential eviction victims.
//!
//! Per the paper's Table 7, SDBP benefits from both Drishti enhancements:
//! its predictor tables can be per-core-yet-global and its sampler sets
//! dynamic (D-SDBP).

use crate::common::{line_tag, PerLine};
use drishti_core::config::DrishtiConfig;
use drishti_core::dsc::DscEvent;
use drishti_core::fabric::PredictorFabric;
use drishti_core::select::SetSelector;
use drishti_mem::access::{Access, AccessKind};
use drishti_mem::llc::LlcGeometry;
use drishti_mem::policy::{
    Decision, LlcLineState, LlcLoc, LlcPolicy, PolicyProbe, ProbeKind, SetProbe,
};
use drishti_noc::NocStats;

/// Three skewed tables of 2-bit counters.
const TABLE_BITS: u32 = 12;
const N_TABLES: usize = 3;
const COUNTER_MAX: u8 = 3;
/// Vote sum at or above this predicts "dead".
const DEAD_THRESHOLD: u32 = 5;
/// Sampler associativity (smaller than the LLC's, per the original).
const SAMPLER_WAYS: usize = 12;

/// Default sampled sets per slice (random / Drishti dynamic).
pub const STATIC_SAMPLED_SETS: usize = 64;
pub const DYNAMIC_SAMPLED_SETS: usize = 16;

#[derive(Debug, Clone, Copy, Default)]
struct SamplerEntry {
    valid: bool,
    tag: u32,
    signature: u64,
    core: u32,
    lru: u64,
    referenced: bool,
}

drishti_noc::impl_persist_fields!(SamplerEntry {
    valid,
    tag,
    signature,
    core,
    lru,
    referenced,
});

#[derive(Debug)]
pub struct Sdbp {
    label: String,
    stamp: PerLine<u64>,
    dead: PerLine<bool>,
    clock: u64,
    selectors: Vec<SetSelector>,
    samplers: Vec<Vec<Vec<SamplerEntry>>>,
    /// `tables[bank][table][index]`.
    tables: Vec<[Vec<u8>; N_TABLES]>,
    fabric: PredictorFabric,
    dead_trainings: u64,
    live_trainings: u64,
    dead_fills: u64,
}

impl Sdbp {
    /// Build SDBP for `geom` under the organisation `cfg`.
    pub fn new(geom: &LlcGeometry, cfg: &DrishtiConfig) -> Self {
        let fabric = cfg.build_fabric();
        let selectors: Vec<SetSelector> = (0..geom.slices)
            .map(|s| {
                cfg.build_selector(
                    s,
                    geom.sets_per_slice,
                    STATIC_SAMPLED_SETS.min(geom.sets_per_slice),
                    DYNAMIC_SAMPLED_SETS.min(geom.sets_per_slice),
                )
            })
            .collect();
        let samplers = selectors
            .iter()
            .map(|sel| {
                (0..sel.n_sampled())
                    .map(|_| vec![SamplerEntry::default(); SAMPLER_WAYS])
                    .collect()
            })
            .collect();
        let label = match cfg.label().as_str() {
            "baseline" => "sdbp".to_string(),
            "drishti" => "d-sdbp".to_string(),
            other => format!("sdbp:{other}"),
        };
        Sdbp {
            label,
            stamp: PerLine::new(geom),
            dead: PerLine::new(geom),
            clock: 0,
            selectors,
            samplers,
            tables: (0..fabric.banks())
                .map(|_| std::array::from_fn(|_| vec![0u8; 1 << TABLE_BITS]))
                .collect(),
            fabric,
            dead_trainings: 0,
            live_trainings: 0,
            dead_fills: 0,
        }
    }

    fn indices(signature: u64, core: usize) -> [usize; N_TABLES] {
        let mut x = signature ^ (core as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        std::array::from_fn(|t| {
            x ^= x >> 23;
            x = x.wrapping_mul(0x2127_599b_f432_5c37 ^ (t as u64) << 17);
            x ^= x >> 47;
            (x & ((1 << TABLE_BITS) - 1)) as usize
        })
    }

    fn train(&mut self, slice: usize, signature: u64, core: usize, dead: bool, cycle: u64) {
        if dead {
            self.dead_trainings += 1;
        } else {
            self.live_trainings += 1;
        }
        let t = self.fabric.train(slice, core, cycle);
        if !t.delivered {
            return; // update lost in transit; later evictions retrain
        }
        let bank = t.bank;
        for (t, idx) in Self::indices(signature, core).into_iter().enumerate() {
            let c = &mut self.tables[bank][t][idx];
            *c = if dead {
                (*c + 1).min(COUNTER_MAX)
            } else {
                c.saturating_sub(1)
            };
        }
    }

    fn predict_dead(
        &mut self,
        slice: usize,
        signature: u64,
        core: usize,
        cycle: u64,
    ) -> (bool, u64) {
        let p = self.fabric.predict(slice, core, cycle);
        if p.fallback {
            // Abandoned lookup: the untrained default (zeroed counters)
            // never votes dead — insert normally, the safe static choice.
            return (false, p.latency);
        }
        let vote: u32 = Self::indices(signature, core)
            .into_iter()
            .enumerate()
            .map(|(t, idx)| u32::from(self.tables[p.bank][t][idx]))
            .sum();
        (vote >= DEAD_THRESHOLD, p.latency)
    }

    fn sample_access(&mut self, loc: LlcLoc, acc: &Access, llc_hit: bool, cycle: u64) {
        if self.selectors[loc.slice].observe(loc.set, llc_hit) == DscEvent::Reselected {
            let changed: Vec<usize> = self.selectors[loc.slice].changed_slots().to_vec();
            for slot in changed {
                self.samplers[loc.slice][slot].fill(SamplerEntry::default());
            }
        }
        if !acc.kind.has_pc() {
            return;
        }
        let Some(slot) = self.selectors[loc.slice].slot_of(loc.set) else {
            return;
        };
        self.clock += 1;
        let clock = self.clock;
        let tag = line_tag(acc.line, 16);
        let sig = acc.signature();
        let sampler = &mut self.samplers[loc.slice][slot];

        if let Some(e) = sampler.iter_mut().find(|e| e.valid && e.tag == tag) {
            // Re-reference in the sampler: the previous signature was live.
            e.referenced = true;
            e.lru = clock;
            let prev_sig = e.signature;
            let prev_core = e.core as usize;
            e.signature = sig;
            e.core = acc.core as u32;
            self.train(loc.slice, prev_sig, prev_core, false, cycle);
            return;
        }
        // Miss in the sampler: evict its LRU entry; unreferenced ⇒ dead.
        let victim = sampler
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("sampler nonempty");
        let old = sampler[victim];
        sampler[victim] = SamplerEntry {
            valid: true,
            tag,
            signature: sig,
            core: acc.core as u32,
            lru: clock,
            referenced: false,
        };
        if old.valid && !old.referenced {
            self.train(loc.slice, old.signature, old.core as usize, true, cycle);
        }
    }
}

impl PolicyProbe for Sdbp {
    fn probe_set(&self, loc: LlcLoc) -> SetProbe {
        SetProbe {
            kind: ProbeKind::RecencyStamp,
            values: self
                .stamp
                .set(loc.slice, loc.set)
                .iter()
                .map(|&v| v as i64)
                .collect(),
        }
    }
}

impl LlcPolicy for Sdbp {
    fn probe(&self) -> Option<&dyn PolicyProbe> {
        Some(self)
    }

    // `label` is config-derived and excluded; the fabric serializes through
    // its own hooks (its link is a trait object).
    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        use drishti_noc::snap::Persist;
        self.stamp.save(w);
        self.dead.save(w);
        self.clock.save(w);
        self.selectors.save(w);
        self.samplers.save(w);
        self.tables.save(w);
        self.fabric.save_state(w);
        self.dead_trainings.save(w);
        self.live_trainings.save(w);
        self.dead_fills.save(w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        use drishti_noc::snap::Persist;
        self.stamp.load(r)?;
        self.dead.load(r)?;
        self.clock.load(r)?;
        self.selectors.load(r)?;
        self.samplers.load(r)?;
        self.tables.load(r)?;
        self.fabric.load_state(r)?;
        self.dead_trainings.load(r)?;
        self.live_trainings.load(r)?;
        self.dead_fills.load(r)
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn on_hit(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        acc: &Access,
        cycle: u64,
    ) -> u64 {
        self.sample_access(loc, acc, true, cycle);
        self.clock += 1;
        *self.stamp.get_mut(loc.slice, loc.set, way) = self.clock;
        // A hit proves the block live; clear any stale dead mark.
        *self.dead.get_mut(loc.slice, loc.set, way) = false;
        0
    }

    fn on_miss(&mut self, loc: LlcLoc, acc: &Access, cycle: u64) {
        self.sample_access(loc, acc, false, cycle);
    }

    fn choose_victim(
        &mut self,
        loc: LlcLoc,
        lines: &[LlcLineState],
        _acc: &Access,
        _cycle: u64,
    ) -> Decision {
        // Prefer a predicted-dead block; fall back to LRU.
        if let Some(w) = (0..lines.len()).find(|&w| *self.dead.get(loc.slice, loc.set, w)) {
            return Decision::Evict(w);
        }
        let victim = (0..lines.len())
            .min_by_key(|&w| *self.stamp.get(loc.slice, loc.set, w))
            .expect("nonzero ways");
        Decision::Evict(victim)
    }

    fn on_fill(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        acc: &Access,
        _evicted: Option<&LlcLineState>,
        cycle: u64,
    ) -> u64 {
        self.clock += 1;
        *self.stamp.get_mut(loc.slice, loc.set, way) = self.clock;
        let (dead, lat) = if acc.kind == AccessKind::Writeback {
            (true, 0) // dirty evictions from L2 are typically dead at LLC
        } else {
            self.predict_dead(loc.slice, acc.signature(), acc.core, cycle)
        };
        if dead {
            self.dead_fills += 1;
        }
        *self.dead.get_mut(loc.slice, loc.set, way) = dead;
        lat
    }

    fn fabric_stats(&self) -> NocStats {
        self.fabric.link_stats()
    }

    fn diagnostics(&self) -> Vec<(String, u64)> {
        vec![
            ("dead_trainings".into(), self.dead_trainings),
            ("live_trainings".into(), self.live_trainings),
            ("dead_fills".into(), self.dead_fills),
            (
                "predictor_train".into(),
                self.fabric.counters().train_accesses,
            ),
            (
                "predictor_predict".into(),
                self.fabric.counters().predict_accesses,
            ),
            (
                "fabric_fallbacks".into(),
                self.fabric.counters().fallback_decisions,
            ),
            (
                "fabric_dropped_predictions".into(),
                self.fabric.counters().dropped_predictions,
            ),
            (
                "fabric_dropped_trainings".into(),
                self.fabric.counters().dropped_trainings,
            ),
            (
                "fabric_retried_trainings".into(),
                self.fabric.counters().retried_trainings,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drishti_mem::llc::SlicedLlc;
    use drishti_noc::slicehash::ModuloHash;

    fn geom() -> LlcGeometry {
        LlcGeometry {
            slices: 1,
            sets_per_slice: 16,
            ways: 4,
            latency: 20,
        }
    }

    fn cfg() -> DrishtiConfig {
        let mut c = DrishtiConfig::baseline(1);
        c.sampled_sets_override = Some(16);
        c
    }

    fn run(llc: &mut SlicedLlc, trace: &[(u64, u64)]) -> u64 {
        let mut hits = 0;
        for (i, &(pc, line)) in trace.iter().enumerate() {
            let a = Access::load(0, pc, line);
            if llc.lookup(&a, i as u64).hit {
                hits += 1;
            } else {
                llc.fill(&a, i as u64);
            }
        }
        hits
    }

    #[test]
    fn names() {
        assert_eq!(
            Sdbp::new(&geom(), &DrishtiConfig::baseline(1)).name(),
            "sdbp"
        );
        assert_eq!(
            Sdbp::new(&geom(), &DrishtiConfig::drishti(1)).name(),
            "d-sdbp"
        );
    }

    #[test]
    fn dead_blocks_from_scans_are_evicted_first() {
        let g = geom();
        let mut llc = SlicedLlc::with_hasher(
            g,
            Box::new(Sdbp::new(&g, &cfg())),
            Box::new(ModuloHash::new()),
        );
        let mut trace = Vec::new();
        let mut stream = 70_000u64;
        for _ in 0..400 {
            for _ in 0..2 {
                for k in 0..16u64 {
                    trace.push((0xAAAA, k));
                }
            }
            for _ in 0..64 {
                stream += 1;
                trace.push((0xBBBB, stream));
            }
        }
        let sdbp_hits = run(&mut llc, &trace);
        let mut lru = SlicedLlc::with_hasher(
            g,
            Box::new(crate::lru::Lru::new(&g)),
            Box::new(ModuloHash::new()),
        );
        let lru_hits = run(&mut lru, &trace);
        assert!(
            sdbp_hits > lru_hits,
            "sdbp {sdbp_hits} should beat lru {lru_hits}"
        );
        let d = llc.policy().diagnostics();
        let get = |n: &str| d.iter().find(|(k, _)| k == n).unwrap().1;
        assert!(get("dead_trainings") > 0);
        assert!(get("dead_fills") > 0);
    }

    #[test]
    fn hit_clears_dead_mark() {
        let g = LlcGeometry {
            slices: 1,
            sets_per_slice: 1,
            ways: 2,
            latency: 20,
        };
        let mut c = DrishtiConfig::baseline(1);
        c.sampled_sets_override = Some(1);
        let mut llc =
            SlicedLlc::with_hasher(g, Box::new(Sdbp::new(&g, &c)), Box::new(ModuloHash::new()));
        // Train PC 0xD dead via a long scan.
        let trace: Vec<(u64, u64)> = (0..4000u64).map(|i| (0xD, i)).collect();
        run(&mut llc, &trace);
        // Now a 0xD line that *is* reused must survive its next eviction
        // decision once it has hit.
        let a = Access::load(0, 0xD, 999_999);
        llc.lookup(&a, 10_000);
        llc.fill(&a, 10_000);
        assert!(llc.lookup(&a, 10_001).hit, "line resident, must hit");
    }
}

//! Hawkeye: mimicking Belady's OPT [Jain & Lin, ISCA 2016; paper ref 27].
//!
//! Hawkeye classifies load PCs as *cache-friendly* or *cache-averse* by
//! replaying what Belady's OPT would have done on the accesses seen by a
//! few sampled sets ([`optgen::OptGen`]). A PC-indexed table of 3-bit
//! counters is incremented when a PC's load would have hit under OPT and
//! decremented otherwise. Fills by friendly PCs insert at RRPV 0 (and age
//! everyone else), averse fills insert at RRPV 7; evicting a line that was
//! predicted friendly detrains its PC.
//!
//! The Drishti knobs ([`DrishtiConfig`]) decide whether the sampler trains
//! one predictor bank per slice (myopic baseline), a single centralized
//! bank, or the per-core-yet-global banks reached over NOCSTAR
//! (D-Hawkeye), and whether sampled sets are chosen randomly (64/slice) or
//! by the dynamic sampled cache (8/slice).

pub mod optgen;

use crate::common::{line_tag, predictor_index, PerLine};
use drishti_core::config::DrishtiConfig;
use drishti_core::dsc::DscEvent;
use drishti_core::fabric::PredictorFabric;
use drishti_core::select::SetSelector;
use drishti_mem::access::{Access, AccessKind};
use drishti_mem::llc::LlcGeometry;
use drishti_mem::policy::{
    Decision, LlcLineState, LlcLoc, LlcPolicy, PolicyProbe, ProbeKind, SetProbe,
};
use drishti_noc::NocStats;
use optgen::OptGen;

/// RRPV ceiling (3-bit).
const MAX_RRPV: u8 = 7;
/// Friendly lines age up to this value, staying below averse insertions.
const AGE_CEILING: u8 = 6;
/// Predictor counter range (3-bit) and friendliness threshold.
const COUNTER_MAX: u8 = 7;
const COUNTER_INIT: u8 = 4;
const FRIENDLY_THRESHOLD: u8 = 4;
/// Predictor index width: 8 K entries × 3 bits = 3 KB (Table 3).
const INDEX_BITS: u32 = 13;
/// Sampler history per sampled set, in multiples of associativity.
const HISTORY_FACTOR: usize = 8;

/// Default sampled sets per slice: conventional random / Drishti dynamic.
pub const STATIC_SAMPLED_SETS: usize = 64;
pub const DYNAMIC_SAMPLED_SETS: usize = 8;

#[derive(Debug, Clone, Copy, Default)]
struct SamplerEntry {
    valid: bool,
    tag: u32,
    signature: u64,
    core: u32,
    last: u64,
}

drishti_noc::impl_persist_fields!(SamplerEntry {
    valid,
    tag,
    signature,
    core,
    last,
});

/// State of one sampled set: its reuse history and OPT emulator.
#[derive(Debug, Clone, Default)]
struct SampledSet {
    entries: Vec<SamplerEntry>,
    optgen: OptGen,
}

drishti_noc::impl_persist_fields!(SampledSet { entries, optgen });

impl SampledSet {
    fn new(ways: usize) -> Self {
        SampledSet {
            entries: vec![SamplerEntry::default(); HISTORY_FACTOR * ways],
            optgen: OptGen::new(ways, HISTORY_FACTOR * ways),
        }
    }

    fn reset(&mut self) {
        self.entries.fill(SamplerEntry::default());
        self.optgen.reset();
    }
}

/// Aggregated diagnostics counters.
#[derive(Debug, Clone, Copy, Default)]
struct HawkeyeDiag {
    opt_hits: u64,
    opt_misses: u64,
    detrains: u64,
    fills_friendly: u64,
    fills_averse: u64,
}

drishti_noc::impl_persist_fields!(HawkeyeDiag {
    opt_hits,
    opt_misses,
    detrains,
    fills_friendly,
    fills_averse,
});

/// The Hawkeye replacement policy (and D-Hawkeye when built with a Drishti
/// configuration).
#[derive(Debug)]
pub struct Hawkeye {
    label: String,
    rrpv: PerLine<u8>,
    selectors: Vec<SetSelector>,
    samplers: Vec<Vec<SampledSet>>,
    /// 3-bit saturating counters per predictor bank.
    predictors: Vec<Vec<u8>>,
    fabric: PredictorFabric,
    diag: HawkeyeDiag,
    /// Distribution of predicted RRIP values at fill (paper Fig 4c/d).
    rrip_histogram: [u64; 8],
}

impl Hawkeye {
    /// Build Hawkeye for `geom` under the organisation `cfg`.
    pub fn new(geom: &LlcGeometry, cfg: &DrishtiConfig) -> Self {
        let fabric = cfg.build_fabric();
        let selectors: Vec<SetSelector> = (0..geom.slices)
            .map(|s| {
                cfg.build_selector(
                    s,
                    geom.sets_per_slice,
                    STATIC_SAMPLED_SETS.min(geom.sets_per_slice),
                    DYNAMIC_SAMPLED_SETS.min(geom.sets_per_slice),
                )
            })
            .collect();
        let samplers = selectors
            .iter()
            .map(|sel| {
                (0..sel.n_sampled())
                    .map(|_| SampledSet::new(geom.ways))
                    .collect()
            })
            .collect();
        let label = match cfg.label().as_str() {
            "baseline" => "hawkeye".to_string(),
            "drishti" => "d-hawkeye".to_string(),
            other => format!("hawkeye:{other}"),
        };
        Hawkeye {
            label,
            rrpv: PerLine::new(geom),
            selectors,
            samplers,
            predictors: vec![vec![COUNTER_INIT; 1 << INDEX_BITS]; fabric.banks()],
            fabric,
            diag: HawkeyeDiag::default(),
            rrip_histogram: [0; 8],
        }
    }

    fn train(&mut self, slice: usize, signature: u64, core: usize, friendly: bool, cycle: u64) {
        let t = self.fabric.train(slice, core, cycle);
        if !t.delivered {
            return; // update lost in transit; later samples retrain
        }
        let bank = t.bank;
        let idx = predictor_index(signature, core, INDEX_BITS);
        let update = |c: &mut u8| {
            *c = if friendly {
                (*c + 1).min(COUNTER_MAX)
            } else {
                c.saturating_sub(1)
            };
        };
        if self.fabric.sampler_org().requires_broadcast()
            && self.fabric.org() == drishti_core::org::PredictorOrg::LocalPerSlice
        {
            // Global sampled cache with local predictors: the training is
            // broadcast to the core's entry in every slice (paper Figs 6–7).
            for b in self.fabric.broadcast_banks(core) {
                update(&mut self.predictors[b][idx]);
            }
        } else {
            update(&mut self.predictors[bank][idx]);
        }
    }

    /// Whether the predictor currently classifies `(signature, core)` as
    /// cache-friendly, plus the charged lookup latency.
    fn predict(&mut self, slice: usize, signature: u64, core: usize, cycle: u64) -> (bool, u64) {
        let p = self.fabric.predict(slice, core, cycle);
        // An abandoned lookup uses the untrained-default classification
        // (counter at its initial value) — the local static decision.
        let c = if p.fallback {
            COUNTER_INIT
        } else {
            self.predictors[p.bank][predictor_index(signature, core, INDEX_BITS)]
        };
        (c >= FRIENDLY_THRESHOLD, p.latency)
    }

    /// Sampler bookkeeping for one access to a (possibly) sampled set.
    fn sample_access(&mut self, loc: LlcLoc, acc: &Access, llc_hit: bool, cycle: u64) {
        if self.selectors[loc.slice].observe(loc.set, llc_hit) == DscEvent::Reselected {
            // Only slots whose set changed lose their history; retained
            // sets keep training across the reselection.
            let changed: Vec<usize> = self.selectors[loc.slice].changed_slots().to_vec();
            for slot in changed {
                self.samplers[loc.slice][slot].reset();
            }
        }
        if !acc.kind.has_pc() {
            return;
        }
        let Some(slot) = self.selectors[loc.slice].slot_of(loc.set) else {
            return;
        };
        let tag = line_tag(acc.line, 16);
        let sig = acc.signature();

        let sampler = &mut self.samplers[loc.slice][slot];
        sampler.optgen.advance();
        let now = sampler.optgen.now();

        if let Some(i) = sampler.entries.iter().position(|e| e.valid && e.tag == tag) {
            let prev = sampler.entries[i].last;
            let prev_sig = sampler.entries[i].signature;
            let prev_core = sampler.entries[i].core as usize;
            let opt_hit = sampler.optgen.decide(prev);
            if opt_hit {
                self.diag.opt_hits += 1;
            } else {
                self.diag.opt_misses += 1;
            }
            self.train(loc.slice, prev_sig, prev_core, opt_hit, cycle);
            let sampler = &mut self.samplers[loc.slice][slot];
            sampler.entries[i] = SamplerEntry {
                valid: true,
                tag,
                signature: sig,
                core: acc.core as u32,
                last: now,
            };
        } else {
            // Insert; evict the stalest entry and detrain it (never reused).
            let victim = sampler
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| if e.valid { e.last } else { 0 })
                .map(|(i, _)| i)
                .expect("sampler nonempty");
            let old = sampler.entries[victim];
            sampler.entries[victim] = SamplerEntry {
                valid: true,
                tag,
                signature: sig,
                core: acc.core as u32,
                last: now,
            };
            if old.valid {
                self.diag.detrains += 1;
                self.train(loc.slice, old.signature, old.core as usize, false, cycle);
            }
        }
    }

    /// Histogram of RRIP values assigned at fill time (Fig 4 style).
    pub fn rrip_histogram(&self) -> &[u64; 8] {
        &self.rrip_histogram
    }
}

impl PolicyProbe for Hawkeye {
    fn probe_set(&self, loc: LlcLoc) -> SetProbe {
        SetProbe {
            kind: ProbeKind::Bounded {
                min: 0,
                max: MAX_RRPV as i64,
            },
            values: self
                .rrpv
                .set(loc.slice, loc.set)
                .iter()
                .map(|&v| v as i64)
                .collect(),
        }
    }
}

impl LlcPolicy for Hawkeye {
    fn probe(&self) -> Option<&dyn PolicyProbe> {
        Some(self)
    }

    // `label` is config-derived and excluded; the fabric serializes through
    // its own hooks (its link is a trait object).
    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        use drishti_noc::snap::Persist;
        self.rrpv.save(w);
        self.selectors.save(w);
        self.samplers.save(w);
        self.predictors.save(w);
        self.fabric.save_state(w);
        self.diag.save(w);
        self.rrip_histogram.save(w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        use drishti_noc::snap::Persist;
        self.rrpv.load(r)?;
        self.selectors.load(r)?;
        self.samplers.load(r)?;
        self.predictors.load(r)?;
        self.fabric.load_state(r)?;
        self.diag.load(r)?;
        self.rrip_histogram.load(r)
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn on_hit(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        acc: &Access,
        cycle: u64,
    ) -> u64 {
        self.sample_access(loc, acc, true, cycle);
        *self.rrpv.get_mut(loc.slice, loc.set, way) = 0;
        0
    }

    fn on_miss(&mut self, loc: LlcLoc, acc: &Access, cycle: u64) {
        self.sample_access(loc, acc, false, cycle);
    }

    fn choose_victim(
        &mut self,
        loc: LlcLoc,
        lines: &[LlcLineState],
        _acc: &Access,
        cycle: u64,
    ) -> Decision {
        let rrpvs = self.rrpv.set(loc.slice, loc.set);
        // Prefer a cache-averse line.
        if let Some(w) = rrpvs.iter().take(lines.len()).position(|&r| r == MAX_RRPV) {
            return Decision::Evict(w);
        }
        // No averse line: evict the oldest friendly line and detrain its PC.
        let w = (0..lines.len())
            .max_by_key(|&w| rrpvs[w])
            .expect("nonzero ways");
        let victim = lines[w];
        if victim.valid && victim.signature != 0 {
            self.diag.detrains += 1;
            self.train(loc.slice, victim.signature, victim.core, false, cycle);
        }
        Decision::Evict(w)
    }

    fn on_fill(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        acc: &Access,
        _evicted: Option<&LlcLineState>,
        cycle: u64,
    ) -> u64 {
        if acc.kind == AccessKind::Writeback {
            // Dirty lines get the lowest priority (paper §5.2, Table 5).
            *self.rrpv.get_mut(loc.slice, loc.set, way) = MAX_RRPV;
            self.rrip_histogram[MAX_RRPV as usize] += 1;
            return 0;
        }
        let (friendly, lat) = self.predict(loc.slice, acc.signature(), acc.core, cycle);
        let insert = if friendly {
            self.diag.fills_friendly += 1;
            0
        } else {
            self.diag.fills_averse += 1;
            MAX_RRPV
        };
        self.rrip_histogram[insert as usize] += 1;
        let set = self.rrpv.set_mut(loc.slice, loc.set);
        if friendly {
            // Friendly insertion ages every other line (saturating at 6).
            for (w, r) in set.iter_mut().enumerate() {
                if w != way && *r < AGE_CEILING {
                    *r += 1;
                }
            }
        }
        set[way] = insert;
        lat
    }

    fn fabric_stats(&self) -> NocStats {
        self.fabric.link_stats()
    }

    fn diagnostics(&self) -> Vec<(String, u64)> {
        vec![
            ("opt_hits".into(), self.diag.opt_hits),
            ("opt_misses".into(), self.diag.opt_misses),
            ("detrains".into(), self.diag.detrains),
            ("fills_friendly".into(), self.diag.fills_friendly),
            ("fills_averse".into(), self.diag.fills_averse),
            (
                "predictor_train".into(),
                self.fabric.counters().train_accesses,
            ),
            (
                "predictor_predict".into(),
                self.fabric.counters().predict_accesses,
            ),
            (
                "fabric_fallbacks".into(),
                self.fabric.counters().fallback_decisions,
            ),
            (
                "fabric_dropped_predictions".into(),
                self.fabric.counters().dropped_predictions,
            ),
            (
                "fabric_dropped_trainings".into(),
                self.fabric.counters().dropped_trainings,
            ),
            (
                "fabric_retried_trainings".into(),
                self.fabric.counters().retried_trainings,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drishti_mem::llc::SlicedLlc;
    use drishti_noc::slicehash::ModuloHash;

    fn small_geom() -> LlcGeometry {
        LlcGeometry {
            slices: 1,
            sets_per_slice: 16,
            ways: 4,
            latency: 20,
        }
    }

    fn cfg_all_sampled() -> DrishtiConfig {
        // Sample every set so the tiny tests always train.
        let mut c = DrishtiConfig::baseline(1);
        c.sampled_sets_override = Some(16);
        c
    }

    fn llc_with(geom: LlcGeometry, cfg: &DrishtiConfig) -> SlicedLlc {
        SlicedLlc::with_hasher(
            geom,
            Box::new(Hawkeye::new(&geom, cfg)),
            Box::new(ModuloHash::new()),
        )
    }

    /// Run a trace of (pc, line) pairs, returning demand hit count.
    fn run(llc: &mut SlicedLlc, trace: &[(u64, u64)]) -> u64 {
        let mut hits = 0;
        for (i, &(pc, line)) in trace.iter().enumerate() {
            let a = Access::load(0, pc, line);
            if llc.lookup(&a, i as u64).hit {
                hits += 1;
            } else {
                llc.fill(&a, i as u64);
            }
        }
        hits
    }

    #[test]
    fn names_follow_configuration() {
        let g = small_geom();
        assert_eq!(
            Hawkeye::new(&g, &DrishtiConfig::baseline(1)).name(),
            "hawkeye"
        );
        assert_eq!(
            Hawkeye::new(&g, &DrishtiConfig::drishti(1)).name(),
            "d-hawkeye"
        );
        assert!(Hawkeye::new(&g, &DrishtiConfig::global_view_only(1))
            .name()
            .contains("global-view-only"));
    }

    #[test]
    fn protects_reused_lines_from_streaming_pc() {
        // One PC re-loops over a small set (friendly); another PC streams
        // (averse). Hawkeye must keep the friendly working set resident.
        let mut llc = llc_with(small_geom(), &cfg_all_sampled());
        let mut trace = Vec::new();
        let mut stream = 10_000u64;
        for _ in 0..400 {
            for k in 0..32u64 {
                trace.push((0xAAAA, k)); // friendly: 32 lines over 16 sets × 4 ways
            }
            for _ in 0..64 {
                stream += 1;
                trace.push((0xBBBB, stream)); // averse scan
            }
        }
        let hits = run(&mut llc, &trace);
        // LRU reference: the scan flushes everything every iteration.
        let geom = small_geom();
        let mut lru = SlicedLlc::with_hasher(
            geom,
            Box::new(crate::lru::Lru::new(&geom)),
            Box::new(ModuloHash::new()),
        );
        let lru_hits = run(&mut lru, &trace);
        assert!(
            hits > lru_hits + (trace.len() / 10) as u64,
            "hawkeye {hits} must clearly beat lru {lru_hits}"
        );
    }

    #[test]
    fn averse_fills_use_max_rrpv() {
        let mut llc = llc_with(small_geom(), &cfg_all_sampled());
        // Pure streaming: PC never reuses ⇒ becomes averse after detraining.
        let trace: Vec<(u64, u64)> = (0..3000u64).map(|i| (0xCCCC, i)).collect();
        run(&mut llc, &trace);
        let diags = llc.policy().diagnostics();
        let averse = diags.iter().find(|(n, _)| n == "fills_averse").unwrap().1;
        let friendly = diags.iter().find(|(n, _)| n == "fills_friendly").unwrap().1;
        assert!(
            averse > friendly,
            "stream should be classified averse: {averse} vs {friendly}"
        );
    }

    #[test]
    fn writebacks_are_lowest_priority() {
        let geom = LlcGeometry {
            slices: 1,
            sets_per_slice: 1,
            ways: 2,
            latency: 20,
        };
        let mut c = DrishtiConfig::baseline(1);
        c.sampled_sets_override = Some(1);
        let mut llc = llc_with(geom, &c);
        let wb = Access::writeback(0, 500);
        llc.lookup(&wb, 0);
        llc.fill(&wb, 0);
        let ld = Access::load(0, 0x1, 600);
        llc.lookup(&ld, 1);
        llc.fill(&ld, 1);
        // Fill a third line: the write-back (RRPV 7) must be the victim.
        let ld2 = Access::load(0, 0x1, 700);
        llc.lookup(&ld2, 2);
        let fr = llc.fill(&ld2, 2);
        assert_eq!(fr.writeback, Some(500));
    }

    #[test]
    fn drishti_variant_reports_fabric_traffic() {
        let g = LlcGeometry {
            slices: 4,
            sets_per_slice: 16,
            ways: 4,
            latency: 20,
        };
        let mut c = DrishtiConfig::drishti(4);
        c.sampled_sets_override = Some(8);
        let mut llc = SlicedLlc::new(g, Box::new(Hawkeye::new(&g, &c)));
        for i in 0..20_000u64 {
            let a = Access::load((i % 4) as usize, 0x40 + (i % 7), i % 512);
            if !llc.lookup(&a, i).hit {
                llc.fill(&a, i);
            }
        }
        assert!(
            llc.policy().fabric_stats().messages > 0,
            "global predictor must generate fabric traffic"
        );
    }

    #[test]
    fn baseline_variant_generates_no_fabric_traffic() {
        let g = small_geom();
        let mut llc = llc_with(g, &cfg_all_sampled());
        let trace: Vec<(u64, u64)> = (0..5000u64).map(|i| (0x1, i % 100)).collect();
        run(&mut llc, &trace);
        assert_eq!(llc.policy().fabric_stats().messages, 0);
    }
}

//! OPTgen: Belady's MIN decisions from past accesses [Jain & Lin, ISCA 2016].
//!
//! OPTgen answers, for each reuse of a line in a sampled set, the question
//! *"would Belady's OPT have kept this line?"* — by maintaining an
//! *occupancy vector* over a sliding window of time quanta (one quantum per
//! access to the set, window 8× the set's capacity). A reuse interval
//! `[prev, now)` is an OPT hit iff every quantum in the interval still has
//! spare capacity; if so, the interval claims one unit of occupancy in each
//! quantum (the liveness interval OPT would have honoured).

/// Per-sampled-set OPT emulator.
#[derive(Debug, Clone)]
pub struct OptGen {
    occupancy: Vec<u8>,
    capacity: u8,
    time: u64,
}

/// Placeholder value required by the snapshot codec's container impls
/// (`Vec<SampledSet>`); never used for decisions — samplers are rebuilt
/// from configuration before any restore.
impl Default for OptGen {
    fn default() -> Self {
        OptGen {
            occupancy: Vec::new(),
            capacity: 0,
            time: 0,
        }
    }
}

// `capacity` is geometry-derived but serialized for uniformity; restoring
// it over the rebuilt value is a no-op under a matching configuration.
drishti_noc::impl_persist_fields!(OptGen {
    occupancy,
    capacity,
    time,
});

impl OptGen {
    /// Create an OPTgen instance for a set of `ways` capacity with a
    /// history window of `window` quanta (Hawkeye uses `8 × ways`).
    ///
    /// # Panics
    ///
    /// Panics if `ways` or `window` is zero.
    pub fn new(ways: usize, window: usize) -> Self {
        assert!(ways > 0 && window > 0, "degenerate OPTgen");
        OptGen {
            occupancy: vec![0; window],
            capacity: ways as u8,
            time: 0,
        }
    }

    /// Current time (quanta elapsed = accesses observed).
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Advance one quantum (call once per access to the sampled set).
    pub fn advance(&mut self) {
        let idx = (self.time as usize) % self.occupancy.len();
        self.occupancy[idx] = 0; // the window slides; the new quantum is empty
        self.time += 1;
    }

    /// Decide whether a reuse with previous access at `prev` (and current
    /// time [`OptGen::now`]) would have hit under OPT; a hit claims
    /// occupancy over the interval.
    ///
    /// Intervals that fall outside the window (too long ago) are misses.
    pub fn decide(&mut self, prev: u64) -> bool {
        let window = self.occupancy.len() as u64;
        if prev >= self.time || self.time - prev >= window {
            return false;
        }
        let full =
            (prev..self.time).any(|t| self.occupancy[(t % window) as usize] >= self.capacity);
        if full {
            return false;
        }
        for t in prev..self.time {
            self.occupancy[(t % window) as usize] += 1;
        }
        true
    }

    /// Clear all state (used when the dynamic sampled cache reselects).
    pub fn reset(&mut self) {
        self.occupancy.fill(0);
        self.time = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference check: brute-force Belady MIN *with bypass* on a single
    /// set of capacity `ways` — the hit-count optimum OPTgen emulates.
    fn belady_hits(trace: &[u64], ways: usize) -> usize {
        let mut cache: Vec<u64> = Vec::new();
        let mut hits = 0;
        for (i, &x) in trace.iter().enumerate() {
            let next_of = |line: u64| {
                trace[i + 1..]
                    .iter()
                    .position(|&f| f == line)
                    .map_or(usize::MAX, |p| p)
            };
            if cache.contains(&x) {
                hits += 1;
                continue;
            }
            if cache.len() < ways {
                cache.push(x);
                continue;
            }
            // Evict the farthest-next-use line, unless the incoming line's
            // next use is even farther (then bypass).
            let (victim, victim_next) = cache
                .iter()
                .enumerate()
                .map(|(w, &c)| (w, next_of(c)))
                .max_by_key(|&(_, n)| n)
                .unwrap();
            if next_of(x) < victim_next {
                cache[victim] = x;
            }
        }
        hits
    }

    /// Drive OPTgen the way Hawkeye does and count OPT hits.
    fn optgen_hits(trace: &[u64], ways: usize) -> usize {
        let mut g = OptGen::new(ways, 8 * ways);
        let mut last: std::collections::HashMap<u64, u64> = Default::default();
        let mut hits = 0;
        for &x in trace {
            g.advance();
            if let Some(&prev) = last.get(&x) {
                if g.decide(prev) {
                    hits += 1;
                }
            }
            last.insert(x, g.now());
        }
        hits
    }

    #[test]
    fn friendly_pattern_all_hits() {
        // A, B, A, B … with capacity 2: OPT hits everything after cold.
        let trace: Vec<u64> = (0..40).map(|i| i % 2).collect();
        assert_eq!(optgen_hits(&trace, 2), belady_hits(&trace, 2));
        assert_eq!(optgen_hits(&trace, 2), 38);
    }

    #[test]
    fn thrash_pattern_partial_hits() {
        // Cyclic A,B,C with capacity 2: OPT keeps a subset alive.
        let trace: Vec<u64> = (0..30).map(|i| i % 3).collect();
        let og = optgen_hits(&trace, 2);
        let bel = belady_hits(&trace, 2);
        assert!(og > 0, "OPT retains some lines under thrash");
        // OPTgen is a conservative approximation of Belady: never more hits.
        assert!(og <= bel, "optgen {og} > belady {bel}");
    }

    #[test]
    fn matches_belady_on_random_traces() {
        // Seeded LCG traces; OPTgen must stay within a small margin of true
        // Belady (it is exact when intervals fit the window).
        let mut state = 0xfeedu64;
        for ways in [2usize, 4] {
            for _ in 0..5 {
                let trace: Vec<u64> = (0..300)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        (state >> 33) % (ways as u64 * 3)
                    })
                    .collect();
                let og = optgen_hits(&trace, ways);
                let bel = belady_hits(&trace, ways);
                assert!(og <= bel, "optgen {og} exceeded belady {bel}");
                assert!(
                    (bel - og) as f64 <= 0.15 * trace.len() as f64,
                    "optgen {og} too far below belady {bel}"
                );
            }
        }
    }

    #[test]
    fn exactly_matches_belady_on_short_windows() {
        // On windows of at most 64 accesses every reuse interval fits
        // OPTgen's 8×ways occupancy window, so the approximation collapses
        // to true Belady MIN: hit counts must be *equal*, not just bounded.
        let mut state = 0x0123_4567u64;
        for ways in [1usize, 2, 4, 8] {
            for alphabet in [2u64, ways as u64 * 2, ways as u64 * 3] {
                for _ in 0..50 {
                    let len = 16 + (state % 49) as usize; // 16..=64
                    let trace: Vec<u64> = (0..len)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                            (state >> 33) % alphabet.max(2)
                        })
                        .collect();
                    let og = optgen_hits(&trace, ways);
                    let bel = belady_hits(&trace, ways);
                    assert_eq!(
                        og, bel,
                        "ways {ways}, alphabet {alphabet}: optgen {og} != belady {bel} on {trace:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn exactly_matches_belady_exhaustively_on_tiny_traces() {
        // Every length-8 trace over a 3-line alphabet, capacity 2: the
        // complete enumeration (3^8 = 6561 traces) pins OPTgen to Belady
        // with no sampling gaps.
        for code in 0..6561u32 {
            let mut c = code;
            let trace: Vec<u64> = (0..8)
                .map(|_| {
                    let x = (c % 3) as u64;
                    c /= 3;
                    x
                })
                .collect();
            let og = optgen_hits(&trace, 2);
            let bel = belady_hits(&trace, 2);
            assert_eq!(og, bel, "optgen {og} != belady {bel} on {trace:?}");
        }
    }

    #[test]
    fn pinned_hit_counts_on_known_windows() {
        // Regression pins: exact hit counts for hand-checked windows.
        // A,B,A,B,… capacity 2 → all hits after the two cold misses.
        let ab: Vec<u64> = (0..64).map(|i| i % 2).collect();
        assert_eq!(optgen_hits(&ab, 2), 62);
        // Cyclic A,B,C capacity 2 → OPT pins two lines and serves two of
        // every three reuses: 2/3 of the 57 reuses = 38 hits.
        let abc: Vec<u64> = (0..60).map(|i| i % 3).collect();
        assert_eq!(optgen_hits(&abc, 2), belady_hits(&abc, 2));
        assert_eq!(optgen_hits(&abc, 2), 38);
        // A scan (no reuse) hits nothing.
        let scan: Vec<u64> = (0..64).collect();
        assert_eq!(optgen_hits(&scan, 4), 0);
    }

    #[test]
    fn interval_longer_than_window_is_miss() {
        let mut g = OptGen::new(2, 8);
        for _ in 0..20 {
            g.advance();
        }
        assert!(!g.decide(1), "interval of 19 quanta exceeds window 8");
    }

    #[test]
    fn capacity_exhaustion_is_miss() {
        let mut g = OptGen::new(1, 16);
        g.advance(); // t=1
        let t_a = g.now();
        g.advance(); // t=2
        let t_b = g.now();
        g.advance(); // t=3 — reuse of A: claims [1,3)
        assert!(g.decide(t_a));
        g.advance(); // t=4 — reuse of B: interval [2,4) overlaps claimed q2
        assert!(!g.decide(t_b), "capacity-1 set cannot hold both intervals");
    }

    #[test]
    fn reset_clears_time_and_occupancy() {
        let mut g = OptGen::new(2, 8);
        g.advance();
        g.advance();
        g.reset();
        assert_eq!(g.now(), 0);
        assert!(!g.decide(0));
    }
}

//! Shared infrastructure for replacement policies.

use drishti_mem::llc::LlcGeometry;
use drishti_mem::CoreId;

/// Per-line policy metadata, indexed `(slice, set, way)`.
#[derive(Debug, Clone)]
pub struct PerLine<T> {
    data: Vec<Vec<T>>,
    ways: usize,
}

impl<T: Clone + Default> PerLine<T> {
    /// Allocate metadata for the given geometry, default-initialised.
    pub fn new(geom: &LlcGeometry) -> Self {
        PerLine {
            data: vec![vec![T::default(); geom.sets_per_slice * geom.ways]; geom.slices],
            ways: geom.ways,
        }
    }

    /// Shared access.
    #[inline]
    pub fn get(&self, slice: usize, set: usize, way: usize) -> &T {
        &self.data[slice][set * self.ways + way]
    }

    /// Mutable access.
    #[inline]
    pub fn get_mut(&mut self, slice: usize, set: usize, way: usize) -> &mut T {
        &mut self.data[slice][set * self.ways + way]
    }

    /// All ways of one set, mutable.
    #[inline]
    pub fn set_mut(&mut self, slice: usize, set: usize) -> &mut [T] {
        &mut self.data[slice][set * self.ways..(set + 1) * self.ways]
    }

    /// All ways of one set, shared.
    #[inline]
    pub fn set(&self, slice: usize, set: usize) -> &[T] {
        &self.data[slice][set * self.ways..(set + 1) * self.ways]
    }
}

impl<T: drishti_noc::snap::Persist + Default> drishti_noc::snap::Persist for PerLine<T> {
    fn save(&self, w: &mut drishti_noc::snap::StateWriter) {
        // `ways` is geometry, re-derived at construction; only the data
        // array is run-state.
        drishti_noc::snap::Persist::save(&self.data, w);
    }
    fn load(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        drishti_noc::snap::Persist::load(&mut self.data, r)
    }
}

/// Index a predictor table with `bits` index bits from a PC signature and
/// the requesting core. The core is folded in because baseline Mockingjay's
/// per-slice predictors are "indexed with a hash of PC and core ID"
/// (paper Fig 1) — the same indexing is used for every organisation so
/// myopic/global comparisons differ only in which bank is trained.
#[inline]
pub fn predictor_index(signature: u64, core: CoreId, bits: u32) -> usize {
    let mut x = signature ^ (core as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 29;
    (x & ((1 << bits) - 1)) as usize
}

/// A compact hash of a line address for sampler tags.
#[inline]
pub fn line_tag(line: u64, bits: u32) -> u32 {
    let mut x = line;
    x ^= x >> 31;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    (x & ((1 << bits) - 1)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> LlcGeometry {
        LlcGeometry {
            slices: 2,
            sets_per_slice: 4,
            ways: 3,
            latency: 20,
        }
    }

    #[test]
    fn per_line_round_trips() {
        let mut p: PerLine<u8> = PerLine::new(&geom());
        *p.get_mut(1, 2, 0) = 7;
        assert_eq!(*p.get(1, 2, 0), 7);
        assert_eq!(*p.get(0, 2, 0), 0);
        assert_eq!(p.set(1, 2), &[7, 0, 0]);
        p.set_mut(1, 2)[2] = 9;
        assert_eq!(*p.get(1, 2, 2), 9);
    }

    #[test]
    fn predictor_index_in_range_and_core_sensitive() {
        for core in 0..8 {
            for sig in [0u64, 0x400, 0xdead_beef] {
                assert!(predictor_index(sig, core, 11) < 2048);
            }
        }
        assert_ne!(
            predictor_index(0x400, 0, 11),
            predictor_index(0x400, 1, 11),
            "core must influence the index"
        );
    }

    #[test]
    fn line_tag_is_stable_and_bounded() {
        assert_eq!(line_tag(123, 10), line_tag(123, 10));
        for l in 0..1000u64 {
            assert!(line_tag(l, 10) < 1024);
        }
    }
}

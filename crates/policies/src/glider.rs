//! Glider-like: integer-SVM reuse prediction [Shi et al., MICRO 2019 —
//! paper ref 55].
//!
//! Glider distils an offline LSTM into a practical online predictor: an
//! Integer SVM (ISVM) whose features are the contents of a per-core *PC
//! History Register* (PCHR — the last few load PCs), trained with OPTgen
//! outcomes exactly like Hawkeye. A load is predicted cache-friendly when
//! the sum of its PC's ISVM weights over the current history exceeds a
//! threshold.
//!
//! This model keeps the PCHR + per-PC ISVM weight vectors + OPTgen
//! training; the original's dual-threshold confidence levels are collapsed
//! to friendly/averse, which is all the RRIP insertion consumes (see
//! DESIGN.md §1). Under a Drishti configuration (D-Glider, Table 8) the
//! ISVM tables follow the per-core-yet-global organisation and the sampled
//! sets the dynamic sampled cache.

use crate::common::{line_tag, predictor_index, PerLine};
use crate::hawkeye::optgen::OptGen;
use drishti_core::config::DrishtiConfig;
use drishti_core::dsc::DscEvent;
use drishti_core::fabric::PredictorFabric;
use drishti_core::select::SetSelector;
use drishti_mem::access::{Access, AccessKind};
use drishti_mem::llc::LlcGeometry;
use drishti_mem::policy::{
    Decision, LlcLineState, LlcLoc, LlcPolicy, PolicyProbe, ProbeKind, SetProbe,
};
use drishti_noc::NocStats;

const MAX_RRPV: u8 = 7;
const AGE_CEILING: u8 = 6;
const PCHR_LEN: usize = 5;
const FEATURE_BUCKETS: usize = 16;
const WEIGHT_CAP: i8 = 31;
/// Stop updating once the margin is confidently correct (SVM hinge).
const TRAIN_MARGIN: i32 = 20;
const TABLE_BITS: u32 = 11;
const HISTORY_FACTOR: usize = 8;

/// Default sampled sets per slice (random / Drishti dynamic).
pub const STATIC_SAMPLED_SETS: usize = 64;
pub const DYNAMIC_SAMPLED_SETS: usize = 8;

type Features = [u8; PCHR_LEN];

#[derive(Debug, Clone, Copy, Default)]
struct SamplerEntry {
    valid: bool,
    tag: u32,
    signature: u64,
    core: u32,
    features: Features,
    last: u64,
}

drishti_noc::impl_persist_fields!(SamplerEntry {
    valid,
    tag,
    signature,
    core,
    features,
    last,
});

#[derive(Debug, Clone, Default)]
struct SampledSet {
    entries: Vec<SamplerEntry>,
    optgen: OptGen,
}

drishti_noc::impl_persist_fields!(SampledSet { entries, optgen });

impl SampledSet {
    fn new(ways: usize) -> Self {
        SampledSet {
            entries: vec![SamplerEntry::default(); HISTORY_FACTOR * ways],
            optgen: OptGen::new(ways, HISTORY_FACTOR * ways),
        }
    }
    fn reset(&mut self) {
        self.entries.fill(SamplerEntry::default());
        self.optgen.reset();
    }
}

/// The Glider-like replacement policy.
#[derive(Debug)]
pub struct Glider {
    label: String,
    rrpv: PerLine<u8>,
    selectors: Vec<SetSelector>,
    samplers: Vec<Vec<SampledSet>>,
    /// `isvm[bank][pc_index]` = weight vector over feature buckets.
    isvm: Vec<Vec<[i8; FEATURE_BUCKETS]>>,
    pchr: Vec<[u8; PCHR_LEN]>,
    fabric: PredictorFabric,
    trainings: u64,
}

impl Glider {
    /// Build Glider for `geom` under the organisation `cfg`.
    pub fn new(geom: &LlcGeometry, cfg: &DrishtiConfig) -> Self {
        let fabric = cfg.build_fabric();
        let selectors: Vec<SetSelector> = (0..geom.slices)
            .map(|s| {
                cfg.build_selector(
                    s,
                    geom.sets_per_slice,
                    STATIC_SAMPLED_SETS.min(geom.sets_per_slice),
                    DYNAMIC_SAMPLED_SETS.min(geom.sets_per_slice),
                )
            })
            .collect();
        let samplers = selectors
            .iter()
            .map(|sel| {
                (0..sel.n_sampled())
                    .map(|_| SampledSet::new(geom.ways))
                    .collect()
            })
            .collect();
        let label = match cfg.label().as_str() {
            "baseline" => "glider".to_string(),
            "drishti" => "d-glider".to_string(),
            other => format!("glider:{other}"),
        };
        Glider {
            label,
            rrpv: PerLine::new(geom),
            selectors,
            samplers,
            isvm: vec![vec![[0; FEATURE_BUCKETS]; 1 << TABLE_BITS]; fabric.banks()],
            pchr: vec![[0; PCHR_LEN]; cfg.cores],
            fabric,
            trainings: 0,
        }
    }

    fn bucket(pc: u64) -> u8 {
        ((pc ^ (pc >> 7) ^ (pc >> 17)) % FEATURE_BUCKETS as u64) as u8
    }

    fn push_pchr(&mut self, core: usize, pc: u64) {
        let h = &mut self.pchr[core];
        h.copy_within(0..PCHR_LEN - 1, 1);
        h[0] = Self::bucket(pc);
    }

    fn features(&self, core: usize) -> Features {
        self.pchr[core]
    }

    fn score(&self, bank: usize, signature: u64, core: usize, feats: &Features) -> i32 {
        let w = &self.isvm[bank][predictor_index(signature, core, TABLE_BITS)];
        feats.iter().map(|&f| i32::from(w[f as usize])).sum()
    }

    fn train(
        &mut self,
        slice: usize,
        signature: u64,
        core: usize,
        feats: &Features,
        friendly: bool,
        cycle: u64,
    ) {
        self.trainings += 1;
        let t = self.fabric.train(slice, core, cycle);
        if !t.delivered {
            return; // update lost in transit; later samples retrain
        }
        let bank = t.bank;
        let s = self.score(bank, signature, core, feats);
        // Hinge: only update while the margin is not confidently correct.
        if friendly && s > TRAIN_MARGIN {
            return;
        }
        if !friendly && s < -TRAIN_MARGIN {
            return;
        }
        let w = &mut self.isvm[bank][predictor_index(signature, core, TABLE_BITS)];
        for &f in feats {
            let wf = &mut w[f as usize];
            *wf = if friendly {
                (*wf + 1).min(WEIGHT_CAP)
            } else {
                (*wf - 1).max(-WEIGHT_CAP)
            };
        }
    }

    fn sample_access(&mut self, loc: LlcLoc, acc: &Access, llc_hit: bool, cycle: u64) {
        if self.selectors[loc.slice].observe(loc.set, llc_hit) == DscEvent::Reselected {
            // Only slots whose set changed lose their history; retained
            // sets keep training across the reselection.
            let changed: Vec<usize> = self.selectors[loc.slice].changed_slots().to_vec();
            for slot in changed {
                self.samplers[loc.slice][slot].reset();
            }
        }
        if !acc.kind.has_pc() {
            return;
        }
        let feats = self.features(acc.core);
        let Some(slot) = self.selectors[loc.slice].slot_of(loc.set) else {
            return;
        };
        let tag = line_tag(acc.line, 16);
        let sampler = &mut self.samplers[loc.slice][slot];
        sampler.optgen.advance();
        let now = sampler.optgen.now();
        if let Some(i) = sampler.entries.iter().position(|e| e.valid && e.tag == tag) {
            let prev = sampler.entries[i];
            let opt_hit = sampler.optgen.decide(prev.last);
            self.train(
                loc.slice,
                prev.signature,
                prev.core as usize,
                &prev.features,
                opt_hit,
                cycle,
            );
            self.samplers[loc.slice][slot].entries[i] = SamplerEntry {
                valid: true,
                tag,
                signature: acc.signature(),
                core: acc.core as u32,
                features: feats,
                last: now,
            };
        } else {
            let victim = sampler
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| if e.valid { e.last } else { 0 })
                .map(|(i, _)| i)
                .expect("sampler nonempty");
            let old = sampler.entries[victim];
            sampler.entries[victim] = SamplerEntry {
                valid: true,
                tag,
                signature: acc.signature(),
                core: acc.core as u32,
                features: feats,
                last: now,
            };
            if old.valid {
                self.train(
                    loc.slice,
                    old.signature,
                    old.core as usize,
                    &old.features,
                    false,
                    cycle,
                );
            }
        }
    }
}

impl PolicyProbe for Glider {
    fn probe_set(&self, loc: LlcLoc) -> SetProbe {
        SetProbe {
            kind: ProbeKind::Bounded {
                min: 0,
                max: MAX_RRPV as i64,
            },
            values: self
                .rrpv
                .set(loc.slice, loc.set)
                .iter()
                .map(|&v| v as i64)
                .collect(),
        }
    }
}

impl LlcPolicy for Glider {
    fn probe(&self) -> Option<&dyn PolicyProbe> {
        Some(self)
    }

    // `label` is config-derived and excluded; the fabric serializes through
    // its own hooks (its link is a trait object).
    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        use drishti_noc::snap::Persist;
        self.rrpv.save(w);
        self.selectors.save(w);
        self.samplers.save(w);
        self.isvm.save(w);
        self.pchr.save(w);
        self.fabric.save_state(w);
        self.trainings.save(w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        use drishti_noc::snap::Persist;
        self.rrpv.load(r)?;
        self.selectors.load(r)?;
        self.samplers.load(r)?;
        self.isvm.load(r)?;
        self.pchr.load(r)?;
        self.fabric.load_state(r)?;
        self.trainings.load(r)
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn on_hit(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        acc: &Access,
        cycle: u64,
    ) -> u64 {
        self.sample_access(loc, acc, true, cycle);
        if acc.kind.has_pc() {
            self.push_pchr(acc.core, acc.pc);
        }
        *self.rrpv.get_mut(loc.slice, loc.set, way) = 0;
        0
    }

    fn on_miss(&mut self, loc: LlcLoc, acc: &Access, cycle: u64) {
        self.sample_access(loc, acc, false, cycle);
        if acc.kind.has_pc() {
            self.push_pchr(acc.core, acc.pc);
        }
    }

    fn choose_victim(
        &mut self,
        loc: LlcLoc,
        lines: &[LlcLineState],
        _acc: &Access,
        _cycle: u64,
    ) -> Decision {
        let rrpvs = self.rrpv.set(loc.slice, loc.set);
        if let Some(w) = rrpvs.iter().take(lines.len()).position(|&r| r == MAX_RRPV) {
            return Decision::Evict(w);
        }
        let w = (0..lines.len())
            .max_by_key(|&w| rrpvs[w])
            .expect("nonzero ways");
        Decision::Evict(w)
    }

    fn on_fill(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        acc: &Access,
        _evicted: Option<&LlcLineState>,
        cycle: u64,
    ) -> u64 {
        if acc.kind == AccessKind::Writeback {
            *self.rrpv.get_mut(loc.slice, loc.set, way) = MAX_RRPV;
            return 0;
        }
        let p = self.fabric.predict(loc.slice, acc.core, cycle);
        let lat = p.latency;
        let feats = self.features(acc.core);
        // An abandoned lookup uses the untrained-default score (zero
        // weights ⇒ friendly), the local static decision.
        let friendly = p.fallback || self.score(p.bank, acc.signature(), acc.core, &feats) >= 0;
        let set = self.rrpv.set_mut(loc.slice, loc.set);
        if friendly {
            for (w, r) in set.iter_mut().enumerate() {
                if w != way && *r < AGE_CEILING {
                    *r += 1;
                }
            }
            set[way] = 0;
        } else {
            set[way] = MAX_RRPV;
        }
        lat
    }

    fn fabric_stats(&self) -> NocStats {
        self.fabric.link_stats()
    }

    fn diagnostics(&self) -> Vec<(String, u64)> {
        let fc = self.fabric.counters();
        vec![
            ("isvm_trainings".into(), self.trainings),
            ("fabric_fallbacks".into(), fc.fallback_decisions),
            ("fabric_dropped_predictions".into(), fc.dropped_predictions),
            ("fabric_dropped_trainings".into(), fc.dropped_trainings),
            ("fabric_retried_trainings".into(), fc.retried_trainings),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drishti_mem::llc::SlicedLlc;
    use drishti_noc::slicehash::ModuloHash;

    fn geom() -> LlcGeometry {
        LlcGeometry {
            slices: 1,
            sets_per_slice: 16,
            ways: 4,
            latency: 20,
        }
    }

    fn cfg() -> DrishtiConfig {
        let mut c = DrishtiConfig::baseline(1);
        c.sampled_sets_override = Some(16);
        c
    }

    fn run(llc: &mut SlicedLlc, trace: &[(u64, u64)]) -> u64 {
        let mut hits = 0;
        for (i, &(pc, line)) in trace.iter().enumerate() {
            let a = Access::load(0, pc, line);
            if llc.lookup(&a, i as u64).hit {
                hits += 1;
            } else {
                llc.fill(&a, i as u64);
            }
        }
        hits
    }

    #[test]
    fn names() {
        assert_eq!(
            Glider::new(&geom(), &DrishtiConfig::baseline(1)).name(),
            "glider"
        );
        assert_eq!(
            Glider::new(&geom(), &DrishtiConfig::drishti(1)).name(),
            "d-glider"
        );
    }

    #[test]
    fn isvm_learns_reuse_vs_scan() {
        let g = geom();
        let mut llc = SlicedLlc::with_hasher(
            g,
            Box::new(Glider::new(&g, &cfg())),
            Box::new(ModuloHash::new()),
        );
        let mut trace = Vec::new();
        let mut stream = 80_000u64;
        for _ in 0..300 {
            for k in 0..32u64 {
                trace.push((0xAAAA, k));
            }
            for _ in 0..64 {
                stream += 1;
                trace.push((0xBBBB, stream));
            }
        }
        let glider_hits = run(&mut llc, &trace);
        let mut lru = SlicedLlc::with_hasher(
            g,
            Box::new(crate::lru::Lru::new(&g)),
            Box::new(ModuloHash::new()),
        );
        let lru_hits = run(&mut lru, &trace);
        assert!(
            glider_hits > lru_hits,
            "glider {glider_hits} should beat lru {lru_hits}"
        );
        let d = llc.policy().diagnostics();
        assert!(d.iter().find(|(k, _)| k == "isvm_trainings").unwrap().1 > 0);
    }

    #[test]
    fn pchr_shifts() {
        let g = geom();
        let mut gl = Glider::new(&g, &cfg());
        gl.push_pchr(0, 0x10);
        gl.push_pchr(0, 0x20);
        let f = gl.features(0);
        assert_eq!(f[0], Glider::bucket(0x20));
        assert_eq!(f[1], Glider::bucket(0x10));
    }
}

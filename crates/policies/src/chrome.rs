//! CHROME-like: online reinforcement-learning cache management
//! [Lu et al., HPCA 2024 — paper ref 38].
//!
//! CHROME frames insertion as a sequential decision problem solved with
//! SARSA: the state summarises the requesting PC and current cache
//! pressure, the actions are insertion priorities (near / long / distant /
//! bypass), and the reward is +1 when an inserted line is reused and −1
//! when it dies unreused (or when a bypassed line is demanded again soon).
//!
//! This model keeps the tabular value function, ε-greedy exploration with a
//! deterministic seeded generator, and the reuse/death reward shaping; the
//! original's DRAM-page-level actions and holistic prefetch coordination
//! are out of scope (DESIGN.md §1). Under a Drishti configuration
//! (D-CHROME, Table 8) the Q-tables follow the per-core-yet-global
//! organisation — every slice's experience trains the owning core's table —
//! and the learning-trigger sets follow the dynamic sampled cache.

use crate::common::{predictor_index, PerLine};
use drishti_core::config::DrishtiConfig;
use drishti_core::fabric::PredictorFabric;
use drishti_core::select::SetSelector;
use drishti_mem::access::{Access, AccessKind};
use drishti_mem::llc::LlcGeometry;
use drishti_mem::policy::{
    Decision, LlcLineState, LlcLoc, LlcPolicy, PolicyProbe, ProbeKind, SetProbe,
};
use drishti_noc::NocStats;

const MAX_RRPV: u8 = 3;
const STATE_BITS: u32 = 10;
const N_ACTIONS: usize = 4;
/// Q-values are fixed-point with this scale.
const Q_SCALE: i32 = 16;
const ALPHA_SHIFT: u32 = 3; // learning rate 1/8
const EPSILON_RECIPROCAL: u64 = 64; // explore 1/64 of decisions

/// Default sampled (learning-trigger) sets per slice.
pub const STATIC_SAMPLED_SETS: usize = 64;
pub const DYNAMIC_SAMPLED_SETS: usize = 16;

/// Insertion actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Near,    // RRPV 0
    Long,    // RRPV 2
    Distant, // RRPV 3
    Bypass,
}

const ACTIONS: [Action; N_ACTIONS] = [Action::Near, Action::Long, Action::Distant, Action::Bypass];

/// Action index used when a predictor lookup is abandoned (fault
/// fallback): `Action::Long`, the SRRIP-like static insertion.
const FALLBACK_ACTION: usize = 1;

impl Action {
    fn rrpv(self) -> u8 {
        match self {
            Action::Near => 0,
            Action::Long => 2,
            Action::Distant => MAX_RRPV,
            Action::Bypass => MAX_RRPV,
        }
    }
}

/// Per-line provenance so rewards credit the right decision.
#[derive(Debug, Clone, Copy, Default)]
struct Provenance {
    state: u16,
    action: u8,
    core: u8,
    rewarded: bool,
}

drishti_noc::impl_persist_fields!(Provenance {
    state,
    action,
    core,
    rewarded,
});

/// The CHROME-like RL replacement policy.
#[derive(Debug)]
pub struct Chrome {
    label: String,
    rrpv: PerLine<u8>,
    prov: PerLine<Provenance>,
    selectors: Vec<SetSelector>,
    /// `q[bank][state * N_ACTIONS + action]`, fixed point.
    q: Vec<Vec<i32>>,
    fabric: PredictorFabric,
    /// Recent bypass decisions: (line, state, action, core) ring.
    bypassed: Vec<(u64, u16, u8, u8)>,
    bypassed_next: usize,
    rng: u64,
    decisions: u64,
    explorations: u64,
    rewards_pos: u64,
    rewards_neg: u64,
    /// Per-slice short miss-streak counter: the pressure feature.
    pressure: Vec<u8>,
}

impl Chrome {
    /// Build CHROME for `geom` under the organisation `cfg`.
    pub fn new(geom: &LlcGeometry, cfg: &DrishtiConfig) -> Self {
        let fabric = cfg.build_fabric();
        let selectors = (0..geom.slices)
            .map(|s| {
                cfg.build_selector(
                    s,
                    geom.sets_per_slice,
                    STATIC_SAMPLED_SETS.min(geom.sets_per_slice),
                    DYNAMIC_SAMPLED_SETS.min(geom.sets_per_slice),
                )
            })
            .collect();
        let label = match cfg.label().as_str() {
            "baseline" => "chrome".to_string(),
            "drishti" => "d-chrome".to_string(),
            other => format!("chrome:{other}"),
        };
        Chrome {
            label,
            rrpv: PerLine::new(geom),
            prov: PerLine::new(geom),
            selectors,
            q: vec![vec![0; (1 << STATE_BITS) * N_ACTIONS]; fabric.banks()],
            fabric,
            bypassed: vec![(u64::MAX, 0, 0, 0); 128],
            bypassed_next: 0,
            rng: cfg.seed | 1,
            decisions: 0,
            explorations: 0,
            rewards_pos: 0,
            rewards_neg: 0,
            pressure: vec![0; geom.slices],
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// State: hash of (PC signature, pressure bucket).
    fn state(&self, acc: &Access, slice: usize) -> u16 {
        let pressure_bucket = u64::from(self.pressure[slice] / 64); // 0..3
        let idx = predictor_index(
            acc.signature() ^ (pressure_bucket << 57),
            acc.core,
            STATE_BITS,
        );
        idx as u16
    }

    fn best_action(&self, bank: usize, state: u16) -> (usize, i32) {
        let base = state as usize * N_ACTIONS;
        (0..N_ACTIONS)
            .map(|a| (a, self.q[bank][base + a]))
            .max_by_key(|&(a, q)| (q, std::cmp::Reverse(a)))
            .expect("actions nonempty")
    }

    fn reward(&mut self, slice: usize, state: u16, action: u8, core: usize, r: i32, cycle: u64) {
        if r > 0 {
            self.rewards_pos += 1;
        } else {
            self.rewards_neg += 1;
        }
        let t = self.fabric.train(slice, core, cycle);
        if !t.delivered {
            return; // update lost in transit; the next reward retrains
        }
        let q = &mut self.q[t.bank][state as usize * N_ACTIONS + action as usize];
        *q += (r * Q_SCALE - *q) >> ALPHA_SHIFT;
    }
}

impl PolicyProbe for Chrome {
    fn probe_set(&self, loc: LlcLoc) -> SetProbe {
        SetProbe {
            kind: ProbeKind::Bounded {
                min: 0,
                max: MAX_RRPV as i64,
            },
            values: self
                .rrpv
                .set(loc.slice, loc.set)
                .iter()
                .map(|&v| v as i64)
                .collect(),
        }
    }
}

impl LlcPolicy for Chrome {
    fn probe(&self) -> Option<&dyn PolicyProbe> {
        Some(self)
    }

    // `label` is config-derived and excluded; the fabric serializes through
    // its own hooks. The ε-greedy RNG stream is captured so resumed runs
    // replay the exact exploration sequence.
    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        use drishti_noc::snap::Persist;
        self.rrpv.save(w);
        self.prov.save(w);
        self.selectors.save(w);
        self.q.save(w);
        self.fabric.save_state(w);
        self.bypassed.save(w);
        self.bypassed_next.save(w);
        self.rng.save(w);
        self.decisions.save(w);
        self.explorations.save(w);
        self.rewards_pos.save(w);
        self.rewards_neg.save(w);
        self.pressure.save(w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        use drishti_noc::snap::Persist;
        self.rrpv.load(r)?;
        self.prov.load(r)?;
        self.selectors.load(r)?;
        self.q.load(r)?;
        self.fabric.load_state(r)?;
        self.bypassed.load(r)?;
        self.bypassed_next.load(r)?;
        self.rng.load(r)?;
        self.decisions.load(r)?;
        self.explorations.load(r)?;
        self.rewards_pos.load(r)?;
        self.rewards_neg.load(r)?;
        self.pressure.load(r)
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn on_hit(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        _acc: &Access,
        cycle: u64,
    ) -> u64 {
        self.selectors[loc.slice].observe(loc.set, true);
        self.pressure[loc.slice] = self.pressure[loc.slice].saturating_sub(1);
        *self.rrpv.get_mut(loc.slice, loc.set, way) = 0;
        // First reuse rewards the inserting decision.
        let p = *self.prov.get(loc.slice, loc.set, way);
        if !p.rewarded {
            self.prov.get_mut(loc.slice, loc.set, way).rewarded = true;
            self.reward(loc.slice, p.state, p.action, p.core as usize, 1, cycle);
        }
        0
    }

    fn on_miss(&mut self, loc: LlcLoc, acc: &Access, cycle: u64) {
        self.selectors[loc.slice].observe(loc.set, false);
        self.pressure[loc.slice] = self.pressure[loc.slice].saturating_add(1);
        // A miss on a recently bypassed line: the bypass was wrong.
        if let Some(i) = self.bypassed.iter().position(|&(l, ..)| l == acc.line) {
            let (_, state, action, core) = self.bypassed[i];
            self.bypassed[i].0 = u64::MAX;
            self.reward(loc.slice, state, action, core as usize, -1, cycle);
        }
    }

    fn choose_victim(
        &mut self,
        loc: LlcLoc,
        lines: &[LlcLineState],
        acc: &Access,
        cycle: u64,
    ) -> Decision {
        // Decide the action for the incoming line; bypass is an action.
        if acc.kind != AccessKind::Writeback {
            self.decisions += 1;
            let state = self.state(acc, loc.slice);
            let p = self.fabric.predict(loc.slice, acc.core, cycle);
            let explore = self.next_rand().is_multiple_of(EPSILON_RECIPROCAL);
            let action = if explore {
                self.explorations += 1;
                (self.next_rand() % N_ACTIONS as u64) as usize
            } else if p.fallback {
                FALLBACK_ACTION
            } else {
                self.best_action(p.bank, state).0
            };
            if ACTIONS[action] == Action::Bypass {
                self.bypassed[self.bypassed_next] = (acc.line, state, action as u8, acc.core as u8);
                self.bypassed_next = (self.bypassed_next + 1) % self.bypassed.len();
                // Mildly positive reward for bypassing keeps dead streams out;
                // the -1 penalty on re-demand corrects mistakes.
                self.reward(loc.slice, state, action as u8, acc.core, 0, cycle);
                return Decision::Bypass;
            }
        }
        // Victim: RRIP with aging.
        loop {
            let set = self.rrpv.set_mut(loc.slice, loc.set);
            if let Some(w) = set.iter().take(lines.len()).position(|&r| r >= MAX_RRPV) {
                return Decision::Evict(w);
            }
            for r in set.iter_mut() {
                *r += 1;
            }
        }
    }

    fn on_fill(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        acc: &Access,
        evicted: Option<&LlcLineState>,
        cycle: u64,
    ) -> u64 {
        // The dead victim penalises its inserting decision.
        if evicted.is_some() {
            let p = *self.prov.get(loc.slice, loc.set, way);
            if !p.rewarded && p.state != 0 {
                self.reward(loc.slice, p.state, p.action, p.core as usize, -1, cycle);
            }
        }
        let (action, lat) = if acc.kind == AccessKind::Writeback {
            (Action::Distant, 0)
        } else {
            let state = self.state(acc, loc.slice);
            let p = self.fabric.predict(loc.slice, acc.core, cycle);
            let lat = p.latency;
            let a = if p.fallback {
                FALLBACK_ACTION
            } else {
                self.best_action(p.bank, state).0
            };
            let chosen = if ACTIONS[a] == Action::Bypass {
                Action::Long
            } else {
                ACTIONS[a]
            };
            *self.prov.get_mut(loc.slice, loc.set, way) = Provenance {
                state,
                action: a as u8,
                core: acc.core as u8,
                rewarded: false,
            };
            (chosen, lat)
        };
        *self.rrpv.get_mut(loc.slice, loc.set, way) = action.rrpv();
        lat
    }

    fn fabric_stats(&self) -> NocStats {
        self.fabric.link_stats()
    }

    fn diagnostics(&self) -> Vec<(String, u64)> {
        let fc = self.fabric.counters();
        vec![
            ("decisions".into(), self.decisions),
            ("explorations".into(), self.explorations),
            ("rewards_pos".into(), self.rewards_pos),
            ("rewards_neg".into(), self.rewards_neg),
            ("fabric_fallbacks".into(), fc.fallback_decisions),
            ("fabric_dropped_predictions".into(), fc.dropped_predictions),
            ("fabric_dropped_trainings".into(), fc.dropped_trainings),
            ("fabric_retried_trainings".into(), fc.retried_trainings),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drishti_mem::llc::SlicedLlc;
    use drishti_noc::slicehash::ModuloHash;

    fn geom() -> LlcGeometry {
        LlcGeometry {
            slices: 1,
            sets_per_slice: 16,
            ways: 4,
            latency: 20,
        }
    }

    fn cfg() -> DrishtiConfig {
        let mut c = DrishtiConfig::baseline(1);
        c.sampled_sets_override = Some(16);
        c
    }

    fn run(llc: &mut SlicedLlc, trace: &[(u64, u64)]) -> u64 {
        let mut hits = 0;
        for (i, &(pc, line)) in trace.iter().enumerate() {
            let a = Access::load(0, pc, line);
            if llc.lookup(&a, i as u64).hit {
                hits += 1;
            } else {
                llc.fill(&a, i as u64);
            }
        }
        hits
    }

    #[test]
    fn names() {
        assert_eq!(
            Chrome::new(&geom(), &DrishtiConfig::baseline(1)).name(),
            "chrome"
        );
        assert_eq!(
            Chrome::new(&geom(), &DrishtiConfig::drishti(1)).name(),
            "d-chrome"
        );
    }

    #[test]
    fn learns_to_protect_reuse_from_scan() {
        let g = geom();
        let mut llc = SlicedLlc::with_hasher(
            g,
            Box::new(Chrome::new(&g, &cfg())),
            Box::new(ModuloHash::new()),
        );
        let mut trace = Vec::new();
        let mut stream = 200_000u64;
        for _ in 0..400 {
            for k in 0..32u64 {
                trace.push((0xAAAA, k));
            }
            for _ in 0..64 {
                stream += 1;
                trace.push((0xBBBB, stream));
            }
        }
        let rl_hits = run(&mut llc, &trace);
        let mut lru = SlicedLlc::with_hasher(
            g,
            Box::new(crate::lru::Lru::new(&g)),
            Box::new(ModuloHash::new()),
        );
        let lru_hits = run(&mut lru, &trace);
        assert!(
            rl_hits > lru_hits,
            "chrome {rl_hits} should beat lru {lru_hits}"
        );
    }

    #[test]
    fn rewards_flow_both_ways() {
        let g = geom();
        let mut llc = SlicedLlc::with_hasher(
            g,
            Box::new(Chrome::new(&g, &cfg())),
            Box::new(ModuloHash::new()),
        );
        let trace: Vec<(u64, u64)> = (0..20_000u64)
            .map(|i| {
                if i % 3 == 0 {
                    (0x1, i % 20)
                } else {
                    (0x2, 10_000 + i)
                }
            })
            .collect();
        run(&mut llc, &trace);
        let d = llc.policy().diagnostics();
        let get = |n: &str| d.iter().find(|(k, _)| k == n).unwrap().1;
        assert!(get("rewards_pos") > 0);
        assert!(get("rewards_neg") > 0);
        assert!(get("decisions") > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = geom();
        let trace: Vec<(u64, u64)> = (0..5000u64).map(|i| (i % 7, i % 300)).collect();
        let mut a = SlicedLlc::with_hasher(
            g,
            Box::new(Chrome::new(&g, &cfg())),
            Box::new(ModuloHash::new()),
        );
        let mut b = SlicedLlc::with_hasher(
            g,
            Box::new(Chrome::new(&g, &cfg())),
            Box::new(ModuloHash::new()),
        );
        assert_eq!(run(&mut a, &trace), run(&mut b, &trace));
    }
}

//! Mockingjay: effective mimicry of Belady's MIN [Shah, Jain & Lin,
//! HPCA 2022; paper ref 52].
//!
//! Mockingjay generalises Hawkeye's binary friendly/averse classification
//! to a *multi-class* problem: a PC-indexed predictor estimates each line's
//! reuse distance, every resident line carries an Estimated Time Remaining
//! (ETR) counter that is aged as the set is accessed, and the line with the
//! largest |ETR| (the one OPT would least want) is evicted. A sampled cache
//! with timestamps measures true reuse distances to train the predictor;
//! lines evicted from the sampler unreused train an INFINITE distance, and
//! fills predicted INFINITE are bypassed.
//!
//! As with [`crate::hawkeye::Hawkeye`], the [`DrishtiConfig`] decides the
//! predictor organisation (per-slice-per-core myopic baseline vs. Drishti's
//! per-core-yet-global banks) and the sampled-set selection (random
//! 32/slice vs. dynamic 16/slice), yielding D-Mockingjay.

use crate::common::{line_tag, predictor_index, PerLine};
use drishti_core::config::DrishtiConfig;
use drishti_core::dsc::DscEvent;
use drishti_core::fabric::PredictorFabric;
use drishti_core::select::SetSelector;
use drishti_mem::access::{Access, AccessKind};
use drishti_mem::llc::LlcGeometry;
use drishti_mem::policy::{
    Decision, LlcLineState, LlcLoc, LlcPolicy, PolicyProbe, ProbeKind, SetProbe,
};
use drishti_noc::NocStats;

/// Predictor index width: 2048 entries × 7 bits = 1.75 KB (Table 3).
const INDEX_BITS: u32 = 11;
/// Reuse distances are stored in units of `GRANULARITY` set accesses. With
/// 7-bit distance classes this gives a reuse horizon of ~127 set accesses —
/// comparable to Hawkeye's 8×associativity OPTgen window.
const GRANULARITY: u8 = 1;
/// The INFINITE reuse-distance class.
pub const INF_RD: u8 = 127;
/// Untrained predictor sentinel.
const UNTRAINED: u8 = 255;
/// Predictions at or above this are treated as no-reuse (bypass).
const BYPASS_THRESHOLD: u8 = 120;
/// Default insertion ETR for untrained demand signatures.
const DEFAULT_ETR: i8 = 24;
/// Default insertion ETR for untrained *prefetch* signatures — speculative
/// fills are given far less protection until the sampler vouches for them.
const DEFAULT_PREFETCH_ETR: i8 = 56;
/// ETR saturation bounds (6-bit magnitude + sign, paper Table 3's 5-bit
/// value plus set clock).
const ETR_MAX: i8 = 63;
const ETR_MIN: i8 = -63;
/// Sampler entries per sampled set (80 × 30-bit entries, Table 3).
const SAMPLER_FACTOR: usize = 5;

/// Default sampled sets per slice: conventional random / Drishti dynamic.
pub const STATIC_SAMPLED_SETS: usize = 32;
pub const DYNAMIC_SAMPLED_SETS: usize = 16;

/// One logged prediction for the paper's ETR case studies (Figs 3, 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtrSample {
    /// Requesting core.
    pub core: usize,
    /// Slice where the fill happened.
    pub slice: usize,
    /// Predicted reuse distance, in granularity units (INF_RD = no reuse).
    pub pred_units: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct SamplerEntry {
    valid: bool,
    tag: u32,
    signature: u64,
    core: u32,
    stamp: u64,
}

drishti_noc::impl_persist_fields!(SamplerEntry {
    valid,
    tag,
    signature,
    core,
    stamp,
});

#[derive(Debug, Clone, Default)]
struct SampledSet {
    entries: Vec<SamplerEntry>,
    clock: u64,
}

drishti_noc::impl_persist_fields!(SampledSet { entries, clock });

impl SampledSet {
    fn new(ways: usize) -> Self {
        SampledSet {
            entries: vec![SamplerEntry::default(); SAMPLER_FACTOR * ways],
            clock: 0,
        }
    }

    fn reset(&mut self) {
        self.entries.fill(SamplerEntry::default());
        self.clock = 0;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct MockingjayDiag {
    sampler_hits: u64,
    sampler_evictions: u64,
    bypasses: u64,
    fills: u64,
}

drishti_noc::impl_persist_fields!(MockingjayDiag {
    sampler_hits,
    sampler_evictions,
    bypasses,
    fills,
});

/// The Mockingjay replacement policy (and D-Mockingjay when built with a
/// Drishti configuration).
#[derive(Debug)]
pub struct Mockingjay {
    label: String,
    etr: PerLine<i8>,
    /// Predicted units stored at fill, re-armed on hits.
    pred: PerLine<u8>,
    set_clock: Vec<Vec<u8>>,
    selectors: Vec<SetSelector>,
    samplers: Vec<Vec<SampledSet>>,
    predictors: Vec<Vec<u8>>,
    fabric: PredictorFabric,
    pending: Option<(u8, u64)>,
    diag: MockingjayDiag,
    /// Histogram of predicted reuse classes at fill (paper Fig 4a/b).
    pred_histogram: Vec<u64>,
    etr_log: Option<(u64, std::rc::Rc<std::cell::RefCell<Vec<EtrSample>>>)>,
}

impl Mockingjay {
    /// Build Mockingjay for `geom` under the organisation `cfg`.
    pub fn new(geom: &LlcGeometry, cfg: &DrishtiConfig) -> Self {
        let fabric = cfg.build_fabric();
        let selectors: Vec<SetSelector> = (0..geom.slices)
            .map(|s| {
                cfg.build_selector(
                    s,
                    geom.sets_per_slice,
                    STATIC_SAMPLED_SETS.min(geom.sets_per_slice),
                    DYNAMIC_SAMPLED_SETS.min(geom.sets_per_slice),
                )
            })
            .collect();
        let samplers = selectors
            .iter()
            .map(|sel| {
                (0..sel.n_sampled())
                    .map(|_| SampledSet::new(geom.ways))
                    .collect()
            })
            .collect();
        let label = match cfg.label().as_str() {
            "baseline" => "mockingjay".to_string(),
            "drishti" => "d-mockingjay".to_string(),
            other => format!("mockingjay:{other}"),
        };
        Mockingjay {
            label,
            etr: PerLine::new(geom),
            pred: PerLine::new(geom),
            set_clock: vec![vec![0; geom.sets_per_slice]; geom.slices],
            selectors,
            samplers,
            predictors: vec![vec![UNTRAINED; 1 << INDEX_BITS]; fabric.banks()],
            fabric,
            pending: None,
            diag: MockingjayDiag::default(),
            pred_histogram: vec![0; 128],
            etr_log: None,
        }
    }

    /// Log every prediction made for loads of `pc` (Figs 3, 18). Returns a
    /// shared handle that keeps filling while the policy runs — read it
    /// after the simulation even though the policy itself was moved into
    /// the engine.
    pub fn enable_etr_log(&mut self, pc: u64) -> std::rc::Rc<std::cell::RefCell<Vec<EtrSample>>> {
        let handle = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        self.etr_log = Some((pc, handle.clone()));
        handle
    }

    /// Histogram of predicted reuse classes assigned at fill.
    pub fn pred_histogram(&self) -> &[u64] {
        &self.pred_histogram
    }

    fn train(&mut self, slice: usize, signature: u64, core: usize, units: u8, cycle: u64) {
        let t = self.fabric.train(slice, core, cycle);
        if !t.delivered {
            return; // update lost in transit; later samples retrain
        }
        let bank = t.bank;
        let idx = predictor_index(signature, core, INDEX_BITS);
        let update = |e: &mut u8| {
            *e = if *e == UNTRAINED {
                units
            } else {
                // Exponential decay toward the observed distance.
                ((3 * u16::from(*e) + u16::from(units) + 2) / 4).min(u16::from(INF_RD)) as u8
            };
        };
        if self.fabric.sampler_org().requires_broadcast()
            && self.fabric.org() == drishti_core::org::PredictorOrg::LocalPerSlice
        {
            // Global sampled cache with local predictors: broadcast the
            // training to the core's entry in every slice (paper Figs 6–7).
            for b in self.fabric.broadcast_banks(core) {
                update(&mut self.predictors[b][idx]);
            }
        } else {
            update(&mut self.predictors[bank][idx]);
        }
    }

    fn predict(&mut self, slice: usize, acc: &Access, cycle: u64) -> (u8, u64) {
        let p = self.fabric.predict(slice, acc.core, cycle);
        let lat = p.latency;
        // An abandoned lookup behaves like an untrained entry: the static
        // default ETR below takes over (the local fallback decision).
        let e = if p.fallback {
            UNTRAINED
        } else {
            self.predictors[p.bank][predictor_index(acc.signature(), acc.core, INDEX_BITS)]
        };
        let units = if e == UNTRAINED {
            if acc.kind == AccessKind::Prefetch {
                DEFAULT_PREFETCH_ETR as u8
            } else {
                DEFAULT_ETR as u8
            }
        } else {
            e
        };
        if let Some((pc, log)) = &self.etr_log {
            if acc.pc == *pc {
                log.borrow_mut().push(EtrSample {
                    core: acc.core,
                    slice,
                    pred_units: units,
                });
            }
        }
        (units, lat)
    }

    /// Age the ETRs of a set every `GRANULARITY` accesses.
    fn age(&mut self, loc: LlcLoc) {
        let c = &mut self.set_clock[loc.slice][loc.set];
        *c += 1;
        if *c >= GRANULARITY {
            *c = 0;
            for e in self.etr.set_mut(loc.slice, loc.set) {
                *e = (*e - 1).max(ETR_MIN);
            }
        }
    }

    fn sample_access(&mut self, loc: LlcLoc, acc: &Access, llc_hit: bool, cycle: u64) {
        if self.selectors[loc.slice].observe(loc.set, llc_hit) == DscEvent::Reselected {
            // Only slots whose set changed lose their history; retained
            // sets keep training across the reselection.
            let changed: Vec<usize> = self.selectors[loc.slice].changed_slots().to_vec();
            for slot in changed {
                self.samplers[loc.slice][slot].reset();
            }
        }
        if !acc.kind.has_pc() {
            return;
        }
        let Some(slot) = self.selectors[loc.slice].slot_of(loc.set) else {
            return;
        };
        let tag = line_tag(acc.line, 16);
        let sig = acc.signature();

        let sampler = &mut self.samplers[loc.slice][slot];
        sampler.clock += 1;
        let now = sampler.clock;

        // Entries older than the maximum representable reuse distance are
        // effectively never-reused: train their PC toward INFINITE and free
        // the slot (the hardware analogue is the 8-bit timestamp wrapping).
        let horizon = u64::from(INF_RD) * u64::from(GRANULARITY) / 2;
        let mut expired: Vec<(u64, u32)> = Vec::new();
        for e in &mut self.samplers[loc.slice][slot].entries {
            if e.valid && now - e.stamp >= horizon {
                e.valid = false;
                expired.push((e.signature, e.core));
            }
        }
        for (sig_e, core_e) in expired {
            self.diag.sampler_evictions += 1;
            self.train(loc.slice, sig_e, core_e as usize, INF_RD, cycle);
        }

        let sampler = &mut self.samplers[loc.slice][slot];
        if let Some(i) = sampler.entries.iter().position(|e| e.valid && e.tag == tag) {
            let prev = sampler.entries[i];
            let distance = now - prev.stamp;
            let units = (distance / u64::from(GRANULARITY)).min(u64::from(INF_RD) - 1) as u8;
            self.diag.sampler_hits += 1;
            self.train(loc.slice, prev.signature, prev.core as usize, units, cycle);
            let sampler = &mut self.samplers[loc.slice][slot];
            sampler.entries[i] = SamplerEntry {
                valid: true,
                tag,
                signature: sig,
                core: acc.core as u32,
                stamp: now,
            };
        } else {
            let victim = sampler
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| if e.valid { e.stamp } else { 0 })
                .map(|(i, _)| i)
                .expect("sampler nonempty");
            let old = sampler.entries[victim];
            sampler.entries[victim] = SamplerEntry {
                valid: true,
                tag,
                signature: sig,
                core: acc.core as u32,
                stamp: now,
            };
            if old.valid {
                // Evicted unreused: its PC trains toward INFINITE reuse.
                self.diag.sampler_evictions += 1;
                self.train(loc.slice, old.signature, old.core as usize, INF_RD, cycle);
            }
        }
    }

    fn etr_from_units(units: u8) -> i8 {
        (units as i16).min(ETR_MAX as i16) as i8
    }
}

impl PolicyProbe for Mockingjay {
    fn probe_set(&self, loc: LlcLoc) -> SetProbe {
        SetProbe {
            kind: ProbeKind::Bounded {
                min: ETR_MIN as i64,
                max: ETR_MAX as i64,
            },
            values: self
                .etr
                .set(loc.slice, loc.set)
                .iter()
                .map(|&v| v as i64)
                .collect(),
        }
    }
}

impl LlcPolicy for Mockingjay {
    fn probe(&self) -> Option<&dyn PolicyProbe> {
        Some(self)
    }

    // `label` is config-derived and `etr_log` an instrumentation side
    // channel (Rc handle, re-armed by the caller if wanted) — both
    // excluded; the fabric serializes through its own hooks.
    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        use drishti_noc::snap::Persist;
        self.etr.save(w);
        self.pred.save(w);
        self.set_clock.save(w);
        self.selectors.save(w);
        self.samplers.save(w);
        self.predictors.save(w);
        self.fabric.save_state(w);
        self.pending.save(w);
        self.diag.save(w);
        self.pred_histogram.save(w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        use drishti_noc::snap::Persist;
        self.etr.load(r)?;
        self.pred.load(r)?;
        self.set_clock.load(r)?;
        self.selectors.load(r)?;
        self.samplers.load(r)?;
        self.predictors.load(r)?;
        self.fabric.load_state(r)?;
        self.pending.load(r)?;
        self.diag.load(r)?;
        self.pred_histogram.load(r)
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn on_hit(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        acc: &Access,
        cycle: u64,
    ) -> u64 {
        self.age(loc);
        self.sample_access(loc, acc, true, cycle);
        // Re-arm the line's ETR with a fresh prediction. The bank is read
        // directly: the ETR refresh is metadata riding the hit response, so
        // it is neither charged latency nor counted toward the fill-path
        // APKI the paper reports in Fig 10.
        let bank = self.fabric.bank_of(loc.slice, acc.core);
        let e = self.predictors[bank][predictor_index(acc.signature(), acc.core, INDEX_BITS)];
        let units = if e == UNTRAINED { DEFAULT_ETR as u8 } else { e };
        // (hits are demand-side; the prefetch default does not apply)
        *self.pred.get_mut(loc.slice, loc.set, way) = units;
        *self.etr.get_mut(loc.slice, loc.set, way) = Self::etr_from_units(units);
        0
    }

    fn on_miss(&mut self, loc: LlcLoc, acc: &Access, cycle: u64) {
        self.age(loc);
        self.sample_access(loc, acc, false, cycle);
    }

    fn choose_victim(
        &mut self,
        loc: LlcLoc,
        lines: &[LlcLineState],
        acc: &Access,
        cycle: u64,
    ) -> Decision {
        // Predict the incoming line here so the bypass decision can compare
        // it against the resident ETRs; the fill consumes the result.
        let (units, lat) = if acc.kind == AccessKind::Writeback {
            (INF_RD, 0)
        } else {
            self.predict(loc.slice, acc, cycle)
        };

        let etrs = self.etr.set(loc.slice, loc.set);
        let victim = (0..lines.len())
            .max_by_key(|&w| etrs[w].unsigned_abs())
            .expect("nonzero ways");

        // Bypass demand/prefetch fills predicted dead when every resident
        // line is expected to be reused sooner.
        if acc.kind != AccessKind::Writeback
            && units >= BYPASS_THRESHOLD
            && u32::from(etrs[victim].unsigned_abs()) < u32::from(units.min(ETR_MAX as u8))
        {
            self.diag.bypasses += 1;
            self.pending = None;
            return Decision::Bypass;
        }
        self.pending = Some((units, lat));
        Decision::Evict(victim)
    }

    fn on_fill(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        acc: &Access,
        _evicted: Option<&LlcLineState>,
        cycle: u64,
    ) -> u64 {
        let (units, lat) = match self.pending.take() {
            Some(p) => p,
            None => {
                if acc.kind == AccessKind::Writeback {
                    (INF_RD, 0)
                } else {
                    self.predict(loc.slice, acc, cycle)
                }
            }
        };
        self.diag.fills += 1;
        self.pred_histogram[units.min(INF_RD) as usize] += 1;
        *self.pred.get_mut(loc.slice, loc.set, way) = units;
        *self.etr.get_mut(loc.slice, loc.set, way) = Self::etr_from_units(units);
        lat
    }

    fn fabric_stats(&self) -> NocStats {
        self.fabric.link_stats()
    }

    fn diagnostics(&self) -> Vec<(String, u64)> {
        // Quartile buckets over the predicted reuse-distance classes
        // assigned at fill — the Fig 4a/b distribution in coarse form.
        let bucket = |lo: usize, hi: usize| self.pred_histogram[lo..hi].iter().sum::<u64>();
        vec![
            ("sampler_hits".into(), self.diag.sampler_hits),
            ("sampler_evictions".into(), self.diag.sampler_evictions),
            ("bypasses".into(), self.diag.bypasses),
            ("fills".into(), self.diag.fills),
            ("pred_q0".into(), bucket(0, 16)),
            ("pred_q1".into(), bucket(16, 48)),
            ("pred_q2".into(), bucket(48, 112)),
            ("pred_q3".into(), bucket(112, 128)),
            (
                "predictor_train".into(),
                self.fabric.counters().train_accesses,
            ),
            (
                "predictor_predict".into(),
                self.fabric.counters().predict_accesses,
            ),
            (
                "fabric_fallbacks".into(),
                self.fabric.counters().fallback_decisions,
            ),
            (
                "fabric_dropped_predictions".into(),
                self.fabric.counters().dropped_predictions,
            ),
            (
                "fabric_dropped_trainings".into(),
                self.fabric.counters().dropped_trainings,
            ),
            (
                "fabric_retried_trainings".into(),
                self.fabric.counters().retried_trainings,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drishti_mem::llc::SlicedLlc;
    use drishti_noc::slicehash::ModuloHash;

    fn small_geom() -> LlcGeometry {
        LlcGeometry {
            slices: 1,
            sets_per_slice: 16,
            ways: 4,
            latency: 20,
        }
    }

    fn cfg_all_sampled() -> DrishtiConfig {
        let mut c = DrishtiConfig::baseline(1);
        c.sampled_sets_override = Some(16);
        c
    }

    fn llc_with(geom: LlcGeometry, cfg: &DrishtiConfig) -> SlicedLlc {
        SlicedLlc::with_hasher(
            geom,
            Box::new(Mockingjay::new(&geom, cfg)),
            Box::new(ModuloHash::new()),
        )
    }

    fn run(llc: &mut SlicedLlc, trace: &[(u64, u64)]) -> u64 {
        let mut hits = 0;
        for (i, &(pc, line)) in trace.iter().enumerate() {
            let a = Access::load(0, pc, line);
            if llc.lookup(&a, i as u64).hit {
                hits += 1;
            } else {
                llc.fill(&a, i as u64);
            }
        }
        hits
    }

    #[test]
    fn names_follow_configuration() {
        let g = small_geom();
        assert_eq!(
            Mockingjay::new(&g, &DrishtiConfig::baseline(1)).name(),
            "mockingjay"
        );
        assert_eq!(
            Mockingjay::new(&g, &DrishtiConfig::drishti(1)).name(),
            "d-mockingjay"
        );
    }

    #[test]
    fn beats_lru_on_mixed_reuse_scan() {
        let mut llc = llc_with(small_geom(), &cfg_all_sampled());
        let mut trace = Vec::new();
        let mut stream = 100_000u64;
        for _ in 0..400 {
            for k in 0..32u64 {
                trace.push((0xAAAA, k));
            }
            for _ in 0..64 {
                stream += 1;
                trace.push((0xBBBB, stream));
            }
        }
        let hits = run(&mut llc, &trace);
        let geom = small_geom();
        let mut lru = SlicedLlc::with_hasher(
            geom,
            Box::new(crate::lru::Lru::new(&geom)),
            Box::new(ModuloHash::new()),
        );
        let lru_hits = run(&mut lru, &trace);
        assert!(
            hits > lru_hits + (trace.len() / 10) as u64,
            "mockingjay {hits} must clearly beat lru {lru_hits}"
        );
    }

    #[test]
    fn streaming_pc_trains_infinite_and_bypasses() {
        let mut llc = llc_with(small_geom(), &cfg_all_sampled());
        let trace: Vec<(u64, u64)> = (0..20_000u64).map(|i| (0xDEAD, i)).collect();
        run(&mut llc, &trace);
        let diags = llc.policy().diagnostics();
        let get = |n: &str| diags.iter().find(|(k, _)| k == n).unwrap().1;
        assert!(get("sampler_evictions") > 0);
        assert!(get("bypasses") > 0, "dead stream should eventually bypass");
    }

    #[test]
    fn short_reuse_trains_small_distances() {
        let mut llc = llc_with(small_geom(), &cfg_all_sampled());
        // Tight loop: reuse distance far below INF.
        let trace: Vec<(u64, u64)> = (0..30_000u64).map(|i| (0xF00D, i % 16)).collect();
        run(&mut llc, &trace);
        let mj = llc.policy();
        let diags = mj.diagnostics();
        let hits = diags.iter().find(|(k, _)| k == "sampler_hits").unwrap().1;
        assert!(hits > 1000, "tight loop must hit in the sampler: {hits}");
    }

    #[test]
    fn etr_log_captures_target_pc_only() {
        let geom = small_geom();
        let mut mj = Mockingjay::new(&geom, &cfg_all_sampled());
        let handle = mj.enable_etr_log(0x42);
        let mut llc = SlicedLlc::with_hasher(geom, Box::new(mj), Box::new(ModuloHash::new()));
        for i in 0..2000u64 {
            let pc = if i % 2 == 0 { 0x42 } else { 0x43 };
            let a = Access::load(0, pc, i % 256);
            if !llc.lookup(&a, i).hit {
                llc.fill(&a, i);
            }
        }
        // The shared handle observes predictions even though the policy was
        // moved into the container.
        let log = handle.borrow();
        assert!(!log.is_empty(), "target PC must be logged");
        assert!(log.iter().all(|s| s.core == 0));
    }

    #[test]
    fn writebacks_never_bypass_and_die_quickly() {
        let geom = LlcGeometry {
            slices: 1,
            sets_per_slice: 1,
            ways: 2,
            latency: 20,
        };
        let mut c = DrishtiConfig::baseline(1);
        c.sampled_sets_override = Some(1);
        let mut llc = llc_with(geom, &c);
        let wb = Access::writeback(0, 111);
        llc.lookup(&wb, 0);
        let fr = llc.fill(&wb, 0);
        assert!(!fr.bypassed, "write-backs must be cached");
        assert!(llc.peek(111));
    }

    #[test]
    fn pred_histogram_populates() {
        let geom = small_geom();
        let mut llc = llc_with(geom, &cfg_all_sampled());
        let trace: Vec<(u64, u64)> = (0..5000u64).map(|i| (0x7, i % 200)).collect();
        run(&mut llc, &trace);
        // Reconstruct: the histogram lives on the concrete type; drive one
        // directly for visibility.
        let mut mj = Mockingjay::new(&geom, &cfg_all_sampled());
        let mut container = SlicedLlc::with_hasher(
            geom,
            Box::new(Mockingjay::new(&geom, &cfg_all_sampled())),
            Box::new(ModuloHash::new()),
        );
        for i in 0..5000u64 {
            let a = Access::load(0, 0x7, i % 200);
            if !container.lookup(&a, i).hit {
                container.fill(&a, i);
            }
            let _ = &mut mj;
        }
        let fills = container
            .policy()
            .diagnostics()
            .iter()
            .find(|(k, _)| k == "fills")
            .unwrap()
            .1;
        assert!(fills > 0);
    }
}

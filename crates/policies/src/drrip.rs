//! DRRIP: dynamic re-reference interval prediction [Jaleel et al.,
//! ISCA 2010 — paper ref 28].
//!
//! DRRIP set-duels two insertion policies: SRRIP (insert at `max − 1`) and
//! BRRIP (insert at `max`, occasionally at `max − 1`), with a PSEL counter
//! scoring dedicated sets and follower sets adopting the winner. BRRIP
//! wins on thrashing working sets, SRRIP on recency-friendly ones.
//!
//! Like [`crate::dip::Dip`], the dedicated sets are conventionally random;
//! under a Drishti configuration they come from the dynamic sampled cache
//! (Table 7's dynamic-sampling column).

use crate::common::PerLine;
use drishti_core::config::DrishtiConfig;
use drishti_core::select::SetSelector;
use drishti_mem::access::{Access, AccessKind};
use drishti_mem::llc::LlcGeometry;
use drishti_mem::policy::{
    Decision, LlcLineState, LlcLoc, LlcPolicy, PolicyProbe, ProbeKind, SetProbe,
};

const MAX_RRPV: u8 = 3;
const PSEL_MAX: i32 = 1023;
const BRRIP_EPSILON: u64 = 32; // 1-in-32 BRRIP inserts at max − 1

/// DRRIP with per-slice set dueling.
#[derive(Debug)]
pub struct Drrip {
    rrpv: PerLine<u8>,
    selectors: Vec<SetSelector>,
    psel: Vec<i32>,
    brrip_tick: u64,
    dynamic: bool,
}

impl Drrip {
    /// Build DRRIP; `cfg` selects how the dueling sets are chosen
    /// (32 per slice by default).
    pub fn new(geom: &LlcGeometry, cfg: &DrishtiConfig) -> Self {
        let selectors: Vec<SetSelector> = (0..geom.slices)
            .map(|s| cfg.build_selector(s, geom.sets_per_slice, 32, 32))
            .collect();
        Drrip {
            rrpv: PerLine::new(geom),
            dynamic: selectors.first().is_some_and(SetSelector::is_dynamic),
            psel: vec![PSEL_MAX / 2; geom.slices],
            brrip_tick: 0,
            selectors,
        }
    }

    /// `true` if this fill should use BRRIP insertion.
    fn uses_brrip(&self, slice: usize, set: usize) -> bool {
        match self.selectors[slice].slot_of(set) {
            Some(slot) if slot < self.selectors[slice].n_sampled() / 2 => false, // SRRIP sets
            Some(_) => true,                                                     // BRRIP sets
            None => self.psel[slice] > PSEL_MAX / 2,
        }
    }
}

drishti_noc::impl_persist_fields!(Drrip {
    rrpv,
    selectors,
    psel,
    brrip_tick,
    dynamic,
});

impl PolicyProbe for Drrip {
    fn probe_set(&self, loc: LlcLoc) -> SetProbe {
        SetProbe {
            kind: ProbeKind::Bounded {
                min: 0,
                max: MAX_RRPV as i64,
            },
            values: self
                .rrpv
                .set(loc.slice, loc.set)
                .iter()
                .map(|&v| v as i64)
                .collect(),
        }
    }
}

impl LlcPolicy for Drrip {
    fn probe(&self) -> Option<&dyn PolicyProbe> {
        Some(self)
    }

    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        drishti_noc::snap::Persist::save(self, w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        drishti_noc::snap::Persist::load(self, r)
    }

    fn name(&self) -> String {
        if self.dynamic {
            "d-drrip".into()
        } else {
            "drrip".into()
        }
    }

    fn on_hit(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        _acc: &Access,
        _cycle: u64,
    ) -> u64 {
        self.selectors[loc.slice].observe(loc.set, true);
        *self.rrpv.get_mut(loc.slice, loc.set, way) = 0;
        0
    }

    fn on_miss(&mut self, loc: LlcLoc, acc: &Access, _cycle: u64) {
        if acc.kind.is_demand() {
            match self.selectors[loc.slice].slot_of(loc.set) {
                Some(slot) if slot < self.selectors[loc.slice].n_sampled() / 2 => {
                    // SRRIP-dedicated set missed: SRRIP worse.
                    self.psel[loc.slice] = (self.psel[loc.slice] + 1).min(PSEL_MAX);
                }
                Some(_) => {
                    self.psel[loc.slice] = (self.psel[loc.slice] - 1).max(0);
                }
                None => {}
            }
        }
        self.selectors[loc.slice].observe(loc.set, false);
    }

    fn choose_victim(
        &mut self,
        loc: LlcLoc,
        lines: &[LlcLineState],
        _acc: &Access,
        _cycle: u64,
    ) -> Decision {
        loop {
            let set = self.rrpv.set_mut(loc.slice, loc.set);
            if let Some(w) = set.iter().take(lines.len()).position(|&r| r >= MAX_RRPV) {
                return Decision::Evict(w);
            }
            for r in set.iter_mut() {
                *r += 1;
            }
        }
    }

    fn on_fill(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        acc: &Access,
        _evicted: Option<&LlcLineState>,
        _cycle: u64,
    ) -> u64 {
        self.brrip_tick += 1;
        let insert = if acc.kind == AccessKind::Writeback {
            MAX_RRPV
        } else if self.uses_brrip(loc.slice, loc.set) {
            if self.brrip_tick.is_multiple_of(BRRIP_EPSILON) {
                MAX_RRPV - 1
            } else {
                MAX_RRPV
            }
        } else {
            MAX_RRPV - 1
        };
        *self.rrpv.get_mut(loc.slice, loc.set, way) = insert;
        0
    }

    fn diagnostics(&self) -> Vec<(String, u64)> {
        vec![(
            "psel_mean".into(),
            self.psel.iter().map(|&p| p as u64).sum::<u64>() / self.psel.len() as u64,
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drishti_mem::llc::SlicedLlc;
    use drishti_noc::slicehash::ModuloHash;

    fn llc(cfg: DrishtiConfig) -> SlicedLlc {
        let geom = LlcGeometry {
            slices: 1,
            sets_per_slice: 64,
            ways: 4,
            latency: 20,
        };
        SlicedLlc::with_hasher(
            geom,
            Box::new(Drrip::new(&geom, &cfg)),
            Box::new(ModuloHash::new()),
        )
    }

    fn run(llc: &mut SlicedLlc, trace: &[(u64, u64)]) -> u64 {
        let mut hits = 0;
        for (i, &(pc, line)) in trace.iter().enumerate() {
            let a = Access::load(0, pc, line);
            if llc.lookup(&a, i as u64).hit {
                hits += 1;
            } else {
                llc.fill(&a, i as u64);
            }
        }
        hits
    }

    #[test]
    fn names_follow_selection_mode() {
        let geom = LlcGeometry {
            slices: 1,
            sets_per_slice: 64,
            ways: 4,
            latency: 20,
        };
        assert_eq!(
            Drrip::new(&geom, &DrishtiConfig::baseline(1)).name(),
            "drrip"
        );
        assert_eq!(
            Drrip::new(&geom, &DrishtiConfig::dsc_only(1)).name(),
            "d-drrip"
        );
    }

    #[test]
    fn brrip_retains_part_of_a_thrashing_set() {
        let mut c = DrishtiConfig::baseline(1);
        c.sampled_sets_override = Some(16);
        let mut llc = llc(c);
        // Working set of 320 lines over a 256-line cache, cycled.
        let mut hits = 0u64;
        let mut total = 0u64;
        for rep in 0..60u64 {
            for i in 0..320u64 {
                let a = Access::load(0, 0x9, i * 131);
                total += 1;
                if llc.lookup(&a, rep * 320 + i).hit {
                    hits += 1;
                } else {
                    llc.fill(&a, rep * 320 + i);
                }
            }
        }
        assert!(
            hits * 20 > total,
            "DRRIP must retain part of a thrashing set: {hits}/{total}"
        );
    }

    #[test]
    fn recency_friendly_workload_stays_srrip_strong() {
        let mut c = DrishtiConfig::baseline(1);
        c.sampled_sets_override = Some(16);
        let mut llc = llc(c);
        let trace: Vec<(u64, u64)> = (0..20_000u64).map(|i| (0x3, i % 200)).collect();
        let hits = run(&mut llc, &trace);
        assert!(hits as f64 / 20_000.0 > 0.9, "{hits}");
    }
}

//! LLC replacement policies for the Drishti reproduction.
//!
//! Implements the policies the paper evaluates, all behind
//! [`drishti_mem::policy::LlcPolicy`]:
//!
//! * [`lru::Lru`] — the baseline every figure normalises to;
//! * [`srrip::Srrip`], [`dip::Dip`] and [`drrip::Drrip`] — the memoryless
//!   seminal policies (Table 7's first row; their set-dueling benefits from
//!   Drishti's dynamic sampled sets);
//! * [`sdbp::Sdbp`] — sampling dead block prediction (Table 7);
//! * [`ship::ShipPp`] — SHiP++ signature-based hit prediction (Table 8);
//! * [`hawkeye::Hawkeye`] — Belady-mimicking binary reuse classification
//!   (OPTgen + sampled cache + PC predictor), CRC-2 winner;
//! * [`mockingjay::Mockingjay`] — multi-class Belady mimicry with
//!   estimated-time-remaining (ETR) counters;
//! * [`glider::Glider`] — a simplified integer-SVM (ISVM) predictor over a
//!   PC history register, trained by OPTgen (Table 8);
//! * [`chrome::Chrome`] — a simplified online-RL (SARSA) cache manager
//!   (Table 8);
//! * [`opt`] — the offline Belady oracle and reuse-distance tooling used by
//!   the paper's oracle comparisons (Figs 3, 18).
//!
//! Every prediction-based policy takes a
//! [`drishti_core::config::DrishtiConfig`], which decides whether its
//! sampled cache and predictor are per-slice (myopic baseline), centralized,
//! or Drishti's per-core-yet-global organisation with a dynamic sampled
//! cache — so `D-Hawkeye` is simply `Hawkeye` built with
//! `DrishtiConfig::drishti(cores)`.
//!
//! [`factory::PolicyKind`] gives a uniform way to construct any of them.
//!
//! # Example
//!
//! ```
//! use drishti_core::config::DrishtiConfig;
//! use drishti_mem::llc::LlcGeometry;
//! use drishti_policies::factory::PolicyKind;
//!
//! let geom = LlcGeometry::per_core_2mb(4);
//! let d_mockingjay = PolicyKind::Mockingjay.build(&geom, DrishtiConfig::drishti(4));
//! assert_eq!(d_mockingjay.name(), "d-mockingjay");
//! ```

pub mod chrome;
pub mod common;
pub mod dip;
pub mod drrip;
pub mod factory;
pub mod glider;
pub mod hawkeye;
pub mod lru;
pub mod mockingjay;
pub mod opt;
pub mod sdbp;
pub mod ship;
pub mod srrip;

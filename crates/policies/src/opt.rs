//! Offline Belady oracle.
//!
//! Belady's MIN is the optimum replacement policy: evict the line whose
//! next use is farthest in the future. It needs the future, so it only
//! exists offline — the paper uses it as the "oracle view" in its ETR case
//! studies (Figs 3, 18), and we additionally use it as a test oracle
//! (no online policy may beat OPT's hit count).

use drishti_mem::access::Access;
use drishti_mem::llc::LlcGeometry;
use drishti_mem::LineAddr;
use drishti_noc::slicehash::{SliceHasher, XorFoldHash};
use std::collections::HashMap;

/// Outcome of an offline OPT simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptResult {
    /// Lookup hits under OPT.
    pub hits: u64,
    /// Lookup misses under OPT.
    pub misses: u64,
    /// Per-access hit flag (same indexing as the input trace).
    pub per_access_hit: Vec<bool>,
}

impl OptResult {
    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// For each access, the index of the *next* access to the same line
/// (`u64::MAX` when the line is never touched again).
pub fn next_use_indices(trace: &[Access]) -> Vec<u64> {
    let mut next = vec![u64::MAX; trace.len()];
    let mut last_seen: HashMap<LineAddr, u64> = HashMap::new();
    for (i, acc) in trace.iter().enumerate().rev() {
        if let Some(&n) = last_seen.get(&acc.line) {
            next[i] = n;
        }
        last_seen.insert(acc.line, i as u64);
    }
    next
}

/// Simulate Belady's MIN over `trace` on a sliced LLC of geometry `geom`
/// (complex slice hash, set = low line bits — matching
/// [`drishti_mem::llc::SlicedLlc`]).
///
/// # Panics
///
/// Panics if `geom` has zero ways.
pub fn simulate_opt(trace: &[Access], geom: &LlcGeometry) -> OptResult {
    assert!(geom.ways > 0, "degenerate geometry");
    let hasher = XorFoldHash::new();
    let next = next_use_indices(trace);
    let n_sets_mask = geom.sets_per_slice - 1;
    // Resident lines per (slice, set): (line, next_use).
    let mut sets: Vec<Vec<(LineAddr, u64)>> =
        vec![Vec::with_capacity(geom.ways); geom.slices * geom.sets_per_slice];
    let mut hits = 0;
    let mut misses = 0;
    let mut per_access_hit = vec![false; trace.len()];

    for (i, acc) in trace.iter().enumerate() {
        let slice = hasher.slice_of(acc.line, geom.slices);
        let set = (acc.line as usize) & n_sets_mask;
        let bucket = &mut sets[slice * geom.sets_per_slice + set];
        if let Some(entry) = bucket.iter_mut().find(|(l, _)| *l == acc.line) {
            hits += 1;
            per_access_hit[i] = true;
            entry.1 = next[i];
            continue;
        }
        misses += 1;
        if bucket.len() < geom.ways {
            bucket.push((acc.line, next[i]));
        } else {
            // MIN with bypass: if the incoming line's next use is farther
            // than every resident line's, OPT would not cache it at all.
            let (victim, &(_, victim_next)) = bucket
                .iter()
                .enumerate()
                .max_by_key(|(_, &(_, n))| n)
                .expect("bucket full");
            if next[i] < victim_next {
                bucket[victim] = (acc.line, next[i]);
            }
        }
    }
    OptResult {
        hits,
        misses,
        per_access_hit,
    }
}

/// For each access, the forward reuse distance of its line measured in
/// accesses *to the same (slice, set)* — the unit Mockingjay's ETR lives
/// in. `None` when the line is never reused.
pub fn set_local_reuse_distances(trace: &[Access], geom: &LlcGeometry) -> Vec<Option<u64>> {
    let hasher = XorFoldHash::new();
    let n_sets_mask = geom.sets_per_slice - 1;
    // Per-set logical clocks.
    let mut clocks: Vec<u64> = vec![0; geom.slices * geom.sets_per_slice];
    // line -> (trace index of last access, set clock at that access).
    let mut pending: HashMap<LineAddr, (usize, u64)> = HashMap::new();
    let mut out = vec![None; trace.len()];

    for (i, acc) in trace.iter().enumerate() {
        let slice = hasher.slice_of(acc.line, geom.slices);
        let set = (acc.line as usize) & n_sets_mask;
        let clock = &mut clocks[slice * geom.sets_per_slice + set];
        *clock += 1;
        if let Some((prev_i, prev_clock)) = pending.insert(acc.line, (i, *clock)) {
            out[prev_i] = Some(*clock - prev_clock);
        }
    }
    out
}

/// The oracle "ETR view" of Fig 3/18: for every load of `pc`, its true
/// forward reuse distance in granularity units (`granularity` set accesses
/// per unit), capped at `inf` for never-reused lines.
pub fn oracle_etr_for_pc(
    trace: &[Access],
    geom: &LlcGeometry,
    pc: u64,
    granularity: u64,
    inf: u8,
) -> Vec<u8> {
    let dists = set_local_reuse_distances(trace, geom);
    trace
        .iter()
        .zip(&dists)
        .filter(|(acc, _)| acc.pc == pc)
        .map(|(_, d)| match d {
            Some(d) => ((d / granularity).min(u64::from(inf) - 1)) as u8,
            None => inf,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom1() -> LlcGeometry {
        LlcGeometry {
            slices: 1,
            sets_per_slice: 1,
            ways: 2,
            latency: 20,
        }
    }

    fn loads(lines: &[u64]) -> Vec<Access> {
        lines.iter().map(|&l| Access::load(0, 0x1, l)).collect()
    }

    #[test]
    fn next_use_computation() {
        let t = loads(&[1, 2, 1, 3, 2]);
        assert_eq!(
            next_use_indices(&t),
            vec![2, 4, u64::MAX, u64::MAX, u64::MAX]
        );
    }

    #[test]
    fn friendly_pattern_hits_after_cold() {
        let t = loads(&(0..20).map(|i| i % 2).collect::<Vec<_>>());
        let r = simulate_opt(&t, &geom1());
        assert_eq!(r.misses, 2);
        assert_eq!(r.hits, 18);
    }

    #[test]
    fn opt_on_cyclic_thrash_keeps_partial_set() {
        // A,B,C cyclic with 2 ways: OPT hit ratio is 1/3 steady state.
        let t = loads(&(0..30).map(|i| i % 3).collect::<Vec<_>>());
        let r = simulate_opt(&t, &geom1());
        // LRU would be 0 hits. OPT keeps one line pinned.
        assert!(r.hits >= 9, "OPT must retain lines: {r:?}");
    }

    #[test]
    fn opt_is_at_least_as_good_as_lru_randomized() {
        use drishti_mem::llc::SlicedLlc;
        let geom = LlcGeometry {
            slices: 2,
            sets_per_slice: 4,
            ways: 2,
            latency: 20,
        };
        let mut state = 0x1234u64;
        for _ in 0..10 {
            let t: Vec<Access> = (0..400)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    Access::load(0, 0x1, (state >> 33) % 40)
                })
                .collect();
            let opt = simulate_opt(&t, &geom);
            let mut lru = SlicedLlc::new(geom, Box::new(crate::lru::Lru::new(&geom)));
            let mut lru_hits = 0;
            for (i, a) in t.iter().enumerate() {
                if lru.lookup(a, i as u64).hit {
                    lru_hits += 1;
                } else {
                    lru.fill(a, i as u64);
                }
            }
            assert!(
                opt.hits >= lru_hits,
                "OPT ({}) must not lose to LRU ({lru_hits})",
                opt.hits
            );
        }
    }

    #[test]
    fn set_local_distances() {
        // Two lines in the same set, interleaved.
        let t = loads(&[0, 8, 0]);
        let g = LlcGeometry {
            slices: 1,
            sets_per_slice: 8,
            ways: 2,
            latency: 20,
        };
        let d = set_local_reuse_distances(&t, &g);
        // Line 0 and 8 share set 0 ⇒ reuse of 0 spans 2 set accesses.
        assert_eq!(d[0], Some(2));
        assert_eq!(d[1], None);
        assert_eq!(d[2], None);
    }

    #[test]
    fn oracle_etr_caps_at_inf() {
        let t = loads(&[1, 2, 3, 4]);
        let g = geom1();
        let etr = oracle_etr_for_pc(&t, &g, 0x1, 8, 127);
        assert_eq!(etr, vec![127, 127, 127, 127]);
    }

    #[test]
    fn oracle_etr_reflects_short_reuse() {
        let t = loads(&[5, 5, 5, 5]);
        let g = geom1();
        let etr = oracle_etr_for_pc(&t, &g, 0x1, 1, 127);
        assert_eq!(etr, vec![1, 1, 1, 127]);
    }
}

//! Uniform construction of every replacement policy.

use crate::chrome::Chrome;
use crate::dip::Dip;
use crate::drrip::Drrip;
use crate::glider::Glider;
use crate::hawkeye::Hawkeye;
use crate::lru::Lru;
use crate::mockingjay::Mockingjay;
use crate::sdbp::Sdbp;
use crate::ship::ShipPp;
use crate::srrip::Srrip;
use drishti_core::config::DrishtiConfig;
use drishti_mem::llc::LlcGeometry;
use drishti_mem::policy::LlcPolicy;

/// Every online replacement policy in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// True LRU (the paper's baseline).
    Lru,
    /// Static RRIP.
    Srrip,
    /// Dynamic insertion policy (set dueling).
    Dip,
    /// Dynamic RRIP (SRRIP/BRRIP set dueling).
    Drrip,
    /// Sampling dead block prediction.
    Sdbp,
    /// SHiP++ signature hit prediction.
    ShipPp,
    /// Hawkeye (OPTgen, binary reuse classes).
    Hawkeye,
    /// Mockingjay (ETR, multi-class reuse).
    Mockingjay,
    /// Glider-like ISVM predictor.
    Glider,
    /// CHROME-like online-RL manager.
    Chrome,
}

impl PolicyKind {
    /// Construct the policy for `geom` under the organisation `cfg`.
    /// Memoryless policies (LRU, SRRIP) ignore the configuration; DIP uses
    /// only its sampled-set selection.
    pub fn build(self, geom: &LlcGeometry, cfg: DrishtiConfig) -> Box<dyn LlcPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(geom)),
            PolicyKind::Srrip => Box::new(Srrip::new(geom)),
            PolicyKind::Dip => Box::new(Dip::new(geom, &cfg)),
            PolicyKind::Drrip => Box::new(Drrip::new(geom, &cfg)),
            PolicyKind::Sdbp => Box::new(Sdbp::new(geom, &cfg)),
            PolicyKind::ShipPp => Box::new(ShipPp::new(geom, &cfg)),
            PolicyKind::Hawkeye => Box::new(Hawkeye::new(geom, &cfg)),
            PolicyKind::Mockingjay => Box::new(Mockingjay::new(geom, &cfg)),
            PolicyKind::Glider => Box::new(Glider::new(geom, &cfg)),
            PolicyKind::Chrome => Box::new(Chrome::new(geom, &cfg)),
        }
    }

    /// The baseline (non-Drishti) name of the policy.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Srrip => "srrip",
            PolicyKind::Dip => "dip",
            PolicyKind::Drrip => "drrip",
            PolicyKind::Sdbp => "sdbp",
            PolicyKind::ShipPp => "ship++",
            PolicyKind::Hawkeye => "hawkeye",
            PolicyKind::Mockingjay => "mockingjay",
            PolicyKind::Glider => "glider",
            PolicyKind::Chrome => "chrome",
        }
    }

    /// Whether the policy uses a reuse predictor (and therefore benefits
    /// from Drishti's Enhancement I) — paper Table 7.
    pub fn is_prediction_based(self) -> bool {
        matches!(
            self,
            PolicyKind::Sdbp
                | PolicyKind::ShipPp
                | PolicyKind::Hawkeye
                | PolicyKind::Mockingjay
                | PolicyKind::Glider
                | PolicyKind::Chrome
        )
    }

    /// All policies, in a stable order.
    pub fn all() -> [PolicyKind; 10] {
        [
            PolicyKind::Lru,
            PolicyKind::Srrip,
            PolicyKind::Dip,
            PolicyKind::Drrip,
            PolicyKind::Sdbp,
            PolicyKind::ShipPp,
            PolicyKind::Hawkeye,
            PolicyKind::Mockingjay,
            PolicyKind::Glider,
            PolicyKind::Chrome,
        ]
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Every policy the factory can build, in the same stable order as
/// [`PolicyKind::all`]. Property suites iterate this list so a policy added
/// to the factory is covered automatically.
pub fn all_policies() -> Vec<PolicyKind> {
    PolicyKind::all().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_builds_and_names_itself() {
        let geom = LlcGeometry {
            slices: 2,
            sets_per_slice: 64,
            ways: 4,
            latency: 20,
        };
        for kind in PolicyKind::all() {
            let p = kind.build(&geom, DrishtiConfig::baseline(2));
            assert_eq!(p.name(), kind.label(), "baseline name mismatch");
        }
    }

    #[test]
    fn drishti_variants_get_d_prefix() {
        let geom = LlcGeometry {
            slices: 2,
            sets_per_slice: 64,
            ways: 4,
            latency: 20,
        };
        for kind in PolicyKind::all() {
            let p = kind.build(&geom, DrishtiConfig::drishti(2));
            if kind.is_prediction_based() {
                assert_eq!(p.name(), format!("d-{}", kind.label()));
            }
        }
    }

    #[test]
    fn all_policies_agrees_with_factory() {
        let listed = all_policies();
        assert_eq!(listed, PolicyKind::all().to_vec());
        for (i, a) in listed.iter().enumerate() {
            for b in &listed[i + 1..] {
                assert_ne!(a, b, "duplicate entry in all_policies()");
                assert_ne!(a.label(), b.label(), "duplicate label");
            }
        }
        // Compile-time canary: adding a PolicyKind variant fails this match
        // until `all()` (and with it `all_policies()`) is updated in
        // lockstep, so the property suites can never silently miss one.
        let mut counted = 0;
        for k in listed {
            match k {
                PolicyKind::Lru
                | PolicyKind::Srrip
                | PolicyKind::Dip
                | PolicyKind::Drrip
                | PolicyKind::Sdbp
                | PolicyKind::ShipPp
                | PolicyKind::Hawkeye
                | PolicyKind::Mockingjay
                | PolicyKind::Glider
                | PolicyKind::Chrome => counted += 1,
            }
        }
        assert_eq!(counted, PolicyKind::all().len());
    }

    #[test]
    fn every_policy_exposes_a_probe() {
        let geom = LlcGeometry {
            slices: 2,
            sets_per_slice: 64,
            ways: 4,
            latency: 20,
        };
        for kind in all_policies() {
            let p = kind.build(&geom, DrishtiConfig::baseline(2));
            let probe = p.probe().unwrap_or_else(|| {
                panic!("{kind} exposes no PolicyProbe");
            });
            let snap = probe.probe_set(drishti_mem::policy::LlcLoc { slice: 0, set: 0 });
            assert_eq!(snap.values.len(), geom.ways, "{kind} probe width");
            assert!(
                snap.check().is_none(),
                "{kind} default state violates probe"
            );
        }
    }

    #[test]
    fn applicability_matrix_matches_table7() {
        assert!(!PolicyKind::Lru.is_prediction_based());
        assert!(!PolicyKind::Srrip.is_prediction_based());
        assert!(!PolicyKind::Dip.is_prediction_based());
        assert!(!PolicyKind::Drrip.is_prediction_based());
        assert!(PolicyKind::Sdbp.is_prediction_based());
        assert!(PolicyKind::Hawkeye.is_prediction_based());
        assert!(PolicyKind::Mockingjay.is_prediction_based());
        assert!(PolicyKind::Glider.is_prediction_based());
        assert!(PolicyKind::Chrome.is_prediction_based());
        assert!(PolicyKind::ShipPp.is_prediction_based());
    }
}

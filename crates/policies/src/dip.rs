//! DIP: dynamic insertion policy via set dueling [Qureshi et al., ISCA 2007].
//!
//! The ancestral set-dueling policy (paper ref 48). A few *dedicated* sets
//! always run LRU, a few always run BIP (bimodal insertion: LRU-position
//! insertion except 1-in-32 at MRU); a saturating PSEL counter scores their
//! misses and follower sets adopt the winner.
//!
//! Table 7 marks DIP as a beneficiary of Drishti's *dynamic sampled cache*:
//! the dedicated sets are conventionally chosen randomly, so DIP built with
//! a dynamic [`SetSelector`] duels on the high-MPKA sets instead
//! (D-DIP in our ablations).

use crate::common::PerLine;
use drishti_core::config::DrishtiConfig;
use drishti_core::select::SetSelector;
use drishti_mem::access::{Access, AccessKind};
use drishti_mem::llc::LlcGeometry;
use drishti_mem::policy::{
    Decision, LlcLineState, LlcLoc, LlcPolicy, PolicyProbe, ProbeKind, SetProbe,
};

const PSEL_BITS: u32 = 10;
const PSEL_MAX: i32 = (1 << PSEL_BITS) - 1;
const BIP_EPSILON: u64 = 32; // 1-in-32 MRU insertions

/// Dueling-set membership per slice: the first half of the selector's sets
/// are LRU-dedicated, the second half BIP-dedicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetRole {
    DedicatedLru,
    DedicatedBip,
    Follower,
}

/// DIP with per-slice set dueling.
#[derive(Debug)]
pub struct Dip {
    stamp: PerLine<u64>,
    clock: u64,
    selectors: Vec<SetSelector>,
    psel: Vec<i32>,
    bip_tick: u64,
    dynamic: bool,
}

impl Dip {
    /// Build DIP; `cfg` decides how the dueling sets are selected
    /// (static random vs. Drishti's dynamic sampled cache) — 32 dueling
    /// sets per slice by default.
    pub fn new(geom: &LlcGeometry, cfg: &DrishtiConfig) -> Self {
        let selectors = (0..geom.slices)
            .map(|s| cfg.build_selector(s, geom.sets_per_slice, 32, 32))
            .collect::<Vec<_>>();
        Dip {
            stamp: PerLine::new(geom),
            clock: 0,
            dynamic: selectors.first().is_some_and(SetSelector::is_dynamic),
            psel: vec![PSEL_MAX / 2; geom.slices],
            bip_tick: 0,
            selectors,
        }
    }

    fn role(&self, slice: usize, set: usize) -> SetRole {
        match self.selectors[slice].slot_of(set) {
            Some(slot) if slot < self.selectors[slice].n_sampled() / 2 => SetRole::DedicatedLru,
            Some(_) => SetRole::DedicatedBip,
            None => SetRole::Follower,
        }
    }

    fn uses_bip(&self, slice: usize, set: usize) -> bool {
        match self.role(slice, set) {
            SetRole::DedicatedLru => false,
            SetRole::DedicatedBip => true,
            // PSEL above midpoint ⇒ LRU misses more ⇒ follow BIP.
            SetRole::Follower => self.psel[slice] > PSEL_MAX / 2,
        }
    }
}

// `dynamic` is serialized for uniformity even though it is derivable from
// the rebuilt selectors.
drishti_noc::impl_persist_fields!(Dip {
    stamp,
    clock,
    selectors,
    psel,
    bip_tick,
    dynamic,
});

impl PolicyProbe for Dip {
    fn probe_set(&self, loc: LlcLoc) -> SetProbe {
        // DIP's LRU-position insertion deliberately writes the duplicate
        // stamp 1, so stamp distinctness does not hold here; stamps are
        // still bounded by the monotone clock.
        SetProbe {
            kind: ProbeKind::Bounded {
                min: 0,
                max: self.clock as i64,
            },
            values: self
                .stamp
                .set(loc.slice, loc.set)
                .iter()
                .map(|&v| v as i64)
                .collect(),
        }
    }
}

impl LlcPolicy for Dip {
    fn probe(&self) -> Option<&dyn PolicyProbe> {
        Some(self)
    }

    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        drishti_noc::snap::Persist::save(self, w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        drishti_noc::snap::Persist::load(self, r)
    }

    fn name(&self) -> String {
        if self.dynamic {
            "d-dip".into()
        } else {
            "dip".into()
        }
    }

    fn on_hit(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        _acc: &Access,
        _cycle: u64,
    ) -> u64 {
        self.clock += 1;
        *self.stamp.get_mut(loc.slice, loc.set, way) = self.clock;
        self.selectors[loc.slice].observe(loc.set, true);
        0
    }

    fn on_miss(&mut self, loc: LlcLoc, acc: &Access, _cycle: u64) {
        if acc.kind.is_demand() {
            match self.role(loc.slice, loc.set) {
                SetRole::DedicatedLru => {
                    self.psel[loc.slice] = (self.psel[loc.slice] + 1).min(PSEL_MAX);
                }
                SetRole::DedicatedBip => {
                    self.psel[loc.slice] = (self.psel[loc.slice] - 1).max(0);
                }
                SetRole::Follower => {}
            }
        }
        self.selectors[loc.slice].observe(loc.set, false);
    }

    fn choose_victim(
        &mut self,
        loc: LlcLoc,
        lines: &[LlcLineState],
        _acc: &Access,
        _cycle: u64,
    ) -> Decision {
        let victim = (0..lines.len())
            .min_by_key(|&w| *self.stamp.get(loc.slice, loc.set, w))
            .expect("nonzero ways");
        Decision::Evict(victim)
    }

    fn on_fill(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        acc: &Access,
        _evicted: Option<&LlcLineState>,
        _cycle: u64,
    ) -> u64 {
        self.clock += 1;
        self.bip_tick += 1;
        let bip = self.uses_bip(loc.slice, loc.set) || acc.kind == AccessKind::Writeback;
        let mru = !bip || self.bip_tick.is_multiple_of(BIP_EPSILON);
        // LRU-position insertion is modelled as a stamp *older* than every
        // resident line (0 would collide with invalid ways; 1..clock works
        // because real stamps only grow).
        *self.stamp.get_mut(loc.slice, loc.set, way) = if mru { self.clock } else { 1 };
        0
    }

    fn diagnostics(&self) -> Vec<(String, u64)> {
        vec![(
            "psel_mean".into(),
            self.psel.iter().map(|&p| p as u64).sum::<u64>() / self.psel.len() as u64,
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drishti_mem::llc::SlicedLlc;
    use drishti_noc::slicehash::ModuloHash;

    fn llc(sets: usize, ways: usize, cfg: DrishtiConfig) -> SlicedLlc {
        let geom = LlcGeometry {
            slices: 1,
            sets_per_slice: sets,
            ways,
            latency: 20,
        };
        SlicedLlc::with_hasher(
            geom,
            Box::new(Dip::new(&geom, &cfg)),
            Box::new(ModuloHash::new()),
        )
    }

    #[test]
    fn name_reflects_selection_mode() {
        let geom = LlcGeometry {
            slices: 1,
            sets_per_slice: 64,
            ways: 4,
            latency: 20,
        };
        assert_eq!(Dip::new(&geom, &DrishtiConfig::baseline(1)).name(), "dip");
        assert_eq!(Dip::new(&geom, &DrishtiConfig::dsc_only(1)).name(), "d-dip");
    }

    #[test]
    fn thrashing_workload_converges_to_bip_and_retains_some_lines() {
        // A cyclic working set slightly larger than the cache: LRU gets 0%
        // hits, BIP retains a useful fraction. DIP must beat plain LRU.
        let mut c = DrishtiConfig::baseline(1);
        c.sampled_sets_override = Some(16);
        let mut llc = llc(64, 4, c);
        let lines_in_cache = 64 * 4;
        let working = (lines_in_cache + 64) as u64;
        let mut hits = 0u64;
        let mut total = 0u64;
        for rep in 0..60u64 {
            for i in 0..working {
                let a = Access::load(0, 0x9, i * 97); // stride to spread sets
                total += 1;
                if llc.lookup(&a, rep * working + i).hit {
                    hits += 1;
                } else {
                    llc.fill(&a, rep * working + i);
                }
            }
        }
        assert!(
            hits * 10 > total,
            "DIP should retain part of a thrashing set: {hits}/{total}"
        );
    }

    #[test]
    fn lru_friendly_workload_keeps_lru_hits() {
        let mut c = DrishtiConfig::baseline(1);
        c.sampled_sets_override = Some(16);
        let mut llc = llc(64, 4, c);
        // Small working set with strong recency: everything fits.
        let mut hits = 0u64;
        let mut total = 0u64;
        for rep in 0..50u64 {
            for i in 0..100u64 {
                let a = Access::load(0, 0x9, i * 31);
                total += 1;
                if llc.lookup(&a, rep * 100 + i).hit {
                    hits += 1;
                } else {
                    llc.fill(&a, rep * 100 + i);
                }
            }
        }
        assert!(hits as f64 / total as f64 > 0.9, "{hits}/{total}");
    }
}

//! True least-recently-used replacement — the paper's baseline policy.

use crate::common::PerLine;
use drishti_mem::access::Access;
use drishti_mem::llc::LlcGeometry;
use drishti_mem::policy::{
    Decision, LlcLineState, LlcLoc, LlcPolicy, PolicyProbe, ProbeKind, SetProbe,
};

/// Per-slice true LRU. Every figure in the paper normalises to this.
#[derive(Debug)]
pub struct Lru {
    stamp: PerLine<u64>,
    clock: u64,
}

impl Lru {
    /// Build an LRU policy for the given geometry.
    pub fn new(geom: &LlcGeometry) -> Self {
        Lru {
            stamp: PerLine::new(geom),
            clock: 0,
        }
    }
}

drishti_noc::impl_persist_fields!(Lru { stamp, clock });

impl PolicyProbe for Lru {
    fn probe_set(&self, loc: LlcLoc) -> SetProbe {
        SetProbe {
            kind: ProbeKind::RecencyStamp,
            values: self
                .stamp
                .set(loc.slice, loc.set)
                .iter()
                .map(|&v| v as i64)
                .collect(),
        }
    }
}

impl LlcPolicy for Lru {
    fn probe(&self) -> Option<&dyn PolicyProbe> {
        Some(self)
    }

    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        drishti_noc::snap::Persist::save(self, w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        drishti_noc::snap::Persist::load(self, r)
    }

    fn name(&self) -> String {
        "lru".into()
    }

    fn on_hit(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        _acc: &Access,
        _cycle: u64,
    ) -> u64 {
        self.clock += 1;
        *self.stamp.get_mut(loc.slice, loc.set, way) = self.clock;
        0
    }

    fn on_miss(&mut self, _loc: LlcLoc, _acc: &Access, _cycle: u64) {}

    fn choose_victim(
        &mut self,
        loc: LlcLoc,
        lines: &[LlcLineState],
        _acc: &Access,
        _cycle: u64,
    ) -> Decision {
        let victim = (0..lines.len())
            .min_by_key(|&w| *self.stamp.get(loc.slice, loc.set, w))
            .expect("nonzero ways");
        Decision::Evict(victim)
    }

    fn on_fill(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        _acc: &Access,
        _evicted: Option<&LlcLineState>,
        _cycle: u64,
    ) -> u64 {
        self.clock += 1;
        *self.stamp.get_mut(loc.slice, loc.set, way) = self.clock;
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drishti_mem::llc::SlicedLlc;
    use drishti_noc::slicehash::ModuloHash;

    fn tiny_llc() -> SlicedLlc {
        let geom = LlcGeometry {
            slices: 1,
            sets_per_slice: 1,
            ways: 2,
            latency: 20,
        };
        SlicedLlc::with_hasher(geom, Box::new(Lru::new(&geom)), Box::new(ModuloHash::new()))
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut llc = tiny_llc();
        for (i, line) in [10u64, 20].iter().enumerate() {
            let a = Access::load(0, 0x1, *line);
            llc.lookup(&a, i as u64);
            llc.fill(&a, i as u64);
        }
        // Touch 10: now 20 is LRU.
        llc.lookup(&Access::load(0, 0x1, 10), 5);
        let a = Access::load(0, 0x1, 30);
        llc.lookup(&a, 6);
        llc.fill(&a, 6);
        assert!(llc.peek(10));
        assert!(!llc.peek(20));
        assert!(llc.peek(30));
    }

    #[test]
    fn lru_stack_property_on_scan() {
        // A cyclic scan over ways+1 lines never hits under LRU.
        let mut llc = tiny_llc();
        let mut hits = 0;
        for i in 0..30u64 {
            let a = Access::load(0, 0x1, i % 3);
            if llc.lookup(&a, i).hit {
                hits += 1;
            } else {
                llc.fill(&a, i);
            }
        }
        assert_eq!(hits, 0, "cyclic thrash must never hit in true LRU");
    }
}

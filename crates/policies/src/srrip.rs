//! SRRIP: static re-reference interval prediction [Jaleel et al., ISCA 2010].
//!
//! One of the seminal memoryless policies the paper builds its narrative on
//! (paper ref 28). 2-bit RRPVs: insert at `max−1` (long re-reference),
//! promote to 0 on hit, evict the first line with RRPV `max` after aging.

use crate::common::PerLine;
use drishti_mem::access::{Access, AccessKind};
use drishti_mem::llc::LlcGeometry;
use drishti_mem::policy::{
    Decision, LlcLineState, LlcLoc, LlcPolicy, PolicyProbe, ProbeKind, SetProbe,
};

const MAX_RRPV: u8 = 3;

/// Per-slice SRRIP.
#[derive(Debug)]
pub struct Srrip {
    rrpv: PerLine<u8>,
}

impl Srrip {
    /// Build an SRRIP policy for the given geometry.
    pub fn new(geom: &LlcGeometry) -> Self {
        Srrip {
            rrpv: PerLine::new(geom),
        }
    }
}

drishti_noc::impl_persist_fields!(Srrip { rrpv });

impl PolicyProbe for Srrip {
    fn probe_set(&self, loc: LlcLoc) -> SetProbe {
        SetProbe {
            kind: ProbeKind::Bounded {
                min: 0,
                max: MAX_RRPV as i64,
            },
            values: self
                .rrpv
                .set(loc.slice, loc.set)
                .iter()
                .map(|&v| v as i64)
                .collect(),
        }
    }
}

impl LlcPolicy for Srrip {
    fn probe(&self) -> Option<&dyn PolicyProbe> {
        Some(self)
    }

    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        drishti_noc::snap::Persist::save(self, w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        drishti_noc::snap::Persist::load(self, r)
    }

    fn name(&self) -> String {
        "srrip".into()
    }

    fn on_hit(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        _acc: &Access,
        _cycle: u64,
    ) -> u64 {
        *self.rrpv.get_mut(loc.slice, loc.set, way) = 0;
        0
    }

    fn on_miss(&mut self, _loc: LlcLoc, _acc: &Access, _cycle: u64) {}

    fn choose_victim(
        &mut self,
        loc: LlcLoc,
        lines: &[LlcLineState],
        _acc: &Access,
        _cycle: u64,
    ) -> Decision {
        loop {
            let set = self.rrpv.set_mut(loc.slice, loc.set);
            if let Some(w) = set.iter().take(lines.len()).position(|&r| r >= MAX_RRPV) {
                return Decision::Evict(w);
            }
            for r in set.iter_mut() {
                *r += 1;
            }
        }
    }

    fn on_fill(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        acc: &Access,
        _evicted: Option<&LlcLineState>,
        _cycle: u64,
    ) -> u64 {
        // Write-backs are inserted at distant re-reference so dead dirty
        // lines leave quickly (matches the paper's WPKI observation).
        *self.rrpv.get_mut(loc.slice, loc.set, way) = match acc.kind {
            AccessKind::Writeback => MAX_RRPV,
            _ => MAX_RRPV - 1,
        };
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drishti_mem::llc::SlicedLlc;
    use drishti_noc::slicehash::ModuloHash;

    fn tiny_llc(ways: usize) -> SlicedLlc {
        let geom = LlcGeometry {
            slices: 1,
            sets_per_slice: 1,
            ways,
            latency: 20,
        };
        SlicedLlc::with_hasher(
            geom,
            Box::new(Srrip::new(&geom)),
            Box::new(ModuloHash::new()),
        )
    }

    #[test]
    fn reused_line_survives_scan() {
        let mut llc = tiny_llc(4);
        let hot = Access::load(0, 0x1, 1000);
        llc.lookup(&hot, 0);
        llc.fill(&hot, 0);
        llc.lookup(&hot, 1); // promote to RRPV 0
        for i in 0..8u64 {
            let a = Access::load(0, 0x2, i);
            llc.lookup(&a, 2 + i);
            llc.fill(&a, 2 + i);
        }
        assert!(llc.peek(1000), "promoted line must outlive the scan");
    }

    #[test]
    fn victim_is_distant_rrpv() {
        let mut llc = tiny_llc(2);
        let a = Access::load(0, 0x1, 1);
        let b = Access::load(0, 0x1, 2);
        for (i, acc) in [&a, &b].iter().enumerate() {
            llc.lookup(acc, i as u64);
            llc.fill(acc, i as u64);
        }
        llc.lookup(&a, 5); // a now RRPV 0, b stays at 2
        let c = Access::load(0, 0x1, 3);
        llc.lookup(&c, 6);
        llc.fill(&c, 6);
        assert!(llc.peek(1));
        assert!(!llc.peek(2));
    }
}

//! SHiP++: signature-based hit prediction [Wu et al., MICRO 2011; Young et
//! al., CRC-2 2017 — paper refs 60, 61].
//!
//! SHiP attaches a PC signature to every inserted line and an *outcome* bit
//! that records whether the line was reused. A Signature History Counter
//! Table (SHCT) of saturating counters is incremented when a sampled line
//! is reused and decremented when a sampled line dies unreused. Insertion
//! is RRIP-based: signatures with zero counters insert distant, saturated
//! signatures insert near. SHiP++ refinements kept here: write-backs insert
//! distant, prefetches are signatured with a folded prefetch bit.
//!
//! Training happens only on *sampled* sets, so SHiP++ composes with both
//! Drishti enhancements (Table 8's D-SHiP++): the SHCT can be per-slice
//! (myopic), centralized, or per-core-yet-global, and sampled sets can be
//! random or dynamic.

use crate::common::{predictor_index, PerLine};
use drishti_core::config::DrishtiConfig;
use drishti_core::fabric::PredictorFabric;
use drishti_core::select::SetSelector;
use drishti_mem::access::{Access, AccessKind};
use drishti_mem::llc::LlcGeometry;
use drishti_mem::policy::{
    Decision, LlcLineState, LlcLoc, LlcPolicy, PolicyProbe, ProbeKind, SetProbe,
};
use drishti_noc::NocStats;

const MAX_RRPV: u8 = 3;
const SHCT_BITS: u32 = 14;
const SHCT_MAX: u8 = 7;
const SHCT_INIT: u8 = 3;

/// Default sampled sets per slice (random / Drishti dynamic).
pub const STATIC_SAMPLED_SETS: usize = 64;
pub const DYNAMIC_SAMPLED_SETS: usize = 16;

/// The SHiP++ replacement policy (D-SHiP++ under a Drishti configuration).
#[derive(Debug)]
pub struct ShipPp {
    label: String,
    rrpv: PerLine<u8>,
    outcome: PerLine<bool>,
    selectors: Vec<SetSelector>,
    shct: Vec<Vec<u8>>,
    fabric: PredictorFabric,
    trains_up: u64,
    trains_down: u64,
}

impl ShipPp {
    /// Build SHiP++ for `geom` under the organisation `cfg`.
    pub fn new(geom: &LlcGeometry, cfg: &DrishtiConfig) -> Self {
        let fabric = cfg.build_fabric();
        let selectors = (0..geom.slices)
            .map(|s| {
                cfg.build_selector(
                    s,
                    geom.sets_per_slice,
                    STATIC_SAMPLED_SETS.min(geom.sets_per_slice),
                    DYNAMIC_SAMPLED_SETS.min(geom.sets_per_slice),
                )
            })
            .collect();
        let label = match cfg.label().as_str() {
            "baseline" => "ship++".to_string(),
            "drishti" => "d-ship++".to_string(),
            other => format!("ship++:{other}"),
        };
        ShipPp {
            label,
            rrpv: PerLine::new(geom),
            outcome: PerLine::new(geom),
            shct: vec![vec![SHCT_INIT; 1 << SHCT_BITS]; fabric.banks()],
            fabric,
            selectors,
            trains_up: 0,
            trains_down: 0,
        }
    }

    fn train(&mut self, slice: usize, signature: u64, core: usize, reused: bool, cycle: u64) {
        let t = self.fabric.train(slice, core, cycle);
        if !t.delivered {
            return; // update lost in transit; later evictions retrain
        }
        let c = &mut self.shct[t.bank][predictor_index(signature, core, SHCT_BITS)];
        if reused {
            self.trains_up += 1;
            *c = (*c + 1).min(SHCT_MAX);
        } else {
            self.trains_down += 1;
            *c = c.saturating_sub(1);
        }
    }
}

impl PolicyProbe for ShipPp {
    fn probe_set(&self, loc: LlcLoc) -> SetProbe {
        SetProbe {
            kind: ProbeKind::Bounded {
                min: 0,
                max: MAX_RRPV as i64,
            },
            values: self
                .rrpv
                .set(loc.slice, loc.set)
                .iter()
                .map(|&v| v as i64)
                .collect(),
        }
    }
}

impl LlcPolicy for ShipPp {
    fn probe(&self) -> Option<&dyn PolicyProbe> {
        Some(self)
    }

    // `label` is config-derived and excluded; the fabric serializes through
    // its own hooks (its link is a trait object).
    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        use drishti_noc::snap::Persist;
        self.rrpv.save(w);
        self.outcome.save(w);
        self.selectors.save(w);
        self.shct.save(w);
        self.fabric.save_state(w);
        self.trains_up.save(w);
        self.trains_down.save(w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        use drishti_noc::snap::Persist;
        self.rrpv.load(r)?;
        self.outcome.load(r)?;
        self.selectors.load(r)?;
        self.shct.load(r)?;
        self.fabric.load_state(r)?;
        self.trains_up.load(r)?;
        self.trains_down.load(r)
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn on_hit(
        &mut self,
        loc: LlcLoc,
        way: usize,
        lines: &[LlcLineState],
        acc: &Access,
        cycle: u64,
    ) -> u64 {
        self.selectors[loc.slice].observe(loc.set, true);
        *self.rrpv.get_mut(loc.slice, loc.set, way) = 0;
        // Sampled sets train on the first reuse of a line.
        if self.selectors[loc.slice].slot_of(loc.set).is_some()
            && !*self.outcome.get(loc.slice, loc.set, way)
        {
            *self.outcome.get_mut(loc.slice, loc.set, way) = true;
            let line = lines[way];
            if acc.kind.has_pc() {
                self.train(loc.slice, line.signature, line.core, true, cycle);
            }
        }
        0
    }

    fn on_miss(&mut self, loc: LlcLoc, _acc: &Access, _cycle: u64) {
        self.selectors[loc.slice].observe(loc.set, false);
    }

    fn choose_victim(
        &mut self,
        loc: LlcLoc,
        lines: &[LlcLineState],
        _acc: &Access,
        _cycle: u64,
    ) -> Decision {
        loop {
            let set = self.rrpv.set_mut(loc.slice, loc.set);
            if let Some(w) = set.iter().take(lines.len()).position(|&r| r >= MAX_RRPV) {
                return Decision::Evict(w);
            }
            for r in set.iter_mut() {
                *r += 1;
            }
        }
    }

    fn on_fill(
        &mut self,
        loc: LlcLoc,
        way: usize,
        _lines: &[LlcLineState],
        acc: &Access,
        evicted: Option<&LlcLineState>,
        cycle: u64,
    ) -> u64 {
        // Detrain the dead victim if this is a sampled set.
        if let Some(v) = evicted {
            if self.selectors[loc.slice].slot_of(loc.set).is_some()
                && v.valid
                && v.signature != 0
                && !*self.outcome.get(loc.slice, loc.set, way)
            {
                self.train(loc.slice, v.signature, v.core, false, cycle);
            }
        }
        *self.outcome.get_mut(loc.slice, loc.set, way) = false;

        let (insert, lat) = if acc.kind == AccessKind::Writeback {
            (MAX_RRPV, 0)
        } else {
            let p = self.fabric.predict(loc.slice, acc.core, cycle);
            let lat = p.latency;
            // An abandoned lookup uses the untrained-default counter
            // (intermediate confidence ⇒ SRRIP-like RRPV 2 below).
            let c = if p.fallback {
                SHCT_INIT
            } else {
                self.shct[p.bank][predictor_index(acc.signature(), acc.core, SHCT_BITS)]
            };
            let rrpv = if c == 0 {
                MAX_RRPV // never reused: distant
            } else if c >= SHCT_MAX {
                1 // strongly reused: near
            } else {
                2 // default long re-reference
            };
            (rrpv, lat)
        };
        *self.rrpv.get_mut(loc.slice, loc.set, way) = insert;
        lat
    }

    fn fabric_stats(&self) -> NocStats {
        self.fabric.link_stats()
    }

    fn diagnostics(&self) -> Vec<(String, u64)> {
        let fc = self.fabric.counters();
        vec![
            ("trains_up".into(), self.trains_up),
            ("trains_down".into(), self.trains_down),
            ("fabric_fallbacks".into(), fc.fallback_decisions),
            ("fabric_dropped_predictions".into(), fc.dropped_predictions),
            ("fabric_dropped_trainings".into(), fc.dropped_trainings),
            ("fabric_retried_trainings".into(), fc.retried_trainings),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drishti_mem::llc::SlicedLlc;
    use drishti_noc::slicehash::ModuloHash;

    fn geom() -> LlcGeometry {
        LlcGeometry {
            slices: 1,
            sets_per_slice: 16,
            ways: 4,
            latency: 20,
        }
    }

    fn cfg() -> DrishtiConfig {
        let mut c = DrishtiConfig::baseline(1);
        c.sampled_sets_override = Some(16);
        c
    }

    fn run(llc: &mut SlicedLlc, trace: &[(u64, u64)]) -> u64 {
        let mut hits = 0;
        for (i, &(pc, line)) in trace.iter().enumerate() {
            let a = Access::load(0, pc, line);
            if llc.lookup(&a, i as u64).hit {
                hits += 1;
            } else {
                llc.fill(&a, i as u64);
            }
        }
        hits
    }

    #[test]
    fn names() {
        assert_eq!(
            ShipPp::new(&geom(), &DrishtiConfig::baseline(1)).name(),
            "ship++"
        );
        assert_eq!(
            ShipPp::new(&geom(), &DrishtiConfig::drishti(1)).name(),
            "d-ship++"
        );
    }

    #[test]
    fn scanning_pc_becomes_distant_and_reuse_survives() {
        let g = geom();
        let mut llc = SlicedLlc::with_hasher(
            g,
            Box::new(ShipPp::new(&g, &cfg())),
            Box::new(ModuloHash::new()),
        );
        // SHiP learns from *observed* reuse, so the friendly working set is
        // walked twice per iteration (it hits within the iteration) while a
        // scan tries to flush it between iterations.
        let mut trace = Vec::new();
        let mut stream = 50_000u64;
        for _ in 0..300 {
            for _ in 0..2 {
                for k in 0..16u64 {
                    trace.push((0xAAAA, k));
                }
            }
            for _ in 0..64 {
                stream += 1;
                trace.push((0xBBBB, stream));
            }
        }
        let ship_hits = run(&mut llc, &trace);
        let mut lru = SlicedLlc::with_hasher(
            g,
            Box::new(crate::lru::Lru::new(&g)),
            Box::new(ModuloHash::new()),
        );
        let lru_hits = run(&mut lru, &trace);
        assert!(
            ship_hits > lru_hits,
            "ship++ {ship_hits} should beat lru {lru_hits}"
        );
        let d = llc.policy().diagnostics();
        assert!(d.iter().find(|(k, _)| k == "trains_down").unwrap().1 > 0);
        assert!(d.iter().find(|(k, _)| k == "trains_up").unwrap().1 > 0);
    }
}

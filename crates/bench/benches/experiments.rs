//! Criterion end-to-end benchmarks: one miniature simulation per headline
//! configuration (the building block every table/figure binary repeats),
//! timing full engine throughput — cores + caches + NoC + DRAM + policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::config::SystemConfig;
use drishti_sim::runner::{run_mix, RunConfig};
use drishti_sim::sampling::SamplingSpec;
use drishti_sim::telemetry::TelemetrySpec;
use drishti_trace::mix::Mix;
use drishti_trace::presets::Benchmark;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let cores = 4;
    let rc = RunConfig {
        system: SystemConfig::paper_baseline(cores),
        accesses_per_core: 10_000,
        warmup_accesses: 1_000,
        record_llc_stream: false,
        sampling: SamplingSpec::off(),
        telemetry: TelemetrySpec::off(),
        engine: Default::default(),
    };
    let mix = Mix::homogeneous(Benchmark::Gcc, cores, 1);
    let mut group = c.benchmark_group("end_to_end_4core_gcc");
    group.sample_size(10);
    for (label, pk, cfg) in [
        ("lru", PolicyKind::Lru, DrishtiConfig::baseline(cores)),
        (
            "hawkeye",
            PolicyKind::Hawkeye,
            DrishtiConfig::baseline(cores),
        ),
        (
            "d-hawkeye",
            PolicyKind::Hawkeye,
            DrishtiConfig::drishti(cores),
        ),
        (
            "mockingjay",
            PolicyKind::Mockingjay,
            DrishtiConfig::baseline(cores),
        ),
        (
            "d-mockingjay",
            PolicyKind::Mockingjay,
            DrishtiConfig::drishti(cores),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &pk, |b, &pk| {
            b.iter(|| black_box(run_mix(&mix, pk, cfg.clone(), &rc).total_ipc()));
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_scaling");
    group.sample_size(10);
    for cores in [4usize, 8] {
        let rc = RunConfig {
            system: SystemConfig::paper_baseline(cores),
            accesses_per_core: 5_000,
            warmup_accesses: 500,
            record_llc_stream: false,
            sampling: SamplingSpec::off(),
            telemetry: TelemetrySpec::off(),
            engine: Default::default(),
        };
        let mix = Mix::heterogeneous(&Benchmark::spec_and_gap(), cores, 1);
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, _| {
            b.iter(|| {
                black_box(
                    run_mix(
                        &mix,
                        PolicyKind::Mockingjay,
                        DrishtiConfig::drishti(cores),
                        &rc,
                    )
                    .total_ipc(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_scaling);
criterion_main!(benches);

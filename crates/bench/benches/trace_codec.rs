//! Criterion benchmarks of the `drishti-trace/v1` store: encode and
//! decode throughput of the delta+varint codec, full write→read file
//! round-trips, and streaming replay — the costs that decide whether
//! replaying from disk beats regenerating a workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drishti_trace::presets::Benchmark;
use drishti_trace::store::{read_trace, write_trace, StreamingTrace, TraceWriter};
use drishti_trace::WorkloadGen;
use std::hint::black_box;
use std::path::PathBuf;

const RECORDS: usize = 100_000;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "drishti-codec-bench-{}-{tag}.drtr",
        std::process::id()
    ))
}

/// File round-trip cost per benchmark stream (write includes encoding and
/// checksumming; read includes validation and decoding).
fn bench_file_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_store_file");
    group.sample_size(10);
    for bench in [Benchmark::Mcf, Benchmark::Gcc, Benchmark::Lbm] {
        let records = bench.build(1).collect(RECORDS);
        let path = scratch(bench.label());
        group.bench_with_input(
            BenchmarkId::new("write", bench.label()),
            &records,
            |b, records| {
                b.iter(|| black_box(write_trace(&path, bench.label(), 1, records).unwrap()));
            },
        );
        write_trace(&path, bench.label(), 1, &records).unwrap();
        group.bench_with_input(BenchmarkId::new("read", bench.label()), &path, |b, path| {
            b.iter(|| black_box(read_trace(path).unwrap().1.len()));
        });
        let _ = std::fs::remove_file(&path);
    }
    group.finish();
}

/// Streaming replay versus in-RAM generation of the same stream — the
/// comparison that justifies the store's existence for long traces.
fn bench_streaming_vs_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_replay");
    group.sample_size(10);
    let path = scratch("stream");
    let mut w = TraceWriter::create(&path, "mcf", 1).unwrap();
    let mut gen = Benchmark::Mcf.build(1);
    for _ in 0..RECORDS {
        w.push(gen.next_record()).unwrap();
    }
    w.finish().unwrap();
    group.bench_function(BenchmarkId::from_parameter("generate"), |b| {
        b.iter(|| {
            let mut g = Benchmark::Mcf.build(1);
            let mut sum = 0u64;
            for _ in 0..RECORDS {
                sum = sum.wrapping_add(g.next_record().line);
            }
            black_box(sum)
        });
    });
    group.bench_function(BenchmarkId::from_parameter("stream"), |b| {
        b.iter(|| {
            let mut s = StreamingTrace::open(&path).unwrap();
            let mut sum = 0u64;
            for _ in 0..RECORDS {
                sum = sum.wrapping_add(s.next_record().line);
            }
            black_box(sum)
        });
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

/// Probe/fill throughput of the struct-of-arrays `SlicedLlc` (DESIGN.md
/// §15): a paper-geometry LLC driven by an mcf-like demand stream, the
/// exact loop the SoA rework targets. Tracked alongside `drishti-perf` so
/// container-level regressions are visible without a full engine run.
fn bench_soa_probe(c: &mut Criterion) {
    use drishti_core::config::DrishtiConfig;
    use drishti_mem::access::Access;
    use drishti_mem::llc::{LlcGeometry, SlicedLlc};
    use drishti_policies::factory::PolicyKind;

    const ACCESSES: usize = 50_000;
    let cores = 4;
    let geom = LlcGeometry::per_core_2mb(cores);
    let stream: Vec<Access> = {
        let mut gen = Benchmark::Mcf.build(7);
        (0..ACCESSES)
            .map(|i| {
                let r = gen.next_record();
                if r.is_store {
                    Access::store(i % cores, r.pc, r.line)
                } else {
                    Access::load(i % cores, r.pc, r.line)
                }
            })
            .collect()
    };

    let mut group = c.benchmark_group("llc_soa_probe");
    group.sample_size(10);
    for policy in [PolicyKind::Lru, PolicyKind::Mockingjay] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let mut llc =
                        SlicedLlc::new(geom, policy.build(&geom, DrishtiConfig::baseline(cores)));
                    for (i, acc) in stream.iter().enumerate() {
                        if !llc.lookup(acc, i as u64).hit {
                            llc.fill(acc, i as u64);
                        }
                    }
                    black_box(llc.stats().total_misses())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_file_round_trip,
    bench_streaming_vs_generation,
    bench_soa_probe
);
criterion_main!(benches);

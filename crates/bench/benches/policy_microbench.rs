//! Criterion microbenchmarks of the hot structures: per-access cost of
//! each replacement policy, the dynamic sampled cache, the slice hash, the
//! mesh router and the DRAM model.
//!
//! These guard the simulator's throughput (experiments run millions of
//! accesses per policy) and document the relative bookkeeping cost of the
//! policies themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drishti_core::config::DrishtiConfig;
use drishti_core::dsc::{DscConfig, DynamicSampledCache};
use drishti_mem::access::Access;
use drishti_mem::dram::{Dram, DramConfig};
use drishti_mem::llc::{LlcGeometry, SlicedLlc};
use drishti_noc::mesh::{Mesh, MeshConfig};
use drishti_noc::slicehash::{SliceHasher, XorFoldHash};
use drishti_policies::factory::PolicyKind;
use std::hint::black_box;

fn geom() -> LlcGeometry {
    LlcGeometry {
        slices: 8,
        sets_per_slice: 256,
        ways: 16,
        latency: 20,
    }
}

/// A deterministic pseudo-random access stream.
fn stream(n: usize) -> Vec<Access> {
    let mut state = 0x1234_5678u64;
    (0..n)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            Access::load(i % 8, 0x400 + (state >> 50), (state >> 20) % 100_000)
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let accesses = stream(4096);
    let mut group = c.benchmark_group("llc_policy_per_access");
    group.sample_size(10);
    for kind in PolicyKind::all() {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| {
                let g = geom();
                let mut llc = SlicedLlc::new(g, k.build(&g, DrishtiConfig::baseline(8)));
                for (i, a) in accesses.iter().enumerate() {
                    if !llc.lookup(a, i as u64).hit {
                        llc.fill(a, i as u64);
                    }
                }
                black_box(llc.stats().demand_misses)
            });
        });
    }
    group.finish();
}

fn bench_drishti_overhead(c: &mut Criterion) {
    let accesses = stream(4096);
    let mut group = c.benchmark_group("mockingjay_organisation");
    group.sample_size(10);
    for (label, cfg) in [
        ("baseline", DrishtiConfig::baseline(8)),
        ("drishti", DrishtiConfig::drishti(8)),
        ("centralized", DrishtiConfig::centralized(8)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let g = geom();
                let mut llc = SlicedLlc::new(g, PolicyKind::Mockingjay.build(&g, cfg.clone()));
                for (i, a) in accesses.iter().enumerate() {
                    if !llc.lookup(a, i as u64).hit {
                        llc.fill(a, i as u64);
                    }
                }
                black_box(llc.stats().fills)
            });
        });
    }
    group.finish();
}

fn bench_dsc(c: &mut Criterion) {
    c.bench_function("dsc_observe", |b| {
        let mut dsc = DynamicSampledCache::new(DscConfig::paper_default(16), 2048);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(dsc.observe((i % 2048) as usize, i.is_multiple_of(3)))
        });
    });
}

fn bench_slice_hash(c: &mut Criterion) {
    let h = XorFoldHash::new();
    let mut i = 0u64;
    c.bench_function("xorfold_slice_of", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            black_box(h.slice_of(i, 32))
        });
    });
}

fn bench_mesh(c: &mut Criterion) {
    c.bench_function("mesh_traverse_32", |b| {
        let mut mesh = Mesh::new(MeshConfig::for_nodes(32));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(mesh.traverse((i % 32) as usize, ((i * 7) % 32) as usize, i, 8))
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_read", |b| {
        let mut dram = Dram::new(DramConfig::for_cores(16));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(dram.read(i.wrapping_mul(97) % 1_000_000, i * 10))
        });
    });
}

criterion_group!(
    benches,
    bench_policies,
    bench_drishti_overhead,
    bench_dsc,
    bench_slice_hash,
    bench_mesh,
    bench_dram
);
criterion_main!(benches);

//! Figure 19: Hawkeye/D-Hawkeye/Mockingjay/D-Mockingjay on server-class
//! workloads (CVP1, Google datacenter, CloudSuite, XSBench) for 16- and
//! 32-core mixes.
//!
//! Paper: on these traces the base policies only gain 2–3% (max 13%) —
//! server workloads have low LLC MPKI — and Drishti adds ~2% on average.

use drishti_bench::{evaluate_mix, header, headline_policies, mean_improvements, pct, ExpOpts};
use drishti_trace::mix::server_mixes;

fn main() {
    let opts = ExpOpts::from_args();
    println!("# Figure 19: server-class workloads\n");
    header(
        "cores",
        &["hawkeye", "d-hawkeye", "mockingjay", "d-mockingjay"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for &cores in &opts.cores {
        let rc = opts.rc(cores);
        let policies = headline_policies(cores);
        let n = if opts.full { 50 } else { opts.mixes };
        let evals: Vec<_> = server_mixes(cores, n)
            .iter()
            .map(|m| evaluate_mix(m, &policies, &rc))
            .collect();
        let means = mean_improvements(&evals);
        drishti_bench::row(
            &format!("{cores} cores"),
            &means.iter().map(|(_, v)| pct(*v)).collect::<Vec<_>>(),
        );
    }
    println!("\npaper: base policies 2–3%; Drishti adds ~2% on top of each");
}

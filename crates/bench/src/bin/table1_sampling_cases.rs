//! Table 1: speedup on top of Mockingjay (random sampled sets) when the
//! sampled sets are chosen by per-set MPKA, for a 16-core homogeneous mcf
//! mix: Case I — top-32 MPKA sets; Case II — bottom-32; Case III — 16 top
//! + 16 bottom.
//!
//! Paper: Case I +16.4%, Case II +8.3%, Case III +9.5% — the high-MPKA
//! sets carry the training signal.

use drishti_bench::ExpOpts;
use drishti_core::config::{DrishtiConfig, SamplingMode};
use drishti_policies::factory::PolicyKind;
use drishti_sim::runner::run_mix;
use drishti_trace::mix::Mix;
use drishti_trace::presets::Benchmark;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    let rc = opts.rc(cores);
    let mix = Mix::homogeneous(Benchmark::Mcf, cores, 5);
    println!("# Table 1: MPKA-informed sampled-set selection, 16-core mcf\n");

    // Profile per-set MPKA under LRU (the workload's intrinsic per-set
    // pressure, paper Fig 5), then evaluate Mockingjay with each selection.
    let profile = run_mix(&mix, PolicyKind::Lru, DrishtiConfig::baseline(cores), &rc);
    let baseline = run_mix(
        &mix,
        PolicyKind::Mockingjay,
        DrishtiConfig::baseline(cores),
        &rc,
    );
    let baseline_ipc = baseline.total_ipc();

    // Rank each slice's sets by MPKA.
    let ranked: Vec<Vec<usize>> = profile
        .set_counters
        .iter()
        .map(|slice| {
            let mut idx: Vec<usize> = (0..slice.len()).collect();
            idx.sort_by(|&a, &b| {
                slice[b]
                    .mpka()
                    .partial_cmp(&slice[a].mpka())
                    .expect("finite")
            });
            idx
        })
        .collect();

    let n = 32.min(rc.system.llc.sets_per_slice);
    let cases: Vec<(&str, Vec<Vec<usize>>)> = vec![
        (
            "Case I (top-32 MPKA)",
            ranked.iter().map(|r| r[..n].to_vec()).collect(),
        ),
        (
            "Case II (bottom-32 MPKA)",
            ranked.iter().map(|r| r[r.len() - n..].to_vec()).collect(),
        ),
        (
            "Case III (16 top + 16 bottom)",
            ranked
                .iter()
                .map(|r| {
                    let mut v = r[..n / 2].to_vec();
                    v.extend_from_slice(&r[r.len() - n / 2..]);
                    v
                })
                .collect(),
        ),
    ];

    println!("baseline Mockingjay (random sampled sets) total IPC: {baseline_ipc:.3}\n");
    for (label, lists) in cases {
        let mut cfg = DrishtiConfig::baseline(cores);
        cfg.sampling = SamplingMode::Explicit(lists);
        let r = run_mix(&mix, PolicyKind::Mockingjay, cfg, &rc);
        println!(
            "{label:<32} speedup over random sampling: {:+.1}%",
            (r.total_ipc() / baseline_ipc - 1.0) * 100.0
        );
    }
    println!("\npaper: +16.4% / +8.3% / +9.5% — Case I (high-MPKA) must win");
}

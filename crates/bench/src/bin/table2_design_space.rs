//! Table 2: the sampler/predictor organisation design space — global view,
//! bandwidth demand and broadcast requirement per choice — measured rather
//! than asserted.
//!
//! For each design point we run a 16-core mix and report the fabric
//! traffic it generates: centralized organisations funnel everything
//! through one node (high bandwidth), global-sampler organisations
//! broadcast every training to all predictor banks.

use drishti_bench::ExpOpts;
use drishti_core::config::DrishtiConfig;
use drishti_core::fabric::FabricKind;
use drishti_core::org::{DesignPoint, PredictorOrg, SamplerOrg};
use drishti_policies::factory::PolicyKind;
use drishti_sim::runner::run_mix;
use drishti_trace::mix::Mix;
use drishti_trace::presets::Benchmark;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    let rc = opts.rc(cores);
    let mix = Mix::homogeneous(Benchmark::Mcf, cores, 11);
    println!("# Table 2: design-space measurement ({cores}-core mcf)\n");
    println!(
        "{:<34} {:>7} {:>11} {:>11} {:>12}",
        "sampler/predictor", "global?", "msgs/KI", "broadcasts", "mean lat"
    );
    for point in DesignPoint::design_space() {
        let mut cfg = DrishtiConfig::baseline(cores);
        cfg.predictor_org = point.predictor;
        cfg.sampler_org = point.sampler;
        cfg.fabric = match (point.predictor, point.sampler) {
            (PredictorOrg::LocalPerSlice, SamplerOrg::LocalPerSlice) => FabricKind::Local,
            _ => FabricKind::Mesh,
        };
        let r = run_mix(&mix, PolicyKind::Mockingjay, cfg, &rc);
        let instr = r.total_instructions().max(1);
        let msgs_per_ki = r.fabric.messages as f64 * 1000.0 / instr as f64;
        println!(
            "{:<34} {:>7} {:>11.1} {:>11} {:>12.1}",
            format!("{}/{}", point.sampler, point.predictor),
            if point.global_view() { "yes" } else { "no" },
            msgs_per_ki,
            if point.broadcast() { "yes" } else { "no" },
            r.fabric.mean_latency(),
        );
    }
    println!("\npaper Table 2: only local-sampler + distributed (per-core) predictor");
    println!("achieves a global view with low bandwidth and no broadcast.");
}

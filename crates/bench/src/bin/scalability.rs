//! Scalability (paper §5.3): D-Mockingjay on 64- and 128-core systems with
//! 128/256 MB sliced LLCs.
//!
//! Paper: the D-Mockingjay advantage persists at 64 and 128 cores (about
//! +1% more than at 32 cores).

use drishti_bench::{evaluate_mix, header, pct, ExpOpts};
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::metrics::mean;

fn main() {
    let opts = ExpOpts::from_args();
    println!("# Scalability: Mockingjay vs D-Mockingjay at high core counts\n");
    header(
        "cores (LLC)",
        &["mockingjay", "d-mockingjay"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    // Default to the larger systems; --cores overrides.
    let cores_list = if opts.cores == vec![4, 16] {
        vec![32, 64]
    } else {
        opts.cores.clone()
    };
    for cores in cores_list {
        let mut rc = opts.rc(cores);
        // Keep wall-clock bounded at very high core counts.
        rc.accesses_per_core = rc.accesses_per_core.min(60_000);
        rc.warmup_accesses = rc.accesses_per_core / 4;
        let policies = vec![
            (PolicyKind::Mockingjay, DrishtiConfig::baseline(cores)),
            (PolicyKind::Mockingjay, DrishtiConfig::drishti(cores)),
        ];
        let mixes = opts.paper_mixes(cores);
        let evals: Vec<_> = mixes
            .iter()
            .take(4)
            .map(|m| evaluate_mix(m, &policies, &rc))
            .collect();
        let avg = |p: usize| {
            mean(
                &evals
                    .iter()
                    .map(|e| e.cells[p].ws_improvement_pct)
                    .collect::<Vec<_>>(),
            )
        };
        drishti_bench::row(
            &format!("{cores} cores ({} MB)", cores * 2),
            &[pct(avg(0)), pct(avg(1))],
        );
    }
    println!("\npaper: the advantage holds at 64/128 cores (≈ +1% over 32 cores)");
}

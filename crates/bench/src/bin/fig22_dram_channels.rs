//! Figure 22: DRAM channel-count sensitivity (2/4/8 channels for 16 cores),
//! homogeneous mixes.
//!
//! Paper: with 2 channels, Hawkeye gains 2.3% → D-Hawkeye 5.5% and
//! Mockingjay 4.7% → D-Mockingjay 10.4%; with 8 channels the LLC miss
//! penalty shrinks and so does every policy's headroom.

use drishti_bench::{evaluate_mix, header, headline_policies, mean_improvements, pct, ExpOpts};
use drishti_sim::config::SystemConfig;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    println!("# Figure 22: DRAM channel sensitivity ({cores} cores)\n");
    header(
        "channels",
        &["hawkeye", "d-hawkeye", "mockingjay", "d-mockingjay"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for channels in [2usize, 4, 8] {
        let mut rc = opts.rc(cores);
        rc.system = SystemConfig::with_dram_channels(cores, channels);
        let policies = headline_policies(cores);
        let evals: Vec<_> = opts
            .paper_mixes(cores)
            .iter()
            .filter(|m| m.is_homogeneous())
            .map(|m| evaluate_mix(m, &policies, &rc))
            .collect();
        let means = mean_improvements(&evals);
        drishti_bench::row(
            &format!("{channels} channels"),
            &means.iter().map(|(_, v)| pct(*v)).collect::<Vec<_>>(),
        );
    }
    println!("\npaper: fewer channels ⇒ bigger gains (2ch: +2.3/+5.5/+4.7/+10.4)");
}

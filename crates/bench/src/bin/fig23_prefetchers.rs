//! Figure 23: Drishti with five state-of-the-art prefetchers (SPP+PPF,
//! Bingo, IPCP, Berti, Gaze) replacing the baseline next-line + IP-stride
//! pair. Each column is normalised to an LRU baseline *with the same
//! prefetcher*.
//!
//! Paper: Drishti's enhancements stay synergistic with every prefetcher;
//! highly accurate prefetchers (SPP+PPF, Berti) raise the baseline and
//! shrink the remaining headroom slightly.

use drishti_bench::{evaluate_mix, header, headline_policies, mean_improvements, pct, ExpOpts};
use drishti_mem::prefetch::PrefetcherKind;
use drishti_sim::config::SystemConfig;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    println!("# Figure 23: prefetcher sensitivity ({cores} cores)\n");
    header(
        "L2 prefetcher",
        &["hawkeye", "d-hawkeye", "mockingjay", "d-mockingjay"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for l2pf in [
        PrefetcherKind::IpStride,
        PrefetcherKind::SppPpf,
        PrefetcherKind::Bingo,
        PrefetcherKind::Ipcp,
        PrefetcherKind::Berti,
        PrefetcherKind::Gaze,
    ] {
        let mut rc = opts.rc(cores);
        rc.system = SystemConfig::with_prefetchers(cores, PrefetcherKind::NextLine, l2pf);
        let policies = headline_policies(cores);
        let evals: Vec<_> = opts
            .paper_mixes(cores)
            .iter()
            .map(|m| evaluate_mix(m, &policies, &rc))
            .collect();
        let means = mean_improvements(&evals);
        drishti_bench::row(
            l2pf.label(),
            &means.iter().map(|(_, v)| pct(*v)).collect::<Vec<_>>(),
        );
    }
    println!("\npaper: D-variants ≥ baselines under every prefetcher");
}

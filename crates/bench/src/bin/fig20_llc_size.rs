//! Figure 20: LLC slice-size sensitivity (1/2/4 MB per core) on a 16-core
//! system, homogeneous mixes.
//!
//! Paper: Drishti's advantage holds across sizes and peaks at the 2 MB
//! baseline (the sampled-set counts are tuned for 2 MB slices).

use drishti_bench::{evaluate_mix, header, headline_policies, mean_improvements, pct, ExpOpts};
use drishti_sim::config::SystemConfig;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    println!("# Figure 20: LLC slice size sensitivity ({cores} cores)\n");
    header(
        "slice size",
        &["hawkeye", "d-hawkeye", "mockingjay", "d-mockingjay"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for mib in [1usize, 2, 4] {
        let mut rc = opts.rc(cores);
        rc.system = SystemConfig::with_llc_mib(cores, mib);
        let policies = headline_policies(cores);
        let evals: Vec<_> = opts
            .paper_mixes(cores)
            .iter()
            .filter(|m| m.is_homogeneous())
            .map(|m| evaluate_mix(m, &policies, &rc))
            .collect();
        let means = mean_improvements(&evals);
        drishti_bench::row(
            &format!("{mib} MB/core"),
            &means.iter().map(|(_, v)| pct(*v)).collect::<Vec<_>>(),
        );
    }
    println!("\npaper: effectiveness holds at all sizes, best at 2 MB/core");
}

//! Figure 3 (and the companion Figure 18): predicted ETR values for the
//! loads of one hot PC under the *myopic* view (per-slice predictors), the
//! *global* view (per-core-yet-global predictor) and Drishti's view
//! (global + dynamic sampled cache), against the *oracle* view (true
//! forward reuse distance), on a 16-core homogeneous xalan mix.
//!
//! Paper: myopic predictions scatter away from the oracle; the global view
//! tracks it closely; Drishti's view ≈ the global view (Fig 18).

use drishti_bench::ExpOpts;
use drishti_core::config::DrishtiConfig;
use drishti_mem::llc::LlcGeometry;
use drishti_policies::mockingjay::Mockingjay;
use drishti_policies::opt::oracle_etr_for_pc;
use drishti_sim::runner::{run_mix_with_policy, RunConfig};
use drishti_trace::mix::Mix;
use drishti_trace::presets::Benchmark;
use drishti_trace::WorkloadGen;

/// Pick the PC with the most LLC demand loads in a probe run (the paper
/// hand-picks 0x59cdbf for xalancbmk).
fn hottest_pc(mix: &Mix, rc: &RunConfig, cores: usize) -> u64 {
    let mut rc = rc.clone();
    rc.record_llc_stream = true;
    let geom = rc.system.llc;
    let policy = Box::new(Mockingjay::new(&geom, &DrishtiConfig::baseline(cores)));
    let r = run_mix_with_policy(mix, policy, &rc);
    let mut counts = std::collections::HashMap::new();
    for a in r.llc_stream.iter().filter(|a| a.kind.is_demand()) {
        *counts.entry(a.pc).or_insert(0u64) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .map(|(pc, _)| pc)
        .unwrap_or(0)
}

fn summarize(label: &str, samples: &[u8]) -> f64 {
    if samples.is_empty() {
        println!("{label:<10} (no samples)");
        return 0.0;
    }
    let mut s: Vec<u8> = samples.to_vec();
    s.sort_unstable();
    let mean = s.iter().map(|&x| f64::from(x)).sum::<f64>() / s.len() as f64;
    let p = |q: f64| s[((s.len() - 1) as f64 * q) as usize];
    println!(
        "{label:<10} n={:<7} mean={mean:>6.1}  p10={:>3}  p50={:>3}  p90={:>3}",
        s.len(),
        p(0.1),
        p(0.5),
        p(0.9)
    );
    mean
}

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    let rc = opts.rc(cores);
    let mix = Mix::homogeneous(Benchmark::Xalan, cores, 77);
    println!("# Figure 3/18: ETR views for the hottest xalan PC ({cores} cores)\n");

    let pc = hottest_pc(&mix, &rc, cores);
    println!("target PC: {pc:#x}\n");
    let geom: LlcGeometry = rc.system.llc;

    // Oracle: true forward set-local reuse distances of that PC's loads.
    let trace: Vec<_> = {
        let mut gens = mix.build();
        let mut all = Vec::new();
        for (core, g) in gens.iter_mut().enumerate() {
            for r in g.collect((rc.warmup_accesses + rc.accesses_per_core) as usize) {
                all.push(drishti_mem::access::Access::load(core, r.pc, r.line));
            }
        }
        all
    };
    let oracle = oracle_etr_for_pc(&trace, &geom, pc, 1, 127);
    let oracle_mean = summarize("oracle", &oracle);

    let views = [
        ("myopic", DrishtiConfig::baseline(cores)),
        ("global", DrishtiConfig::global_view_only(cores)),
        ("drishti", DrishtiConfig::drishti(cores)),
    ];
    let mut deviations = Vec::new();
    for (label, cfg) in views {
        let mut policy = Mockingjay::new(&geom, &cfg);
        let handle = policy.enable_etr_log(pc);
        let _ = run_mix_with_policy(&mix, Box::new(policy), &rc);
        let samples: Vec<u8> = handle.borrow().iter().map(|s| s.pred_units).collect();
        let mean = summarize(label, &samples);
        deviations.push((label, (mean - oracle_mean).abs()));
    }
    println!("\n|mean − oracle-mean| per view:");
    for (label, d) in &deviations {
        println!("  {label:<10} {d:.1}");
    }
    println!("\npaper: myopic deviates from oracle; global ≈ oracle; drishti ≈ global");
}

//! Table 5: average LLC write-backs per kilo-instruction (WPKI) for LRU,
//! Hawkeye, D-Hawkeye, Mockingjay and D-Mockingjay.
//!
//! Paper values (16 cores): LRU 0.18, Hawkeye 1.15, D-Hawkeye 2.63,
//! Mockingjay 7.16, D-Mockingjay 7.02 — Belady-mimicking policies assign
//! dirty lines the lowest priority, so write-back traffic rises sharply
//! versus LRU.

use drishti_bench::{evaluate_mix, f2, header, headline_policies, ExpOpts};
use drishti_sim::metrics::mean;

fn main() {
    let opts = ExpOpts::from_args();
    println!("# Table 5: LLC WPKI (write-backs per kilo-instruction)\n");
    header(
        "cores",
        &["lru", "hawkeye", "d-hawkeye", "mockingjay", "d-mockingjay"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for &cores in &opts.cores {
        let rc = opts.rc(cores);
        let policies = headline_policies(cores);
        let evals: Vec<_> = opts
            .paper_mixes(cores)
            .iter()
            .map(|m| evaluate_mix(m, &policies, &rc))
            .collect();
        let mut values = vec![f2(mean(
            &evals.iter().map(|e| e.lru.wpki()).collect::<Vec<_>>(),
        ))];
        for p in 0..policies.len() {
            values.push(f2(mean(
                &evals
                    .iter()
                    .map(|e| e.cells[p].result.wpki())
                    .collect::<Vec<_>>(),
            )));
        }
        drishti_bench::row(&format!("{cores} cores"), &values);
    }
    println!("\npaper (16 cores): 0.18 / 1.15 / 2.63 / 7.16 / 7.02");
    println!("shape check: every Belady-mimicking policy must exceed LRU's WPKI.");
}

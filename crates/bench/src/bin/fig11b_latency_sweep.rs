//! Figure 11b: sensitivity of D-Mockingjay to the slice↔predictor
//! interconnect latency (1…30 cycles) on a 32-core system.
//!
//! Paper: latencies below five cycles cost nothing; ~20 cycles is where the
//! slowdown becomes significant (the mesh's average latency at 32 cores).

use drishti_bench::{evaluate_mix, pct, ExpOpts};
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::metrics::mean;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    let rc = opts.rc(cores);
    println!("# Figure 11b: predictor-interconnect latency sensitivity ({cores} cores)\n");
    println!("{:<12} {:>26}", "latency", "D-Mockingjay WS vs LRU");
    for latency in [1u64, 3, 5, 10, 20, 30] {
        let policies = vec![(
            PolicyKind::Mockingjay,
            DrishtiConfig::drishti_fixed_latency(cores, latency),
        )];
        let evals: Vec<_> = opts
            .paper_mixes(cores)
            .iter()
            .map(|m| evaluate_mix(m, &policies, &rc))
            .collect();
        let avg = mean(
            &evals
                .iter()
                .map(|e| e.cells[0].ws_improvement_pct)
                .collect::<Vec<_>>(),
        );
        println!("{latency:<12} {:>26}", pct(avg));
    }
    println!("\npaper: flat below 5 cycles, visibly degrading by 20–30 cycles");
}

//! Figure 14: LLC miss (MPKI) reduction over LRU on 4/16/32 cores,
//! averaged across the homogeneous + heterogeneous mixes.
//!
//! Paper values: 4 cores — Hawkeye −12.9%, D-Hawkeye −14.5%,
//! Mockingjay −23.8%, D-Mockingjay −24.0%; 32 cores — Hawkeye −10.6%,
//! D-Hawkeye −14.1%, Mockingjay −21.2%, D-Mockingjay −24.1%.

use drishti_bench::{evaluate_mix, header, headline_policies, pct, ExpOpts};
use drishti_sim::metrics::mean;

fn main() {
    let opts = ExpOpts::from_args();
    println!("# Figure 14: LLC MPKI reduction vs LRU (more negative = better)\n");
    header(
        "cores",
        &["hawkeye", "d-hawkeye", "mockingjay", "d-mockingjay"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for &cores in &opts.cores {
        let rc = opts.rc(cores);
        let policies = headline_policies(cores);
        let evals: Vec<_> = opts
            .paper_mixes(cores)
            .iter()
            .map(|m| evaluate_mix(m, &policies, &rc))
            .collect();
        let reductions: Vec<String> = (0..policies.len())
            .map(|p| {
                let vals: Vec<f64> = evals
                    .iter()
                    .filter(|e| e.lru.llc_mpki() > 0.0)
                    .map(|e| (e.cells[p].result.llc_mpki() / e.lru.llc_mpki() - 1.0) * 100.0)
                    .collect();
                pct(mean(&vals))
            })
            .collect();
        drishti_bench::row(&format!("{cores} cores"), &reductions);
    }
    println!("\npaper: 4-core -12.9/-14.5/-23.8/-24.0; 32-core -10.6/-14.1/-21.2/-24.1");
}

//! Figure 16: per-mix performance of Mockingjay vs D-Mockingjay on 32-core
//! systems, sorted by improvement (an "S-curve").
//!
//! Paper: D-Mockingjay ≥ Mockingjay on every mix; max 77% (mcf homo) vs
//! 59%, xalan homo 26% vs 20%.

use drishti_bench::{evaluate_mix, ExpOpts};
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    let rc = opts.rc(cores);
    println!("# Figure 16: per-mix WS improvement over LRU, sorted ({cores} cores)\n");
    let policies = vec![
        (PolicyKind::Mockingjay, DrishtiConfig::baseline(cores)),
        (PolicyKind::Mockingjay, DrishtiConfig::drishti(cores)),
    ];
    let mut rows: Vec<(String, f64, f64)> = opts
        .paper_mixes(cores)
        .iter()
        .map(|m| {
            let e = evaluate_mix(m, &policies, &rc);
            (
                e.mix.clone(),
                e.cells[0].ws_improvement_pct,
                e.cells[1].ws_improvement_pct,
            )
        })
        .collect();
    rows.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
    println!("{:<24} {:>12} {:>14}", "mix", "mockingjay", "d-mockingjay");
    let mut wins = 0;
    for (name, mj, dmj) in &rows {
        println!("{name:<24} {mj:>11.1}% {dmj:>13.1}%");
        if dmj >= mj {
            wins += 1;
        }
    }
    println!(
        "\nD-Mockingjay >= Mockingjay on {wins}/{} mixes (paper: all mixes)",
        rows.len()
    );
}

//! Figure 15: uncore (LLC + NoC + DRAM, plus NOCSTAR for D-variants)
//! dynamic energy, normalised to LRU, on 16- and 32-core systems.
//!
//! Paper values (32 cores): Hawkeye 0.98, Mockingjay 0.95, D-Hawkeye 0.97,
//! D-Mockingjay 0.91 (lower is better; savings come from fewer DRAM reads
//! and LLC write-backs).

use drishti_bench::{evaluate_mix, f2, header, headline_policies, ExpOpts};
use drishti_sim::metrics::mean;

fn main() {
    let opts = ExpOpts::from_args();
    println!("# Figure 15: uncore energy normalised to LRU (lower is better)\n");
    header(
        "cores",
        &["hawkeye", "d-hawkeye", "mockingjay", "d-mockingjay"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for &cores in &opts.cores {
        let rc = opts.rc(cores);
        let policies = headline_policies(cores);
        let evals: Vec<_> = opts
            .paper_mixes(cores)
            .iter()
            .map(|m| evaluate_mix(m, &policies, &rc))
            .collect();
        let values: Vec<String> = (0..policies.len())
            .map(|p| {
                let ratios: Vec<f64> = evals
                    .iter()
                    .map(|e| e.cells[p].result.energy.normalized_to(&e.lru.energy))
                    .collect();
                f2(mean(&ratios))
            })
            .collect();
        drishti_bench::row(&format!("{cores} cores"), &values);
    }
    println!("\npaper (32 cores): 0.98 / 0.97 / 0.95 / 0.91");
}

//! Run every table/figure experiment binary in sequence (reduced scale).
//!
//! This is the one-command regeneration entry point:
//!
//! ```text
//! cargo run --release -p drishti-bench --bin all_experiments
//! ```
//!
//! Arguments are forwarded to every experiment (e.g. `--full`).

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig02_pc_scatter",
    "fig03_etr_views",
    "fig04_pred_hist",
    "fig05_set_mpka",
    "table1_sampling_cases",
    "fig10_predictor_apki",
    "fig11a_no_nocstar",
    "fig11b_latency_sweep",
    "table2_design_space",
    "table3_budget",
    "fig13_main_performance",
    "fig14_mpki_reduction",
    "table5_wpki",
    "fig15_energy",
    "table6_metrics",
    "fig16_scurve",
    "fig17_ablation",
    "fig19_server",
    "fig20_llc_size",
    "fig21_l2_size",
    "fig22_dram_channels",
    "fig23_prefetchers",
    "table8_other_policies",
    "table7_applicability",
    "scalability",
    "scaling",
    "resilience",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("current exe path");
    let bin_dir = exe.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n================================================================");
        println!("==> {name}");
        println!("================================================================");
        match Command::new(bin_dir.join(name)).args(&args).status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("!! {name} failed with {status}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("!! failed to launch {name}: {e}");
                failures.push(*name);
            }
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("{} experiments FAILED: {failures:?}", failures.len());
        std::process::exit(1);
    }
}

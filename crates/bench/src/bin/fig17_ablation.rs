//! Figure 17: utility of each Drishti enhancement on Mockingjay (32-core
//! mixes): baseline Mockingjay → + per-core global predictor ("global
//! view") → + dynamic sampled cache (full D-Mockingjay), split by
//! SPEC-dominated vs GAP-dominated mixes.
//!
//! Runs on the parallel sweep harness (`--jobs N`); the sweep report
//! lands in `target/sweep/fig17_ablation.json`.
//!
//! Paper: Mockingjay 3.8% (SPEC+GAP homo) / 9.7% (hetero); global view
//! raises SPEC to ~7.4% and GAP to ~6.9%; +DSC reaches 10.2% (SPEC) /
//! 8.5% (GAP).

use drishti_bench::{
    exit_on_sweep_failure, header, pct, sweep_groups, write_reports, ExpOpts, MixGroup,
};
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    println!("# Figure 17: Drishti enhancement ablation on Mockingjay ({cores} cores)\n");
    let policies = vec![
        (PolicyKind::Mockingjay, DrishtiConfig::baseline(cores)),
        (
            PolicyKind::Mockingjay,
            DrishtiConfig::global_view_only(cores),
        ),
        (PolicyKind::Mockingjay, DrishtiConfig::drishti(cores)),
        (PolicyKind::Mockingjay, DrishtiConfig::dsc_only(cores)),
    ];
    let group = MixGroup {
        label: format!("{cores}c"),
        mixes: opts.paper_mixes(cores),
        policies,
        rc: opts.rc(cores),
    };
    let (mut group_evals, report, timing) =
        exit_on_sweep_failure(sweep_groups("fig17_ablation", &[group], &opts));
    let g = group_evals.remove(0);
    header(
        "mix class",
        &["baseline", "global-view", "global+DSC", "DSC-only"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for (label, filter) in [("homogeneous", true), ("heterogeneous", false)] {
        let evals: Vec<_> = g
            .mixes
            .iter()
            .zip(&g.evals)
            .filter(|(m, _)| m.is_homogeneous() == filter)
            .map(|(_, e)| e)
            .collect();
        if evals.is_empty() {
            continue;
        }
        // mean_improvements wants owned evals; average directly instead.
        let means: Vec<f64> = (0..evals[0].cells.len())
            .map(|p| {
                drishti_sim::metrics::mean(
                    &evals
                        .iter()
                        .map(|e| e.cells[p].ws_improvement_pct)
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        drishti_bench::row(label, &means.iter().map(|v| pct(*v)).collect::<Vec<_>>());
    }
    println!("\npaper: global view contributes most of the gain; DSC adds on top");
    println!("(Mockingjay 3.8→6→9.7% homo; the DSC also halves sampled-set storage).");
    if let Err(e) = write_reports(&opts, &report, &timing) {
        eprintln!("error: failed to write sweep report: {e}");
        std::process::exit(1);
    }
}

//! Figure 17: utility of each Drishti enhancement on Mockingjay (32-core
//! mixes): baseline Mockingjay → + per-core global predictor ("global
//! view") → + dynamic sampled cache (full D-Mockingjay), split by
//! SPEC-dominated vs GAP-dominated mixes.
//!
//! Paper: Mockingjay 3.8% (SPEC+GAP homo) / 9.7% (hetero); global view
//! raises SPEC to ~7.4% and GAP to ~6.9%; +DSC reaches 10.2% (SPEC) /
//! 8.5% (GAP).

use drishti_bench::{evaluate_mix, header, mean_improvements, pct, ExpOpts};
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    let rc = opts.rc(cores);
    println!("# Figure 17: Drishti enhancement ablation on Mockingjay ({cores} cores)\n");
    let policies = vec![
        (PolicyKind::Mockingjay, DrishtiConfig::baseline(cores)),
        (
            PolicyKind::Mockingjay,
            DrishtiConfig::global_view_only(cores),
        ),
        (PolicyKind::Mockingjay, DrishtiConfig::drishti(cores)),
        (PolicyKind::Mockingjay, DrishtiConfig::dsc_only(cores)),
    ];
    header(
        "mix class",
        &["baseline", "global-view", "global+DSC", "DSC-only"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    let mixes = opts.paper_mixes(cores);
    for (label, filter) in [("homogeneous", true), ("heterogeneous", false)] {
        let evals: Vec<_> = mixes
            .iter()
            .filter(|m| m.is_homogeneous() == filter)
            .map(|m| evaluate_mix(m, &policies, &rc))
            .collect();
        if evals.is_empty() {
            continue;
        }
        let means = mean_improvements(&evals);
        drishti_bench::row(
            label,
            &means.iter().map(|(_, v)| pct(*v)).collect::<Vec<_>>(),
        );
    }
    println!("\npaper: global view contributes most of the gain; DSC adds on top");
    println!("(Mockingjay 3.8→6→9.7% homo; the DSC also halves sampled-set storage).");
}

//! Figure 4: frequency distribution of predicted reuse values under the
//! myopic vs. global views — ETR classes for Mockingjay (a: xalan, b: pr)
//! and RRIP values for Hawkeye (c: xalan, d: pr), on 16-core homogeneous
//! mixes.
//!
//! Paper: the myopic/global distributions differ much more for xalan
//! (scattered PCs) than for pr (concentrated PCs).

use drishti_bench::ExpOpts;
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::runner::run_mix;
use drishti_trace::mix::Mix;
use drishti_trace::presets::Benchmark;

/// L1 distance between two normalised distributions (0 = identical,
/// 2 = disjoint).
fn l1(a: &[u64], b: &[u64]) -> f64 {
    let sa: u64 = a.iter().sum();
    let sb: u64 = b.iter().sum();
    if sa == 0 || sb == 0 {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64 / sa as f64 - y as f64 / sb as f64).abs())
        .sum()
}

fn hist_from_diag(diag: &[(String, u64)], keys: &[&str]) -> Vec<u64> {
    let get = |k: &str| diag.iter().find(|(n, _)| n == k).map_or(0, |(_, v)| *v);
    keys.iter().map(|k| get(k)).collect()
}

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    let rc = opts.rc(cores);
    println!("# Figure 4: predicted-value distributions, myopic vs global view\n");
    for bench in [Benchmark::Xalan, Benchmark::PrKron] {
        let mix = Mix::homogeneous(bench, cores, 9);
        for pk in [PolicyKind::Mockingjay, PolicyKind::Hawkeye] {
            let myopic = run_mix(&mix, pk, DrishtiConfig::baseline(cores), &rc);
            let global = run_mix(&mix, pk, DrishtiConfig::global_view_only(cores), &rc);
            // Hawkeye exposes its insertion split through diagnostics;
            // Mockingjay's fill classes are proxied the same way
            // (friendly ↔ short-distance, averse ↔ bypass/INF classes).
            let (hm, hg) = match pk {
                PolicyKind::Hawkeye => (
                    hist_from_diag(&myopic.diagnostics, &["fills_friendly", "fills_averse"]),
                    hist_from_diag(&global.diagnostics, &["fills_friendly", "fills_averse"]),
                ),
                _ => (
                    hist_from_diag(
                        &myopic.diagnostics,
                        &["pred_q0", "pred_q1", "pred_q2", "pred_q3"],
                    ),
                    hist_from_diag(
                        &global.diagnostics,
                        &["pred_q0", "pred_q1", "pred_q2", "pred_q3"],
                    ),
                ),
            };
            println!(
                "{:<10} {:<12} myopic={:?} global={:?}  L1-divergence={:.3}",
                bench.label(),
                pk.label(),
                hm,
                hg,
                l1(&hm, &hg)
            );
        }
    }
    println!("\npaper: divergence(xalan) >> divergence(pr) for both policies");
}

//! Figure 5: misses per kilo-access (MPKA) per LLC set for 16-core
//! homogeneous mcf, gcc and lbm mixes.
//!
//! Paper: mcf — strong skew (many sets under 100 MPKA, a few very hot);
//! gcc — milder skew; lbm — uniform MPKA across all sets (streaming).

use drishti_bench::ExpOpts;
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::runner::run_mix;
use drishti_trace::mix::Mix;
use drishti_trace::presets::Benchmark;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    let rc = opts.rc(cores);
    println!("# Figure 5: per-set MPKA distribution ({cores} cores, slice 0)\n");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "mix", "min", "p50", "p90", "max", "mean", "cv(stddev/mean)"
    );
    for bench in [Benchmark::Mcf, Benchmark::Gcc, Benchmark::Lbm] {
        let mix = Mix::homogeneous(bench, cores, 3);
        let r = run_mix(&mix, PolicyKind::Lru, DrishtiConfig::baseline(cores), &rc);
        // Aggregate MPKA across all slices' sets.
        let mut mpkas: Vec<f64> = r
            .set_counters
            .iter()
            .flat_map(|slice| slice.iter())
            .filter(|c| c.accesses > 0)
            .map(|c| c.mpka())
            .collect();
        mpkas.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = mpkas.len();
        let mean = mpkas.iter().sum::<f64>() / n as f64;
        let var = mpkas.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean.max(1e-9);
        println!(
            "{:<8} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>10.1} {:>12.3}",
            bench.label(),
            mpkas[0],
            mpkas[n / 2],
            mpkas[n * 9 / 10],
            mpkas[n - 1],
            mean,
            cv
        );
    }
    println!("\npaper shape: cv(mcf) > cv(gcc) >> cv(lbm) ≈ 0 (uniform)");
}

//! Table 3: per-core hardware budget with and without Drishti for a 16-way
//! 2 MB LLC slice. Purely structural — computed by
//! [`drishti_core::budget`], no simulation.
//!
//! Paper: Hawkeye 28 KB → 20.75 KB; Mockingjay 31.91 KB → 28.95 KB
//! (savings of 7.25 KB and 2.96 KB per core).

use drishti_core::budget::Budget;

fn main() {
    println!("# Table 3: per-core storage budget (16-way 2 MB slice)\n");
    for (policy, make) in [
        ("Hawkeye", Budget::hawkeye as fn(bool) -> Budget),
        ("Mockingjay", Budget::mockingjay as fn(bool) -> Budget),
    ] {
        for with in [false, true] {
            let b = make(with);
            println!(
                "{policy} {}:",
                if with {
                    "with Drishti"
                } else {
                    "without Drishti"
                }
            );
            for c in &b.components {
                println!("    {:<22} {:>7.2} KB", c.name, c.kib());
            }
            println!("    {:<22} {:>7.2} KB\n", "Total", b.total_kib());
        }
        println!(
            "  Drishti saves {:.2} KB per core on {policy}\n",
            Budget::drishti_savings_kib(&policy.to_lowercase())
        );
    }
    println!("paper: Hawkeye 28 → 20.75 KB; Mockingjay 31.91 → 28.95 KB");
}

//! Figure 11a: slowdown of D-Mockingjay when the slice↔predictor traffic
//! rides the existing mesh instead of NOCSTAR, vs. baseline Mockingjay, on
//! 4/16/32 cores.
//!
//! Paper: −2.8% (4 cores), −5.5% (16), −9% (32; up to −40% for mcf homo) —
//! without a low-latency interconnect, the benefit of global training is
//! nullified by the added fill-path latency.

use drishti_bench::{evaluate_mix, pct, ExpOpts};
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::metrics::mean;

fn main() {
    let opts = ExpOpts::from_args();
    println!("# Figure 11a: D-Mockingjay without NOCSTAR (mesh fabric) vs Mockingjay\n");
    println!(
        "{:<8} {:>16} {:>18} {:>22}",
        "cores", "mockingjay", "d-mockingjay", "d-mockingjay (mesh)"
    );
    for &cores in &opts.cores {
        let rc = opts.rc(cores);
        let policies = vec![
            (PolicyKind::Mockingjay, DrishtiConfig::baseline(cores)),
            (PolicyKind::Mockingjay, DrishtiConfig::drishti(cores)),
            (
                PolicyKind::Mockingjay,
                DrishtiConfig::drishti_without_nocstar(cores),
            ),
        ];
        let evals: Vec<_> = opts
            .paper_mixes(cores)
            .iter()
            .map(|m| evaluate_mix(m, &policies, &rc))
            .collect();
        let avg = |p: usize| {
            mean(
                &evals
                    .iter()
                    .map(|e| e.cells[p].ws_improvement_pct)
                    .collect::<Vec<_>>(),
            )
        };
        println!(
            "{cores:<8} {:>16} {:>18} {:>22}",
            pct(avg(0)),
            pct(avg(1)),
            pct(avg(2))
        );
    }
    println!("\npaper: mesh-fabric slowdown vs Mockingjay grows with cores (−2.8/−5.5/−9%)");
}

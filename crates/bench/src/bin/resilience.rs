//! Resilience study: speedup vs. uncore fault rate.
//!
//! Sweeps message-drop probability over {0, 5, 10, 25, 50}% for the
//! headline policies under both the baseline and the Drishti predictor
//! organisation, with every run's IPC normalised to the *fault-free* run
//! of the same (policy, organisation). The interesting question is the
//! shape of the curve: a policy whose degradation path works loses
//! performance smoothly as the fabric gets lossier, never hangs, and
//! never collapses — its slices fall back to static SRRIP-like insertion
//! when predictions stop arriving instead of blocking on them.
//!
//! Every `(policy, organisation, drop-rate)` cell is an independent
//! [`SweepJob`] on the parallel harness — this binary drives the raw
//! `run_sweep` API rather than the mix-evaluation layer, because its
//! normalisation baseline is the fault-free cell of the same variant, not
//! LRU. A fixed fault seed carried by each job makes every row
//! reproducible bit-for-bit at any `--jobs` width; the report lands in
//! `target/sweep/resilience.json`.

use drishti_bench::{f2, header, report_path, row, write_reports, ExpOpts};
use drishti_core::config::DrishtiConfig;
use drishti_noc::faults::FaultConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::config::SystemConfig;
use drishti_sim::runner::RunConfig;
use drishti_sim::sampling::SamplingSpec;
use drishti_sim::sweep::report::{SweepReport, SweepTiming};
use drishti_sim::sweep::{journal, run_sweep_resumable, JobKind, SweepJob};
use drishti_sim::telemetry::TelemetrySpec;
use drishti_trace::mix::Mix;
use drishti_trace::presets::Benchmark;
use drishti_trace::replay::TraceCache;
use std::sync::Arc;

const FAULT_SEED: u64 = 42;
const DROP_PCTS: [f64; 5] = [0.0, 5.0, 10.0, 25.0, 50.0];

/// The run result of cell `idx`, or a fatal error naming exactly which
/// cell is missing — a normalisation baseline that silently vanishes
/// would otherwise surface as an opaque panic far from the cause.
fn run_cell<'a>(
    outcome: &'a drishti_sim::sweep::SweepOutcome,
    jobs: &[SweepJob],
    idx: usize,
) -> &'a drishti_sim::runner::RunResult {
    match &outcome.outputs[idx] {
        Ok(out) => out.unwrap_run(),
        Err(f) => {
            eprintln!(
                "error: baseline cell {} ({}) is missing: {}",
                f.id,
                jobs.get(idx).map_or("?", |j| j.label.as_str()),
                f.message
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(8);
    let mix = Mix::heterogeneous(&Benchmark::spec_and_gap(), cores, 1);
    println!(
        "# Resilience: total IPC vs. uncore message-drop rate ({cores} cores, mix {})\n",
        mix.name
    );

    let variants: Vec<(PolicyKind, &str)> = vec![
        (PolicyKind::Mockingjay, "baseline"),
        (PolicyKind::Mockingjay, "drishti"),
        (PolicyKind::Hawkeye, "baseline"),
        (PolicyKind::Hawkeye, "drishti"),
    ];

    // One job per (variant, drop-rate) cell; the job's seed is the cell's
    // fault seed, so the whole batch is order-free.
    let mut jobs = Vec::new();
    for (policy, org) in &variants {
        for &drop_pct in &DROP_PCTS {
            let faults = FaultConfig::with_drops(FAULT_SEED, drop_pct);
            let drishti = match *org {
                "drishti" => DrishtiConfig::drishti(cores),
                _ => DrishtiConfig::baseline(cores),
            }
            .with_faults(faults.clone());
            let id = jobs.len();
            jobs.push(SweepJob {
                id,
                label: format!("{}/{}/{org}/drop{drop_pct}", mix.name, policy.label()),
                seed: FAULT_SEED,
                rc: RunConfig {
                    system: SystemConfig::with_faults(cores, faults),
                    accesses_per_core: opts.accesses,
                    warmup_accesses: opts.accesses / 4,
                    record_llc_stream: false,
                    sampling: SamplingSpec::off(),
                    telemetry: TelemetrySpec::off(),
                    engine: Default::default(),
                },
                kind: JobKind::Run {
                    mix: mix.clone(),
                    policy: *policy,
                    org: drishti,
                    org_label: (*org).to_string(),
                },
            });
        }
    }

    let cache = Arc::new(TraceCache::new());
    let journal_file = journal::journal_path(&report_path(&opts, "resilience"));
    let outcome = run_sweep_resumable(&jobs, opts.jobs, &cache, &journal_file, opts.resume)
        .unwrap_or_else(|err| {
            eprintln!(
                "error: cannot resume from {}: {err}",
                journal_file.display()
            );
            std::process::exit(2);
        });
    let timing = SweepTiming::from_outcome("resilience", &outcome);
    let failures = outcome.failures();
    if !failures.is_empty() {
        eprintln!("error: {} sweep cell(s) failed:", failures.len());
        for f in failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    let mut report = SweepReport::from_outcome("resilience", &jobs, &outcome);
    report
        .config
        .push(("fault_seed".to_string(), FAULT_SEED.to_string()));
    report
        .config
        .push(("accesses".to_string(), opts.accesses.to_string()));
    report.config.push(("cores".to_string(), cores.to_string()));

    header(
        "policy/org",
        &DROP_PCTS
            .iter()
            .map(|p| format!("{p:.0}% drop"))
            .collect::<Vec<_>>(),
    );

    for (v, (policy, org)) in variants.iter().enumerate() {
        let base = v * DROP_PCTS.len();
        let healthy = run_cell(&outcome, &jobs, base);
        if !healthy.fault_summary().is_clean() {
            eprintln!(
                "error: zero-rate run of {}/{org} reports faults",
                policy.label()
            );
            std::process::exit(1);
        }
        let healthy_ipc = healthy.total_ipc();
        let mut cells = Vec::new();
        for (d, &drop_pct) in DROP_PCTS.iter().enumerate() {
            let r = run_cell(&outcome, &jobs, base + d);
            let ipc = r.total_ipc();
            let rel = if healthy_ipc > 0.0 {
                ipc / healthy_ipc
            } else {
                0.0
            };
            cells.push(format!("{} ({}×)", f2(ipc), f2(rel)));
            let cell = report.cell_mut(base + d).expect("run cell in report");
            cell.metrics.push(("drop_pct".to_string(), drop_pct));
            cell.metrics.push(("rel_ipc".to_string(), rel));
        }
        row(&format!("{}/{org}", policy.label()), &cells);
        let worst = run_cell(&outcome, &jobs, base + DROP_PCTS.len() - 1).fault_summary();
        println!(
            "    at 50%: mesh drops {} (retries {}), fabric fallbacks {}, dropped trainings {}",
            worst.mesh_dropped,
            worst.mesh_retries,
            worst.fallback_decisions,
            worst.dropped_trainings
        );
    }

    println!("\ncells: absolute total IPC (relative to the same variant's fault-free run)");
    println!("graceful degradation = relative IPC declines smoothly and every run completes");
    if let Err(e) = write_reports(&opts, &report, &timing) {
        eprintln!("error: failed to write sweep report: {e}");
        std::process::exit(1);
    }
}

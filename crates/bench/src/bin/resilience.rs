//! Resilience study: speedup vs. uncore fault rate.
//!
//! Sweeps message-drop probability over {0, 5, 10, 25, 50}% for the
//! headline policies under both the baseline and the Drishti predictor
//! organisation, with every run's IPC normalised to the *fault-free* run
//! of the same (policy, organisation). The interesting question is the
//! shape of the curve: a policy whose degradation path works loses
//! performance smoothly as the fabric gets lossier, never hangs, and
//! never collapses — its slices fall back to static SRRIP-like insertion
//! when predictions stop arriving instead of blocking on them.
//!
//! A fixed fault seed makes every row reproducible bit-for-bit.

use drishti_bench::{f2, header, row, ExpOpts};
use drishti_core::config::DrishtiConfig;
use drishti_noc::faults::FaultConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::config::SystemConfig;
use drishti_sim::runner::{run_mix, RunConfig};
use drishti_trace::mix::Mix;
use drishti_trace::presets::Benchmark;

const FAULT_SEED: u64 = 42;
const DROP_PCTS: [f64; 5] = [0.0, 5.0, 10.0, 25.0, 50.0];

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(8);
    let mix = Mix::heterogeneous(&Benchmark::spec_and_gap(), cores, 1);
    println!(
        "# Resilience: total IPC vs. uncore message-drop rate ({cores} cores, mix {})\n",
        mix.name
    );

    let variants: Vec<(PolicyKind, &str)> = vec![
        (PolicyKind::Mockingjay, "baseline"),
        (PolicyKind::Mockingjay, "drishti"),
        (PolicyKind::Hawkeye, "baseline"),
        (PolicyKind::Hawkeye, "drishti"),
    ];

    header(
        "policy/org",
        &DROP_PCTS
            .iter()
            .map(|p| format!("{p:.0}% drop"))
            .collect::<Vec<_>>(),
    );

    for (policy, org) in &variants {
        let mut cells = Vec::new();
        let mut healthy_ipc = 0.0f64;
        let mut counters = None;
        for &drop_pct in &DROP_PCTS {
            let faults = FaultConfig::with_drops(FAULT_SEED, drop_pct);
            let drishti = match *org {
                "drishti" => DrishtiConfig::drishti(cores),
                _ => DrishtiConfig::baseline(cores),
            }
            .with_faults(faults.clone());
            let rc = RunConfig {
                system: SystemConfig::with_faults(cores, faults),
                accesses_per_core: opts.accesses,
                warmup_accesses: opts.accesses / 4,
                record_llc_stream: false,
            };
            let r = run_mix(&mix, *policy, drishti, &rc);
            let ipc = r.total_ipc();
            if drop_pct == 0.0 {
                healthy_ipc = ipc;
                assert!(
                    r.fault_summary().is_clean(),
                    "zero-rate run must not report faults"
                );
            }
            let rel = if healthy_ipc > 0.0 {
                ipc / healthy_ipc
            } else {
                0.0
            };
            cells.push(format!("{} ({}×)", f2(ipc), f2(rel)));
            if drop_pct == *DROP_PCTS.last().unwrap() {
                counters = Some(r.fault_summary());
            }
        }
        row(&format!("{}/{org}", policy.label()), &cells);
        if let Some(s) = counters {
            println!(
                "    at 50%: mesh drops {} (retries {}), fabric fallbacks {}, dropped trainings {}",
                s.mesh_dropped, s.mesh_retries, s.fallback_decisions, s.dropped_trainings
            );
        }
    }

    println!("\ncells: absolute total IPC (relative to the same variant's fault-free run)");
    println!("graceful degradation = relative IPC declines smoothly and every run completes");
}

//! Scenario-diversity study (DESIGN.md §18): Drishti vs its baseline on
//! the three workload families *outside* the paper's SPEC/GAP/server
//! protocol — phase-alternating composites, the adversarial slice-scatter
//! family, and datacenter consolidation mixes.
//!
//! The paper's evaluation (like most replacement-policy papers) holds the
//! workload archetype fixed for a whole run. This study probes the
//! blind spots that protocol leaves: does the slicing-aware organisation
//! still pay off when the archetype flips mid-run, when an adversary
//! maximises slice scattering, and when a few batch thrashers share the
//! LLC with many quiet server cores?
//!
//! The adversarial group is two-staged: a deterministic seed-space search
//! (`drishti_sim::conformance::adversarial`) first finds the worst-case
//! scatter seed against the D-Mockingjay cell, then that seed's workload
//! runs through the full harness like any other mix.
//!
//! Runs on the parallel sweep harness; the report written to
//! `target/sweep/scenarios.json` carries the `scenario_coverage` table
//! (every family × scenario × cores bucket the sweep exercised) and one
//! `scenario_ws_improvement_pct/*` summary row per family.

use drishti_bench::{
    exit_on_sweep_failure, header, mean_improvements, pct, row, sweep_groups, write_reports,
    ExpOpts, MixGroup,
};
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::conformance::adversarial::{search, SearchSpec};
use drishti_trace::mix::Mix;
use drishti_trace::presets::Benchmark;
use drishti_trace::scenario::datacenter_mix;

/// The policy columns: Mockingjay under the baseline and Drishti
/// organisations (the paper's headline pair, kept small so the smoke
/// gate's 4 family-runs stay fast).
fn policies(cores: usize) -> Vec<(PolicyKind, DrishtiConfig)> {
    vec![
        (PolicyKind::Mockingjay, DrishtiConfig::baseline(cores)),
        (PolicyKind::Mockingjay, DrishtiConfig::drishti(cores)),
    ]
}

fn main() {
    let opts = ExpOpts::from_args();
    let cores = opts.cores[0];
    println!("# Scenario diversity: phase / adversarial / datacenter families\n");

    // Stage 1 — adversarial search. Deterministic at any worker count
    // (max-misses reduction with ties to the lowest seed), so the report
    // stays byte-identical across --jobs settings.
    let spec = SearchSpec {
        jobs: opts.jobs,
        ..SearchSpec::quick(PolicyKind::Mockingjay, true, 0xd1517)
    };
    let (scores, worst) = search(&spec);
    println!(
        "adversarial search: {} candidates against d-mockingjay/drishti, \
         worst seed {:#x} ({} misses, {} slices touched)\n",
        scores.len(),
        worst.seed,
        worst.misses,
        worst.per_slice_misses.iter().filter(|&&m| m > 0).count()
    );

    // Stage 2 — the family sweep. --mixes caps each family's mix count
    // (the phase family tops out at its three presets).
    let take = opts.mixes.max(1);
    let groups = vec![
        MixGroup {
            label: "phase".to_string(),
            mixes: Benchmark::phase()
                .iter()
                .take(take)
                .map(|&b| Mix::homogeneous(b, cores, 1))
                .collect(),
            policies: policies(cores),
            rc: opts.rc(cores),
        },
        MixGroup {
            label: "adversarial".to_string(),
            mixes: vec![Mix::homogeneous(Benchmark::AdvScatter, cores, worst.seed)],
            policies: policies(cores),
            rc: opts.rc(cores),
        },
        MixGroup {
            label: "datacenter".to_string(),
            mixes: (1..=take as u64)
                .map(|s| datacenter_mix(cores, s))
                .collect(),
            policies: policies(cores),
            rc: opts.rc(cores),
        },
    ];

    let (group_evals, mut report, timing) =
        exit_on_sweep_failure(sweep_groups("scenarios", &groups, &opts));
    report
        .config
        .push(("adv_worst_seed".to_string(), format!("{:#x}", worst.seed)));
    for g in &group_evals {
        report.summary.push((
            format!("scenario_ws_improvement_pct/{}", g.label),
            mean_improvements(&g.evals),
        ));
    }

    println!("## Scenario coverage\n");
    header(
        "family/scenario",
        &["cores".to_string(), "cells".to_string()],
    );
    for c in &report.scenario_coverage {
        row(
            &format!("{}/{}", c.family, c.scenario),
            &[c.cores.to_string(), c.cells.to_string()],
        );
    }

    println!("\n## Weighted speedup over LRU\n");
    header(
        "family",
        &[
            "mockingjay/baseline".to_string(),
            "mockingjay/drishti".to_string(),
        ],
    );
    for g in &group_evals {
        let means = mean_improvements(&g.evals);
        row(
            &g.label,
            &means.iter().map(|(_, v)| pct(*v)).collect::<Vec<_>>(),
        );
    }
    println!(
        "\npaper: slicing-awareness is argued on steady archetypes (§5); \
         these families probe re-learning, worst-case scattering and \
         consolidation isolation"
    );
    if let Err(e) = write_reports(&opts, &report, &timing) {
        eprintln!("error: failed to write sweep report: {e}");
        std::process::exit(1);
    }
}

//! Figure 21: L2 size sensitivity (256 KB … 2 MB) on a 16-core system,
//! homogeneous mixes.
//!
//! Paper: Drishti keeps enhancing both policies at every L2 size, but with
//! a 2 MB L2 the headroom shrinks (working sets start fitting in L2 and
//! baseline LLC MPKI drops below 1).

use drishti_bench::{evaluate_mix, header, headline_policies, mean_improvements, pct, ExpOpts};
use drishti_sim::config::SystemConfig;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    println!("# Figure 21: L2 size sensitivity ({cores} cores)\n");
    header(
        "L2 size",
        &["hawkeye", "d-hawkeye", "mockingjay", "d-mockingjay"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for kib in [256usize, 512, 1024, 2048] {
        let mut rc = opts.rc(cores);
        rc.system = SystemConfig::with_l2_kib(cores, kib);
        let policies = headline_policies(cores);
        let evals: Vec<_> = opts
            .paper_mixes(cores)
            .iter()
            .filter(|m| m.is_homogeneous())
            .map(|m| evaluate_mix(m, &policies, &rc))
            .collect();
        let means = mean_improvements(&evals);
        drishti_bench::row(
            &format!("{kib} KB"),
            &means.iter().map(|(_, v)| pct(*v)).collect::<Vec<_>>(),
        );
    }
    println!("\npaper: gains shrink as L2 grows (working sets fit in L2)");
}

//! `drishti-perf`: the simulator-throughput trajectory gate (ROADMAP
//! item 3; see DESIGN.md §15).
//!
//! Runs the pinned cell matrix (2 fig13 mixes × {LRU, Mockingjay} ×
//! {baseline, drishti}, 4 cores, fixed seeds) single-threaded and through
//! the sweep pool, prints the per-cell steps/sec table, and writes a
//! `drishti-perf/v1` report to `BENCH_<YYYYMMDD>.json` (override with
//! `--out`). `--compare PATH` prints a report-only comparison against a
//! previous baseline — a >10% regression warns, never fails.

use drishti_bench::perf::{
    compare_reports, default_bench_path, run_perf, PerfOpts, COMPARE_CORES, MULTICHIP_CHIPS,
    MULTICHIP_CORES,
};

fn main() {
    let opts = PerfOpts::from_args();
    println!("# drishti-perf: pinned-matrix simulator throughput\n");
    let report = run_perf(&opts);

    println!("{:<44} {:>10} {:>14}", "cell", "wall s", "steps/sec");
    for (label, wall, steps) in &report.single_cells {
        println!("{label:<44} {wall:>10.3} {:>14.0}", *steps as f64 / *wall);
    }
    println!(
        "\nsingle-thread: {:.0} steps/sec, {:.0} accesses/sec ({} steps in {:.3} s, best of {})",
        report.single.steps_per_sec(),
        report.single.accesses_per_sec(),
        report.single.steps,
        report.single.wall_sec,
        report.opts.trials,
    );
    println!(
        "sweep pool ({} workers): {:.0} steps/sec, {:.2} cells/sec \
         (trace cache {}h/{}m, warm ckpt {}h/{}m)",
        report.pool_workers,
        report.pool.steps_per_sec(),
        report.pool_cells_per_sec,
        report.trace_cache.0,
        report.trace_cache.1,
        report.warm_ckpt.0,
        report.warm_ckpt.1,
    );
    println!(
        "trace store: {:.2} bytes/record over {} records",
        report.bytes_per_record(),
        report.trace_store.0
    );
    println!(
        "engine compare (idle-heavy, {COMPARE_CORES} cores / 1 active): \
         lockstep {:.0} steps/sec, event {:.0} steps/sec ({:.2}x)",
        report.engine_compare.lockstep.steps_per_sec(),
        report.engine_compare.event.steps_per_sec(),
        report.engine_compare.speedup(),
    );
    println!(
        "multichip ({MULTICHIP_CORES} cores / {MULTICHIP_CHIPS} chips, all active): \
         {:.0} steps/sec, {:.0} accesses/sec ({} inter-chip messages)",
        report.multichip.timing.steps_per_sec(),
        report.multichip.timing.accesses_per_sec(),
        report.multichip.interchip_messages,
    );

    if let Some(baseline) = &opts.compare {
        match std::fs::read_to_string(baseline) {
            Ok(json) => {
                println!("\ncomparison vs {}:", baseline.display());
                for line in compare_reports(&report, &json, 0.10) {
                    println!("  {line}");
                }
            }
            Err(e) => println!(
                "\nnote: cannot read baseline {}: {e}; skipping comparison",
                baseline.display()
            ),
        }
    }

    let out = opts.out.clone().unwrap_or_else(default_bench_path);
    if let Err(e) = report.write(&out) {
        eprintln!("error: failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("\nreport: {}", out.display());
}

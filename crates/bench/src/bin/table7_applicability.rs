//! Table 7: applicability of Drishti's two enhancements across replacement
//! policy families — the per-core-yet-global predictor applies to
//! prediction-based policies, the dynamic sampled cache to anything that
//! samples sets (set-dueling included); EVA-style distribution policies use
//! neither.
//!
//! This binary prints the matrix and *verifies each row by construction*:
//! it builds every policy under the Drishti configuration and checks that
//! predictor-fabric traffic appears exactly when the matrix says
//! Enhancement I applies.

use drishti_bench::ExpOpts;
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::runner::run_mix;
use drishti_trace::mix::Mix;
use drishti_trace::presets::Benchmark;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(4);
    let mut rc = opts.rc(cores);
    rc.accesses_per_core = rc.accesses_per_core.min(30_000);
    rc.warmup_accesses = rc.accesses_per_core / 4;
    let mix = Mix::homogeneous(Benchmark::Gcc, cores, 1);
    println!("# Table 7: applicability across policy families\n");
    println!(
        "{:<14} {:<20} {:>22} {:>18}",
        "policy", "family", "per-core predictor", "dynamic sampling"
    );
    for pk in PolicyKind::all() {
        let family = match pk {
            PolicyKind::Lru => "baseline",
            PolicyKind::Srrip | PolicyKind::Dip => "memoryless",
            _ => "prediction-based",
        };
        let pred = pk.is_prediction_based();
        let dsc = pk != PolicyKind::Lru && pk != PolicyKind::Srrip;
        println!(
            "{:<14} {:<20} {:>22} {:>18}",
            pk.label(),
            family,
            if pred { "yes" } else { "no (x)" },
            if dsc { "yes" } else { "no (x)" },
        );
        // Verify by construction: fabric traffic iff Enhancement I applies.
        let r = run_mix(&mix, pk, DrishtiConfig::drishti(cores), &rc);
        let has_traffic = r.fabric.messages > 0;
        assert_eq!(
            has_traffic, pred,
            "{pk}: fabric traffic {has_traffic} but matrix says {pred}"
        );
    }
    println!("\nverified: predictor-fabric traffic appears exactly for the");
    println!("prediction-based rows (paper Table 7's ✓ column).");
}

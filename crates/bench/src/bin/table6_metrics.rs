//! Table 6: weighted speedup, harmonic speedup, unfairness and maximum
//! individual slowdown for Hawkeye/D-Hawkeye/Mockingjay/D-Mockingjay on a
//! 32-core, 64 MB system.
//!
//! Runs on the parallel sweep harness (`--jobs N`); the sweep report
//! lands in `target/sweep/table6_metrics.json`.
//!
//! Paper values: WS +3.3/+5.6/+6.7/+13.3 %, HS +3.4/+5/+4.5/+12.8 %,
//! Unfairness 1.2/1.2/1.30/1.28, MIS 41.4/40/37/34.2 %.

use drishti_bench::{
    exit_on_sweep_failure, f2, header, headline_policies, pct, sweep_groups, write_reports,
    ExpOpts, MixGroup,
};
use drishti_sim::metrics::mean;

fn main() {
    let mut opts = ExpOpts::from_args();
    // Table 6 is a single-core-count table; use the largest requested.
    let cores = opts.cores.pop().unwrap_or(16);
    println!("# Table 6: multi-programmed metrics on {cores} cores\n");
    let policies = headline_policies(cores);
    let group = MixGroup {
        label: format!("{cores}c"),
        mixes: opts.paper_mixes(cores),
        policies: policies.clone(),
        rc: opts.rc(cores),
    };
    let (mut group_evals, mut report, timing) =
        exit_on_sweep_failure(sweep_groups("table6_metrics", &[group], &opts));
    let evals = group_evals.remove(0).evals;
    header(
        "metric",
        &["hawkeye", "d-hawkeye", "mockingjay", "d-mockingjay"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    let per_policy =
        |f: &dyn Fn(&drishti_bench::Cell, &drishti_bench::MixEval) -> f64| -> Vec<f64> {
            (0..policies.len())
                .map(|p| mean(&evals.iter().map(|e| f(&e.cells[p], e)).collect::<Vec<_>>()))
                .collect()
        };
    let ws = per_policy(&|c, _| c.ws_improvement_pct);
    drishti_bench::row(
        "WS improvement",
        &ws.iter().map(|v| pct(*v)).collect::<Vec<_>>(),
    );
    let hs = per_policy(&|c, e| {
        (c.metrics.harmonic_speedup() / e.lru_metrics.harmonic_speedup() - 1.0) * 100.0
    });
    drishti_bench::row(
        "HS improvement",
        &hs.iter().map(|v| pct(*v)).collect::<Vec<_>>(),
    );
    let unf = per_policy(&|c, _| c.metrics.unfairness());
    drishti_bench::row(
        "Unfairness",
        &unf.iter().map(|v| f2(*v)).collect::<Vec<_>>(),
    );
    let mis = per_policy(&|c, _| c.metrics.max_individual_slowdown() * 100.0);
    drishti_bench::row(
        "MIS (%)",
        &mis.iter().map(|v| format!("{v:.1}")).collect::<Vec<_>>(),
    );
    // The table's aggregates also go into the report summary, keyed by
    // the same policy/org columns as the per-group WS means.
    for (section, values) in [("mean_hs_improvement_pct", &hs), ("mean_unfairness", &unf)] {
        report.summary.push((
            section.to_string(),
            policies
                .iter()
                .zip(values)
                .map(|((pk, cfg), v)| (format!("{}/{}", pk.label(), cfg.label()), *v))
                .collect(),
        ));
    }
    println!("\npaper (32 cores): WS +3.3/+5.6/+6.7/+13.3; HS +3.4/+5/+4.5/+12.8;");
    println!("                  unfairness 1.2/1.2/1.30/1.28; MIS 41.4/40/37/34.2");
    if let Err(e) = write_reports(&opts, &report, &timing) {
        eprintln!("error: failed to write sweep report: {e}");
        std::process::exit(1);
    }
}

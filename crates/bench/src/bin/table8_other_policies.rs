//! Table 8: Drishti applied to SHiP++, CHROME and Glider on 16-core
//! systems (normalised weighted speedup over LRU).
//!
//! Paper: SHiP++ 1.03 → D-SHiP++ 1.08; CHROME 1.06 → D-CHROME 1.13;
//! Glider 1.03 → D-Glider 1.06.

use drishti_bench::{evaluate_mix, header, mean_improvements, ExpOpts};
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    let rc = opts.rc(cores);
    println!("# Table 8: Drishti with SHiP++, CHROME and Glider ({cores} cores)\n");
    let policies = vec![
        (PolicyKind::ShipPp, DrishtiConfig::baseline(cores)),
        (PolicyKind::ShipPp, DrishtiConfig::drishti(cores)),
        (PolicyKind::Chrome, DrishtiConfig::baseline(cores)),
        (PolicyKind::Chrome, DrishtiConfig::drishti(cores)),
        (PolicyKind::Glider, DrishtiConfig::baseline(cores)),
        (PolicyKind::Glider, DrishtiConfig::drishti(cores)),
    ];
    let evals: Vec<_> = opts
        .paper_mixes(cores)
        .iter()
        .map(|m| evaluate_mix(m, &policies, &rc))
        .collect();
    let means = mean_improvements(&evals);
    header(
        "normalised WS",
        &means.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
    );
    drishti_bench::row(
        "vs LRU",
        &means
            .iter()
            .map(|(_, v)| format!("{:.3}", 1.0 + v / 100.0))
            .collect::<Vec<_>>(),
    );
    println!("\npaper: 1.03→1.08 (SHiP++), 1.06→1.13 (CHROME), 1.03→1.06 (Glider)");
}

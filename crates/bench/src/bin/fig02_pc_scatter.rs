//! Figure 2: fraction of PCs per core (excluding single-load PCs) whose
//! demand loads map to exactly one LLC slice, for 16-core mixes.
//!
//! Paper: 66.2% average across 35 homogeneous + 35 heterogeneous mixes;
//! xalan is the worst (~40%, heavily scattered PCs), pr the best. The
//! metric is policy- and prefetcher-independent, so it is computed on the
//! recorded LLC-level demand stream of an LRU run.

use drishti_bench::ExpOpts;
use drishti_core::config::DrishtiConfig;
use drishti_noc::slicehash::{SliceHasher, XorFoldHash};
use drishti_policies::factory::PolicyKind;
use drishti_sim::pcstats::pc_slice_concentration;
use drishti_sim::runner::run_mix;
use drishti_trace::mix::Mix;
use drishti_trace::presets::Benchmark;

fn main() {
    let mut opts = ExpOpts::from_args();
    let cores = opts.cores.pop().unwrap_or(16);
    let mut rc = opts.rc(cores);
    rc.record_llc_stream = true;
    println!("# Figure 2: fraction of multi-load PCs mapping to one slice ({cores} cores)\n");
    let hasher = XorFoldHash::new();

    // Named homogeneous case studies first (the paper calls out xalan low,
    // pr high), then the mixed set for the average.
    let mut mixes = vec![
        Mix::homogeneous(Benchmark::Xalan, cores, 400),
        Mix::homogeneous(Benchmark::Mcf, cores, 401),
        Mix::homogeneous(Benchmark::PrKron, cores, 402),
    ];
    mixes.extend(opts.paper_mixes(cores));

    let mut fractions = Vec::new();
    println!("{:<24} {:>22}", "mix", "one-slice PCs (avg %)");
    for mix in &mixes {
        let r = run_mix(mix, PolicyKind::Lru, DrishtiConfig::baseline(cores), &rc);
        let stats =
            pc_slice_concentration(&r.llc_stream, cores, |line| hasher.slice_of(line, cores));
        let avg = stats.average() * 100.0;
        println!("{:<24} {avg:>21.1}%", mix.name);
        fractions.push(avg);
    }
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    println!("\naverage: {mean:.1}%  (paper: 66.2% average; xalan ≈40% — lowest)");
}

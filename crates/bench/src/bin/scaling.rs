//! Slice-count scaling study (DESIGN.md §17): Drishti vs LRU/Mockingjay
//! as the sliced LLC grows from 8 to 256 slices, spread over 1-, 2- and
//! 4-chip topologies with serializing inter-chip links.
//!
//! The paper evaluates Drishti on single-chip meshes up to 128 cores
//! (§5.3). This study extends the axis: once the slice count outgrows
//! one die, the NOCSTAR side-band no longer reaches every slice at mesh
//! latency — cross-chip predictor lookups pay the serialized gateway
//! path, recreating the Fig 11 latency tension at scale. Each rung of
//! the ladder is labelled `s<slices>c<chips>`; the 1-chip rungs use the
//! flat-mesh configuration and their report cells are byte-identical to
//! a flat-topology run of the same shape.
//!
//! Runs on the parallel sweep harness; the report written to
//! `target/sweep/scaling.json` carries one `scaling_ws_improvement_pct/*`
//! summary row per policy — the speedup-vs-slice-count table.

use drishti_bench::{
    exit_on_sweep_failure, header, pct, sweep_groups, write_reports, ExpOpts, MixGroup,
};
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::config::SystemConfig;

/// Keep the total simulated work per cell roughly constant as the slice
/// count grows: ~480k measured accesses per run, never fewer than 1k per
/// core.
fn capped_accesses(requested: u64, slices: usize) -> u64 {
    requested.min((480_000 / slices as u64).max(1_000))
}

/// The default ladder: total slices × chips. Two rungs share a slice
/// count (16×1 vs 16×2) so the chip split itself is isolated once, and
/// the top rungs push past the paper's 128-core ceiling.
fn default_ladder() -> Vec<(usize, usize)> {
    vec![
        (8, 1),
        (16, 1),
        (16, 2),
        (32, 2),
        (64, 4),
        (128, 4),
        (256, 4),
    ]
}

/// Chips for a user-supplied slice count: grow the package with the die
/// area, falling back to one chip when the count does not divide.
fn auto_chips(slices: usize) -> usize {
    for chips in [
        if slices <= 8 {
            1
        } else if slices <= 32 {
            2
        } else {
            4
        },
        2,
        1,
    ] {
        if slices.is_multiple_of(chips) {
            return chips;
        }
    }
    1
}

fn main() {
    let opts = ExpOpts::from_args();
    println!("# Scaling study: weighted speedup over LRU, 8 → 256 slices\n");
    let ladder: Vec<(usize, usize)> = if opts.cores == vec![4, 16] {
        default_ladder()
    } else {
        opts.cores.iter().map(|&s| (s, auto_chips(s))).collect()
    };
    let take = if opts.full {
        opts.mixes
    } else {
        opts.mixes.min(2)
    };

    let groups: Vec<MixGroup> = ladder
        .iter()
        .map(|&(slices, chips)| {
            let mut rc = opts.rc(slices);
            rc.system = SystemConfig::with_chips(slices, chips);
            rc.accesses_per_core = capped_accesses(opts.accesses, slices);
            rc.warmup_accesses = rc.accesses_per_core / 4;
            MixGroup {
                label: format!("s{slices}c{chips}"),
                mixes: opts.paper_mixes(slices).into_iter().take(take).collect(),
                policies: vec![
                    (
                        PolicyKind::Mockingjay,
                        DrishtiConfig::baseline(slices).with_chips(chips),
                    ),
                    (
                        PolicyKind::Mockingjay,
                        DrishtiConfig::drishti(slices).with_chips(chips),
                    ),
                ],
                rc,
            }
        })
        .collect();

    let (group_evals, mut report, timing) =
        exit_on_sweep_failure(sweep_groups("scaling", &groups, &opts));

    // The speedup-vs-slice-count table: one summary row per policy
    // column, one (rung label, mean WS improvement) pair per rung.
    let columns = ["mockingjay/baseline", "mockingjay/drishti"];
    for (p, col) in columns.iter().enumerate() {
        let pairs: Vec<(String, f64)> = group_evals
            .iter()
            .map(|g| {
                let vals: Vec<f64> = g
                    .evals
                    .iter()
                    .map(|e| e.cells[p].ws_improvement_pct)
                    .collect();
                (g.label.clone(), drishti_sim::metrics::mean(&vals))
            })
            .collect();
        report
            .summary
            .push((format!("scaling_ws_improvement_pct/{col}"), pairs));
    }

    header(
        "slices × chips",
        &columns.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    for (g, &(slices, chips)) in group_evals.iter().zip(&ladder) {
        let means = drishti_bench::mean_improvements(&g.evals);
        drishti_bench::row(
            &format!("{slices} slices / {chips} chip(s)"),
            &means.iter().map(|(_, v)| pct(*v)).collect::<Vec<_>>(),
        );
    }
    println!(
        "\npaper: single-chip advantage persists to 128 cores (§5.3); \
         past one die the side-band pays the serialized gateway path"
    );
    if let Err(e) = write_reports(&opts, &report, &timing) {
        eprintln!("error: failed to write sweep report: {e}");
        std::process::exit(1);
    }
}

//! Figure 13: performance improvement of Hawkeye, D-Hawkeye, Mockingjay and
//! D-Mockingjay over LRU on 4-, 16- and 32-core systems with 8, 32 and
//! 64 MB sliced LLCs, across homogeneous + heterogeneous mixes.
//!
//! Paper values (average normalised weighted speedup over LRU):
//!   4 cores:  Hawkeye +3.1%, D-Hawkeye +4.2%, Mockingjay +6.4%, D-Mockingjay +6.9%
//!   16 cores: (trend between 4 and 32)
//!   32 cores: Hawkeye +3.3%, D-Hawkeye +5.6%, Mockingjay +6.7%, D-Mockingjay +13.2%

use drishti_bench::{evaluate_mix, header, headline_policies, mean_improvements, pct, ExpOpts};

fn main() {
    let opts = ExpOpts::from_args();
    println!("# Figure 13: normalised weighted speedup over LRU\n");
    let policies_labels = ["hawkeye", "d-hawkeye", "mockingjay", "d-mockingjay"];
    header(
        "cores (LLC)",
        &policies_labels
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for &cores in &opts.cores {
        let rc = opts.rc(cores);
        let policies = headline_policies(cores);
        let evals: Vec<_> = opts
            .paper_mixes(cores)
            .iter()
            .map(|m| evaluate_mix(m, &policies, &rc))
            .collect();
        let means = mean_improvements(&evals);
        drishti_bench::row(
            &format!("{cores} cores ({} MB)", cores * 2),
            &means.iter().map(|(_, v)| pct(*v)).collect::<Vec<_>>(),
        );
    }
    println!("\npaper: 4-core +3.1/+4.2/+6.4/+6.9; 32-core +3.3/+5.6/+6.7/+13.2");
}

//! Figure 13: performance improvement of Hawkeye, D-Hawkeye, Mockingjay and
//! D-Mockingjay over LRU on 4-, 16- and 32-core systems with 8, 32 and
//! 64 MB sliced LLCs, across homogeneous + heterogeneous mixes.
//!
//! Runs on the parallel sweep harness: every `(mix, policy, organisation)`
//! cell — across *all* requested core counts — goes into one job batch,
//! and the report written to `target/sweep/` is bit-identical for any
//! `--jobs` value (the CI determinism gate diffs `--jobs 1` against
//! `--jobs max` on exactly this binary).
//!
//! Paper values (average normalised weighted speedup over LRU):
//!   4 cores:  Hawkeye +3.1%, D-Hawkeye +4.2%, Mockingjay +6.4%, D-Mockingjay +6.9%
//!   16 cores: (trend between 4 and 32)
//!   32 cores: Hawkeye +3.3%, D-Hawkeye +5.6%, Mockingjay +6.7%, D-Mockingjay +13.2%

use drishti_bench::{
    exit_on_sweep_failure, header, headline_policies, mean_improvements, pct, sweep_groups,
    write_reports, ExpOpts, MixGroup,
};

fn main() {
    let opts = ExpOpts::from_args();
    println!("# Figure 13: normalised weighted speedup over LRU\n");
    let policies_labels = ["hawkeye", "d-hawkeye", "mockingjay", "d-mockingjay"];
    header(
        "cores (LLC)",
        &policies_labels
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    let groups: Vec<MixGroup> = opts
        .cores
        .iter()
        .map(|&cores| MixGroup {
            label: format!("{cores}c"),
            mixes: opts.paper_mixes(cores),
            policies: headline_policies(cores),
            rc: opts.rc(cores),
        })
        .collect();
    let (group_evals, report, timing) =
        exit_on_sweep_failure(sweep_groups("fig13_main_performance", &groups, &opts));
    for g in &group_evals {
        let cores = g.mixes[0].cores();
        let means = mean_improvements(&g.evals);
        drishti_bench::row(
            &format!("{cores} cores ({} MB)", cores * 2),
            &means.iter().map(|(_, v)| pct(*v)).collect::<Vec<_>>(),
        );
    }
    println!("\npaper: 4-core +3.1/+4.2/+6.4/+6.9; 32-core +3.3/+5.6/+6.7/+13.2");
    if let Err(e) = write_reports(&opts, &report, &timing) {
        eprintln!("error: failed to write sweep report: {e}");
        std::process::exit(1);
    }
}

//! Figure 10: predictor accesses (training + prediction lookups) per
//! kilo-instruction, centralized global predictor vs. Drishti's per-core
//! global predictors, on 4/8/16/32 cores.
//!
//! Paper: centralized — >65 APKI average at 32 cores (max 257.76, mcf);
//! per-core — 2.46 APKI average per core (max 8.05). The point is that a
//! single centralized structure must absorb the *sum* of all cores'
//! traffic, while per-core structures split it.

use drishti_bench::ExpOpts;
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::runner::run_mix;

fn main() {
    let opts = ExpOpts::from_args();
    println!("# Figure 10: predictor accesses per kilo-instruction\n");
    println!(
        "{:<8} {:>22} {:>26}",
        "cores", "centralized (total)", "per-core global (per bank)"
    );
    for &cores in &opts.cores {
        let rc = opts.rc(cores);
        let mixes = opts.paper_mixes(cores);
        let mut centralized = Vec::new();
        let mut per_core = Vec::new();
        for mix in &mixes {
            let c = run_mix(
                mix,
                PolicyKind::Mockingjay,
                DrishtiConfig::centralized(cores),
                &rc,
            );
            centralized.push(c.predictor_apki());
            let d = run_mix(
                mix,
                PolicyKind::Mockingjay,
                DrishtiConfig::drishti(cores),
                &rc,
            );
            // Per-core banks split the same traffic across `cores` banks.
            per_core.push(d.predictor_apki() / cores as f64);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{cores:<8} {:>22.2} {:>26.2}",
            avg(&centralized),
            avg(&per_core)
        );
    }
    println!("\npaper (32 cores): centralized >65 APKI (max 257.8); per-core 2.46 (max 8.05)");
}

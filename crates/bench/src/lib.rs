//! Experiment harness shared by the per-figure/per-table binaries.
//!
//! Every binary reproduces one table or figure of the Drishti paper (see
//! DESIGN.md §4 for the index and EXPERIMENTS.md for paper-vs-measured
//! results). They share a common protocol:
//!
//! 1. build the paper's workload mixes ([`drishti_trace::mix`]);
//! 2. run each mix under LRU (the baseline), measure per-core alone-IPCs;
//! 3. run each mix under the policies being compared;
//! 4. report weighted speedup normalised to LRU (and the figure's other
//!    metrics).
//!
//! # Scale
//!
//! By default the binaries run *shape-preserving* reduced configurations
//! (fewer mixes, shorter traces, 4/16 cores) so the whole suite finishes in
//! minutes. Pass `--full` for paper-scale mixes (70), core counts
//! (4/16/32) and longer traces; `--mixes N` / `--cores a,b,c` /
//! `--accesses N` override individual knobs.
//!
//! # Parallelism and reports
//!
//! The sweep-driven binaries (`fig13_main_performance`, `table6_metrics`,
//! `fig17_ablation`, `resilience`) execute their cells on the
//! [`drishti_sim::sweep`] harness: `--jobs N` picks the worker count
//! (default: all available cores; results are bit-identical at any
//! width), and every run writes a `drishti-sweep/v1` JSON report plus a
//! timing sidecar to `target/sweep/` (`--report PATH` overrides the
//! destination). The remaining binaries accept and ignore `--jobs` so
//! `all_experiments` can forward one flag set to the whole suite.

use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::config::SystemConfig;
use drishti_sim::engine::EngineMode;
use drishti_sim::metrics::{mean, MixMetrics};
use drishti_sim::runner::{alone_ipcs, mix_metrics, run_mix, RunConfig, RunResult};
use drishti_sim::sampling::SamplingSpec;
use drishti_sim::sweep::report::{SweepReport, SweepTiming};
use drishti_sim::sweep::{journal, run_sweep_resumable, JobKind, JobOutput, SweepJob};
use drishti_sim::telemetry::TelemetrySpec;
use drishti_trace::mix::Mix;
use drishti_trace::replay::TraceCache;
use std::path::PathBuf;
use std::sync::Arc;

pub mod perf;

const OPTS_USAGE: &str = "usage: [--full] [--mixes N] [--cores a,b,c] [--accesses N] \
[--jobs N] [--report PATH] [--resume] [--telemetry] [--epoch N] \
[--sample-interval N] [--sample-warmup N] [--engine lockstep|event]";

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOpts {
    /// Paper-scale run (70 mixes, 4/16/32 cores, long traces).
    pub full: bool,
    /// Number of mixes per configuration.
    pub mixes: usize,
    /// Core counts to evaluate.
    pub cores: Vec<usize>,
    /// Measured accesses per core.
    pub accesses: u64,
    /// Sweep worker threads (0 = all available cores).
    pub jobs: usize,
    /// Report destination override (default: `target/sweep/<name>.json`).
    pub report: Option<PathBuf>,
    /// Resume an interrupted sweep from its `<report>.journal`: journaled
    /// cells are loaded, only the unfinished remainder is simulated. The
    /// final report is byte-identical either way.
    pub resume: bool,
    /// Sample per-epoch telemetry timelines during every run.
    pub telemetry: bool,
    /// Telemetry epoch length in engine steps (0 = library default).
    pub epoch: u64,
    /// Interval-sampling period in records (0 = full simulation).
    pub sample_interval: u64,
    /// Warm records before each detailed window.
    pub sample_warmup: u64,
    /// Engine scheduling mode (bit-identical results either way; exposed
    /// for differential gates and throughput comparisons).
    pub engine: EngineMode,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts {
            full: false,
            mixes: 6,
            cores: vec![4, 16],
            accesses: 80_000,
            jobs: 0,
            report: None,
            resume: false,
            telemetry: false,
            epoch: 0,
            sample_interval: 0,
            sample_warmup: 0,
            engine: EngineMode::default(),
        }
    }
}

impl ExpOpts {
    /// Parse an argument list. Unknown or malformed arguments are
    /// rejected with an actionable message.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = ExpOpts::default();
        let mut i = 0;
        let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        while i < args.len() {
            let flag = args[i].as_str();
            match flag {
                "--full" => {
                    opts.full = true;
                    opts.mixes = 70;
                    opts.cores = vec![4, 16, 32];
                    opts.accesses = 400_000;
                    i += 1;
                    continue;
                }
                "--telemetry" => {
                    opts.telemetry = true;
                    i += 1;
                    continue;
                }
                "--resume" => {
                    opts.resume = true;
                    i += 1;
                    continue;
                }
                "--epoch" => {
                    opts.epoch = parse_num(flag, &value(args, i, flag)?)?;
                    opts.telemetry = true; // an explicit epoch implies telemetry
                }
                "--mixes" => {
                    opts.mixes = parse_num(flag, &value(args, i, flag)?)?;
                }
                "--accesses" => {
                    opts.accesses = parse_num(flag, &value(args, i, flag)?)?;
                }
                "--jobs" => {
                    opts.jobs = parse_num(flag, &value(args, i, flag)?)?;
                }
                "--report" => {
                    opts.report = Some(PathBuf::from(value(args, i, flag)?));
                }
                "--sample-interval" => {
                    opts.sample_interval = parse_num(flag, &value(args, i, flag)?)?;
                }
                "--sample-warmup" => {
                    opts.sample_warmup = parse_num(flag, &value(args, i, flag)?)?;
                }
                "--cores" => {
                    opts.cores = value(args, i, flag)?
                        .split(',')
                        .map(|c| parse_num("--cores", c))
                        .collect::<Result<_, _>>()?;
                }
                "--engine" => {
                    let v = value(args, i, flag)?;
                    opts.engine = EngineMode::parse(&v)
                        .ok_or_else(|| format!("--engine must be lockstep or event, got {v}"))?;
                }
                other => return Err(format!("unknown argument {other}")),
            }
            i += 2;
        }
        if opts.mixes == 0 || opts.accesses == 0 {
            return Err("--mixes and --accesses must be at least 1".to_string());
        }
        if opts.cores.is_empty() || opts.cores.contains(&0) {
            return Err("--cores needs at least one nonzero core count".to_string());
        }
        opts.sampling_spec().validate()?;
        Ok(opts)
    }

    /// Parse `std::env::args`, exiting with status 2 (and the usage
    /// string on stderr) on malformed arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        ExpOpts::parse(&args).unwrap_or_else(|msg| {
            eprintln!("error: {msg}\n{OPTS_USAGE}");
            std::process::exit(2);
        })
    }

    /// The telemetry spec these options describe.
    pub fn telemetry_spec(&self) -> TelemetrySpec {
        if !self.telemetry {
            return TelemetrySpec::off();
        }
        let steps = if self.epoch == 0 {
            drishti_sim::telemetry::DEFAULT_EPOCH_STEPS
        } else {
            self.epoch
        };
        TelemetrySpec::sampling(steps)
    }

    /// The interval-sampling schedule these options describe.
    pub fn sampling_spec(&self) -> SamplingSpec {
        SamplingSpec::every(self.sample_interval, self.sample_warmup)
    }

    /// The run configuration for `cores` cores.
    pub fn rc(&self, cores: usize) -> RunConfig {
        RunConfig {
            system: SystemConfig::paper_baseline(cores),
            accesses_per_core: self.accesses,
            warmup_accesses: self.accesses / 4,
            record_llc_stream: false,
            sampling: self.sampling_spec(),
            telemetry: self.telemetry_spec(),
            engine: self.engine,
        }
    }

    /// The paper's main mix set scaled to `self.mixes` (half homogeneous,
    /// half heterogeneous, like the paper's 35 + 35).
    pub fn paper_mixes(&self, cores: usize) -> Vec<Mix> {
        drishti_trace::mix::paper_mixes(cores, self.mixes.div_ceil(2), self.mixes / 2)
    }
}

pub(crate) fn parse_num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag} needs a number, got `{s}`"))
}

/// One evaluated (mix, policy) cell.
#[derive(Debug)]
pub struct Cell {
    /// Name the policy reported.
    pub policy: String,
    /// Weighted speedup normalised to the same mix under LRU, ×100 − 100
    /// (i.e. "% improvement over LRU", the paper's headline metric).
    pub ws_improvement_pct: f64,
    /// The raw run result.
    pub result: RunResult,
    /// Mix metrics against alone-IPC baselines.
    pub metrics: MixMetrics,
}

/// Evaluation of one mix under LRU plus a set of policies.
#[derive(Debug)]
pub struct MixEval {
    /// The mix name.
    pub mix: String,
    /// LRU baseline run.
    pub lru: RunResult,
    /// LRU weighted speedup (the normalisation denominator).
    pub lru_ws: f64,
    /// LRU mix metrics.
    pub lru_metrics: MixMetrics,
    /// Per-policy cells, in the order requested.
    pub cells: Vec<Cell>,
}

/// Run `mix` under LRU and every `(policy, organisation)` pair.
pub fn evaluate_mix(
    mix: &Mix,
    policies: &[(PolicyKind, DrishtiConfig)],
    rc: &RunConfig,
) -> MixEval {
    let alone = alone_ipcs(mix, rc);
    let lru = run_mix(
        mix,
        PolicyKind::Lru,
        DrishtiConfig::baseline(mix.cores()),
        rc,
    );
    let lru_metrics = mix_metrics(&lru, &alone);
    let lru_ws = lru_metrics.weighted_speedup();
    let cells = policies
        .iter()
        .map(|(pk, cfg)| {
            let result = run_mix(mix, *pk, cfg.clone(), rc);
            let metrics = mix_metrics(&result, &alone);
            Cell {
                policy: result.policy.clone(),
                ws_improvement_pct: (metrics.weighted_speedup() / lru_ws - 1.0) * 100.0,
                result,
                metrics,
            }
        })
        .collect();
    MixEval {
        mix: mix.name.clone(),
        lru,
        lru_ws,
        lru_metrics,
        cells,
    }
}

/// Mean % WS improvement per policy across a set of mix evaluations.
pub fn mean_improvements(evals: &[MixEval]) -> Vec<(String, f64)> {
    if evals.is_empty() {
        return Vec::new();
    }
    (0..evals[0].cells.len())
        .map(|p| {
            let vals: Vec<f64> = evals
                .iter()
                .map(|e| e.cells[p].ws_improvement_pct)
                .collect();
            (evals[0].cells[p].policy.clone(), mean(&vals))
        })
        .collect()
}

/// One batch of mixes evaluated under one `(policies, run-config)` pair —
/// e.g. "all 4-core mixes under the headline policies". Binaries hand a
/// list of groups to [`sweep_groups`], which flattens every group into one
/// job batch so cells from *different* core counts also run concurrently.
#[derive(Debug, Clone)]
pub struct MixGroup {
    /// Group label used in report summaries (e.g. `"4c"`).
    pub label: String,
    /// The mixes to evaluate.
    pub mixes: Vec<Mix>,
    /// The `(policy, organisation)` pairs to compare against LRU.
    pub policies: Vec<(PolicyKind, DrishtiConfig)>,
    /// The run configuration shared by the group's cells.
    pub rc: RunConfig,
}

/// One evaluated group: the input mixes paired with their evaluations
/// (same order), ready for figure-specific filtering and averaging.
#[derive(Debug)]
pub struct GroupEval {
    /// The group's label.
    pub label: String,
    /// The group's mixes, in evaluation order.
    pub mixes: Vec<Mix>,
    /// One [`MixEval`] per mix.
    pub evals: Vec<MixEval>,
}

/// A sweep in which one or more cells panicked. The surviving cells are
/// intentionally discarded: a partial figure is worse than a loud failure
/// (CI must go red, not quietly average over the missing cells).
#[derive(Debug)]
pub struct SweepFailed(pub Vec<drishti_sim::sweep::JobFailure>);

impl std::fmt::Display for SweepFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} sweep cell(s) failed:", self.0.len())?;
        for fail in &self.0 {
            writeln!(f, "  {fail}")?;
        }
        Ok(())
    }
}

/// Per-mix job layout inside a group: alone-IPC baselines, the LRU
/// normalisation run, then one run per compared policy.
const JOBS_PER_MIX_FIXED: usize = 2;

/// Evaluate every group's mixes on the parallel sweep harness.
///
/// Flattens all groups into one dense job batch (per mix: one alone-IPC
/// job, one LRU job, one job per policy), executes it on
/// [`drishti_sim::sweep::run_sweep`] with `opts.jobs` workers and a shared
/// [`TraceCache`], and aggregates deterministically by job id — output is
/// bit-identical for any worker count. Returns the per-group evaluations
/// plus the enriched [`SweepReport`] (per-cell `ws`/`ws_improvement_pct`,
/// per-group mean-improvement summaries) and the host-side
/// [`SweepTiming`].
pub fn sweep_groups(
    name: &str,
    groups: &[MixGroup],
    opts: &ExpOpts,
) -> Result<(Vec<GroupEval>, SweepReport, SweepTiming), SweepFailed> {
    let mut jobs = Vec::new();
    for group in groups {
        let stride = group.policies.len() + JOBS_PER_MIX_FIXED;
        for mix in &group.mixes {
            let base = jobs.len();
            jobs.push(SweepJob {
                id: base,
                label: format!("{}/alone", mix.name),
                seed: SweepJob::derive_seed(base),
                rc: group.rc.clone(),
                kind: JobKind::AloneIpcs { mix: mix.clone() },
            });
            jobs.push(SweepJob {
                id: base + 1,
                label: format!("{}/lru/baseline", mix.name),
                seed: SweepJob::derive_seed(base + 1),
                rc: group.rc.clone(),
                kind: JobKind::Run {
                    mix: mix.clone(),
                    policy: PolicyKind::Lru,
                    org: DrishtiConfig::baseline(mix.cores()),
                    org_label: "baseline".to_string(),
                },
            });
            for (p, (pk, cfg)) in group.policies.iter().enumerate() {
                jobs.push(SweepJob {
                    id: base + JOBS_PER_MIX_FIXED + p,
                    label: format!("{}/{}/{}", mix.name, pk.label(), cfg.label()),
                    seed: SweepJob::derive_seed(base + JOBS_PER_MIX_FIXED + p),
                    rc: group.rc.clone(),
                    kind: JobKind::Run {
                        mix: mix.clone(),
                        policy: *pk,
                        org: cfg.clone(),
                        org_label: cfg.label(),
                    },
                });
            }
            debug_assert_eq!(jobs.len(), base + stride);
        }
    }

    let cache = Arc::new(TraceCache::new());
    // Every sweep is journaled beside its report: completed cells land in
    // `<report>.journal` as they finish, so a killed run can be picked up
    // with `--resume`. The journal is removed again by [`write_reports`]
    // on clean completion. A journal that exists but belongs to a
    // different job set is a hard refusal (exit 2), not a silent re-run.
    let journal_file = journal::journal_path(&report_path(opts, name));
    let outcome = run_sweep_resumable(&jobs, opts.jobs, &cache, &journal_file, opts.resume)
        .unwrap_or_else(|err| {
            eprintln!(
                "error: cannot resume from {}: {err}",
                journal_file.display()
            );
            std::process::exit(2);
        });
    let timing = SweepTiming::from_outcome(name, &outcome);
    let failures: Vec<_> = outcome.failures().into_iter().cloned().collect();
    if !failures.is_empty() {
        return Err(SweepFailed(failures));
    }
    let mut report = SweepReport::from_outcome(name, &jobs, &outcome);
    report
        .config
        .push(("mixes".to_string(), opts.mixes.to_string()));
    report
        .config
        .push(("accesses".to_string(), opts.accesses.to_string()));
    report.config.push((
        "cores".to_string(),
        groups
            .iter()
            .map(|g| g.rc.system.cores.to_string())
            .collect::<Vec<_>>()
            .join(","),
    ));
    // Sampled runs are not byte-comparable to full runs, so stamp the
    // schedule into the config (only when on — full-run reports keep
    // their historical bytes).
    if opts.sampling_spec().enabled() {
        report.config.push((
            "sample_interval".to_string(),
            opts.sample_interval.to_string(),
        ));
        report
            .config
            .push(("sample_warmup".to_string(), opts.sample_warmup.to_string()));
    }

    // Fold outputs back into per-mix evaluations, enriching the report's
    // cells with the LRU-normalised metrics as we go. Outputs arrive in
    // job-id order, which is exactly construction order.
    let mut outputs = outcome
        .outputs
        .into_iter()
        .map(|o| o.expect("failures handled above"));
    let mut next_id = 0;
    let mut group_evals = Vec::with_capacity(groups.len());
    for group in groups {
        let mut evals = Vec::with_capacity(group.mixes.len());
        for mix in &group.mixes {
            let alone = match outputs.next().expect("alone output") {
                JobOutput::AloneIpcs(a) => a,
                JobOutput::Run(_) => unreachable!("job layout: alone first"),
            };
            let lru = match outputs.next().expect("lru output") {
                JobOutput::Run(r) => *r,
                JobOutput::AloneIpcs(_) => unreachable!("job layout: lru second"),
            };
            let lru_metrics = mix_metrics(&lru, &alone);
            let lru_ws = lru_metrics.weighted_speedup();
            let lru_id = next_id + 1;
            enrich_cell(&mut report, lru_id, lru_ws, 0.0);
            let cells = group
                .policies
                .iter()
                .enumerate()
                .map(|(p, _)| {
                    let result = match outputs.next().expect("policy output") {
                        JobOutput::Run(r) => *r,
                        JobOutput::AloneIpcs(_) => unreachable!("job layout: runs after lru"),
                    };
                    let metrics = mix_metrics(&result, &alone);
                    let ws_improvement_pct = (metrics.weighted_speedup() / lru_ws - 1.0) * 100.0;
                    enrich_cell(
                        &mut report,
                        next_id + JOBS_PER_MIX_FIXED + p,
                        metrics.weighted_speedup(),
                        ws_improvement_pct,
                    );
                    Cell {
                        policy: result.policy.clone(),
                        ws_improvement_pct,
                        result,
                        metrics,
                    }
                })
                .collect();
            next_id += group.policies.len() + JOBS_PER_MIX_FIXED;
            evals.push(MixEval {
                mix: mix.name.clone(),
                lru,
                lru_ws,
                lru_metrics,
                cells,
            });
        }
        // Per-group summary: mean WS improvement per (policy, org) column.
        let pairs = group
            .policies
            .iter()
            .enumerate()
            .map(|(p, (pk, cfg))| {
                let vals: Vec<f64> = evals
                    .iter()
                    .map(|e| e.cells[p].ws_improvement_pct)
                    .collect();
                (format!("{}/{}", pk.label(), cfg.label()), mean(&vals))
            })
            .collect();
        report
            .summary
            .push((format!("mean_ws_improvement_pct/{}", group.label), pairs));
        group_evals.push(GroupEval {
            label: group.label.clone(),
            mixes: group.mixes.clone(),
            evals,
        });
    }
    debug_assert!(outputs.next().is_none(), "all outputs consumed");
    Ok((group_evals, report, timing))
}

fn enrich_cell(report: &mut SweepReport, id: usize, ws: f64, ws_improvement_pct: f64) {
    let cell = report.cell_mut(id).expect("run cell present in report");
    cell.metrics.push(("ws".to_string(), ws));
    cell.metrics
        .push(("ws_improvement_pct".to_string(), ws_improvement_pct));
}

/// The report path a sweep named `name` will write to: `--report` or the
/// default `target/sweep/<name>.json`. The completion journal lives
/// beside it (`<report>.journal`).
pub fn report_path(opts: &ExpOpts, name: &str) -> PathBuf {
    opts.report
        .clone()
        .unwrap_or_else(|| drishti_sim::sweep::report::default_report_path(name))
}

/// Write `report` (and its timing sidecar) to `opts.report` or the
/// default `target/sweep/<name>.json`, and announce both on stderr
/// together with the timing line. A successfully written report marks
/// clean completion, so the sweep's journal (now redundant) is removed.
/// Returns the report path.
pub fn write_reports(
    opts: &ExpOpts,
    report: &SweepReport,
    timing: &SweepTiming,
) -> std::io::Result<PathBuf> {
    let path = report_path(opts, &report.name);
    report.write(&path)?;
    journal::remove_on_success(&path)?;
    // Timeline file names go in the host-dependent timing sidecar so the
    // main report stays byte-comparable with telemetry on or off.
    let mut timing = timing.clone();
    timing.attach_timelines(report, &path);
    let timing_path = timing.write_beside(&path)?;
    eprintln!("{}", timing.line());
    eprintln!(
        "report: {} (timing: {})",
        path.display(),
        timing_path.display()
    );
    Ok(path)
}

/// Run a sweep-driven experiment binary's body and convert sweep
/// failures into a nonzero exit (CI must fail when a cell errors).
pub fn exit_on_sweep_failure<T>(result: Result<T, SweepFailed>) -> T {
    result.unwrap_or_else(|failed| {
        eprintln!("error: {failed}");
        std::process::exit(1);
    })
}

/// The four headline configurations of the paper's main figures:
/// Hawkeye, D-Hawkeye, Mockingjay, D-Mockingjay.
pub fn headline_policies(cores: usize) -> Vec<(PolicyKind, DrishtiConfig)> {
    vec![
        (PolicyKind::Hawkeye, DrishtiConfig::baseline(cores)),
        (PolicyKind::Hawkeye, DrishtiConfig::drishti(cores)),
        (PolicyKind::Mockingjay, DrishtiConfig::baseline(cores)),
        (PolicyKind::Mockingjay, DrishtiConfig::drishti(cores)),
    ]
}

/// Print a markdown-style table row.
pub fn row(label: &str, values: &[String]) {
    print!("| {label:<28} |");
    for v in values {
        print!(" {v:>12} |");
    }
    println!();
}

/// Print a markdown-style table header.
pub fn header(label: &str, columns: &[String]) {
    row(label, columns);
    print!("|{}|", "-".repeat(30));
    for _ in columns {
        print!("{}|", "-".repeat(14));
    }
    println!();
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Format a float.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use drishti_trace::presets::Benchmark;

    #[test]
    fn evaluate_mix_smoke() {
        let mix = Mix::homogeneous(Benchmark::Deepsjeng, 4, 1);
        let rc = RunConfig {
            system: SystemConfig::paper_baseline(4),
            accesses_per_core: 3_000,
            warmup_accesses: 500,
            record_llc_stream: false,
            sampling: SamplingSpec::off(),
            telemetry: TelemetrySpec::off(),
            engine: EngineMode::default(),
        };
        let eval = evaluate_mix(
            &mix,
            &[(PolicyKind::Srrip, DrishtiConfig::baseline(4))],
            &rc,
        );
        assert_eq!(eval.cells.len(), 1);
        assert!(eval.lru_ws > 0.0);
        assert!(eval.cells[0].ws_improvement_pct.is_finite());
        let means = mean_improvements(&[eval]);
        assert_eq!(means.len(), 1);
        assert_eq!(means[0].0, "srrip");
    }

    #[test]
    fn headline_policies_are_four() {
        let hp = headline_policies(4);
        assert_eq!(hp.len(), 4);
    }
}

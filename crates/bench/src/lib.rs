//! Experiment harness shared by the per-figure/per-table binaries.
//!
//! Every binary reproduces one table or figure of the Drishti paper (see
//! DESIGN.md §4 for the index and EXPERIMENTS.md for paper-vs-measured
//! results). They share a common protocol:
//!
//! 1. build the paper's workload mixes ([`drishti_trace::mix`]);
//! 2. run each mix under LRU (the baseline), measure per-core alone-IPCs;
//! 3. run each mix under the policies being compared;
//! 4. report weighted speedup normalised to LRU (and the figure's other
//!    metrics).
//!
//! # Scale
//!
//! By default the binaries run *shape-preserving* reduced configurations
//! (fewer mixes, shorter traces, 4/16 cores) so the whole suite finishes in
//! minutes. Pass `--full` for paper-scale mixes (70), core counts
//! (4/16/32) and longer traces; `--mixes N` / `--cores a,b,c` /
//! `--accesses N` override individual knobs.

use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::config::SystemConfig;
use drishti_sim::metrics::{mean, MixMetrics};
use drishti_sim::runner::{alone_ipcs, mix_metrics, run_mix, RunConfig, RunResult};
use drishti_trace::mix::Mix;

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOpts {
    /// Paper-scale run (70 mixes, 4/16/32 cores, long traces).
    pub full: bool,
    /// Number of mixes per configuration.
    pub mixes: usize,
    /// Core counts to evaluate.
    pub cores: Vec<usize>,
    /// Measured accesses per core.
    pub accesses: u64,
}

impl ExpOpts {
    /// Parse `std::env::args`. Unknown arguments are rejected.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = ExpOpts {
            full: false,
            mixes: 6,
            cores: vec![4, 16],
            accesses: 80_000,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => {
                    opts.full = true;
                    opts.mixes = 70;
                    opts.cores = vec![4, 16, 32];
                    opts.accesses = 400_000;
                }
                "--mixes" => {
                    i += 1;
                    opts.mixes = args[i].parse().expect("--mixes takes a number");
                }
                "--accesses" => {
                    i += 1;
                    opts.accesses = args[i].parse().expect("--accesses takes a number");
                }
                "--cores" => {
                    i += 1;
                    opts.cores = args[i]
                        .split(',')
                        .map(|c| c.parse().expect("--cores takes e.g. 4,16,32"))
                        .collect();
                }
                other => panic!(
                    "unknown argument {other}; usage: [--full] [--mixes N] [--cores a,b,c] [--accesses N]"
                ),
            }
            i += 1;
        }
        opts
    }

    /// The run configuration for `cores` cores.
    pub fn rc(&self, cores: usize) -> RunConfig {
        RunConfig {
            system: SystemConfig::paper_baseline(cores),
            accesses_per_core: self.accesses,
            warmup_accesses: self.accesses / 4,
            record_llc_stream: false,
        }
    }

    /// The paper's main mix set scaled to `self.mixes` (half homogeneous,
    /// half heterogeneous, like the paper's 35 + 35).
    pub fn paper_mixes(&self, cores: usize) -> Vec<Mix> {
        drishti_trace::mix::paper_mixes(cores, self.mixes.div_ceil(2), self.mixes / 2)
    }
}

/// One evaluated (mix, policy) cell.
#[derive(Debug)]
pub struct Cell {
    /// Name the policy reported.
    pub policy: String,
    /// Weighted speedup normalised to the same mix under LRU, ×100 − 100
    /// (i.e. "% improvement over LRU", the paper's headline metric).
    pub ws_improvement_pct: f64,
    /// The raw run result.
    pub result: RunResult,
    /// Mix metrics against alone-IPC baselines.
    pub metrics: MixMetrics,
}

/// Evaluation of one mix under LRU plus a set of policies.
#[derive(Debug)]
pub struct MixEval {
    /// The mix name.
    pub mix: String,
    /// LRU baseline run.
    pub lru: RunResult,
    /// LRU weighted speedup (the normalisation denominator).
    pub lru_ws: f64,
    /// LRU mix metrics.
    pub lru_metrics: MixMetrics,
    /// Per-policy cells, in the order requested.
    pub cells: Vec<Cell>,
}

/// Run `mix` under LRU and every `(policy, organisation)` pair.
pub fn evaluate_mix(
    mix: &Mix,
    policies: &[(PolicyKind, DrishtiConfig)],
    rc: &RunConfig,
) -> MixEval {
    let alone = alone_ipcs(mix, rc);
    let lru = run_mix(
        mix,
        PolicyKind::Lru,
        DrishtiConfig::baseline(mix.cores()),
        rc,
    );
    let lru_metrics = mix_metrics(&lru, &alone);
    let lru_ws = lru_metrics.weighted_speedup();
    let cells = policies
        .iter()
        .map(|(pk, cfg)| {
            let result = run_mix(mix, *pk, cfg.clone(), rc);
            let metrics = mix_metrics(&result, &alone);
            Cell {
                policy: result.policy.clone(),
                ws_improvement_pct: (metrics.weighted_speedup() / lru_ws - 1.0) * 100.0,
                result,
                metrics,
            }
        })
        .collect();
    MixEval {
        mix: mix.name.clone(),
        lru,
        lru_ws,
        lru_metrics,
        cells,
    }
}

/// Mean % WS improvement per policy across a set of mix evaluations.
pub fn mean_improvements(evals: &[MixEval]) -> Vec<(String, f64)> {
    if evals.is_empty() {
        return Vec::new();
    }
    (0..evals[0].cells.len())
        .map(|p| {
            let vals: Vec<f64> = evals
                .iter()
                .map(|e| e.cells[p].ws_improvement_pct)
                .collect();
            (evals[0].cells[p].policy.clone(), mean(&vals))
        })
        .collect()
}

/// The four headline configurations of the paper's main figures:
/// Hawkeye, D-Hawkeye, Mockingjay, D-Mockingjay.
pub fn headline_policies(cores: usize) -> Vec<(PolicyKind, DrishtiConfig)> {
    vec![
        (PolicyKind::Hawkeye, DrishtiConfig::baseline(cores)),
        (PolicyKind::Hawkeye, DrishtiConfig::drishti(cores)),
        (PolicyKind::Mockingjay, DrishtiConfig::baseline(cores)),
        (PolicyKind::Mockingjay, DrishtiConfig::drishti(cores)),
    ]
}

/// Print a markdown-style table row.
pub fn row(label: &str, values: &[String]) {
    print!("| {label:<28} |");
    for v in values {
        print!(" {v:>12} |");
    }
    println!();
}

/// Print a markdown-style table header.
pub fn header(label: &str, columns: &[String]) {
    row(label, columns);
    print!("|{}|", "-".repeat(30));
    for _ in columns {
        print!("{}|", "-".repeat(14));
    }
    println!();
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Format a float.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use drishti_trace::presets::Benchmark;

    #[test]
    fn evaluate_mix_smoke() {
        let mix = Mix::homogeneous(Benchmark::Deepsjeng, 4, 1);
        let rc = RunConfig {
            system: SystemConfig::paper_baseline(4),
            accesses_per_core: 3_000,
            warmup_accesses: 500,
            record_llc_stream: false,
        };
        let eval = evaluate_mix(
            &mix,
            &[(PolicyKind::Srrip, DrishtiConfig::baseline(4))],
            &rc,
        );
        assert_eq!(eval.cells.len(), 1);
        assert!(eval.lru_ws > 0.0);
        assert!(eval.cells[0].ws_improvement_pct.is_finite());
        let means = mean_improvements(&[eval]);
        assert_eq!(means.len(), 1);
        assert_eq!(means[0].0, "srrip");
    }

    #[test]
    fn headline_policies_are_four() {
        let hp = headline_policies(4);
        assert_eq!(hp.len(), 4);
    }
}

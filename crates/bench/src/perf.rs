//! The `drishti-perf` trajectory-gate harness (ROADMAP item 3).
//!
//! Runs a *pinned* cell matrix — 2 fig13 mixes × {LRU, Mockingjay} ×
//! {baseline, drishti} on a 4-core system with fixed seeds and geometry —
//! once cell-by-cell on the calling thread and once through the sweep
//! pool, and reports throughput (engine steps/sec, measured accesses/sec,
//! sweep cells/sec) plus the trace-store encoding density and the cache
//! counters that explain sweep-side reuse. The matrix is deliberately
//! frozen: two reports produced by different checkouts on the same host
//! measure the same work, so their ratio is the simulator's speedup.
//!
//! The report is schema-stamped `drishti-perf/v1` and written to
//! `BENCH_<YYYYMMDD>.json` (committed at the repo root to pin the
//! trajectory; see DESIGN.md §15). Everything host-dependent — OS, CPU
//! count, build profile, timestamp — is quarantined in the `host` block so
//! the measurement fields stay comparable across machines *of the same
//! kind* and ratios stay meaningful on any one machine.

use crate::parse_num;
use drishti_core::config::DrishtiConfig;
use drishti_policies::factory::PolicyKind;
use drishti_sim::config::SystemConfig;
use drishti_sim::engine::{Engine, EngineMode};
use drishti_sim::runner::{run_mix_cached, RunConfig};
use drishti_sim::sampling::SamplingSpec;
use drishti_sim::sweep::json::Json;
use drishti_sim::sweep::{run_sweep_resumable, JobKind, SweepJob};
use drishti_sim::telemetry::TelemetrySpec;
use drishti_trace::mix::Mix;
use drishti_trace::presets::Benchmark;
use drishti_trace::replay::TraceCache;
use drishti_trace::store::write_trace;
use drishti_trace::WorkloadGen;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// The report's schema stamp.
pub const PERF_SCHEMA: &str = "drishti-perf/v1";

/// Cores (= LLC slices) of the pinned matrix.
pub const PERF_CORES: usize = 4;

/// Default measured accesses per core (warm-up is a quarter on top).
pub const PERF_ACCESSES: u64 = 40_000;

/// Measured accesses per core under `--quick`.
pub const PERF_QUICK_ACCESSES: u64 = 12_000;

const PERF_USAGE: &str = "usage: drishti-perf [--trials N] [--accesses N] [--jobs N] [--out PATH] \
[--compare PATH] [--engine lockstep|event] [--quick]";

/// Command-line options of the `drishti-perf` binary.
#[derive(Debug, Clone)]
pub struct PerfOpts {
    /// Timing trials per pass; the best (minimum wall time) is reported.
    pub trials: usize,
    /// Measured accesses per core.
    pub accesses: u64,
    /// Sweep-pool worker threads (0 = all available cores).
    pub jobs: usize,
    /// Report destination (default: `BENCH_<YYYYMMDD>.json` in the
    /// working directory).
    pub out: Option<PathBuf>,
    /// A previous `drishti-perf/v1` report to compare against; >10%
    /// regressions are reported as warnings (never a failure).
    pub compare: Option<PathBuf>,
    /// Single fast trial at reduced scale (CI smoke / ci.sh snapshot).
    pub quick: bool,
    /// Scheduling mode for every timed cell (the `engine_compare` block
    /// always times both modes regardless).
    pub engine: EngineMode,
}

impl Default for PerfOpts {
    fn default() -> Self {
        PerfOpts {
            trials: 3,
            accesses: PERF_ACCESSES,
            jobs: 0,
            out: None,
            compare: None,
            quick: false,
            engine: EngineMode::default(),
        }
    }
}

impl PerfOpts {
    /// Parse an argument list. Unknown or malformed arguments are
    /// rejected with an actionable message.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = PerfOpts::default();
        let mut explicit_accesses = None;
        let mut explicit_trials = None;
        let mut i = 0;
        let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        while i < args.len() {
            let flag = args[i].as_str();
            match flag {
                "--quick" => {
                    opts.quick = true;
                    i += 1;
                    continue;
                }
                "--trials" => {
                    explicit_trials = Some(parse_num(flag, &value(args, i, flag)?)?);
                }
                "--accesses" => {
                    explicit_accesses = Some(parse_num(flag, &value(args, i, flag)?)?);
                }
                "--jobs" => {
                    opts.jobs = parse_num(flag, &value(args, i, flag)?)?;
                }
                "--out" => {
                    opts.out = Some(PathBuf::from(value(args, i, flag)?));
                }
                "--compare" => {
                    opts.compare = Some(PathBuf::from(value(args, i, flag)?));
                }
                "--engine" => {
                    let v = value(args, i, flag)?;
                    opts.engine = EngineMode::parse(&v)
                        .ok_or_else(|| format!("--engine must be lockstep or event, got {v}"))?;
                }
                other => return Err(format!("unknown argument {other}")),
            }
            i += 2;
        }
        if opts.quick {
            opts.trials = 1;
            opts.accesses = PERF_QUICK_ACCESSES;
        }
        if let Some(t) = explicit_trials {
            opts.trials = t;
        }
        if let Some(a) = explicit_accesses {
            opts.accesses = a;
        }
        if opts.trials == 0 {
            return Err("--trials must be at least 1".to_string());
        }
        if opts.accesses < 4 {
            return Err("--accesses must be at least 4".to_string());
        }
        Ok(opts)
    }

    /// Parse `std::env::args`, exiting with status 2 (and the usage
    /// string on stderr) on malformed arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        PerfOpts::parse(&args).unwrap_or_else(|msg| {
            eprintln!("error: {msg}\n{PERF_USAGE}");
            std::process::exit(2);
        })
    }

    /// Warm-up accesses per core (a quarter of the measured budget, like
    /// the experiment binaries).
    pub fn warmup(&self) -> u64 {
        self.accesses / 4
    }

    /// The run configuration shared by every cell of the matrix.
    pub fn rc(&self) -> RunConfig {
        RunConfig {
            system: SystemConfig::paper_baseline(PERF_CORES),
            accesses_per_core: self.accesses,
            warmup_accesses: self.warmup(),
            record_llc_stream: false,
            sampling: SamplingSpec::off(),
            telemetry: TelemetrySpec::off(),
            engine: self.engine,
        }
    }
}

/// One cell of the pinned matrix.
#[derive(Debug, Clone)]
pub struct PerfCell {
    /// `mix/policy/org` label, e.g. `homo-00-mcf/mockingjay/drishti`.
    pub label: String,
    /// The mix (fixed fig13 seeds).
    pub mix: Mix,
    /// The replacement policy.
    pub policy: PolicyKind,
    /// The organisation (baseline or drishti).
    pub org: DrishtiConfig,
}

/// The pinned cell matrix: the first fig13 homogeneous and heterogeneous
/// mix (fixed seeds) × {LRU, Mockingjay} × {baseline, drishti}.
pub fn pinned_cells() -> Vec<PerfCell> {
    let mixes = drishti_trace::mix::paper_mixes(PERF_CORES, 1, 1);
    let policies = [PolicyKind::Lru, PolicyKind::Mockingjay];
    let orgs = [
        DrishtiConfig::baseline(PERF_CORES),
        DrishtiConfig::drishti(PERF_CORES),
    ];
    let mut cells = Vec::new();
    for mix in &mixes {
        for policy in policies {
            for org in &orgs {
                cells.push(PerfCell {
                    label: format!("{}/{}/{}", mix.name, policy.label(), org.label()),
                    mix: mix.clone(),
                    policy,
                    org: org.clone(),
                });
            }
        }
    }
    cells
}

/// Timing of one measured pass (best trial).
#[derive(Debug, Clone, Copy)]
pub struct PassTiming {
    /// Best wall-clock seconds across trials.
    pub wall_sec: f64,
    /// Engine scheduling steps executed by the pass (deterministic).
    pub steps: u64,
    /// Measured (post-warm-up) accesses simulated by the pass.
    pub accesses: u64,
}

impl PassTiming {
    /// Engine scheduling steps per wall-clock second.
    pub fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.wall_sec
    }

    /// Measured accesses per wall-clock second.
    pub fn accesses_per_sec(&self) -> f64 {
        self.accesses as f64 / self.wall_sec
    }
}

/// Cores of the idle-heavy engine-comparison cell: many idle cores make
/// the lockstep scheduler's per-step O(cores) ready-core scan expensive
/// while the event heap holds a single entry.
pub const COMPARE_CORES: usize = 256;

/// LLC slices of the engine-comparison cell. Deliberately decoupled from
/// [`COMPARE_CORES`]: a per-core LLC at 256 cores would allocate half a
/// gigabyte of tag planes, and walking them slows *both* modes with
/// host-cache misses that have nothing to do with scheduling. A small
/// fixed LLC keeps the per-step simulation work constant as the core
/// count grows, so the measured ratio isolates the scheduler.
pub const COMPARE_LLC_SLICES: usize = 8;

/// Cores of the multi-chip throughput cell: the scaling study's 64-slice
/// shape, every core active.
pub const MULTICHIP_CORES: usize = 64;

/// Chips of the multi-chip throughput cell.
pub const MULTICHIP_CHIPS: usize = 4;

/// Timing of the multi-chip cell plus the inter-chip traffic it moved
/// (asserting the serialized gateway path was actually on the hot path).
#[derive(Debug, Clone, Copy)]
pub struct MultichipTiming {
    /// Best trial.
    pub timing: PassTiming,
    /// Inter-chip messages delivered during the best trial.
    pub interchip_messages: u64,
}

/// Lockstep-vs-event scheduler timing on the idle-heavy cell
/// ([`COMPARE_CORES`] cores, one active low-MPKI Deepsjeng core, a single
/// DRAM channel). Both modes simulate the identical workload and are
/// asserted to produce bit-identical results before timing is reported.
#[derive(Debug, Clone, Copy)]
pub struct EngineCompare {
    /// Best lockstep trial.
    pub lockstep: PassTiming,
    /// Best event-driven trial.
    pub event: PassTiming,
}

impl EngineCompare {
    /// Event-driven steps/sec over lockstep steps/sec (>1 = faster).
    pub fn speedup(&self) -> f64 {
        self.event.steps_per_sec() / self.lockstep.steps_per_sec()
    }
}

/// The complete `drishti-perf/v1` measurement.
#[derive(Debug)]
pub struct PerfReport {
    /// Options the matrix ran with.
    pub opts: PerfOpts,
    /// Cell labels, in run order.
    pub cell_labels: Vec<String>,
    /// Single-threaded pass: whole matrix, best trial.
    pub single: PassTiming,
    /// Per-cell best wall seconds of the single-threaded pass.
    pub single_cells: Vec<(String, f64, u64)>,
    /// Sweep-pool pass: whole matrix, best trial.
    pub pool: PassTiming,
    /// Worker threads the pool ran with.
    pub pool_workers: usize,
    /// Sweep cells completed per second (best pool trial).
    pub pool_cells_per_sec: f64,
    /// Trace-cache `(hits, misses)` during the best pool trial.
    pub trace_cache: (u64, u64),
    /// Warm-checkpoint `(hits, misses)` during the best pool trial.
    pub warm_ckpt: (u64, u64),
    /// `(records, file bytes)` of the trace-store encoding probe.
    pub trace_store: (u64, u64),
    /// Lockstep-vs-event scheduler timing on the idle-heavy cell.
    pub engine_compare: EngineCompare,
    /// Multi-chip cell timing ([`MULTICHIP_CORES`] cores over
    /// [`MULTICHIP_CHIPS`] chips, all cores active).
    pub multichip: MultichipTiming,
}

impl PerfReport {
    /// Encoded bytes per trace record.
    pub fn bytes_per_record(&self) -> f64 {
        self.trace_store.1 as f64 / self.trace_store.0 as f64
    }

    /// Serialise to `drishti-perf/v1` JSON.
    pub fn to_json_string(&self) -> String {
        let mut matrix = Json::obj();
        matrix.push("cores", Json::UInt(PERF_CORES as u64));
        matrix.push(
            "cells",
            Json::Arr(
                self.cell_labels
                    .iter()
                    .map(|l| Json::Str(l.clone()))
                    .collect(),
            ),
        );
        matrix.push("accesses_per_core", Json::UInt(self.opts.accesses));
        matrix.push("warmup_accesses", Json::UInt(self.opts.warmup()));
        matrix.push("trials", Json::UInt(self.opts.trials as u64));
        matrix.push("quick", Json::Bool(self.opts.quick));

        let mut single = Json::obj();
        single.push("wall_sec", Json::Num(self.single.wall_sec));
        single.push("steps", Json::UInt(self.single.steps));
        single.push("steps_per_sec", Json::Num(self.single.steps_per_sec()));
        single.push(
            "accesses_per_sec",
            Json::Num(self.single.accesses_per_sec()),
        );
        single.push(
            "cells",
            Json::Arr(
                self.single_cells
                    .iter()
                    .map(|(label, wall, steps)| {
                        let mut c = Json::obj();
                        c.push("cell", Json::Str(label.clone()));
                        c.push("wall_sec", Json::Num(*wall));
                        c.push("cell_steps_per_sec", Json::Num(*steps as f64 / *wall));
                        c
                    })
                    .collect(),
            ),
        );

        let mut pool = Json::obj();
        pool.push("workers", Json::UInt(self.pool_workers as u64));
        pool.push("wall_sec", Json::Num(self.pool.wall_sec));
        pool.push("steps_per_sec", Json::Num(self.pool.steps_per_sec()));
        pool.push("cells_per_sec", Json::Num(self.pool_cells_per_sec));
        pool.push("trace_cache_hits", Json::UInt(self.trace_cache.0));
        pool.push("trace_cache_misses", Json::UInt(self.trace_cache.1));
        pool.push("warm_ckpt_hits", Json::UInt(self.warm_ckpt.0));
        pool.push("warm_ckpt_misses", Json::UInt(self.warm_ckpt.1));

        let mut store = Json::obj();
        store.push("records", Json::UInt(self.trace_store.0));
        store.push("bytes", Json::UInt(self.trace_store.1));
        store.push("bytes_per_record", Json::Num(self.bytes_per_record()));

        let mut engine = Json::obj();
        engine.push("cores", Json::UInt(COMPARE_CORES as u64));
        engine.push("active_cores", Json::UInt(1));
        engine.push("llc_slices", Json::UInt(COMPARE_LLC_SLICES as u64));
        engine.push("steps", Json::UInt(self.engine_compare.event.steps));
        engine.push(
            "lockstep_wall_sec",
            Json::Num(self.engine_compare.lockstep.wall_sec),
        );
        engine.push(
            "event_wall_sec",
            Json::Num(self.engine_compare.event.wall_sec),
        );
        engine.push(
            "lockstep_steps_per_sec",
            Json::Num(self.engine_compare.lockstep.steps_per_sec()),
        );
        engine.push(
            "event_steps_per_sec",
            Json::Num(self.engine_compare.event.steps_per_sec()),
        );
        engine.push("speedup", Json::Num(self.engine_compare.speedup()));

        let mut multichip = Json::obj();
        multichip.push("cores", Json::UInt(MULTICHIP_CORES as u64));
        multichip.push("chips", Json::UInt(MULTICHIP_CHIPS as u64));
        multichip.push("steps", Json::UInt(self.multichip.timing.steps));
        multichip.push("wall_sec", Json::Num(self.multichip.timing.wall_sec));
        multichip.push(
            "steps_per_sec",
            Json::Num(self.multichip.timing.steps_per_sec()),
        );
        multichip.push(
            "accesses_per_sec",
            Json::Num(self.multichip.timing.accesses_per_sec()),
        );
        multichip.push(
            "interchip_messages",
            Json::UInt(self.multichip.interchip_messages),
        );

        let mut host = Json::obj();
        host.push("os", Json::Str(std::env::consts::OS.to_string()));
        host.push("arch", Json::Str(std::env::consts::ARCH.to_string()));
        host.push(
            "cpus",
            Json::UInt(
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(0),
            ),
        );
        host.push(
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        );
        host.push("timestamp_unix", Json::UInt(unix_now()));

        let mut root = Json::obj();
        root.push("schema", Json::Str(PERF_SCHEMA.to_string()));
        root.push("matrix", matrix);
        root.push("single_thread", single);
        root.push("sweep_pool", pool);
        root.push("trace_store", store);
        root.push("engine_compare", engine);
        root.push("multichip", multichip);
        root.push("host", host);
        root.to_pretty_string()
    }

    /// Write the report to `path` (creating parent directories).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json_string())
    }
}

/// Seconds since the Unix epoch (0 if the clock is before it).
fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Today's UTC date as `YYYYMMDD`, for the `BENCH_<date>.json` file name.
/// Uses the proleptic-Gregorian civil-from-days algorithm so the binary
/// needs no date-time dependency.
pub fn utc_date_stamp() -> String {
    let days = (unix_now() / 86_400) as i64;
    // Howard Hinnant's civil_from_days, for day counts since 1970-01-01.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}{m:02}{d:02}")
}

/// Default report path: `BENCH_<YYYYMMDD>.json` in the working directory.
pub fn default_bench_path() -> PathBuf {
    PathBuf::from(format!("BENCH_{}.json", utc_date_stamp()))
}

/// Engine scheduling steps one cell executes: every active core pulls
/// exactly `warmup + accesses` records, one per step.
fn steps_per_cell(opts: &PerfOpts) -> u64 {
    PERF_CORES as u64 * (opts.warmup() + opts.accesses)
}

/// Time the idle-heavy cell under both engine modes: [`COMPARE_CORES`]
/// cores with only core 0 active (Deepsjeng, the matrix's lowest-MPKI
/// benchmark), a single DRAM channel and a small fixed
/// [`COMPARE_LLC_SLICES`]-slice LLC. The cell is deliberately
/// scheduler-bound — 255 idle cores mean the lockstep loop scans the
/// whole core array every step while the event heap pops its one entry —
/// so its ratio isolates the scheduler, not the memory hierarchy. The
/// usual §15 caveats apply on top: wall-clock on a shared host, best-of-N
/// trials, and a ratio that shrinks as the active-core fraction grows.
fn measure_engine_compare(opts: &PerfOpts, cache: &Arc<TraceCache>) -> EngineCompare {
    let bench = Benchmark::Deepsjeng;
    let seed = 1;
    let len = opts.warmup() + opts.accesses;
    // Pre-generate the trace so both modes replay identical records and
    // neither pays the generator.
    let _ = cache.replay(bench, seed, len);

    let mut system = SystemConfig::paper_baseline(COMPARE_CORES);
    system.dram = drishti_mem::dram::DramConfig::with_channels(1);
    system.llc = drishti_mem::llc::LlcGeometry::per_core_2mb(COMPARE_LLC_SLICES);
    // Engine construction (allocating the LLC planes and the 256-node
    // mesh) is mode-independent and would dilute the ratio, so only
    // `run()` itself is timed.
    let run_once = |mode: EngineMode| {
        let mut workloads: Vec<Option<Box<dyn WorkloadGen>>> =
            (0..COMPARE_CORES).map(|_| None).collect();
        workloads[0] = Some(Box::new(cache.replay(bench, seed, len)));
        let pol = PolicyKind::Lru.build(&system.llc, DrishtiConfig::baseline(COMPARE_CORES));
        let mut engine = Engine::new(
            system.clone(),
            workloads,
            pol,
            opts.accesses,
            opts.warmup(),
            false,
        );
        engine.set_mode(mode);
        let t = Instant::now();
        let per_core = engine.run();
        let wall = t.elapsed().as_secs_f64();
        let fingerprint = format!(
            "{:?}|{:?}|{:?}|{:?}",
            per_core,
            engine.llc().stats(),
            engine.dram().stats(),
            engine.mesh().stats()
        );
        (wall, fingerprint)
    };

    let mut lockstep_wall = f64::INFINITY;
    let mut event_wall = f64::INFINITY;
    // The cell is short (one active core), so a higher trial floor is
    // cheap and strips host-scheduler noise from the min-wall estimate.
    for _ in 0..opts.trials.max(3) {
        let (wl, rl) = run_once(EngineMode::Lockstep);
        let (we, re) = run_once(EngineMode::EventDriven);
        assert_eq!(
            format!("{rl:?}"),
            format!("{re:?}"),
            "engine modes must produce bit-identical results"
        );
        lockstep_wall = lockstep_wall.min(wl);
        event_wall = event_wall.min(we);
    }
    // One active core pulls one record per engine step.
    let steps = len;
    let accesses = opts.accesses;
    EngineCompare {
        lockstep: PassTiming {
            wall_sec: lockstep_wall,
            steps,
            accesses,
        },
        event: PassTiming {
            wall_sec: event_wall,
            steps,
            accesses,
        },
    }
}

/// Time the multi-chip cell: the scaling study's 64-slice / 4-chip shape
/// with every core active on the heterogeneous fig13 workload set, under
/// D-Mockingjay with the hierarchical predictor fabric. Unlike the
/// idle-heavy engine-compare cell this one is interconnect-bound — every
/// demand and predictor message can cross a serialized gateway — so its
/// steps/sec tracks the cost of the inter-chip link model itself. The
/// best trial must have moved inter-chip traffic, or the cell silently
/// degenerated into a flat mesh.
fn measure_multichip(opts: &PerfOpts, cache: &Arc<TraceCache>) -> MultichipTiming {
    let mix = Mix::heterogeneous(&Benchmark::spec_and_gap(), MULTICHIP_CORES, 13);
    let len = opts.warmup() + opts.accesses;
    // Pre-generate so the trial times the simulator, not the generator.
    let _ = cache.workloads_for(&mix, len);

    let system = SystemConfig::with_chips(MULTICHIP_CORES, MULTICHIP_CHIPS);
    let org = DrishtiConfig::drishti(MULTICHIP_CORES).with_chips(MULTICHIP_CHIPS);
    let mut best_wall = f64::INFINITY;
    let mut interchip_messages = 0;
    for _ in 0..opts.trials {
        let workloads: Vec<Option<Box<dyn WorkloadGen>>> = cache
            .workloads_for(&mix, len)
            .into_iter()
            .map(|w| Some(Box::new(w) as Box<dyn WorkloadGen>))
            .collect();
        let pol = PolicyKind::Mockingjay.build(&system.llc, org.clone());
        let mut engine = Engine::new(
            system.clone(),
            workloads,
            pol,
            opts.accesses,
            opts.warmup(),
            false,
        );
        engine.set_mode(opts.engine);
        let t = Instant::now();
        let per_core = engine.run();
        let wall = t.elapsed().as_secs_f64();
        assert_eq!(per_core.len(), MULTICHIP_CORES);
        let ic = engine.mesh().interchip_stats().messages;
        assert!(
            ic > 0,
            "multichip cell moved no inter-chip traffic — the measurement is vacuous"
        );
        if wall < best_wall {
            best_wall = wall;
            interchip_messages = ic;
        }
    }
    MultichipTiming {
        timing: PassTiming {
            wall_sec: best_wall,
            steps: MULTICHIP_CORES as u64 * len,
            accesses: MULTICHIP_CORES as u64 * opts.accesses,
        },
        interchip_messages,
    }
}

/// Run the pinned matrix and assemble the report. Traces are generated
/// into the shared cache *before* any timing starts, so both passes
/// measure the simulator, not the workload generator.
pub fn run_perf(opts: &PerfOpts) -> PerfReport {
    let cells = pinned_cells();
    let rc = opts.rc();
    let cache = Arc::new(TraceCache::new());
    let len = opts.warmup() + opts.accesses;

    // Pre-generate every trace the matrix replays.
    for cell in &cells {
        let _ = cache.workloads_for(&cell.mix, len);
    }

    // Single-threaded pass: best-of-N over the whole matrix, per-cell
    // minima tracked for the table.
    let mut best_wall = f64::INFINITY;
    let mut cell_walls = vec![f64::INFINITY; cells.len()];
    for _ in 0..opts.trials {
        let t_pass = Instant::now();
        for (i, cell) in cells.iter().enumerate() {
            let t_cell = Instant::now();
            let r = run_mix_cached(&cell.mix, cell.policy, cell.org.clone(), &rc, &cache);
            assert_eq!(r.per_core.len(), PERF_CORES);
            cell_walls[i] = cell_walls[i].min(t_cell.elapsed().as_secs_f64());
        }
        best_wall = best_wall.min(t_pass.elapsed().as_secs_f64());
    }
    let single = PassTiming {
        wall_sec: best_wall,
        steps: steps_per_cell(opts) * cells.len() as u64,
        accesses: PERF_CORES as u64 * opts.accesses * cells.len() as u64,
    };

    // Sweep-pool pass: the same matrix as one job batch per trial.
    let jobs: Vec<SweepJob> = cells
        .iter()
        .enumerate()
        .map(|(id, cell)| SweepJob {
            id,
            label: cell.label.clone(),
            seed: SweepJob::derive_seed(id),
            rc: rc.clone(),
            kind: JobKind::Run {
                mix: cell.mix.clone(),
                policy: cell.policy,
                org: cell.org.clone(),
                org_label: cell.org.label(),
            },
        })
        .collect();
    let mut pool_wall = f64::INFINITY;
    let mut pool_workers = 0;
    let mut pool_cells_per_sec = 0.0;
    let mut trace_cache = (0, 0);
    let mut warm_ckpt = (0, 0);
    let journal = std::env::temp_dir().join(format!("drishti-perf-{}.journal", std::process::id()));
    for _ in 0..opts.trials {
        let before = cache.stats();
        let _ = std::fs::remove_file(&journal);
        let outcome = run_sweep_resumable(&jobs, opts.jobs, &cache, &journal, false)
            .expect("fresh journal cannot be foreign");
        let failures = outcome.failures();
        assert!(
            failures.is_empty(),
            "perf cells must not fail: {failures:?}"
        );
        let wall = outcome.wall.as_secs_f64();
        if wall < pool_wall {
            pool_wall = wall;
            pool_workers = outcome.workers;
            pool_cells_per_sec = outcome.cells_per_sec();
            let after = cache.stats();
            trace_cache = (after.0 - before.0, after.1 - before.1);
            warm_ckpt = outcome.warm_stats;
        }
    }
    let _ = std::fs::remove_file(&journal);
    let pool = PassTiming {
        wall_sec: pool_wall,
        steps: single.steps,
        accesses: single.accesses,
    };

    // Trace-store encoding density: write the first mix's core-0 stream
    // through the real on-disk codec and measure bytes per record.
    let probe = &cells[0].mix;
    let records = cache.get(probe.benchmarks[0], probe.seeds[0], len);
    let path = std::env::temp_dir().join(format!("drishti-perf-{}.drtr", std::process::id()));
    let bytes = write_trace(&path, probe.benchmarks[0].label(), probe.seeds[0], &records)
        .expect("trace-store probe write");
    let _ = std::fs::remove_file(&path);

    let engine_compare = measure_engine_compare(opts, &cache);
    let multichip = measure_multichip(opts, &cache);

    PerfReport {
        opts: opts.clone(),
        cell_labels: cells.iter().map(|c| c.label.clone()).collect(),
        single,
        single_cells: cells
            .iter()
            .zip(&cell_walls)
            .map(|(c, &w)| (c.label.clone(), w, steps_per_cell(opts)))
            .collect(),
        pool,
        pool_workers,
        pool_cells_per_sec,
        trace_cache,
        warm_ckpt,
        trace_store: (records.len() as u64, bytes),
        engine_compare,
        multichip,
    }
}

/// Extract the first `"key": <number>` after the first occurrence of
/// `section` in a `drishti-perf/v1` report. A deliberately narrow scanner
/// — it only needs to read files this crate itself wrote.
pub fn extract_metric(json: &str, section: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{section}\""))?;
    let tail = &json[at..];
    let k = tail.find(&format!("\"{key}\""))?;
    let tail = &tail[k..];
    let colon = tail.find(':')?;
    let rest = tail[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compare this report's headline rates against a previous report's JSON.
/// Returns human-readable lines; regressions beyond `tolerance` (e.g.
/// `0.10` = 10%) are prefixed with `warning:`. Never fails — the perf
/// snapshot is informative, not enforcing.
pub fn compare_reports(report: &PerfReport, baseline_json: &str, tolerance: f64) -> Vec<String> {
    let mut lines = Vec::new();
    // steps_per_sec is a rate and comparable across matrix sizes;
    // cells_per_sec is not (a --quick cell is a smaller unit of work), so
    // it is only compared when both runs measured the same cell size.
    let same_shape = extract_metric(baseline_json, "matrix", "accesses_per_core")
        .is_some_and(|base| base as u64 == report.opts.accesses);
    let mut pairs = vec![(
        "single_thread",
        "steps_per_sec",
        report.single.steps_per_sec(),
    )];
    if same_shape {
        pairs.push(("sweep_pool", "cells_per_sec", report.pool_cells_per_sec));
    } else {
        lines.push(
            "note: baseline ran a different accesses_per_core; comparing rates only".to_string(),
        );
        pairs.push(("sweep_pool", "steps_per_sec", report.pool.steps_per_sec()));
    }
    // The engine-compare cell is shape-independent (steps/sec on the
    // pinned idle-heavy cell), so the event-engine delta is always
    // recorded when the baseline has the section.
    pairs.push((
        "engine_compare",
        "event_steps_per_sec",
        report.engine_compare.event.steps_per_sec(),
    ));
    // Likewise shape-independent: steps/sec on the pinned 64-core /
    // 4-chip cell. Baselines that predate multi-chip support lack the
    // section and skip cleanly.
    pairs.push((
        "multichip",
        "steps_per_sec",
        report.multichip.timing.steps_per_sec(),
    ));
    for (section, key, now) in pairs {
        match extract_metric(baseline_json, section, key) {
            Some(base) if base > 0.0 => {
                let ratio = now / base;
                let line = format!(
                    "{section}.{key}: {now:.0} vs baseline {base:.0} ({:+.1}%)",
                    (ratio - 1.0) * 100.0
                );
                if ratio < 1.0 - tolerance {
                    lines.push(format!("warning: perf regression — {line}"));
                } else {
                    lines.push(line);
                }
            }
            _ => lines.push(format!(
                "note: baseline has no {section}.{key}; skipping comparison"
            )),
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<PerfOpts, String> {
        PerfOpts::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_and_quick() {
        let d = parse(&[]).unwrap();
        assert_eq!(d.trials, 3);
        assert_eq!(d.accesses, PERF_ACCESSES);
        let q = parse(&["--quick"]).unwrap();
        assert_eq!(q.trials, 1);
        assert_eq!(q.accesses, PERF_QUICK_ACCESSES);
    }

    #[test]
    fn explicit_flags_override_quick() {
        let o = parse(&["--quick", "--trials", "2", "--accesses", "5000"]).unwrap();
        assert!(o.quick);
        assert_eq!(o.trials, 2);
        assert_eq!(o.accesses, 5000);
    }

    #[test]
    fn malformed_arguments_are_rejected() {
        assert!(parse(&["--trials"]).is_err());
        assert!(parse(&["--trials", "0"]).is_err());
        assert!(parse(&["--accesses", "1"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn pinned_matrix_is_eight_cells_and_stable() {
        let cells = pinned_cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].label, pinned_cells()[0].label);
        assert!(cells.iter().any(|c| c.label.contains("mockingjay/drishti")));
        assert!(cells.iter().any(|c| c.label.contains("lru/baseline")));
        for c in &cells {
            assert_eq!(c.mix.cores(), PERF_CORES);
        }
    }

    #[test]
    fn date_stamp_shape() {
        let d = utc_date_stamp();
        assert_eq!(d.len(), 8);
        assert!(d.chars().all(|c| c.is_ascii_digit()));
        assert!(d.as_str() >= "20260101", "{d}");
    }

    #[test]
    fn metric_extraction_reads_own_output() {
        let json = "{\n  \"single_thread\": {\n    \"steps_per_sec\": 123456.75\n  },\n  \
                    \"sweep_pool\": {\n    \"cells_per_sec\": 8.5\n  }\n}\n";
        assert_eq!(
            extract_metric(json, "single_thread", "steps_per_sec"),
            Some(123456.75)
        );
        assert_eq!(
            extract_metric(json, "sweep_pool", "cells_per_sec"),
            Some(8.5)
        );
        assert_eq!(extract_metric(json, "sweep_pool", "missing"), None);
    }

    fn fake_report(accesses: u64) -> PerfReport {
        let mut opts = parse(&[]).unwrap();
        opts.accesses = accesses;
        let pass = PassTiming {
            wall_sec: 1.0,
            steps: 1_000_000,
            accesses,
        };
        PerfReport {
            opts,
            cell_labels: vec!["cell".into()],
            single: pass,
            single_cells: vec![("cell".into(), 1.0, 1_000_000)],
            pool: pass,
            pool_workers: 1,
            pool_cells_per_sec: 8.0,
            trace_cache: (0, 0),
            warm_ckpt: (0, 0),
            trace_store: (1, 1),
            engine_compare: EngineCompare {
                lockstep: pass,
                event: pass,
            },
            multichip: MultichipTiming {
                timing: pass,
                interchip_messages: 1,
            },
        }
    }

    #[test]
    fn comparison_warns_on_regression_and_matches_shape() {
        // Same matrix shape: cells_per_sec is compared, and a >10% drop
        // in steps/sec is flagged (warn-only by contract).
        let baseline = format!(
            "{{\n  \"matrix\": {{\n    \"accesses_per_core\": {}\n  }},\n               \"single_thread\": {{\n    \"steps_per_sec\": 2000000.0\n  }},\n               \"sweep_pool\": {{\n    \"steps_per_sec\": 900000.0,\n                 \"cells_per_sec\": 8.5\n  }}\n}}\n",
            PERF_ACCESSES
        );
        let report = fake_report(PERF_ACCESSES);
        let lines = compare_reports(&report, &baseline, 0.10);
        assert!(
            lines[0].starts_with("warning: perf regression"),
            "{lines:?}"
        );
        assert!(lines.iter().any(|l| l.contains("cells_per_sec")));

        // Different accesses_per_core (e.g. --quick vs full): cell
        // throughput is incomparable, so only rates are compared.
        let quick = fake_report(PERF_QUICK_ACCESSES);
        let lines = compare_reports(&quick, &baseline, 0.10);
        assert!(
            lines[0].contains("different accesses_per_core"),
            "{lines:?}"
        );
        assert!(!lines.iter().any(|l| l.contains("cells_per_sec")));
        assert!(lines.iter().any(|l| l.contains("sweep_pool.steps_per_sec")));
    }

    #[test]
    fn comparison_skips_multichip_on_pre_topology_baselines() {
        // Baselines written before multi-chip support have no multichip
        // section; the comparison must note and skip, never fail.
        let baseline = "{\n  \"single_thread\": {\n    \"steps_per_sec\": 1.0\n  }\n}\n";
        let report = fake_report(PERF_ACCESSES);
        let lines = compare_reports(&report, baseline, 0.10);
        assert!(
            lines
                .iter()
                .any(|l| l.contains("no multichip.steps_per_sec") && l.starts_with("note:")),
            "{lines:?}"
        );
    }
}

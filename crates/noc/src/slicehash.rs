//! Address-to-slice hashing for the sliced LLC.
//!
//! Commercial processors distribute physical line addresses over LLC slices
//! with an undocumented "complex addressing" hash (reverse-engineered by
//! Maurice et al. \[41\] for Intel parts; the paper's baseline cites the
//! Kayaalp et al. \[33\] construction). Two properties matter for this study:
//!
//! 1. **Uniformity** — consecutive and strided lines spread evenly over
//!    slices, so no slice is hot merely because of the hash.
//! 2. **Scattering** — the set of lines touched by *one PC* lands on many
//!    slices, which is exactly what makes a per-slice reuse predictor myopic
//!    (paper Observation I, Fig 2).
//!
//! [`XorFoldHash`] reproduces both. [`ModuloHash`] (low-order bits) is kept
//! as a contrast/test hash, and [`SliceHasher`] is the trait the LLC
//! container consumes.

/// Maps a cache-line address to an LLC slice index.
///
/// Implementations must be pure functions of `(line_addr, n_slices)`.
pub trait SliceHasher: std::fmt::Debug + Send + Sync {
    /// Slice index in `0..n_slices` for the given *line* address (byte
    /// address >> 6).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `n_slices == 0`.
    fn slice_of(&self, line_addr: u64, n_slices: usize) -> usize;
}

/// XOR-fold complex-addressing hash.
///
/// For a power-of-two slice count `2^k`, slice bit `i` is the XOR of line
/// address bits `i, i+k, i+2k, …` — the classic structure recovered from
/// Intel complex addressing. For non-power-of-two counts (multi-chip
/// systems where `chips × slices_per_chip` need not be a power of two) the
/// hash is a *balanced rotation*: each aligned block of `n` consecutive
/// line addresses is rotated by a per-block pseudo-random offset, so every
/// block covers every slice exactly once. That makes the distribution
/// exactly uniform over any aligned window (±1 at the ragged edges) while
/// the per-block mix still scatters strided streams.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XorFoldHash;

impl XorFoldHash {
    /// Create the hash function.
    pub fn new() -> Self {
        XorFoldHash
    }
}

/// 64-bit finalizer (splitmix64) used for the non-power-of-two fallback.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SliceHasher for XorFoldHash {
    fn slice_of(&self, line_addr: u64, n_slices: usize) -> usize {
        assert!(n_slices > 0, "n_slices must be nonzero");
        if n_slices == 1 {
            return 0;
        }
        if n_slices.is_power_of_two() {
            let k = n_slices.trailing_zeros();
            // When the chunk width divides 64 and is itself a power of two
            // (k ∈ {1, 2, 4, 8, 16, 32}), the xor of all k-bit chunks can
            // be computed by folding halves — six shifts instead of a
            // data-dependent loop. Identical result to the chunk loop
            // below; this is the hot path (4-, 16-, 256-slice meshes).
            if 64 % k == 0 && k.is_power_of_two() {
                let mut a = line_addr;
                let mut w = 32;
                while w >= k {
                    a ^= a >> w;
                    w >>= 1;
                }
                (a & (n_slices as u64 - 1)) as usize
            } else {
                let mut folded = 0u64;
                let mut a = line_addr;
                while a != 0 {
                    folded ^= a & (n_slices as u64 - 1);
                    a >>= k;
                }
                folded as usize
            }
        } else {
            // Balanced rotation: address `q·n + r` maps to slice
            // `(r + mix64(q)) mod n`. Within each aligned block of `n`
            // consecutive lines the offset is constant and `r` covers
            // `0..n`, so the block covers every slice exactly once —
            // ±1-uniformity over any window by construction — while the
            // per-block splitmix offset scatters PCs and strides.
            let n = n_slices as u64;
            (((line_addr % n) + (mix64(line_addr / n) % n)) % n) as usize
        }
    }
}

/// Global slice numbering for a multi-chip system: `chips` chips, each
/// holding `slices_per_chip` LLC slices, numbered chip-major (global slice
/// `g` lives on chip `g / slices_per_chip` as local slice
/// `g % slices_per_chip`).
///
/// Address-to-(chip, slice) steering composes with any [`SliceHasher`]:
/// the hash is evaluated at the *total* slice count, then split. With one
/// chip this degenerates to the flat numbering (chip 0, local = global).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalSliceMap {
    /// Number of chips.
    pub chips: usize,
    /// LLC slices per chip.
    pub slices_per_chip: usize,
}

impl GlobalSliceMap {
    /// A map for `total` slices spread over `chips` chips.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero or does not divide `total`.
    pub fn new(chips: usize, total: usize) -> Self {
        assert!(chips > 0, "need at least one chip");
        assert!(
            total > 0 && total.is_multiple_of(chips),
            "chips ({chips}) must divide the total slice count ({total})"
        );
        GlobalSliceMap {
            chips,
            slices_per_chip: total / chips,
        }
    }

    /// Total slices across all chips.
    pub fn total(&self) -> usize {
        self.chips * self.slices_per_chip
    }

    /// `(chip, local slice)` of a global slice index.
    pub fn split(&self, global: usize) -> (usize, usize) {
        debug_assert!(global < self.total());
        (global / self.slices_per_chip, global % self.slices_per_chip)
    }

    /// Global slice index of `(chip, local slice)`.
    pub fn join(&self, chip: usize, local: usize) -> usize {
        debug_assert!(chip < self.chips && local < self.slices_per_chip);
        chip * self.slices_per_chip + local
    }

    /// `(chip, local slice)` serving `line_addr` under hasher `h` — the
    /// hash at the total slice count, split chip-major.
    pub fn locate<H: SliceHasher + ?Sized>(&self, h: &H, line_addr: u64) -> (usize, usize) {
        self.split(h.slice_of(line_addr, self.total()))
    }
}

/// Trivial low-order-bits slice selection (`line_addr % n_slices`).
///
/// Used as a test contrast: it keeps strided streams on one slice, which is
/// precisely what real parts avoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuloHash;

impl ModuloHash {
    /// Create the hash function.
    pub fn new() -> Self {
        ModuloHash
    }
}

impl SliceHasher for ModuloHash {
    fn slice_of(&self, line_addr: u64, n_slices: usize) -> usize {
        assert!(n_slices > 0, "n_slices must be nonzero");
        (line_addr % n_slices as u64) as usize
    }
}

/// An inner slice hash with its outputs relabeled by a fixed permutation.
///
/// Used by the conformance harness's slice-permutation metamorphic
/// relation: renaming slices is behaviour-preserving for any policy whose
/// decisions do not depend on the slice *index* itself, so aggregate
/// hit/miss counts must be invariant under this wrapper.
#[derive(Debug)]
pub struct PermutedHash<H: SliceHasher> {
    inner: H,
    perm: Vec<usize>,
}

impl<H: SliceHasher> PermutedHash<H> {
    /// Wrap `inner`, relabeling its output `s` to `perm[s]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..perm.len()`.
    pub fn new(inner: H, perm: Vec<usize>) -> Self {
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!(p < perm.len() && !seen[p], "not a permutation: {perm:?}");
            seen[p] = true;
        }
        PermutedHash { inner, perm }
    }
}

impl<H: SliceHasher> SliceHasher for PermutedHash<H> {
    fn slice_of(&self, line_addr: u64, n_slices: usize) -> usize {
        assert_eq!(
            n_slices,
            self.perm.len(),
            "permutation sized for {} slices, asked for {n_slices}",
            self.perm.len()
        );
        self.perm[self.inner.slice_of(line_addr, n_slices)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slice_always_zero() {
        let h = XorFoldHash::new();
        for a in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(h.slice_of(a, 1), 0);
        }
    }

    #[test]
    fn in_range_for_all_counts() {
        let h = XorFoldHash::new();
        for n in 1..=40usize {
            for a in 0..4096u64 {
                assert!(h.slice_of(a * 97 + 13, n) < n);
            }
        }
    }

    #[test]
    fn sequential_lines_spread_uniformly_16_slices() {
        let h = XorFoldHash::new();
        let n = 16usize;
        let mut counts = vec![0u64; n];
        for a in 0..160_000u64 {
            counts[h.slice_of(a, n)] += 1;
        }
        let expect = 160_000 / n as u64;
        for &c in &counts {
            let dev = (c as f64 - expect as f64).abs() / expect as f64;
            assert!(dev < 0.02, "slice imbalance {dev} on counts {counts:?}");
        }
    }

    #[test]
    fn strided_lines_spread_over_slices() {
        // Page-strided accesses (same set bits) must still scatter: this is
        // what defeats a modulo hash and motivates complex addressing.
        let h = XorFoldHash::new();
        let n = 16usize;
        let mut touched = std::collections::HashSet::new();
        for i in 0..64u64 {
            touched.insert(h.slice_of(i * 1024, n));
        }
        assert!(touched.len() >= n / 2, "stride collapsed to {touched:?}");
    }

    #[test]
    fn modulo_hash_keeps_stride_on_one_slice() {
        let h = ModuloHash::new();
        let n = 16usize;
        let mut touched = std::collections::HashSet::new();
        for i in 0..64u64 {
            touched.insert(h.slice_of(i * 16, n));
        }
        assert_eq!(touched.len(), 1);
    }

    #[test]
    fn deterministic() {
        let h = XorFoldHash::new();
        assert_eq!(h.slice_of(0xabcdef, 32), h.slice_of(0xabcdef, 32));
    }

    #[test]
    fn exhaustive_distribution_within_one_of_uniform() {
        // Over ALL 2^16 line addresses every slice must land within ±1 of
        // the uniform share — for *arbitrary* counts, not just powers of
        // two. Power-of-two counts use the XOR fold (a surjective
        // GF(2)-linear map, exactly even); every other count uses the
        // balanced rotation, which covers each slice once per aligned
        // block of n addresses. The counts below include the multi-chip
        // shapes (chips × slices-per-chip, e.g. 3×8, 2×6, 4×6, 2×24).
        let h = XorFoldHash::new();
        for n in [2usize, 3, 4, 5, 6, 7, 8, 12, 16, 24, 48, 96] {
            let mut counts = vec![0i64; n];
            for a in 0..(1u64 << 16) {
                counts[h.slice_of(a, n)] += 1;
            }
            let share = (1i64 << 16) / n as i64;
            for (s, &c) in counts.iter().enumerate() {
                assert!(
                    (c - share).abs() <= 1,
                    "slice {s}/{n} got {c} of 2^16 addresses (uniform share {share})"
                );
            }
        }
    }

    #[test]
    fn pinned_hash_values_for_known_addresses() {
        // Exact regression pins: slice steering is part of every result in
        // the repo, so a refactor that changes any of these values changes
        // which slice serves which line and silently invalidates goldens.
        let h = XorFoldHash::new();
        let pins: [(u64, usize, usize, usize); 8] = [
            (0x0, 0, 0, 1),
            (0x1, 1, 1, 2),
            (0xdead_beef, 6, 0, 5),
            (0x1234_5678_9abc_def0, 5, 0, 4),
            (0xffff_ffff_ffff_ffff, 6, 0, 3),
            (0x0004_0000, 1, 4, 4),
            (0xcafe_babe, 0, 3, 2),
            (0x0fed_cba9_8765_4321, 0, 0, 2),
        ];
        for &(addr, s8, s16, s6) in &pins {
            assert_eq!(h.slice_of(addr, 8), s8, "addr {addr:#x} @ 8 slices");
            assert_eq!(h.slice_of(addr, 16), s16, "addr {addr:#x} @ 16 slices");
            assert_eq!(h.slice_of(addr, 6), s6, "addr {addr:#x} @ 6 slices");
        }
    }

    #[test]
    fn permuted_hash_relabels_bijectively() {
        let perm = vec![3usize, 0, 1, 2];
        let h = PermutedHash::new(XorFoldHash::new(), perm.clone());
        let base = XorFoldHash::new();
        let mut seen = std::collections::HashSet::new();
        for a in 0..4096u64 {
            let s = h.slice_of(a, 4);
            assert_eq!(s, perm[base.slice_of(a, 4)]);
            seen.insert(s);
        }
        assert_eq!(seen.len(), 4, "permutation must stay surjective");
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permuted_hash_rejects_non_permutations() {
        let _ = PermutedHash::new(XorFoldHash::new(), vec![0, 0, 1]);
    }

    #[test]
    fn fold_by_halves_matches_chunk_loop() {
        // The fast path (k | 64, k a power of two) must agree with the
        // reference chunk-at-a-time fold for every slice count.
        let h = XorFoldHash::new();
        let chunk_loop = |line: u64, n: usize| -> usize {
            let k = n.trailing_zeros();
            let mut folded = 0u64;
            let mut a = line;
            while a != 0 {
                folded ^= a & (n as u64 - 1);
                a >>= k;
            }
            folded as usize
        };
        let mut x = 0x1234_5678_9abc_def0u64;
        for n in [2usize, 4, 8, 16, 64, 256] {
            for i in 0..2000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                assert_eq!(h.slice_of(x, n), chunk_loop(x, n), "n={n} line={x:#x}");
            }
        }
    }

    #[test]
    fn non_power_of_two_uniformity() {
        // The balanced rotation is *exactly* uniform over the aligned
        // 120_000 = 10_000 × 12 window, not merely statistically close.
        let h = XorFoldHash::new();
        let n = 12usize;
        let mut counts = vec![0u64; n];
        for a in 0..120_000u64 {
            counts[h.slice_of(a, n)] += 1;
        }
        let expect = 120_000 / n as u64;
        for &c in &counts {
            assert_eq!(c, expect, "counts {counts:?}");
        }
    }

    #[test]
    fn non_power_of_two_strides_still_scatter() {
        // The rotation offset changes every block, so page-strided streams
        // (the access pattern a plain modulo collapses) spread over slices
        // even at non-power-of-two counts.
        let h = XorFoldHash::new();
        let n = 12usize;
        let mut touched = std::collections::HashSet::new();
        for i in 0..64u64 {
            touched.insert(h.slice_of(i * 1024, n));
        }
        assert!(touched.len() >= n / 2, "stride collapsed to {touched:?}");
    }

    #[test]
    fn global_slice_map_round_trips_and_composes() {
        let h = XorFoldHash::new();
        for (chips, total) in [(1usize, 8usize), (2, 16), (4, 24), (3, 48)] {
            let map = GlobalSliceMap::new(chips, total);
            assert_eq!(map.total(), total);
            for g in 0..total {
                let (chip, local) = map.split(g);
                assert!(chip < chips && local < map.slices_per_chip);
                assert_eq!(map.join(chip, local), g);
            }
            for a in 0..4096u64 {
                let (chip, local) = map.locate(&h, a * 97 + 13);
                assert_eq!(
                    map.join(chip, local),
                    h.slice_of(a * 97 + 13, total),
                    "locate must be the hash at the total count, split chip-major"
                );
            }
        }
        // One chip degenerates to the flat numbering.
        let flat = GlobalSliceMap::new(1, 16);
        for g in 0..16 {
            assert_eq!(flat.split(g), (0, g));
        }
    }

    #[test]
    fn global_slice_map_is_per_chip_uniform() {
        // Steering at the total count then splitting chip-major must keep
        // every chip (and every slice within a chip) within ±1 of uniform
        // over an exhaustive window — the property the scaling study rests
        // on (no chip is hot merely because of the hash).
        let h = XorFoldHash::new();
        let map = GlobalSliceMap::new(4, 24);
        let mut per_chip = [0i64; 4];
        for a in 0..(1u64 << 16) {
            per_chip[map.locate(&h, a).0] += 1;
        }
        let share = (1i64 << 16) / 4;
        for (c, &got) in per_chip.iter().enumerate() {
            assert!(
                (got - share).abs() <= 6,
                "chip {c} got {got} of 2^16 addresses (share {share})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn global_slice_map_rejects_indivisible_totals() {
        let _ = GlobalSliceMap::new(3, 16);
    }
}

//! Flat binary state snapshots for checkpoint/restore.
//!
//! Every component that carries mutable run-state (mesh link backlogs,
//! DRAM bank timers, predictor tables, per-line replacement metadata …)
//! implements [`Persist`]: `save` appends the state to a [`StateWriter`]
//! as little-endian bytes, `load` reads it back from a [`StateReader`]
//! into an *already-shaped* value. Shapes (vector lengths, table sizes)
//! come from configuration, not from the snapshot: restore first rebuilds
//! the component from its config, then loads the bytes into it. The
//! container layer (`drishti-ckpt/v1` in `crates/sim`) guards every
//! section with an fnv1a64 checksum and a config hash, so `load` mostly
//! defends against truncation — a checksummed-but-short section, the one
//! corruption the container cannot rule out — via typed [`SnapError`]s,
//! never panics.
//!
//! The encoding is deliberately boring: fixed-width little-endian
//! integers, `f64` as IEEE-754 bits, `u64` length prefixes, hash maps
//! sorted by key. Boring means *canonical*: the same state always
//! serialises to the same bytes, which is what lets the sweep journal and
//! the resume gate byte-compare artifacts.
//!
//! This lives in `drishti-noc` because it is the one crate every other
//! state-bearing crate (`mem`, `core`, `policies`, `sim`) already depends
//! on. The [`impl_persist_fields!`](crate::impl_persist_fields) macro
//! generates field-by-field impls and is meant to be invoked *inside* the
//! defining module, where private fields are visible.

use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Everything that can go wrong decoding a state snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before `what` could be decoded.
    Truncated {
        /// What was being decoded when the bytes ran out.
        what: &'static str,
    },
    /// A decoded value for `what` is out of range or inconsistent with
    /// the component being restored.
    Invalid {
        /// What was being decoded.
        what: &'static str,
        /// Why the value was rejected.
        detail: String,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { what } => {
                write!(f, "snapshot truncated while decoding {what}")
            }
            SnapError::Invalid { what, detail } => {
                write!(f, "snapshot field {what} invalid: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only byte sink state is serialised into.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> Self {
        StateWriter::default()
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer into its byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes (no length prefix).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over a byte buffer state is deserialised from.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        StateReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn take_u8(&mut self, what: &'static str) -> Result<u8, SnapError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn take_u16(&mut self, what: &'static str) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self, what: &'static str) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self, what: &'static str) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read a `u64` length prefix, rejecting lengths that cannot possibly
    /// fit in the remaining bytes (every element encodes to ≥ 1 byte), so
    /// a corrupt length cannot trigger a huge allocation.
    pub fn take_len(&mut self, what: &'static str) -> Result<usize, SnapError> {
        let n = self.take_u64(what)?;
        if n > self.remaining() as u64 {
            return Err(SnapError::Invalid {
                what,
                detail: format!("length {n} exceeds {} remaining bytes", self.remaining()),
            });
        }
        Ok(n as usize)
    }

    /// Read `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapError> {
        self.take(n, what)
    }
}

/// A component whose mutable run-state round-trips through flat bytes.
///
/// `load` is called on a value whose *shape* (table sizes, vector
/// lengths) was already rebuilt from configuration; it overwrites the
/// run-state in place. The contract every implementation must keep:
/// `save` then `load` on an identically-configured value reproduces the
/// original bit-for-bit, and `save` is canonical (equal states produce
/// equal bytes).
pub trait Persist {
    /// Append this value's state to `w`.
    fn save(&self, w: &mut StateWriter);

    /// Overwrite this value's state from `r`.
    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError>;
}

macro_rules! persist_int {
    ($ty:ty, $take:ident, $name:literal) => {
        impl Persist for $ty {
            fn save(&self, w: &mut StateWriter) {
                w.put_bytes(&self.to_le_bytes());
            }
            fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
                *self = <$ty>::from_le_bytes(
                    r.take_bytes(std::mem::size_of::<$ty>(), $name)?
                        .try_into()
                        .unwrap(),
                );
                Ok(())
            }
        }
    };
}

persist_int!(u8, take_u8, "u8");
persist_int!(u16, take_u16, "u16");
persist_int!(u32, take_u32, "u32");
persist_int!(u64, take_u64, "u64");
persist_int!(i8, take_u8, "i8");
persist_int!(i16, take_u16, "i16");
persist_int!(i32, take_u32, "i32");
persist_int!(i64, take_u64, "i64");

impl Persist for usize {
    fn save(&self, w: &mut StateWriter) {
        w.put_u64(*self as u64);
    }
    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let v = r.take_u64("usize")?;
        *self = usize::try_from(v).map_err(|_| SnapError::Invalid {
            what: "usize",
            detail: format!("{v} does not fit the host word size"),
        })?;
        Ok(())
    }
}

impl Persist for bool {
    fn save(&self, w: &mut StateWriter) {
        w.put_u8(u8::from(*self));
    }
    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        match r.take_u8("bool")? {
            0 => *self = false,
            1 => *self = true,
            v => {
                return Err(SnapError::Invalid {
                    what: "bool",
                    detail: format!("expected 0 or 1, got {v}"),
                })
            }
        }
        Ok(())
    }
}

impl Persist for f64 {
    /// IEEE-754 bit pattern, so NaN payloads and signed zeros round-trip
    /// exactly and equal states stay byte-equal.
    fn save(&self, w: &mut StateWriter) {
        w.put_u64(self.to_bits());
    }
    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        *self = f64::from_bits(r.take_u64("f64")?);
        Ok(())
    }
}

impl Persist for String {
    fn save(&self, w: &mut StateWriter) {
        w.put_u64(self.len() as u64);
        w.put_bytes(self.as_bytes());
    }
    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.take_len("string length")?;
        let bytes = r.take_bytes(n, "string bytes")?;
        *self = String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Invalid {
            what: "string bytes",
            detail: "not valid UTF-8".into(),
        })?;
        Ok(())
    }
}

impl<T: Persist + Default> Persist for Vec<T> {
    fn save(&self, w: &mut StateWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.save(w);
        }
    }
    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.take_len("vec length")?;
        // Load into the existing elements when the count matches: elements
        // may carry configuration-built state their own `load` deliberately
        // preserves (e.g. a selector's construction-time variant), which
        // replacing them with `T::default()` would destroy. Only a count
        // mismatch — a snapshot from a different configuration, left for
        // the element loads or the caller to refuse — falls back to
        // default-constructed slots.
        if n != self.len() {
            self.clear();
            self.resize_with(n, T::default);
        }
        for v in self.iter_mut() {
            v.load(r)?;
        }
        Ok(())
    }
}

impl<T: Persist + Default> Persist for VecDeque<T> {
    fn save(&self, w: &mut StateWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.save(w);
        }
    }
    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.take_len("deque length")?;
        // Same in-place rule as `Vec<T>`: preserve existing elements when
        // the count matches so their non-persisted state survives.
        if n == self.len() {
            for v in self.iter_mut() {
                v.load(r)?;
            }
            return Ok(());
        }
        self.clear();
        for _ in 0..n {
            let mut v = T::default();
            v.load(r)?;
            self.push_back(v);
        }
        Ok(())
    }
}

impl<K, V> Persist for HashMap<K, V>
where
    K: Persist + Default + Ord + std::hash::Hash + Eq + Clone,
    V: Persist + Default,
{
    /// Entries sorted by key, so equal maps always produce equal bytes.
    fn save(&self, w: &mut StateWriter) {
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        w.put_u64(self.len() as u64);
        for k in keys {
            k.save(w);
            self[k].save(w);
        }
    }
    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.take_len("map length")?;
        self.clear();
        for _ in 0..n {
            let mut k = K::default();
            k.load(r)?;
            let mut v = V::default();
            v.load(r)?;
            if self.insert(k, v).is_some() {
                return Err(SnapError::Invalid {
                    what: "map entry",
                    detail: "duplicate key".into(),
                });
            }
        }
        Ok(())
    }
}

impl<T: Persist + Default> Persist for Option<T> {
    fn save(&self, w: &mut StateWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }
    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        match r.take_u8("option tag")? {
            0 => *self = None,
            // In-place rule again: an existing `Some` keeps its element so
            // non-persisted state survives the load.
            1 => match self {
                Some(v) => v.load(r)?,
                None => {
                    let mut v = T::default();
                    v.load(r)?;
                    *self = Some(v);
                }
            },
            t => {
                return Err(SnapError::Invalid {
                    what: "option tag",
                    detail: format!("expected 0 or 1, got {t}"),
                })
            }
        }
        Ok(())
    }
}

impl<T: Persist, const N: usize> Persist for [T; N] {
    fn save(&self, w: &mut StateWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        for v in self.iter_mut() {
            v.load(r)?;
        }
        Ok(())
    }
}

macro_rules! persist_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Persist),+> Persist for ($($name,)+) {
            fn save(&self, w: &mut StateWriter) {
                $(self.$idx.save(w);)+
            }
            fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
                $(self.$idx.load(r)?;)+
                Ok(())
            }
        }
    };
}

persist_tuple!(A: 0, B: 1);
persist_tuple!(A: 0, B: 1, C: 2);
persist_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Generate a [`Persist`](crate::snap::Persist) impl that saves/loads the
/// listed fields in order. Invoke inside the module that defines the type
/// (private fields are referenced directly):
///
/// ```
/// #[derive(Default)]
/// struct Timer { elapsed: u64, armed: bool }
/// drishti_noc::impl_persist_fields!(Timer { elapsed, armed });
///
/// let mut w = drishti_noc::snap::StateWriter::new();
/// drishti_noc::snap::Persist::save(&Timer { elapsed: 7, armed: true }, &mut w);
/// let mut t = Timer::default();
/// let mut r = drishti_noc::snap::StateReader::new(w.bytes());
/// drishti_noc::snap::Persist::load(&mut t, &mut r).unwrap();
/// assert_eq!(t.elapsed, 7);
/// ```
#[macro_export]
macro_rules! impl_persist_fields {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::snap::Persist for $ty {
            fn save(&self, w: &mut $crate::snap::StateWriter) {
                $($crate::snap::Persist::save(&self.$field, w);)+
            }
            fn load(
                &mut self,
                r: &mut $crate::snap::StateReader<'_>,
            ) -> Result<(), $crate::snap::SnapError> {
                $($crate::snap::Persist::load(&mut self.$field, r)?;)+
                Ok(())
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + Default + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = StateWriter::new();
        v.save(&mut w);
        let bytes = w.into_bytes();
        let mut out = T::default();
        let mut r = StateReader::new(&bytes);
        out.load(&mut r).unwrap();
        assert_eq!(&out, v);
        assert_eq!(r.remaining(), 0, "decoder must consume every byte");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0xABu8);
        round_trip(&0xABCDu16);
        round_trip(&0xDEAD_BEEFu32);
        round_trip(&u64::MAX);
        round_trip(&(-5i8));
        round_trip(&(-70_000i32));
        round_trip(&i64::MIN);
        round_trip(&usize::MAX);
        round_trip(&true);
        round_trip(&false);
        round_trip(&std::f64::consts::PI);
        round_trip(&-0.0f64);
        round_trip(&"predictor".to_string());
        round_trip(&String::new());
    }

    #[test]
    fn f64_nan_bits_survive() {
        let v = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut w = StateWriter::new();
        v.save(&mut w);
        let mut out = 0.0f64;
        out.load(&mut StateReader::new(w.bytes())).unwrap();
        assert_eq!(out.to_bits(), v.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&vec![1u64, 2, 3]);
        round_trip(&Vec::<u64>::new());
        round_trip(&vec![vec![1u8], vec![], vec![2, 3]]);
        round_trip(&VecDeque::from([9u64, 8, 7]));
        round_trip(&Some(42u32));
        round_trip(&Option::<u32>::None);
        round_trip(&[1u64, 2, 3]);
        round_trip(&(7u64, "x".to_string()));
        round_trip(&(1u64, 2u16, 3u8, 4u8));
        let mut m = HashMap::new();
        m.insert(3u64, 30u64);
        m.insert(1, 10);
        m.insert(2, 20);
        round_trip(&m);
    }

    #[test]
    fn map_bytes_are_canonical() {
        // Same entries inserted in different orders must serialise
        // identically — the sweep journal byte-compares snapshots.
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for k in 0..32u64 {
            a.insert(k, k * 3);
        }
        for k in (0..32u64).rev() {
            b.insert(k, k * 3);
        }
        let (mut wa, mut wb) = (StateWriter::new(), StateWriter::new());
        a.save(&mut wa);
        b.save(&mut wb);
        assert_eq!(wa.bytes(), wb.bytes());
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = StateWriter::new();
        vec![1u64, 2, 3].save(&mut w);
        let bytes = w.into_bytes();
        let mut out = Vec::<u64>::new();
        let err = out
            .load(&mut StateReader::new(&bytes[..bytes.len() - 1]))
            .unwrap_err();
        assert!(matches!(err, SnapError::Truncated { .. }), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut w = StateWriter::new();
        w.put_u64(u64::MAX); // length prefix promising 2^64-1 elements
        let mut out = Vec::<u64>::new();
        let err = out.load(&mut StateReader::new(w.bytes())).unwrap_err();
        assert!(
            matches!(
                err,
                SnapError::Invalid {
                    what: "vec length",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn bad_bool_and_option_tags_are_rejected() {
        let mut out = false;
        let err = out.load(&mut StateReader::new(&[2])).unwrap_err();
        assert!(matches!(err, SnapError::Invalid { what: "bool", .. }));
        let mut opt = Option::<u8>::None;
        let err = opt.load(&mut StateReader::new(&[9])).unwrap_err();
        assert!(matches!(
            err,
            SnapError::Invalid {
                what: "option tag",
                ..
            }
        ));
    }

    #[test]
    fn non_utf8_string_is_rejected() {
        let mut w = StateWriter::new();
        w.put_u64(2);
        w.put_bytes(&[0xff, 0xfe]);
        let mut s = String::new();
        let err = s.load(&mut StateReader::new(w.bytes())).unwrap_err();
        assert!(matches!(err, SnapError::Invalid { .. }), "{err}");
    }

    #[test]
    fn duplicate_map_keys_are_rejected() {
        let mut w = StateWriter::new();
        w.put_u64(2);
        1u64.save(&mut w);
        10u64.save(&mut w);
        1u64.save(&mut w);
        11u64.save(&mut w);
        let mut m = HashMap::<u64, u64>::new();
        let err = m.load(&mut StateReader::new(w.bytes())).unwrap_err();
        assert!(matches!(
            err,
            SnapError::Invalid {
                what: "map entry",
                ..
            }
        ));
    }

    #[test]
    fn errors_display_with_context() {
        let e = SnapError::Truncated { what: "dram bank" };
        assert!(e.to_string().contains("dram bank"));
        let e = SnapError::Invalid {
            what: "bool",
            detail: "expected 0 or 1, got 7".into(),
        };
        assert!(e.to_string().contains("bool"));
        assert!(e.to_string().contains("got 7"));
    }

    #[derive(Debug, Default, PartialEq)]
    struct Demo {
        a: u64,
        b: Vec<u8>,
        c: bool,
    }
    crate::impl_persist_fields!(Demo { a, b, c });

    #[test]
    fn field_macro_round_trips_struct() {
        round_trip(&Demo {
            a: 99,
            b: vec![1, 2, 3],
            c: true,
        });
    }
}

//! The slice → predictor transport abstraction.
//!
//! Prediction-based replacement policies (Hawkeye, Mockingjay, …) access a
//! reuse predictor on two occasions: *training* (a sampled-set access
//! resolves a reuse or an eviction) and *prediction* (an LLC fill asks for an
//! insertion priority). Where that predictor lives — and what fabric carries
//! the access — is the heart of the Drishti design space:
//!
//! * **local** per-slice predictor: zero transport cost, myopic training;
//! * **global** predictor over the **mesh**: ~20-cycle accesses on 32 cores
//!   that erase the benefit (paper Fig 11a);
//! * **global** predictor over **NOCSTAR**: 3-cycle accesses (Drishti);
//! * a **fixed-latency** link used for the paper's latency-sensitivity sweep
//!   (Fig 11b).
//!
//! [`PredictorLink`] unifies these so the policy code is organisation-
//! agnostic; `drishti-core` picks the implementation.

use crate::mesh::{Mesh, MeshConfig, ADDRESS_PACKET_FLITS};
use crate::nocstar::{Nocstar, NocstarConfig, NocstarPath};
use crate::{NocStats, NodeId};

/// A transport that carries slice↔predictor messages.
///
/// `access` returns the latency (cycles) the message experiences; the
/// implementation also accounts traffic and energy in its [`NocStats`].
pub trait PredictorLink: std::fmt::Debug {
    /// Deliver one message from tile `from` to tile `to` at time `cycle`.
    fn access(&mut self, from: NodeId, to: NodeId, cycle: u64) -> u64;

    /// Deliver one *response-path* message (prediction results returning to
    /// a slice). Fabrics with a dedicated response link (NOCSTAR) route it
    /// there; others share the request path.
    fn access_response(&mut self, from: NodeId, to: NodeId, cycle: u64) -> u64 {
        self.access(from, to, cycle)
    }

    /// Traffic/energy accumulated by this link.
    fn stats(&self) -> NocStats;

    /// Clear accumulated statistics.
    fn reset_stats(&mut self);

    /// Human-readable fabric name (for experiment output).
    fn name(&self) -> &'static str;
}

/// Zero-cost link: predictor co-located with the requesting slice.
///
/// This is the baseline (per-slice local predictor) transport — the paper
/// notes that "without Drishti's enhancements, there is no interconnect
/// traffic between slices and predictors".
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalLink;

impl PredictorLink for LocalLink {
    fn access(&mut self, _from: NodeId, _to: NodeId, _cycle: u64) -> u64 {
        0
    }

    fn stats(&self) -> NocStats {
        NocStats::default()
    }

    fn reset_stats(&mut self) {}

    fn name(&self) -> &'static str {
        "local"
    }
}

/// Predictor messages ride a mesh of the same geometry as the demand NoC.
///
/// Used to reproduce Fig 11a (D-Mockingjay *without* a low-latency
/// interconnect): each access is a one-flit address packet routed XY with
/// link contention.
#[derive(Debug, Clone)]
pub struct MeshLink {
    mesh: Mesh,
}

impl MeshLink {
    /// Build a mesh-backed link for `nodes` tiles.
    pub fn new(nodes: usize) -> Self {
        MeshLink {
            mesh: Mesh::new(MeshConfig::for_nodes(nodes)),
        }
    }

    /// Build from an explicit mesh configuration.
    pub fn with_config(cfg: MeshConfig) -> Self {
        MeshLink { mesh: Mesh::new(cfg) }
    }
}

impl PredictorLink for MeshLink {
    fn access(&mut self, from: NodeId, to: NodeId, cycle: u64) -> u64 {
        self.mesh.traverse(from, to, cycle, ADDRESS_PACKET_FLITS)
    }

    fn stats(&self) -> NocStats {
        *self.mesh.stats()
    }

    fn reset_stats(&mut self) {
        self.mesh.reset_stats();
    }

    fn name(&self) -> &'static str {
        "mesh"
    }
}

/// Predictor messages ride the NOCSTAR side-band fabric (Drishti default).
#[derive(Debug, Clone)]
pub struct NocstarLink {
    fabric: Nocstar,
}

impl NocstarLink {
    /// Build a NOCSTAR link for `nodes` tiles with paper-default parameters.
    pub fn new(nodes: usize) -> Self {
        NocstarLink {
            fabric: Nocstar::with_defaults(nodes),
        }
    }

    /// Build with explicit NOCSTAR parameters.
    pub fn with_config(nodes: usize, cfg: NocstarConfig) -> Self {
        NocstarLink {
            fabric: Nocstar::new(nodes, cfg),
        }
    }
}

impl PredictorLink for NocstarLink {
    fn access(&mut self, from: NodeId, to: NodeId, cycle: u64) -> u64 {
        self.fabric.access(from, to, NocstarPath::Request, cycle)
    }

    fn access_response(&mut self, from: NodeId, to: NodeId, cycle: u64) -> u64 {
        self.fabric.access(from, to, NocstarPath::Response, cycle)
    }

    fn stats(&self) -> NocStats {
        *self.fabric.stats()
    }

    fn reset_stats(&mut self) {
        self.fabric.reset_stats();
    }

    fn name(&self) -> &'static str {
        "nocstar"
    }
}

/// A link with a fixed remote latency, contention-free.
///
/// Reproduces the paper's Fig 11b interconnect-latency sensitivity sweep
/// (1…30 cycles on a 32-core system).
#[derive(Debug, Clone)]
pub struct FixedLatencyLink {
    latency: u64,
    energy_per_message_pj: u64,
    stats: NocStats,
}

impl FixedLatencyLink {
    /// A link that always delivers in `latency` cycles.
    pub fn new(latency: u64) -> Self {
        FixedLatencyLink {
            latency,
            energy_per_message_pj: 50,
            stats: NocStats::default(),
        }
    }
}

impl PredictorLink for FixedLatencyLink {
    fn access(&mut self, from: NodeId, to: NodeId, _cycle: u64) -> u64 {
        self.stats.messages += 1;
        self.stats.flits += 1;
        self.stats.energy_pj += self.energy_per_message_pj;
        let lat = if from == to { 0 } else { self.latency };
        self.stats.total_latency += lat;
        lat
    }

    fn stats(&self) -> NocStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NocStats::default();
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_link_is_free() {
        let mut l = LocalLink;
        assert_eq!(l.access(0, 31, 1234), 0);
        assert_eq!(l.stats().messages, 0);
    }

    #[test]
    fn nocstar_link_is_three_cycles_remote() {
        let mut l = NocstarLink::new(32);
        assert_eq!(l.access(0, 31, 0), 3);
        assert_eq!(l.stats().messages, 1);
        assert_eq!(l.stats().energy_pj, 50);
    }

    #[test]
    fn mesh_link_latency_grows_with_distance() {
        let mut l = MeshLink::new(32);
        let near = l.access(0, 1, 0);
        let far = l.access(0, 31, 1_000);
        assert!(far > near, "{far} vs {near}");
    }

    #[test]
    fn mesh_link_average_is_tens_of_cycles_on_32_tiles() {
        // Paper: "For a 32-core system, we observe an average interconnect
        // latency of 20 cycles." Our model should land in that regime.
        let mut l = MeshLink::new(32);
        let mut total = 0u64;
        let mut count = 0u64;
        for from in 0..32 {
            for to in 0..32 {
                total += l.access(from, to, 1_000_000 * (from * 32 + to) as u64);
                count += 1;
            }
        }
        let avg = total as f64 / count as f64;
        assert!((8.0..35.0).contains(&avg), "average mesh latency {avg}");
    }

    #[test]
    fn fixed_latency_link_sweeps() {
        for lat in [1u64, 5, 10, 20, 30] {
            let mut l = FixedLatencyLink::new(lat);
            assert_eq!(l.access(0, 9, 0), lat);
            assert_eq!(l.access(4, 4, 0), 0);
        }
    }

    #[test]
    fn reset_stats_clears_counts() {
        let mut l = NocstarLink::new(8);
        l.access(0, 5, 0);
        l.reset_stats();
        assert_eq!(l.stats().messages, 0);
    }
}

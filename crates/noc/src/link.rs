//! The slice → predictor transport abstraction.
//!
//! Prediction-based replacement policies (Hawkeye, Mockingjay, …) access a
//! reuse predictor on two occasions: *training* (a sampled-set access
//! resolves a reuse or an eviction) and *prediction* (an LLC fill asks for an
//! insertion priority). Where that predictor lives — and what fabric carries
//! the access — is the heart of the Drishti design space:
//!
//! * **local** per-slice predictor: zero transport cost, myopic training;
//! * **global** predictor over the **mesh**: ~20-cycle accesses on 32 cores
//!   that erase the benefit (paper Fig 11a);
//! * **global** predictor over **NOCSTAR**: 3-cycle accesses (Drishti);
//! * a **fixed-latency** link used for the paper's latency-sensitivity sweep
//!   (Fig 11b).
//!
//! [`PredictorLink`] unifies these so the policy code is organisation-
//! agnostic; `drishti-core` picks the implementation.

use crate::faults::{FaultConfig, FaultDomain, FaultSchedule};
use crate::mesh::{Mesh, MeshConfig, ADDRESS_PACKET_FLITS};
use crate::nocstar::{Nocstar, NocstarConfig, NocstarPath};
use crate::snap::{Persist, SnapError};
use crate::{Delivery, NocStats, NodeId};

/// A transport that carries slice↔predictor messages.
///
/// `access` returns the latency (cycles) the message experiences; the
/// implementation also accounts traffic and energy in its [`NocStats`].
pub trait PredictorLink: std::fmt::Debug {
    /// Deliver one message from tile `from` to tile `to` at time `cycle`.
    fn access(&mut self, from: NodeId, to: NodeId, cycle: u64) -> u64;

    /// Deliver one *response-path* message (prediction results returning to
    /// a slice). Fabrics with a dedicated response link (NOCSTAR) route it
    /// there; others share the request path.
    fn access_response(&mut self, from: NodeId, to: NodeId, cycle: u64) -> u64 {
        self.access(from, to, cycle)
    }

    /// Fault-aware variant of [`PredictorLink::access`]: the message may be
    /// lost instead of delivered. Healthy fabrics (the default) always
    /// deliver; fault-aware implementations override this. Unlike demand
    /// traffic, a lost predictor message is *not* retransmitted by the
    /// fabric — the caller (`PredictorFabric`) owns the retry/fallback
    /// policy.
    fn send(&mut self, from: NodeId, to: NodeId, cycle: u64) -> Delivery {
        Delivery::delivered(self.access(from, to, cycle))
    }

    /// Fault-aware variant of [`PredictorLink::access_response`].
    fn send_response(&mut self, from: NodeId, to: NodeId, cycle: u64) -> Delivery {
        Delivery::delivered(self.access_response(from, to, cycle))
    }

    /// Traffic/energy accumulated by this link.
    fn stats(&self) -> NocStats;

    /// Clear accumulated statistics.
    fn reset_stats(&mut self);

    /// Human-readable fabric name (for experiment output).
    fn name(&self) -> &'static str;

    /// Serialise the link's mutable run-state for a checkpoint. Stateless
    /// links (the default) write nothing.
    fn save_state(&self, _w: &mut crate::snap::StateWriter) {}

    /// Restore state saved by [`PredictorLink::save_state`] into an
    /// identically-configured link.
    fn load_state(&mut self, _r: &mut crate::snap::StateReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// Zero-cost link: predictor co-located with the requesting slice.
///
/// This is the baseline (per-slice local predictor) transport — the paper
/// notes that "without Drishti's enhancements, there is no interconnect
/// traffic between slices and predictors".
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalLink;

impl PredictorLink for LocalLink {
    fn access(&mut self, _from: NodeId, _to: NodeId, _cycle: u64) -> u64 {
        0
    }

    fn stats(&self) -> NocStats {
        NocStats::default()
    }

    fn reset_stats(&mut self) {}

    fn name(&self) -> &'static str {
        "local"
    }
}

/// Predictor messages ride a mesh of the same geometry as the demand NoC.
///
/// Used to reproduce Fig 11a (D-Mockingjay *without* a low-latency
/// interconnect): each access is a one-flit address packet routed XY with
/// link contention.
#[derive(Debug, Clone)]
pub struct MeshLink {
    mesh: Mesh,
    /// Injected-fault stream for predictor messages. Kept here rather than
    /// inside the mesh because predictor traffic has *loss* semantics (the
    /// fabric surfaces the drop and lets `PredictorFabric` decide), while
    /// the demand mesh retransmits internally.
    faults: Option<FaultSchedule>,
    /// Drop/jitter accounting layered over the mesh's own stats.
    fault_stats: NocStats,
}

impl MeshLink {
    /// Build a mesh-backed link for `nodes` tiles.
    pub fn new(nodes: usize) -> Self {
        MeshLink {
            mesh: Mesh::new(MeshConfig::for_nodes(nodes)),
            faults: None,
            fault_stats: NocStats::default(),
        }
    }

    /// Build from an explicit mesh configuration.
    pub fn with_config(cfg: MeshConfig) -> Self {
        MeshLink {
            mesh: Mesh::new(cfg),
            faults: None,
            fault_stats: NocStats::default(),
        }
    }

    /// Build a fault-aware mesh link; no-op configs are bit-identical to
    /// [`MeshLink::new`].
    pub fn with_faults(nodes: usize, faults: &FaultConfig) -> Self {
        let mut l = MeshLink::new(nodes);
        l.faults = FaultSchedule::for_domain(faults, FaultDomain::Fabric);
        l
    }
}

impl PredictorLink for MeshLink {
    fn access(&mut self, from: NodeId, to: NodeId, cycle: u64) -> u64 {
        self.mesh.traverse(from, to, cycle, ADDRESS_PACKET_FLITS)
    }

    fn send(&mut self, from: NodeId, to: NodeId, cycle: u64) -> Delivery {
        let (outage, decision) = match self.faults.as_mut() {
            Some(sched) if from != to => (
                sched.link_outage_wait(from, cycle).unwrap_or(0),
                sched.decide(from, to, cycle),
            ),
            _ => return Delivery::delivered(self.access(from, to, cycle)),
        };
        if decision.dropped {
            // Loss observable after the zero-load flight time.
            let flight = self
                .mesh
                .zero_load_latency(self.mesh.hops(from, to), ADDRESS_PACKET_FLITS);
            self.fault_stats.dropped += 1;
            self.fault_stats.fault_delay_cycles += outage;
            return Delivery {
                latency: outage + flight,
                dropped: true,
            };
        }
        let extra = outage + decision.jitter;
        self.fault_stats.fault_delay_cycles += extra;
        Delivery::delivered(self.access(from, to, cycle + extra) + extra)
    }

    fn stats(&self) -> NocStats {
        let mut s = *self.mesh.stats();
        s.merge(&self.fault_stats);
        s
    }

    fn reset_stats(&mut self) {
        self.mesh.reset_stats();
        self.fault_stats = NocStats::default();
    }

    fn name(&self) -> &'static str {
        "mesh"
    }

    fn save_state(&self, w: &mut crate::snap::StateWriter) {
        self.mesh.save_state(w);
        self.fault_stats.save(w);
        crate::faults::save_fault_cursor(&self.faults, w);
    }

    fn load_state(&mut self, r: &mut crate::snap::StateReader<'_>) -> Result<(), SnapError> {
        self.mesh.load_state(r)?;
        self.fault_stats.load(r)?;
        crate::faults::load_fault_cursor(&mut self.faults, r, "mesh link fault schedule")
    }
}

/// Predictor messages ride the NOCSTAR side-band fabric (Drishti default).
#[derive(Debug, Clone)]
pub struct NocstarLink {
    fabric: Nocstar,
}

impl NocstarLink {
    /// Build a NOCSTAR link for `nodes` tiles with paper-default parameters.
    pub fn new(nodes: usize) -> Self {
        NocstarLink {
            fabric: Nocstar::with_defaults(nodes),
        }
    }

    /// Build with explicit NOCSTAR parameters.
    pub fn with_config(nodes: usize, cfg: NocstarConfig) -> Self {
        NocstarLink {
            fabric: Nocstar::new(nodes, cfg),
        }
    }

    /// Build a fault-aware NOCSTAR link; no-op configs are bit-identical
    /// to [`NocstarLink::new`].
    pub fn with_faults(nodes: usize, faults: &FaultConfig) -> Self {
        NocstarLink {
            fabric: Nocstar::with_faults(nodes, NocstarConfig::default(), faults),
        }
    }
}

impl PredictorLink for NocstarLink {
    fn access(&mut self, from: NodeId, to: NodeId, cycle: u64) -> u64 {
        self.fabric.access(from, to, NocstarPath::Request, cycle)
    }

    fn access_response(&mut self, from: NodeId, to: NodeId, cycle: u64) -> u64 {
        self.fabric.access(from, to, NocstarPath::Response, cycle)
    }

    fn send(&mut self, from: NodeId, to: NodeId, cycle: u64) -> Delivery {
        self.fabric.send(from, to, NocstarPath::Request, cycle)
    }

    fn send_response(&mut self, from: NodeId, to: NodeId, cycle: u64) -> Delivery {
        self.fabric.send(from, to, NocstarPath::Response, cycle)
    }

    fn stats(&self) -> NocStats {
        *self.fabric.stats()
    }

    fn reset_stats(&mut self) {
        self.fabric.reset_stats();
    }

    fn name(&self) -> &'static str {
        "nocstar"
    }

    fn save_state(&self, w: &mut crate::snap::StateWriter) {
        self.fabric.save_state(w);
    }

    fn load_state(&mut self, r: &mut crate::snap::StateReader<'_>) -> Result<(), SnapError> {
        self.fabric.load_state(r)
    }
}

/// A chip-boundary-aware wrapper around any [`PredictorLink`].
///
/// NOCSTAR is a latch-less circuit-switched side-band — a *die-local*
/// structure that cannot cross a package boundary. On a multi-chip
/// [`crate::topology::ChipTopology`], predictor traffic between tiles of
/// one chip rides the wrapped link unchanged, but a cross-chip access
/// falls back to the hierarchical path: the wrapped link carries it to the
/// source chip's I/O gateway, a serializing inter-chip segment carries it
/// between chips, and the wrapped link delivers it from the destination
/// chip's gateway. This reproduces the paper's Fig 11 tension at scale —
/// however fast the side-band, a cross-chip predictor lookup pays tens of
/// cycles, exactly the regime where Fig 11b shows the benefit eroding.
#[derive(Debug)]
pub struct HierarchicalLink {
    inner: Box<dyn PredictorLink>,
    nodes_per_chip: usize,
    /// Chip-grid width (same squarest factorization as the topology).
    grid_w: usize,
    link: crate::topology::ChipLinkConfig,
    /// Cross-chip segment accounting, kept apart from the inner link's.
    cross_stats: NocStats,
}

impl HierarchicalLink {
    /// Wrap `inner` (built for all `total_tiles` tiles, global ids) for a
    /// `chips`-chip system.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero or does not divide `total_tiles`.
    pub fn new(
        inner: Box<dyn PredictorLink>,
        chips: usize,
        total_tiles: usize,
        link: crate::topology::ChipLinkConfig,
    ) -> Self {
        assert!(
            chips > 0 && total_tiles.is_multiple_of(chips),
            "chips ({chips}) must divide the tile count ({total_tiles})"
        );
        HierarchicalLink {
            inner,
            nodes_per_chip: total_tiles / chips,
            grid_w: MeshConfig::for_nodes(chips).width,
            link,
            cross_stats: NocStats::default(),
        }
    }

    fn chip_of(&self, node: NodeId) -> usize {
        node / self.nodes_per_chip
    }

    /// Global tile id of `chip`'s I/O gateway (local tile 0, matching
    /// [`crate::topology::GATEWAY_TILE`]).
    fn gateway(&self, chip: usize) -> NodeId {
        chip * self.nodes_per_chip
    }

    fn chip_hops(&self, a: usize, b: usize) -> u32 {
        let (ax, ay) = (a % self.grid_w, a / self.grid_w);
        let (bx, by) = (b % self.grid_w, b / self.grid_w);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }

    /// Contention-free latency and accounting of the inter-chip segment
    /// for a one-flit predictor packet.
    fn cross_segment(&mut self, from_chip: usize, to_chip: usize) -> u64 {
        let hops = self.chip_hops(from_chip, to_chip);
        self.cross_stats.messages += 1;
        self.cross_stats.flits += 1;
        self.cross_stats.hop_traversals += u64::from(hops);
        self.cross_stats.energy_pj += u64::from(hops) * self.link.energy_per_flit_pj;
        let lat = self.link.latency * u64::from(hops) + self.link.serialization.saturating_sub(1);
        self.cross_stats.total_latency += lat;
        lat
    }
}

impl PredictorLink for HierarchicalLink {
    fn access(&mut self, from: NodeId, to: NodeId, cycle: u64) -> u64 {
        let (ca, cb) = (self.chip_of(from), self.chip_of(to));
        if ca == cb {
            return self.inner.access(from, to, cycle);
        }
        let leg1 = self.inner.access(from, self.gateway(ca), cycle);
        let cross = self.cross_segment(ca, cb);
        let leg2 = self.inner.access(self.gateway(cb), to, cycle);
        leg1 + cross + leg2
    }

    fn access_response(&mut self, from: NodeId, to: NodeId, cycle: u64) -> u64 {
        let (ca, cb) = (self.chip_of(from), self.chip_of(to));
        if ca == cb {
            return self.inner.access_response(from, to, cycle);
        }
        let leg1 = self.inner.access_response(from, self.gateway(ca), cycle);
        let cross = self.cross_segment(ca, cb);
        let leg2 = self.inner.access_response(self.gateway(cb), to, cycle);
        leg1 + cross + leg2
    }

    fn send(&mut self, from: NodeId, to: NodeId, cycle: u64) -> Delivery {
        let (ca, cb) = (self.chip_of(from), self.chip_of(to));
        if ca == cb {
            return self.inner.send(from, to, cycle);
        }
        // Both on-chip legs are issued at the current time (the same rule
        // the fabric's request/response pair follows); a drop on either
        // leg loses the message.
        let leg1 = self.inner.send(from, self.gateway(ca), cycle);
        let cross = self.cross_segment(ca, cb);
        let leg2 = self.inner.send(self.gateway(cb), to, cycle);
        Delivery {
            latency: leg1.latency + cross + leg2.latency,
            dropped: leg1.dropped || leg2.dropped,
        }
    }

    fn send_response(&mut self, from: NodeId, to: NodeId, cycle: u64) -> Delivery {
        let (ca, cb) = (self.chip_of(from), self.chip_of(to));
        if ca == cb {
            return self.inner.send_response(from, to, cycle);
        }
        let leg1 = self.inner.send_response(from, self.gateway(ca), cycle);
        let cross = self.cross_segment(ca, cb);
        let leg2 = self.inner.send_response(self.gateway(cb), to, cycle);
        Delivery {
            latency: leg1.latency + cross + leg2.latency,
            dropped: leg1.dropped || leg2.dropped,
        }
    }

    fn stats(&self) -> NocStats {
        let mut s = self.inner.stats();
        s.merge(&self.cross_stats);
        s
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.cross_stats = NocStats::default();
    }

    fn name(&self) -> &'static str {
        "hierarchical"
    }

    fn save_state(&self, w: &mut crate::snap::StateWriter) {
        self.inner.save_state(w);
        self.cross_stats.save(w);
    }

    fn load_state(&mut self, r: &mut crate::snap::StateReader<'_>) -> Result<(), SnapError> {
        self.inner.load_state(r)?;
        self.cross_stats.load(r)
    }
}

/// A link with a fixed remote latency, contention-free.
///
/// Reproduces the paper's Fig 11b interconnect-latency sensitivity sweep
/// (1…30 cycles on a 32-core system).
#[derive(Debug, Clone)]
pub struct FixedLatencyLink {
    latency: u64,
    energy_per_message_pj: u64,
    stats: NocStats,
    /// Injected-fault stream (`None` on the healthy fast path).
    faults: Option<FaultSchedule>,
}

impl FixedLatencyLink {
    /// A link that always delivers in `latency` cycles.
    pub fn new(latency: u64) -> Self {
        FixedLatencyLink {
            latency,
            energy_per_message_pj: 50,
            stats: NocStats::default(),
            faults: None,
        }
    }

    /// A fault-aware fixed-latency link; no-op configs are bit-identical
    /// to [`FixedLatencyLink::new`].
    pub fn with_faults(latency: u64, faults: &FaultConfig) -> Self {
        let mut l = FixedLatencyLink::new(latency);
        l.faults = FaultSchedule::for_domain(faults, FaultDomain::Fabric);
        l
    }
}

impl PredictorLink for FixedLatencyLink {
    fn access(&mut self, from: NodeId, to: NodeId, _cycle: u64) -> u64 {
        self.stats.messages += 1;
        self.stats.flits += 1;
        self.stats.energy_pj += self.energy_per_message_pj;
        let lat = if from == to { 0 } else { self.latency };
        self.stats.total_latency += lat;
        lat
    }

    fn send(&mut self, from: NodeId, to: NodeId, cycle: u64) -> Delivery {
        let decision = match self.faults.as_mut() {
            Some(sched) if from != to => sched.decide(from, to, cycle),
            _ => return Delivery::delivered(self.access(from, to, cycle)),
        };
        if decision.dropped {
            self.stats.messages += 1;
            self.stats.flits += 1;
            self.stats.energy_pj += self.energy_per_message_pj;
            self.stats.dropped += 1;
            return Delivery {
                latency: self.latency,
                dropped: true,
            };
        }
        let lat = self.access(from, to, cycle) + decision.jitter;
        self.stats.total_latency += decision.jitter;
        self.stats.fault_delay_cycles += decision.jitter;
        Delivery::delivered(lat)
    }

    fn stats(&self) -> NocStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NocStats::default();
    }

    fn name(&self) -> &'static str {
        "fixed"
    }

    fn save_state(&self, w: &mut crate::snap::StateWriter) {
        self.stats.save(w);
        crate::faults::save_fault_cursor(&self.faults, w);
    }

    fn load_state(&mut self, r: &mut crate::snap::StateReader<'_>) -> Result<(), SnapError> {
        self.stats.load(r)?;
        crate::faults::load_fault_cursor(&mut self.faults, r, "fixed link fault schedule")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_link_is_free() {
        let mut l = LocalLink;
        assert_eq!(l.access(0, 31, 1234), 0);
        assert_eq!(l.stats().messages, 0);
    }

    #[test]
    fn nocstar_link_is_three_cycles_remote() {
        let mut l = NocstarLink::new(32);
        assert_eq!(l.access(0, 31, 0), 3);
        assert_eq!(l.stats().messages, 1);
        assert_eq!(l.stats().energy_pj, 50);
    }

    #[test]
    fn mesh_link_latency_grows_with_distance() {
        let mut l = MeshLink::new(32);
        let near = l.access(0, 1, 0);
        let far = l.access(0, 31, 1_000);
        assert!(far > near, "{far} vs {near}");
    }

    #[test]
    fn mesh_link_average_is_tens_of_cycles_on_32_tiles() {
        // Paper: "For a 32-core system, we observe an average interconnect
        // latency of 20 cycles." Our model should land in that regime.
        let mut l = MeshLink::new(32);
        let mut total = 0u64;
        let mut count = 0u64;
        for from in 0..32 {
            for to in 0..32 {
                total += l.access(from, to, 1_000_000 * (from * 32 + to) as u64);
                count += 1;
            }
        }
        let avg = total as f64 / count as f64;
        assert!((8.0..35.0).contains(&avg), "average mesh latency {avg}");
    }

    #[test]
    fn fixed_latency_link_sweeps() {
        for lat in [1u64, 5, 10, 20, 30] {
            let mut l = FixedLatencyLink::new(lat);
            assert_eq!(l.access(0, 9, 0), lat);
            assert_eq!(l.access(4, 4, 0), 0);
        }
    }

    #[test]
    fn reset_stats_clears_counts() {
        let mut l = NocstarLink::new(8);
        l.access(0, 5, 0);
        l.reset_stats();
        assert_eq!(l.stats().messages, 0);
    }

    #[test]
    fn default_send_always_delivers() {
        let mut links: Vec<Box<dyn PredictorLink>> = vec![
            Box::new(LocalLink),
            Box::new(MeshLink::new(16)),
            Box::new(NocstarLink::new(16)),
            Box::new(FixedLatencyLink::new(10)),
        ];
        for l in &mut links {
            let d = l.send(0, 9, 100);
            assert!(!d.dropped, "{} dropped without faults", l.name());
            let r = l.send_response(9, 0, 200);
            assert!(!r.dropped);
        }
    }

    #[test]
    fn faulty_links_drop_and_report() {
        let cfg = FaultConfig {
            seed: 17,
            drop_pct: 60.0,
            ..FaultConfig::none()
        };
        let mut links: Vec<Box<dyn PredictorLink>> = vec![
            Box::new(MeshLink::with_faults(16, &cfg)),
            Box::new(NocstarLink::with_faults(16, &cfg)),
            Box::new(FixedLatencyLink::with_faults(10, &cfg)),
        ];
        for l in &mut links {
            let drops = (0..200u64).filter(|&t| l.send(0, 9, t).dropped).count();
            assert!(drops > 0, "{} never dropped at 60%", l.name());
            assert!(drops < 200, "{} dropped everything at 60%", l.name());
            assert_eq!(
                l.stats().dropped,
                drops as u64,
                "{} stats mismatch",
                l.name()
            );
        }
    }

    #[test]
    fn hierarchical_wrapper_is_transparent_within_a_chip() {
        let mut plain = NocstarLink::new(32);
        let mut wrapped = HierarchicalLink::new(
            Box::new(NocstarLink::new(32)),
            2,
            32,
            crate::topology::ChipLinkConfig::default(),
        );
        // Tiles 0..16 share chip 0: identical latency, stats and bytes.
        for t in 0..100u64 {
            let (f, to) = ((t % 16) as usize, ((t * 7) % 16) as usize);
            assert_eq!(plain.access(f, to, t), wrapped.access(f, to, t));
            assert_eq!(
                plain.access_response(to, f, t),
                wrapped.access_response(to, f, t)
            );
        }
        assert_eq!(plain.stats(), wrapped.stats());
    }

    #[test]
    fn hierarchical_cross_chip_erodes_nocstar() {
        let cfg = crate::topology::ChipLinkConfig::default();
        let mut wrapped = HierarchicalLink::new(Box::new(NocstarLink::new(32)), 2, 32, cfg);
        let same = wrapped.access(1, 15, 0); // chip 0 → chip 0
        let cross = wrapped.access(1, 20, 0); // chip 0 → chip 1, off-gateway
        assert_eq!(same, 3, "intra-chip keeps the 3-cycle side-band");
        // Cross-chip: two side-band legs plus one serializing inter-chip hop.
        assert_eq!(cross, 3 + cfg.latency + cfg.serialization - 1 + 3);
        let s = wrapped.stats();
        assert_eq!(s.energy_pj, 3 * 50 + cfg.energy_per_flit_pj);
    }

    #[test]
    fn hierarchical_send_propagates_drops() {
        let faults = FaultConfig {
            seed: 11,
            drop_pct: 100.0,
            ..FaultConfig::none()
        };
        let mut wrapped = HierarchicalLink::new(
            Box::new(NocstarLink::with_faults(32, &faults)),
            2,
            32,
            crate::topology::ChipLinkConfig::default(),
        );
        let d = wrapped.send(0, 20, 0);
        assert!(d.dropped, "a lost on-chip leg loses the message");
        assert!(d.latency > 0);
    }

    #[test]
    fn hierarchical_state_round_trips() {
        let cfg = crate::topology::ChipLinkConfig::default();
        let mk = || HierarchicalLink::new(Box::new(NocstarLink::new(16)), 2, 16, cfg);
        let mut a = mk();
        for t in 0..50u64 {
            a.access((t % 16) as usize, ((t * 5) % 16) as usize, t);
        }
        let mut w = crate::snap::StateWriter::new();
        a.save_state(&mut w);
        let mut b = mk();
        b.load_state(&mut crate::snap::StateReader::new(w.bytes()))
            .expect("round trip");
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn noop_fault_config_leaves_links_bit_identical() {
        let none = FaultConfig::none();
        let mut plain = MeshLink::new(16);
        let mut faulty = MeshLink::with_faults(16, &none);
        for t in 0..100u64 {
            assert_eq!(
                plain.send((t % 16) as usize, ((t * 3) % 16) as usize, t),
                faulty.send((t % 16) as usize, ((t * 3) % 16) as usize, t)
            );
        }
        assert_eq!(plain.stats(), faulty.stats());
    }
}

//! NOCSTAR: the dedicated, low-latency slice↔predictor interconnect.
//!
//! Drishti's per-core-yet-global reuse predictor means any LLC slice may need
//! to reach any core's predictor. Riding the existing mesh costs ~20 cycles
//! on 32 cores (paper Fig 11) and erases the benefit of global training, so
//! the paper attaches NOCSTAR [Bharadwaj et al., MICRO 2018]: a side-band,
//! latch-less, circuit-switched interconnect built from mux "switches" that
//! act as repeaters, with separate control wires that pre-acquire all links
//! on the path. The result is a ~3-cycle slice-to-predictor access.
//!
//! We model exactly the properties the paper relies on:
//!
//! * fixed low base latency (3 cycles by default, 1 cycle for same-tile);
//! * two dedicated links (request path and response/fill path) so the two
//!   directions never contend with each other;
//! * per-destination arbitration — concurrent messages to the *same*
//!   predictor serialize one cycle apart (a circuit-switched fabric has no
//!   buffering, so the arbiter makes later requesters wait);
//! * 50 pJ of dynamic energy per communication (20 pJ link + 10 pJ switch +
//!   20 pJ control wires, paper §4.1.4).

use crate::event::{Component, ComponentId};
use crate::faults::{FaultConfig, FaultDomain, FaultSchedule};
use crate::snap::SnapError;
use crate::{Delivery, NocStats, NodeId};

/// Which of NOCSTAR's two dedicated links a message uses.
///
/// The paper provisions one link for the request (training/lookup) path and
/// one for the response (fill) path so they can proceed concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NocstarPath {
    /// Slice → predictor (training updates, prediction lookups).
    Request,
    /// Predictor → slice (prediction responses on the fill path).
    Response,
}

/// Configuration for [`Nocstar`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocstarConfig {
    /// Base slice-to-predictor latency in cycles (paper: 3).
    pub base_latency: u64,
    /// Latency when source and destination share a tile.
    pub local_latency: u64,
    /// Dynamic energy per communication, picojoules (paper: 50).
    pub energy_per_message_pj: u64,
}

impl Default for NocstarConfig {
    fn default() -> Self {
        NocstarConfig {
            base_latency: 3,
            local_latency: 1,
            energy_per_message_pj: 50,
        }
    }
}

/// Per-arbiter contention state: the latest timestamp the arbiter has
/// seen (`horizon`) and the earliest cycle at which the circuit is free
/// again (`free_at`).
///
/// A circuit-switched fabric grants exactly one requester per cycle, so
/// grant times must be strictly increasing. Cores simulate on loosely
/// synchronised clocks, though, so requests reach a shared arbiter with
/// out-of-order timestamps. The previous leaky-bucket formulation charged
/// a late-armed request's wait against its stale timestamp, which placed
/// its implied grant slot (`cycle + wait`) *before* slots it had already
/// handed out — the grant sequence was not monotone. Normalising every
/// arrival to the horizon first makes the grant sequence provably
/// monotone while returning exactly the same waits the bucket computed:
/// the bucket's `(last, debt)` state corresponds to
/// `(horizon, free_at - horizon)`, and both models reduce a wait to
/// `max(free_at, max(horizon, cycle)) - max(horizon, cycle)`.
#[derive(Debug, Clone, Copy, Default)]
struct Arbiter {
    free_at: u64,
    horizon: u64,
}

crate::impl_persist_fields!(Arbiter { free_at, horizon });

impl Arbiter {
    /// Reserve the next free arbitration slot and return how many cycles
    /// the requester waits for it. The grant time (`max(horizon, cycle) +
    /// wait`, i.e. the updated `free_at` minus one) is strictly increasing
    /// regardless of the order in which timestamps arrive; for in-order
    /// traffic the wait is exactly the one-grant-per-cycle backlog.
    #[inline]
    fn occupy(&mut self, cycle: u64) -> u64 {
        // A stale timestamp cannot rewind the arbiter's clock: the
        // request is arbitrated at the horizon, not in the past.
        self.horizon = self.horizon.max(cycle);
        let grant = self.free_at.max(self.horizon);
        self.free_at = grant + 1;
        grant - self.horizon
    }
}

/// The NOCSTAR side-band interconnect model.
#[derive(Debug, Clone)]
pub struct Nocstar {
    cfg: NocstarConfig,
    /// Per-(path, destination) arbiter backlog.
    arbiters: [Vec<Arbiter>; 2],
    stats: NocStats,
    /// Injected-fault stream (`None` on the healthy fast path).
    faults: Option<FaultSchedule>,
}

impl Nocstar {
    /// Create a NOCSTAR fabric connecting `nodes` tiles.
    pub fn new(nodes: usize, cfg: NocstarConfig) -> Self {
        Nocstar {
            cfg,
            arbiters: [
                vec![Arbiter::default(); nodes],
                vec![Arbiter::default(); nodes],
            ],
            stats: NocStats::default(),
            faults: None,
        }
    }

    /// Create a fabric with the paper's default parameters.
    pub fn with_defaults(nodes: usize) -> Self {
        Nocstar::new(nodes, NocstarConfig::default())
    }

    /// Create a fault-aware fabric. With a no-op `faults` configuration
    /// this is bit-identical to [`Nocstar::new`].
    pub fn with_faults(nodes: usize, cfg: NocstarConfig, faults: &FaultConfig) -> Self {
        let mut n = Nocstar::new(nodes, cfg);
        n.faults = FaultSchedule::for_domain(faults, FaultDomain::Nocstar);
        n
    }

    /// The configuration in use.
    pub fn config(&self) -> &NocstarConfig {
        &self.cfg
    }

    /// Send one message from tile `from` to tile `to` on `path` at `cycle`.
    /// Returns the delivery latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a valid tile for this fabric.
    pub fn access(&mut self, from: NodeId, to: NodeId, path: NocstarPath, cycle: u64) -> u64 {
        let lane = match path {
            NocstarPath::Request => 0,
            NocstarPath::Response => 1,
        };
        assert!(to < self.arbiters[lane].len(), "tile {to} out of range");
        self.stats.messages += 1;
        self.stats.flits += 1;
        self.stats.energy_pj += self.cfg.energy_per_message_pj;

        if from == to {
            self.stats.total_latency += self.cfg.local_latency;
            return self.cfg.local_latency;
        }

        // Circuit held for one cycle per message once granted.
        let wait = self.arbiters[lane][to].occupy(cycle);
        let lat = wait + self.cfg.base_latency;
        self.stats.total_latency += lat;
        self.stats.contention_cycles += wait;
        self.stats.hop_traversals += 1; // as few as one hop if no contention
        lat
    }

    /// Send one message subject to injected faults. On the healthy path
    /// (no schedule) this is exactly [`Nocstar::access`]. Under faults a
    /// message may stall behind a transient link outage, gain uniform
    /// latency jitter, or be dropped outright — a drop still burns the
    /// message's energy and arbitration slot, and its reported latency is
    /// how long the sender waits before the loss is observable.
    pub fn send(&mut self, from: NodeId, to: NodeId, path: NocstarPath, cycle: u64) -> Delivery {
        let lane = match path {
            NocstarPath::Request => 0,
            NocstarPath::Response => 1,
        };
        let nodes = self.arbiters[0].len();
        let (outage, decision) = match self.faults.as_mut() {
            None => return Delivery::delivered(self.access(from, to, path, cycle)),
            Some(sched) => (
                sched
                    .link_outage_wait(lane * nodes + to, cycle)
                    .unwrap_or(0),
                sched.decide(from, to, cycle),
            ),
        };
        if decision.dropped {
            // The circuit was set up and the message launched before the
            // loss: account the attempt, then report the loss.
            self.stats.messages += 1;
            self.stats.flits += 1;
            self.stats.energy_pj += self.cfg.energy_per_message_pj;
            self.stats.dropped += 1;
            self.stats.fault_delay_cycles += outage;
            return Delivery {
                latency: outage + self.cfg.base_latency,
                dropped: true,
            };
        }
        let extra = outage + decision.jitter;
        let lat = self.access(from, to, path, cycle + extra) + extra;
        self.stats.total_latency += extra;
        self.stats.fault_delay_cycles += extra;
        Delivery::delivered(lat)
    }

    /// Traffic/energy statistics accumulated so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Reset statistics, keeping arbiter state.
    pub fn reset_stats(&mut self) {
        self.stats = NocStats::default();
    }

    /// Serialise the fabric's mutable run-state (arbiter backlogs, stats,
    /// fault cursor); configuration is rebuilt on restore, not written.
    pub fn save_state(&self, w: &mut crate::snap::StateWriter) {
        use crate::snap::Persist;
        self.arbiters.save(w);
        self.stats.save(w);
        crate::faults::save_fault_cursor(&self.faults, w);
    }

    /// Restore state saved by [`Nocstar::save_state`] into an
    /// identically-configured fabric.
    pub fn load_state(&mut self, r: &mut crate::snap::StateReader<'_>) -> Result<(), SnapError> {
        use crate::snap::Persist;
        let nodes = self.arbiters[0].len();
        self.arbiters.load(r)?;
        if self.arbiters[0].len() != nodes || self.arbiters[1].len() != nodes {
            return Err(SnapError::Invalid {
                what: "nocstar arbiters",
                detail: format!(
                    "snapshot holds {}/{} arbiters, configuration has {nodes}",
                    self.arbiters[0].len(),
                    self.arbiters[1].len()
                ),
            });
        }
        self.stats.load(r)?;
        crate::faults::load_fault_cursor(&mut self.faults, r, "nocstar fault schedule")
    }
}

/// NOCSTAR is a latch-less circuit-switched fabric: it has no clocked
/// buffering, so its entire timed state (arbiter horizons) is evaluated
/// lazily when a message arrives. It therefore never schedules a wakeup —
/// it is purely demand-driven under the event engine (DESIGN.md §16).
/// Its NOCSTAR-domain fault stream is also sampled at send time, so even
/// injected outages need no maintenance events.
impl Component for Nocstar {
    fn component_id(&self) -> ComponentId {
        ComponentId::Nocstar(0)
    }

    fn next_wakeup(&self, _now: u64) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_latency_is_three_cycles() {
        let mut n = Nocstar::with_defaults(32);
        assert_eq!(n.access(0, 31, NocstarPath::Request, 100), 3);
    }

    #[test]
    fn local_access_is_cheaper() {
        let mut n = Nocstar::with_defaults(32);
        assert_eq!(n.access(7, 7, NocstarPath::Request, 0), 1);
    }

    #[test]
    fn same_destination_serializes() {
        let mut n = Nocstar::with_defaults(32);
        let a = n.access(0, 5, NocstarPath::Request, 10);
        let b = n.access(1, 5, NocstarPath::Request, 10);
        assert_eq!(a, 3);
        assert_eq!(b, 4, "second message waits one arbitration slot");
        assert_eq!(n.stats().contention_cycles, 1);
    }

    #[test]
    fn different_destinations_do_not_contend() {
        let mut n = Nocstar::with_defaults(32);
        assert_eq!(n.access(0, 5, NocstarPath::Request, 10), 3);
        assert_eq!(n.access(1, 6, NocstarPath::Request, 10), 3);
    }

    #[test]
    fn request_and_response_paths_are_independent() {
        let mut n = Nocstar::with_defaults(32);
        assert_eq!(n.access(0, 5, NocstarPath::Request, 10), 3);
        assert_eq!(n.access(5, 0, NocstarPath::Response, 10), 3);
        assert_eq!(n.access(9, 5, NocstarPath::Response, 10), 3);
    }

    #[test]
    fn energy_is_fifty_pj_per_message() {
        let mut n = Nocstar::with_defaults(4);
        n.access(0, 1, NocstarPath::Request, 0);
        n.access(2, 3, NocstarPath::Response, 0);
        assert_eq!(n.stats().energy_pj, 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_destination_panics() {
        let mut n = Nocstar::with_defaults(4);
        n.access(0, 9, NocstarPath::Request, 0);
    }

    #[test]
    fn arbiter_grants_are_monotone_under_reversed_cycles() {
        // Loosely synchronised cores can present out-of-order timestamps;
        // the arbiter must never grant a slot earlier than one it already
        // handed out. Feed it strictly *decreasing* cycles — the worst
        // case — and check the granted slots (arbitrated at the arbiter's
        // horizon, never in the past) still strictly rise.
        let mut arb = Arbiter::default();
        let mut horizon = 0u64;
        let mut prev_grant = None;
        for cycle in (0..64u64).rev() {
            let wait = arb.occupy(cycle);
            horizon = horizon.max(cycle);
            let grant = horizon + wait;
            assert!(
                grant >= cycle,
                "slot {grant} precedes the request's own timestamp {cycle}"
            );
            if let Some(p) = prev_grant {
                assert!(grant > p, "grant {grant} not after previous grant {p}");
            }
            prev_grant = Some(grant);
        }
    }

    #[test]
    fn arbiter_matches_backlog_model_for_in_order_traffic() {
        // Three same-cycle requesters serialize 0/1/2 cycles of wait;
        // once the backlog drains, a later requester waits nothing.
        let mut arb = Arbiter::default();
        assert_eq!(arb.occupy(10), 0);
        assert_eq!(arb.occupy(10), 1);
        assert_eq!(arb.occupy(10), 2);
        assert_eq!(arb.occupy(100), 0);
    }

    #[test]
    fn arbiter_waits_match_leaky_bucket_on_any_arrival_order() {
        // The monotone formulation must return exactly the waits the old
        // (last, debt) leaky bucket computed, in order — the fix changes
        // which *slot* a stale-timestamped request occupies, not how long
        // any requester waits. Mirror the bucket here and cross-check on
        // an adversarial mixed in-order/out-of-order arrival pattern.
        let (mut last, mut debt) = (0u64, 0u64);
        let mut bucket = |cycle: u64| {
            let elapsed = cycle.saturating_sub(last);
            debt = debt.saturating_sub(elapsed);
            last = last.max(cycle);
            let wait = debt;
            debt += 1;
            wait
        };
        let mut arb = Arbiter::default();
        let arrivals = [10u64, 10, 7, 12, 3, 3, 40, 39, 41, 41, 41, 100, 90, 101];
        for &cycle in &arrivals {
            assert_eq!(
                arb.occupy(cycle),
                bucket(cycle),
                "diverged at cycle {cycle}"
            );
        }
    }

    #[test]
    fn nocstar_component_is_purely_demand_driven() {
        let cfg = FaultConfig {
            seed: 4,
            link_outage_period: 100,
            link_outage_len: 10,
            ..FaultConfig::none()
        };
        let n = Nocstar::with_faults(8, NocstarConfig::default(), &cfg);
        assert_eq!(n.component_id(), ComponentId::Nocstar(0));
        // Even with an active fault schedule the fabric samples faults at
        // send time, so it never asks the scheduler for a wakeup.
        for now in [0u64, 57, 1_000_000] {
            assert_eq!(n.next_wakeup(now), None);
        }
    }

    #[test]
    fn send_without_faults_matches_access() {
        let mut plain = Nocstar::with_defaults(16);
        let mut faulty = Nocstar::with_faults(16, NocstarConfig::default(), &FaultConfig::none());
        for i in 0..100usize {
            let d = faulty.send(i % 16, (i * 7) % 16, NocstarPath::Request, i as u64);
            assert!(!d.dropped);
            assert_eq!(
                d.latency,
                plain.access(i % 16, (i * 7) % 16, NocstarPath::Request, i as u64)
            );
        }
        assert_eq!(plain.stats(), faulty.stats());
    }

    #[test]
    fn send_drops_and_jitters_deterministically() {
        let cfg = FaultConfig {
            seed: 3,
            drop_pct: 40.0,
            jitter: 4,
            ..FaultConfig::none()
        };
        let run = |cfg: &FaultConfig| {
            let mut n = Nocstar::with_faults(8, NocstarConfig::default(), cfg);
            let out: Vec<Delivery> = (0..400u64)
                .map(|t| {
                    n.send(
                        (t % 8) as usize,
                        ((t + 3) % 8) as usize,
                        NocstarPath::Request,
                        t,
                    )
                })
                .collect();
            (out, *n.stats())
        };
        let (a, sa) = run(&cfg);
        let (b, sb) = run(&cfg);
        assert_eq!(a, b, "same seed must reproduce the same deliveries");
        assert_eq!(sa, sb);
        assert!(sa.dropped > 0, "40% drop rate never fired");
        assert!(sa.fault_delay_cycles > 0, "jitter never charged");
        assert_eq!(sa.messages, 400, "drops still count as launched messages");
    }
}

//! NOCSTAR: the dedicated, low-latency slice↔predictor interconnect.
//!
//! Drishti's per-core-yet-global reuse predictor means any LLC slice may need
//! to reach any core's predictor. Riding the existing mesh costs ~20 cycles
//! on 32 cores (paper Fig 11) and erases the benefit of global training, so
//! the paper attaches NOCSTAR [Bharadwaj et al., MICRO 2018]: a side-band,
//! latch-less, circuit-switched interconnect built from mux "switches" that
//! act as repeaters, with separate control wires that pre-acquire all links
//! on the path. The result is a ~3-cycle slice-to-predictor access.
//!
//! We model exactly the properties the paper relies on:
//!
//! * fixed low base latency (3 cycles by default, 1 cycle for same-tile);
//! * two dedicated links (request path and response/fill path) so the two
//!   directions never contend with each other;
//! * per-destination arbitration — concurrent messages to the *same*
//!   predictor serialize one cycle apart (a circuit-switched fabric has no
//!   buffering, so the arbiter makes later requesters wait);
//! * 50 pJ of dynamic energy per communication (20 pJ link + 10 pJ switch +
//!   20 pJ control wires, paper §4.1.4).

use crate::{NocStats, NodeId};

/// Which of NOCSTAR's two dedicated links a message uses.
///
/// The paper provisions one link for the request (training/lookup) path and
/// one for the response (fill) path so they can proceed concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NocstarPath {
    /// Slice → predictor (training updates, prediction lookups).
    Request,
    /// Predictor → slice (prediction responses on the fill path).
    Response,
}

/// Configuration for [`Nocstar`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocstarConfig {
    /// Base slice-to-predictor latency in cycles (paper: 3).
    pub base_latency: u64,
    /// Latency when source and destination share a tile.
    pub local_latency: u64,
    /// Dynamic energy per communication, picojoules (paper: 50).
    pub energy_per_message_pj: u64,
}

impl Default for NocstarConfig {
    fn default() -> Self {
        NocstarConfig {
            base_latency: 3,
            local_latency: 1,
            energy_per_message_pj: 50,
        }
    }
}

/// Per-arbiter contention state: a leaky bucket of pending grants (one
/// grant per cycle), tolerant of slightly out-of-order arrival timestamps.
#[derive(Debug, Clone, Copy, Default)]
struct Arbiter {
    debt: u64,
    last: u64,
}

impl Arbiter {
    #[inline]
    fn occupy(&mut self, cycle: u64) -> u64 {
        let elapsed = cycle.saturating_sub(self.last);
        self.debt = self.debt.saturating_sub(elapsed);
        self.last = self.last.max(cycle);
        let wait = self.debt;
        self.debt += 1;
        wait
    }
}

/// The NOCSTAR side-band interconnect model.
#[derive(Debug, Clone)]
pub struct Nocstar {
    cfg: NocstarConfig,
    /// Per-(path, destination) arbiter backlog.
    arbiters: [Vec<Arbiter>; 2],
    stats: NocStats,
}

impl Nocstar {
    /// Create a NOCSTAR fabric connecting `nodes` tiles.
    pub fn new(nodes: usize, cfg: NocstarConfig) -> Self {
        Nocstar {
            cfg,
            arbiters: [vec![Arbiter::default(); nodes], vec![Arbiter::default(); nodes]],
            stats: NocStats::default(),
        }
    }

    /// Create a fabric with the paper's default parameters.
    pub fn with_defaults(nodes: usize) -> Self {
        Nocstar::new(nodes, NocstarConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &NocstarConfig {
        &self.cfg
    }

    /// Send one message from tile `from` to tile `to` on `path` at `cycle`.
    /// Returns the delivery latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a valid tile for this fabric.
    pub fn access(&mut self, from: NodeId, to: NodeId, path: NocstarPath, cycle: u64) -> u64 {
        let lane = match path {
            NocstarPath::Request => 0,
            NocstarPath::Response => 1,
        };
        assert!(to < self.arbiters[lane].len(), "tile {to} out of range");
        self.stats.messages += 1;
        self.stats.flits += 1;
        self.stats.energy_pj += self.cfg.energy_per_message_pj;

        if from == to {
            self.stats.total_latency += self.cfg.local_latency;
            return self.cfg.local_latency;
        }

        // Circuit held for one cycle per message once granted.
        let wait = self.arbiters[lane][to].occupy(cycle);
        let lat = wait + self.cfg.base_latency;
        self.stats.total_latency += lat;
        self.stats.contention_cycles += wait;
        self.stats.hop_traversals += 1; // as few as one hop if no contention
        lat
    }

    /// Traffic/energy statistics accumulated so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Reset statistics, keeping arbiter state.
    pub fn reset_stats(&mut self) {
        self.stats = NocStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_latency_is_three_cycles() {
        let mut n = Nocstar::with_defaults(32);
        assert_eq!(n.access(0, 31, NocstarPath::Request, 100), 3);
    }

    #[test]
    fn local_access_is_cheaper() {
        let mut n = Nocstar::with_defaults(32);
        assert_eq!(n.access(7, 7, NocstarPath::Request, 0), 1);
    }

    #[test]
    fn same_destination_serializes() {
        let mut n = Nocstar::with_defaults(32);
        let a = n.access(0, 5, NocstarPath::Request, 10);
        let b = n.access(1, 5, NocstarPath::Request, 10);
        assert_eq!(a, 3);
        assert_eq!(b, 4, "second message waits one arbitration slot");
        assert_eq!(n.stats().contention_cycles, 1);
    }

    #[test]
    fn different_destinations_do_not_contend() {
        let mut n = Nocstar::with_defaults(32);
        assert_eq!(n.access(0, 5, NocstarPath::Request, 10), 3);
        assert_eq!(n.access(1, 6, NocstarPath::Request, 10), 3);
    }

    #[test]
    fn request_and_response_paths_are_independent() {
        let mut n = Nocstar::with_defaults(32);
        assert_eq!(n.access(0, 5, NocstarPath::Request, 10), 3);
        assert_eq!(n.access(5, 0, NocstarPath::Response, 10), 3);
        assert_eq!(n.access(9, 5, NocstarPath::Response, 10), 3);
    }

    #[test]
    fn energy_is_fifty_pj_per_message() {
        let mut n = Nocstar::with_defaults(4);
        n.access(0, 1, NocstarPath::Request, 0);
        n.access(2, 3, NocstarPath::Response, 0);
        assert_eq!(n.stats().energy_pj, 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_destination_panics() {
        let mut n = Nocstar::with_defaults(4);
        n.access(0, 9, NocstarPath::Request, 0);
    }
}

//! A tiny open-addressing-free `u64 → u64` map backed by parallel vectors.
//!
//! The simulation engine tracks a handful of in-flight prefetch fills per
//! core (the issue budget caps the population at ~48 entries). At that size
//! a linear scan over a dense key vector beats a `HashMap`: every demand
//! access probes the map once, and with `SipHash` the hash alone costs more
//! than sweeping 48 packed keys that stay resident in L1. Keys and values
//! live in *separate* vectors so the probe loop touches only key bytes.
//!
//! [`SmallU64Map`] persists byte-identically to
//! `HashMap<u64, u64>` under [`crate::snap::Persist`] (length-prefixed,
//! entries sorted by key), so swapping the engine's container did not
//! change the `drishti-ckpt/v1` snapshot format.

use crate::snap::{Persist, SnapError, StateReader, StateWriter};

/// Unordered `u64 → u64` map optimized for tiny populations (≲ 64 keys).
///
/// Operations are `O(len)`; there is no hashing. Insertion order is
/// irrelevant to observable behaviour: lookups are exact-key and
/// serialization sorts by key.
#[derive(Debug, Clone, Default)]
pub struct SmallU64Map {
    keys: Vec<u64>,
    vals: Vec<u64>,
}

impl SmallU64Map {
    /// Create an empty map.
    pub fn new() -> Self {
        SmallU64Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Value for `key`, if present.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.keys
            .iter()
            .position(|&k| k == key)
            .map(|i| self.vals[i])
    }

    /// Insert or replace `key`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, val: u64) -> Option<u64> {
        match self.keys.iter().position(|&k| k == key) {
            Some(i) => Some(std::mem::replace(&mut self.vals[i], val)),
            None => {
                self.keys.push(key);
                self.vals.push(val);
                None
            }
        }
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let i = self.keys.iter().position(|&k| k == key)?;
        self.keys.swap_remove(i);
        Some(self.vals.swap_remove(i))
    }

    /// Keep only entries for which `pred(key, value)` holds.
    pub fn retain(&mut self, mut pred: impl FnMut(u64, u64) -> bool) {
        let mut i = 0;
        while i < self.keys.len() {
            if pred(self.keys[i], self.vals[i]) {
                i += 1;
            } else {
                self.keys.swap_remove(i);
                self.vals.swap_remove(i);
            }
        }
    }
}

impl Persist for SmallU64Map {
    /// Entries sorted by key — the exact byte layout of
    /// `HashMap<u64, u64>`'s [`Persist`] impl.
    fn save(&self, w: &mut StateWriter) {
        let mut order: Vec<usize> = (0..self.keys.len()).collect();
        order.sort_by_key(|&i| self.keys[i]);
        w.put_u64(self.keys.len() as u64);
        for i in order {
            self.keys[i].save(w);
            self.vals[i].save(w);
        }
    }

    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.take_len("map length")?;
        self.keys.clear();
        self.vals.clear();
        for _ in 0..n {
            let mut k = 0u64;
            k.load(r)?;
            let mut v = 0u64;
            v.load(r)?;
            if self.keys.contains(&k) {
                return Err(SnapError::Invalid {
                    what: "map entry",
                    detail: "duplicate key".into(),
                });
            }
            self.keys.push(k);
            self.vals.push(v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn snapshot_bytes<T: Persist>(v: &T) -> Vec<u8> {
        let mut w = StateWriter::new();
        v.save(&mut w);
        w.into_bytes()
    }

    #[test]
    fn insert_get_remove_retain() {
        let mut m = SmallU64Map::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(7, 70), None);
        assert_eq!(m.insert(9, 90), None);
        assert_eq!(m.insert(7, 71), Some(70));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(7), Some(71));
        assert_eq!(m.get(8), None);
        assert_eq!(m.remove(7), Some(71));
        assert_eq!(m.remove(7), None);
        m.insert(1, 10);
        m.insert(2, 20);
        m.insert(3, 30);
        m.retain(|k, _| k % 2 == 1);
        assert_eq!(m.len(), 3); // 9, 1, 3
        assert_eq!(m.get(2), None);
        assert_eq!(m.get(9), Some(90));
    }

    #[test]
    fn snapshot_bytes_match_hashmap() {
        // The whole point of this container: swapping it in for
        // HashMap<u64, u64> must not change snapshot bytes.
        let mut lin = SmallU64Map::new();
        let mut std_map: HashMap<u64, u64> = HashMap::new();
        for (k, v) in [(42u64, 9u64), (3, 1), (99, 0), (7, 7)] {
            lin.insert(k, v);
            std_map.insert(k, v);
        }
        assert_eq!(snapshot_bytes(&lin), snapshot_bytes(&std_map));
    }

    #[test]
    fn round_trips_through_persist() {
        let mut m = SmallU64Map::new();
        m.insert(5, 50);
        m.insert(1, 10);
        let bytes = snapshot_bytes(&m);
        let mut back = SmallU64Map::new();
        back.insert(777, 1); // stale content must be cleared
        let mut r = StateReader::new(&bytes);
        back.load(&mut r).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(5), Some(50));
        assert_eq!(back.get(1), Some(10));
        assert_eq!(back.get(777), None);
    }

    #[test]
    fn load_rejects_duplicate_keys() {
        let mut w = StateWriter::new();
        w.put_u64(2);
        for _ in 0..2 {
            4u64.save(&mut w);
            1u64.save(&mut w);
        }
        let bytes = w.into_bytes();
        let mut m = SmallU64Map::new();
        let mut r = StateReader::new(&bytes);
        assert!(m.load(&mut r).is_err());
    }
}

//! Network-on-chip substrate for the Drishti reproduction.
//!
//! The paper evaluates many-core systems whose last-level cache (LLC) is
//! *sliced*: one 2 MB slice per core, with slices distributed across a mesh
//! NoC (non-uniform cache access, NUCA). Drishti additionally introduces a
//! dedicated low-latency side-band interconnect (NOCSTAR, [Bharadwaj et al.,
//! MICRO 2018]) that connects every LLC slice to every per-core reuse
//! predictor with a three-cycle latency.
//!
//! This crate provides:
//!
//! * [`mesh::Mesh`] — a 2-D mesh with XY routing, per-link serialization and
//!   contention, traffic and energy accounting. This is the *existing*
//!   on-chip interconnect that demand traffic (and, without NOCSTAR,
//!   predictor traffic) rides on.
//! * [`nocstar::Nocstar`] — the latch-less circuit-switched side-band
//!   interconnect: ~3-cycle slice-to-predictor latency, per-destination
//!   arbitration, 50 pJ per message (20 pJ link + 10 pJ switch + 20 pJ
//!   control wires, per the paper's 28 nm numbers).
//! * [`slicehash`] — address-to-slice hash functions. Commercial parts use a
//!   "complex addressing" XOR-fold hash (Maurice et al., RAID 2015) that
//!   spreads consecutive lines over slices uniformly; this is what causes the
//!   PC-scattering the paper studies.
//! * [`link::PredictorLink`] — the abstraction the replacement policies use
//!   to reach a (possibly remote) reuse predictor, with implementations for
//!   local (zero-cost), mesh-routed, NOCSTAR, and fixed-latency links.
//!
//! # Example
//!
//! ```
//! use drishti_noc::mesh::{Mesh, MeshConfig};
//!
//! let mut mesh = Mesh::new(MeshConfig::for_nodes(16));
//! // Route one 8-flit data packet from tile 0 to tile 15 at cycle 100.
//! let latency = mesh.traverse(0, 15, 100, 8);
//! assert!(latency >= mesh.hops(0, 15) as u64);
//! ```

pub mod event;
pub mod faults;
pub mod link;
pub mod linmap;
pub mod mesh;
pub mod nocstar;
pub mod slicehash;
pub mod snap;
pub mod topology;

/// Identifier of a mesh tile (each tile hosts a core, its private caches,
/// one LLC slice and — with Drishti — that core's reuse predictor).
pub type NodeId = usize;

/// Outcome of sending one message over a fault-aware fabric.
///
/// The healthy path always delivers; under an active [`faults::FaultSchedule`]
/// a message may instead be lost, in which case `latency` is the number of
/// cycles the sender spends before it can observe the loss (the fabric's
/// base delivery latency plus any stall already paid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Cycles until delivery (or until the loss is observable).
    pub latency: u64,
    /// Whether the message was lost to an injected fault.
    pub dropped: bool,
}

impl Delivery {
    /// A successful delivery after `latency` cycles.
    pub fn delivered(latency: u64) -> Self {
        Delivery {
            latency,
            dropped: false,
        }
    }
}

/// Aggregate traffic/energy statistics kept by every interconnect model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NocStats {
    /// Messages (packets) injected.
    pub messages: u64,
    /// Flits injected (messages × packet length in flits).
    pub flits: u64,
    /// Sum over messages of hops traversed.
    pub hop_traversals: u64,
    /// Sum of end-to-end latencies observed (cycles).
    pub total_latency: u64,
    /// Cycles lost to contention (waiting for busy links/arbiters).
    pub contention_cycles: u64,
    /// Dynamic energy consumed, picojoules.
    pub energy_pj: u64,
    /// Messages lost to injected faults (see [`faults`]).
    pub dropped: u64,
    /// Retransmissions performed after an injected drop.
    pub retries: u64,
    /// Extra cycles charged by injected faults (jitter, outage stalls,
    /// retransmission penalties).
    pub fault_delay_cycles: u64,
}

crate::impl_persist_fields!(NocStats {
    messages,
    flits,
    hop_traversals,
    total_latency,
    contention_cycles,
    energy_pj,
    dropped,
    retries,
    fault_delay_cycles,
});

impl NocStats {
    /// Mean end-to-end latency per message, in cycles (0 if no traffic).
    pub fn mean_latency(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.messages as f64
        }
    }

    /// Fold another stats block into this one.
    pub fn merge(&mut self, other: &NocStats) {
        self.messages += other.messages;
        self.flits += other.flits;
        self.hop_traversals += other.hop_traversals;
        self.total_latency += other.total_latency;
        self.contention_cycles += other.contention_cycles;
        self.energy_pj += other.energy_pj;
        self.dropped += other.dropped;
        self.retries += other.retries;
        self.fault_delay_cycles += other.fault_delay_cycles;
    }
}

//! 2-D mesh interconnect with XY dimension-ordered routing.
//!
//! The baseline system (paper Table 4) uses a mesh where "each node has a
//! router, processor, private L1 cache, L2 cache, and an LLC slice", with a
//! 2-stage wormhole router, eight flits per data packet and one flit per
//! address packet.
//!
//! The model here is a *link-occupancy* model rather than a flit-accurate
//! wormhole simulation: every message reserves, in order, each link of its
//! XY path; a link busy with an earlier message delays the newcomer. This
//! reproduces the two first-order effects the paper depends on —
//! hop-proportional latency (≈ 20-cycle average slice-to-predictor latency on
//! 32 cores, Fig 11) and growing contention with core count — at a cost that
//! lets us simulate billions of events.

use crate::event::{Component, ComponentId};
use crate::faults::{FaultConfig, FaultDomain, FaultSchedule};
use crate::snap::SnapError;
use crate::{NocStats, NodeId};

/// Flits in a data (cache-line-carrying) packet, per paper Table 4.
pub const DATA_PACKET_FLITS: u32 = 8;
/// Flits in an address/control packet, per paper Table 4.
pub const ADDRESS_PACKET_FLITS: u32 = 1;

/// Configuration of a [`Mesh`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshConfig {
    /// Tiles along the X dimension.
    pub width: usize,
    /// Tiles along the Y dimension.
    pub height: usize,
    /// Cycles to traverse one link (wire) between adjacent routers.
    pub link_latency: u64,
    /// Cycles spent inside each router on the path (2-stage wormhole ⇒ 2).
    pub router_latency: u64,
    /// Dynamic energy per flit-hop, picojoules.
    pub energy_per_flit_hop_pj: u64,
}

impl MeshConfig {
    /// A mesh sized for `nodes` tiles: the squarest `width × height ≥ nodes`
    /// factorization with power-of-two-friendly shapes (e.g. 16 → 4×4,
    /// 32 → 8×4, 4 → 2×2).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn for_nodes(nodes: usize) -> Self {
        assert!(nodes > 0, "mesh must have at least one node");
        let mut width = (nodes as f64).sqrt().ceil() as usize;
        while !nodes.is_multiple_of(width) && width < nodes {
            width += 1;
        }
        let height = nodes / width;
        MeshConfig {
            width,
            height: height.max(1),
            link_latency: 1,
            router_latency: 2,
            energy_per_flit_hop_pj: 25,
        }
    }

    /// Total number of tiles.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig::for_nodes(16)
    }
}

/// Direction of an outgoing link from a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    East = 0,
    West = 1,
    North = 2,
    South = 3,
}

/// Per-link contention state: a leaky bucket of pending flits.
///
/// `debt` is the backlog of flits already accepted; it drains at one flit
/// per cycle and a new message waits for the backlog ahead of it. Unlike a
/// "link free at time T" pointer, a bucket tolerates slightly out-of-order
/// arrival timestamps (different cores' clocks drift within a scheduling
/// step), which would otherwise charge phantom waits.
#[derive(Debug, Clone, Copy, Default)]
struct LinkState {
    debt: u64,
    last: u64,
    /// Total flits ever pushed through this link (telemetry).
    flits: u64,
}

crate::impl_persist_fields!(LinkState { debt, last, flits });

impl LinkState {
    #[inline]
    fn occupy(&mut self, cycle: u64, flits: u64) -> u64 {
        let elapsed = cycle.saturating_sub(self.last);
        self.debt = self.debt.saturating_sub(elapsed);
        self.last = self.last.max(cycle);
        let wait = self.debt;
        self.debt += flits;
        self.flits += flits;
        wait
    }
}

/// A 2-D mesh with XY routing and per-link occupancy tracking.
///
/// All latencies returned by [`Mesh::traverse`] are *end-to-end* (injection
/// to ejection) and include serialization and any contention stalls.
#[derive(Debug, Clone)]
pub struct Mesh {
    cfg: MeshConfig,
    /// Outgoing-link backlog per node and direction.
    links: Vec<[LinkState; 4]>,
    stats: NocStats,
    /// Injected-fault stream (`None` on the healthy fast path).
    faults: Option<FaultSchedule>,
}

/// Retransmission attempts before a faulty mesh force-delivers a packet.
/// Demand traffic carries cache lines and cannot be lost, so after this
/// many timeouts the packet goes through regardless — this bounds latency
/// and guarantees forward progress even at a 100% injected drop rate.
const MAX_RETRANSMITS: u64 = 8;

/// Fixed turnaround between a retransmission timeout and the resend.
const RETRANSMIT_GAP: u64 = 4;

impl Mesh {
    /// Create an idle mesh.
    pub fn new(cfg: MeshConfig) -> Self {
        Mesh {
            links: vec![[LinkState::default(); 4]; cfg.nodes()],
            cfg,
            stats: NocStats::default(),
            faults: None,
        }
    }

    /// Create a fault-aware mesh. With a no-op `faults` configuration this
    /// is bit-identical to [`Mesh::new`].
    pub fn with_faults(cfg: MeshConfig, faults: &FaultConfig) -> Self {
        let mut m = Mesh::new(cfg);
        m.faults = FaultSchedule::for_domain(faults, FaultDomain::Mesh);
        m
    }

    /// The configuration this mesh was built with.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// (x, y) coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        assert!(node < self.cfg.nodes(), "node {node} out of range");
        (node % self.cfg.width, node / self.cfg.width)
    }

    /// Manhattan hop count of the XY route between `a` and `b`.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }

    /// Zero-contention latency of a `flits`-flit packet over `hops` hops.
    ///
    /// Head latency: per-hop router + link delay, plus the local router at
    /// the destination; body flits pipeline behind the head (serialization).
    pub fn zero_load_latency(&self, hops: u32, flits: u32) -> u64 {
        let per_hop = self.cfg.router_latency + self.cfg.link_latency;
        per_hop * u64::from(hops) + self.cfg.router_latency + u64::from(flits.saturating_sub(1))
    }

    /// Route one `flits`-flit packet from `from` to `to`, starting at
    /// `cycle`. Returns the end-to-end latency in cycles, updates link
    /// occupancy, traffic counters and energy.
    ///
    /// A message to self costs only the local router traversal.
    ///
    /// Under an active fault schedule the packet may additionally stall
    /// behind a transient outage of the source router, gain uniform
    /// latency jitter, or be dropped in flight. Demand packets carry cache
    /// lines and cannot be lost, so a drop triggers a retransmission: the
    /// sender waits one zero-load round plus a fixed turnaround, then
    /// resends (bounded by `MAX_RETRANSMITS`, after which the packet is
    /// force-delivered so the system always makes forward progress).
    pub fn traverse(&mut self, from: NodeId, to: NodeId, cycle: u64, flits: u32) -> u64 {
        if from == to || self.faults.is_none() {
            return self.route_once(from, to, cycle, flits);
        }
        let timeout = self.zero_load_latency(self.hops(from, to), flits) + RETRANSMIT_GAP;
        let (extra, drops) = {
            let sched = self.faults.as_mut().expect("checked above");
            let mut extra = sched.link_outage_wait(from, cycle).unwrap_or(0);
            let mut drops = 0u64;
            loop {
                let d = sched.decide(from, to, cycle + extra);
                if !d.dropped || drops >= MAX_RETRANSMITS {
                    extra += d.jitter;
                    break;
                }
                drops += 1;
                extra += timeout;
            }
            (extra, drops)
        };
        let lat = self.route_once(from, to, cycle + extra, flits) + extra;
        self.stats.dropped += drops;
        self.stats.retries += drops;
        self.stats.fault_delay_cycles += extra;
        self.stats.total_latency += extra;
        lat
    }

    /// One healthy routing attempt (the pre-fault-injection `traverse`).
    fn route_once(&mut self, from: NodeId, to: NodeId, cycle: u64, flits: u32) -> u64 {
        let hops = self.hops(from, to);
        self.stats.messages += 1;
        self.stats.flits += u64::from(flits);
        self.stats.hop_traversals += u64::from(hops);
        self.stats.energy_pj +=
            u64::from(flits) * u64::from(hops) * self.cfg.energy_per_flit_hop_pj;

        if from == to {
            let lat = self.cfg.router_latency;
            self.stats.total_latency += lat;
            return lat;
        }

        let serialization = u64::from(flits); // flits occupy each link back to back
        let mut head_time = cycle + self.cfg.router_latency; // source router
        let mut contention = 0u64;
        let (mut x, mut y) = self.coords(from);
        let (tx, ty) = self.coords(to);

        // XY routing: fully resolve X, then Y.
        while (x, y) != (tx, ty) {
            let (dir, nx, ny) = if x < tx {
                (Dir::East, x + 1, y)
            } else if x > tx {
                (Dir::West, x - 1, y)
            } else if y < ty {
                (Dir::South, x, y + 1)
            } else {
                (Dir::North, x, y - 1)
            };
            let node = y * self.cfg.width + x;
            let wait = self.links[node][dir as usize].occupy(head_time, serialization);
            contention += wait;
            head_time += wait + self.cfg.link_latency + self.cfg.router_latency;
            (x, y) = (nx, ny);
        }

        // Tail flit arrives `flits - 1` cycles behind the head.
        let arrival = head_time + u64::from(flits.saturating_sub(1));
        let lat = arrival - cycle;
        self.stats.total_latency += lat;
        self.stats.contention_cycles += contention;
        lat
    }

    /// Traffic/energy statistics accumulated so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Event-scheduler wakeup proxies for every outgoing link, flattened
    /// as `node * 4 + direction` to match [`Mesh::link_flits`].
    ///
    /// Link occupancy is a leaky bucket evaluated lazily at access time,
    /// so a link's timed state needs no per-cycle maintenance; the only
    /// scheduled events are injected-outage boundaries, and even those
    /// wakeups mutate nothing (the outage itself is a pure function of
    /// the fault configuration — see DESIGN.md §16). A mesh without an
    /// active fault schedule is fully demand-driven.
    pub fn link_components(&self) -> Vec<LinkWakeup> {
        self.link_components_offset(0)
    }

    /// [`Mesh::link_components`] with every link id offset by `base` — used
    /// by the multi-chip topology layer, where chip `c`'s links occupy the
    /// global id range `[c · nodes · 4, (c + 1) · nodes · 4)` so scheduler
    /// identities stay unique across chips. The offset only renames the
    /// wakeup; outage decisions still key on the id the wakeup carries, so
    /// a 1-chip topology (base 0) is identical to the flat mesh.
    pub fn link_components_offset(&self, base: u32) -> Vec<LinkWakeup> {
        (0..self.cfg.nodes() * 4)
            .map(|link| LinkWakeup {
                link: base + link as u32,
                faults: self.faults.clone(),
            })
            .collect()
    }

    /// Cumulative flit counts per outgoing link, flattened as
    /// `node * 4 + direction` (E, W, N, S) — the telemetry layer diffs
    /// these across epochs to derive per-link utilisation.
    pub fn link_flits(&self) -> Vec<u64> {
        self.links
            .iter()
            .flat_map(|dirs| dirs.iter().map(|l| l.flits))
            .collect()
    }

    /// Reset statistics (link occupancy is kept).
    pub fn reset_stats(&mut self) {
        self.stats = NocStats::default();
    }

    /// Serialise the mesh's mutable run-state (link backlogs, stats, fault
    /// cursor). The configuration is not written; restore rebuilds the
    /// mesh from config first, then loads these bytes into it.
    pub fn save_state(&self, w: &mut crate::snap::StateWriter) {
        use crate::snap::Persist;
        self.links.save(w);
        self.stats.save(w);
        crate::faults::save_fault_cursor(&self.faults, w);
    }

    /// Restore state saved by [`Mesh::save_state`] into an
    /// identically-configured mesh.
    pub fn load_state(&mut self, r: &mut crate::snap::StateReader<'_>) -> Result<(), SnapError> {
        use crate::snap::Persist;
        self.links.load(r)?;
        if self.links.len() != self.cfg.nodes() {
            return Err(SnapError::Invalid {
                what: "mesh links",
                detail: format!(
                    "snapshot holds {} nodes, configuration has {}",
                    self.links.len(),
                    self.cfg.nodes()
                ),
            });
        }
        self.stats.load(r)?;
        crate::faults::load_fault_cursor(&mut self.faults, r, "mesh fault schedule")
    }
}

/// Discrete-event wakeup proxy for one outgoing mesh link.
///
/// Produced by [`Mesh::link_components`]; wakes exactly at injected
/// link-outage boundaries and performs no work (all link timed state is
/// demand-evaluated), so scheduling or skipping these wakeups cannot
/// change simulation results.
#[derive(Debug, Clone)]
pub struct LinkWakeup {
    link: u32,
    faults: Option<FaultSchedule>,
}

impl Component for LinkWakeup {
    fn component_id(&self) -> ComponentId {
        ComponentId::MeshLink(self.link)
    }

    fn next_wakeup(&self, now: u64) -> Option<u64> {
        self.faults
            .as_ref()
            .and_then(|f| f.link_outage_next_transition(self.link as usize, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_nodes_produces_expected_shapes() {
        assert_eq!(MeshConfig::for_nodes(4).nodes(), 4);
        assert_eq!(MeshConfig::for_nodes(16).nodes(), 16);
        let c32 = MeshConfig::for_nodes(32);
        assert_eq!(c32.nodes(), 32);
        assert!(c32.width >= c32.height);
        assert_eq!(MeshConfig::for_nodes(1).nodes(), 1);
        assert_eq!(MeshConfig::for_nodes(128).nodes(), 128);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn for_nodes_zero_panics() {
        let _ = MeshConfig::for_nodes(0);
    }

    #[test]
    fn hops_are_manhattan() {
        let mesh = Mesh::new(MeshConfig::for_nodes(16)); // 4x4
        assert_eq!(mesh.hops(0, 0), 0);
        assert_eq!(mesh.hops(0, 3), 3);
        assert_eq!(mesh.hops(0, 15), 6); // (0,0) -> (3,3)
        assert_eq!(mesh.hops(5, 6), 1);
        assert_eq!(mesh.hops(6, 5), 1);
    }

    #[test]
    fn traverse_self_message_is_router_only() {
        let mut mesh = Mesh::new(MeshConfig::for_nodes(16));
        let lat = mesh.traverse(3, 3, 0, 1);
        assert_eq!(lat, mesh.config().router_latency);
    }

    #[test]
    fn zero_load_latency_matches_traverse_on_idle_mesh() {
        let mesh = Mesh::new(MeshConfig::for_nodes(16));
        for (from, to, flits) in [(0usize, 15usize, 1u32), (2, 9, 8), (15, 0, 8)] {
            let hops = mesh.hops(from, to);
            let expect = mesh.zero_load_latency(hops, flits);
            // Idle mesh: no contention, so traverse == zero-load.
            let mut fresh = Mesh::new(MeshConfig::for_nodes(16));
            assert_eq!(fresh.traverse(from, to, 1_000, flits), expect);
        }
    }

    #[test]
    fn contention_delays_second_message() {
        let mut mesh = Mesh::new(MeshConfig::for_nodes(16));
        let l1 = mesh.traverse(0, 3, 0, 8);
        let l2 = mesh.traverse(0, 3, 0, 8); // same path, same instant
        assert!(
            l2 > l1,
            "second message must queue behind first: {l1} vs {l2}"
        );
        assert!(mesh.stats().contention_cycles > 0);
    }

    #[test]
    fn later_messages_do_not_conflict() {
        let mut mesh = Mesh::new(MeshConfig::for_nodes(16));
        let l1 = mesh.traverse(0, 3, 0, 1);
        let l2 = mesh.traverse(0, 3, 10_000, 1);
        assert_eq!(l1, l2);
    }

    #[test]
    fn stats_accumulate() {
        let mut mesh = Mesh::new(MeshConfig::for_nodes(4));
        mesh.traverse(0, 3, 0, 8);
        mesh.traverse(1, 2, 0, 1);
        let s = mesh.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.flits, 9);
        assert!(s.energy_pj > 0);
        assert!(s.mean_latency() > 0.0);
    }

    #[test]
    fn distinct_paths_do_not_contend() {
        let mut mesh = Mesh::new(MeshConfig::for_nodes(16));
        let a = mesh.traverse(0, 1, 0, 8); // east on row 0
        let b = mesh.traverse(4, 5, 0, 8); // east on row 1
        assert_eq!(a, b);
        assert_eq!(mesh.stats().contention_cycles, 0);
    }

    #[test]
    fn mean_latency_zero_when_idle() {
        let mesh = Mesh::new(MeshConfig::default());
        assert_eq!(mesh.stats().mean_latency(), 0.0);
    }

    #[test]
    fn faulty_mesh_with_noop_config_matches_healthy() {
        let mut plain = Mesh::new(MeshConfig::for_nodes(16));
        let mut faulty = Mesh::with_faults(MeshConfig::for_nodes(16), &FaultConfig::none());
        for i in 0..200u64 {
            let (f, t) = ((i % 16) as usize, ((i * 5 + 3) % 16) as usize);
            assert_eq!(plain.traverse(f, t, i, 8), faulty.traverse(f, t, i, 8));
        }
        assert_eq!(plain.stats(), faulty.stats());
    }

    #[test]
    fn drops_trigger_bounded_retransmission() {
        let cfg = FaultConfig {
            seed: 11,
            drop_pct: 100.0,
            ..FaultConfig::none()
        };
        let mut mesh = Mesh::with_faults(MeshConfig::for_nodes(16), &cfg);
        let healthy = Mesh::new(MeshConfig::for_nodes(16)).traverse(0, 15, 0, 8);
        // Even at a 100% drop rate the packet is force-delivered after
        // MAX_RETRANSMITS timeouts — bounded latency, no livelock.
        let lat = mesh.traverse(0, 15, 0, 8);
        assert!(lat > healthy);
        assert!(lat < healthy * (MAX_RETRANSMITS + 2) * 2);
        assert_eq!(mesh.stats().retries, MAX_RETRANSMITS);
        assert_eq!(mesh.stats().dropped, MAX_RETRANSMITS);
        assert!(mesh.stats().fault_delay_cycles > 0);
    }

    #[test]
    fn fault_latency_grows_with_drop_rate_on_average() {
        let total = |pct: f64| -> u64 {
            let cfg = FaultConfig {
                seed: 5,
                drop_pct: pct,
                ..FaultConfig::none()
            };
            let mut mesh = Mesh::with_faults(MeshConfig::for_nodes(16), &cfg);
            (0..500u64)
                .map(|i| mesh.traverse((i % 16) as usize, ((i * 7) % 16) as usize, i * 3, 8))
                .sum()
        };
        let t0 = total(0.1);
        let t50 = total(50.0);
        assert!(
            t50 > t0,
            "50% drops ({t50}) should cost more than 0.1% ({t0})"
        );
    }

    #[test]
    fn self_messages_bypass_fault_injection() {
        let cfg = FaultConfig {
            seed: 2,
            drop_pct: 100.0,
            jitter: 9,
            ..FaultConfig::none()
        };
        let mut mesh = Mesh::with_faults(MeshConfig::for_nodes(16), &cfg);
        assert_eq!(mesh.traverse(6, 6, 50, 1), mesh.config().router_latency);
        assert_eq!(mesh.stats().dropped, 0);
    }

    #[test]
    fn link_flits_account_every_hop() {
        let mut mesh = Mesh::new(MeshConfig::for_nodes(16)); // 4x4
        mesh.traverse(0, 3, 0, 8); // 3 hops east, 8 flits each
        let per_link = mesh.link_flits();
        assert_eq!(per_link.len(), 16 * 4);
        assert_eq!(per_link.iter().sum::<u64>(), 3 * 8);
        // Self-messages never touch a link.
        mesh.traverse(5, 5, 10, 8);
        assert_eq!(mesh.link_flits().iter().sum::<u64>(), 3 * 8);
    }

    #[test]
    fn healthy_link_components_are_demand_driven() {
        let mesh = Mesh::new(MeshConfig::for_nodes(16));
        let comps = mesh.link_components();
        assert_eq!(comps.len(), 16 * 4);
        for (i, c) in comps.iter().enumerate() {
            assert_eq!(c.component_id(), ComponentId::MeshLink(i as u32));
            assert_eq!(
                c.next_wakeup(0),
                None,
                "healthy link {i} scheduled a wakeup"
            );
        }
    }

    #[test]
    fn faulty_link_components_wake_at_outage_boundaries() {
        let cfg = FaultConfig {
            seed: 9,
            link_outage_period: 120,
            link_outage_len: 30,
            ..FaultConfig::none()
        };
        let mesh = Mesh::with_faults(MeshConfig::for_nodes(4), &cfg);
        for c in mesh.link_components() {
            let next = c.next_wakeup(50).expect("outage schedule must tick");
            assert!(next > 50, "wakeup must be strictly after now");
            assert!(next <= 50 + 120, "wakeup beyond one outage period");
        }
    }

    #[test]
    fn larger_mesh_longer_average_path() {
        let m32 = Mesh::new(MeshConfig::for_nodes(32));
        let m4 = Mesh::new(MeshConfig::for_nodes(4));
        let avg = |m: &Mesh, n: usize| -> f64 {
            let mut sum = 0u64;
            for a in 0..n {
                for b in 0..n {
                    sum += u64::from(m.hops(a, b));
                }
            }
            sum as f64 / (n * n) as f64
        };
        assert!(avg(&m32, 32) > avg(&m4, 4));
    }
}

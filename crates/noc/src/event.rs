//! Discrete-event scheduling primitives (DESIGN.md §16).
//!
//! The simulation engine in `crates/sim` can advance components in strict
//! lockstep (scan every core, step the one with the minimum clock) or
//! through a discrete-event scheduler built on the types in this module: a
//! deterministic binary min-heap of `(next_tick, ComponentId)` wakeups
//! over the [`Component`] trait. Idle components cost nothing — the heap
//! pops exactly the component that must act next, so per-step cost is
//! `O(log n)` instead of the lockstep scan's `O(n)`.
//!
//! Determinism is the whole design:
//!
//! * **Total order.** Heap entries are ordered by `(tick, ComponentId)`;
//!   [`ComponentId`]'s derived `Ord` (variant first, index second) breaks
//!   every same-tick tie the same way on every run. Cores sort before all
//!   passive components, so at an equal tick the event engine steps the
//!   lowest-numbered runnable core — exactly the core the lockstep scan's
//!   first-minimum `min_by_key` would pick.
//! * **Layout-independent pops.** The pop sequence of a binary min-heap
//!   over *unique* keys depends only on the set of entries, never on the
//!   internal array layout, so a heap rebuilt from component state pops
//!   identically to one restored from a checkpoint.
//! * **Canonical persistence.** [`EventHeap`]'s [`Persist`] encoding
//!   sorts entries before writing, so equal heap *contents* always
//!   serialize to equal bytes (the property the `drishti-ckpt/v1`
//!   byte-comparison gates rely on).

use crate::snap::{Persist, SnapError, StateReader, StateWriter};

/// Identity of one schedulable component.
///
/// The derived `Ord` is the scheduler's tie-break rule: at an equal tick,
/// `Core` wins over every passive component (slices, links, NOCSTAR,
/// DRAM channels), and within a variant the lower index wins. The variant
/// order below is therefore part of the engine's determinism contract —
/// reordering it would reorder same-tick pops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComponentId {
    /// A core (index = core number). Sorts first: cores do the work.
    Core(u32),
    /// An LLC slice (index = slice number).
    Slice(u32),
    /// A directed mesh link (index = `node * 4 + direction`).
    MeshLink(u32),
    /// A NOCSTAR side-band instance (index 0 in practice).
    Nocstar(u32),
    /// A DRAM channel (index = channel number).
    DramChannel(u32),
    /// A directed inter-chip link (index = `chip * 4 + direction`) of a
    /// multi-chip [`crate::topology::ChipTopology`]. Appended after the
    /// original variants so single-chip runs — which never schedule one —
    /// keep the exact same tie-break order as before the topology layer.
    InterChipLink(u32),
}

impl ComponentId {
    /// Pack into a `u64` for serialization: variant tag in the high
    /// 32 bits, index in the low 32.
    pub fn encode(self) -> u64 {
        let (tag, idx) = match self {
            ComponentId::Core(i) => (0u64, i),
            ComponentId::Slice(i) => (1, i),
            ComponentId::MeshLink(i) => (2, i),
            ComponentId::Nocstar(i) => (3, i),
            ComponentId::DramChannel(i) => (4, i),
            ComponentId::InterChipLink(i) => (5, i),
        };
        (tag << 32) | u64::from(idx)
    }

    /// Reverse of [`ComponentId::encode`]; `None` on an unknown tag.
    pub fn decode(v: u64) -> Option<ComponentId> {
        let idx = (v & 0xffff_ffff) as u32;
        match v >> 32 {
            0 => Some(ComponentId::Core(idx)),
            1 => Some(ComponentId::Slice(idx)),
            2 => Some(ComponentId::MeshLink(idx)),
            3 => Some(ComponentId::Nocstar(idx)),
            4 => Some(ComponentId::DramChannel(idx)),
            5 => Some(ComponentId::InterChipLink(idx)),
            _ => None,
        }
    }
}

impl Persist for ComponentId {
    fn save(&self, w: &mut StateWriter) {
        w.put_u64(self.encode());
    }

    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let v = r.take_u64("component id")?;
        *self = ComponentId::decode(v).ok_or_else(|| SnapError::Invalid {
            what: "component id",
            detail: format!("unknown component tag in {v:#018x}"),
        })?;
        Ok(())
    }
}

/// A schedulable simulation component.
///
/// The engine's event loop pops `(tick, id)` pairs off an [`EventHeap`],
/// calls [`Component::on_wakeup`] (for passive components) or steps the
/// core (for [`ComponentId::Core`] entries, which the engine handles
/// directly), and re-arms the entry at [`Component::next_wakeup`].
///
/// **Wakeup protocol.** `next_wakeup(now)` must return a tick *strictly
/// after* `now`, or `None` when the component is purely demand-driven and
/// needs no autonomous wakeups (the common case: all of this repo's
/// passive components evaluate their timed state lazily at access
/// timestamps, so their wakeups are maintenance points, never mutations
/// that results depend on — that invariant is what makes the event engine
/// bit-identical to lockstep by construction).
pub trait Component {
    /// This component's scheduler identity.
    fn component_id(&self) -> ComponentId;

    /// The next tick strictly after `now` at which the component wants to
    /// run, or `None` for a purely demand-driven component.
    fn next_wakeup(&self, now: u64) -> Option<u64>;

    /// React to being scheduled at `tick`. Default: nothing — passive
    /// components must not mutate result-affecting state here.
    fn on_wakeup(&mut self, _tick: u64) {}
}

/// A deterministic binary min-heap of `(tick, ComponentId)` wakeups.
///
/// Hand-rolled (rather than `std::collections::BinaryHeap`) so the
/// sift-up/sift-down order is pinned by this crate's tests, not by the
/// standard library's implementation details, and so the heap can expose
/// a canonical [`Persist`] encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventHeap {
    /// Standard implicit binary-heap layout: children of `i` at
    /// `2i + 1` and `2i + 2`, minimum at the root.
    entries: Vec<(u64, ComponentId)>,
}

impl EventHeap {
    /// An empty heap.
    pub fn new() -> Self {
        EventHeap::default()
    }

    /// Number of scheduled wakeups.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no wakeup is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remove every wakeup.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The earliest wakeup (ties broken by [`ComponentId`] order), without
    /// removing it.
    pub fn peek(&self) -> Option<(u64, ComponentId)> {
        self.entries.first().copied()
    }

    /// The raw entries in internal (heap-array) order — for persistence
    /// and tests; not sorted.
    pub fn as_slice(&self) -> &[(u64, ComponentId)] {
        &self.entries
    }

    /// Schedule a wakeup.
    pub fn push(&mut self, entry: (u64, ComponentId)) {
        self.entries.push(entry);
        self.sift_up(self.entries.len() - 1);
    }

    /// Remove and return the earliest wakeup.
    pub fn pop(&mut self) -> Option<(u64, ComponentId)> {
        let last = self.entries.len().checked_sub(1)?;
        self.entries.swap(0, last);
        let top = self.entries.pop();
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        top
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[parent] <= self.entries[i] {
                break;
            }
            self.entries.swap(parent, i);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut min = i;
            if l < self.entries.len() && self.entries[l] < self.entries[min] {
                min = l;
            }
            if r < self.entries.len() && self.entries[r] < self.entries[min] {
                min = r;
            }
            if min == i {
                return;
            }
            self.entries.swap(i, min);
            i = min;
        }
    }
}

impl Persist for EventHeap {
    /// Canonical: entries are written in sorted `(tick, id)` order, so two
    /// heaps holding the same wakeups serialize identically regardless of
    /// the push/pop history that built them.
    fn save(&self, w: &mut StateWriter) {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable();
        w.put_u64(sorted.len() as u64);
        for (tick, id) in sorted {
            w.put_u64(tick);
            id.save(w);
        }
    }

    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.take_len("event heap length")?;
        self.entries.clear();
        for _ in 0..n {
            let tick = r.take_u64("event tick")?;
            let mut id = ComponentId::Core(0);
            id.load(r)?;
            self.push((tick, id));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_id_order_puts_cores_first_then_index() {
        assert!(ComponentId::Core(7) < ComponentId::Slice(0));
        assert!(ComponentId::Slice(3) < ComponentId::MeshLink(0));
        assert!(ComponentId::MeshLink(9) < ComponentId::Nocstar(0));
        assert!(ComponentId::Nocstar(0) < ComponentId::DramChannel(0));
        assert!(ComponentId::DramChannel(9) < ComponentId::InterChipLink(0));
        assert!(ComponentId::Core(0) < ComponentId::Core(1));
        assert!(ComponentId::DramChannel(1) < ComponentId::DramChannel(2));
        assert!(ComponentId::InterChipLink(1) < ComponentId::InterChipLink(2));
    }

    #[test]
    fn encode_decode_round_trips_every_variant() {
        let ids = [
            ComponentId::Core(0),
            ComponentId::Core(u32::MAX),
            ComponentId::Slice(5),
            ComponentId::MeshLink(63),
            ComponentId::Nocstar(0),
            ComponentId::DramChannel(7),
            ComponentId::InterChipLink(11),
        ];
        for id in ids {
            assert_eq!(ComponentId::decode(id.encode()), Some(id));
        }
        assert_eq!(ComponentId::decode(6 << 32), None);
        assert_eq!(ComponentId::decode(u64::MAX), None);
    }

    #[test]
    fn same_tick_collision_pops_by_component_id_in_both_insertion_orders() {
        // The satellite scenario: two components scheduled at one tick,
        // inserted in both orders — the pop order must be identical.
        let a = (100, ComponentId::Core(3));
        let b = (100, ComponentId::Core(1));
        let mut h1 = EventHeap::new();
        h1.push(a);
        h1.push(b);
        let mut h2 = EventHeap::new();
        h2.push(b);
        h2.push(a);
        assert_eq!(h1.pop(), Some(b), "lower ComponentId wins the tie");
        assert_eq!(h2.pop(), Some(b));
        assert_eq!(h1.pop(), Some(a));
        assert_eq!(h2.pop(), Some(a));

        // Cross-variant tie: the core beats the passive component.
        let core = (42, ComponentId::Core(9));
        let link = (42, ComponentId::MeshLink(0));
        for first in [core, link] {
            let second = if first == core { link } else { core };
            let mut h = EventHeap::new();
            h.push(first);
            h.push(second);
            assert_eq!(h.pop(), Some(core), "core must win a same-tick tie");
            assert_eq!(h.pop(), Some(link));
        }
    }

    #[test]
    fn pop_order_is_fully_sorted_regardless_of_insertion_order() {
        let mut entries: Vec<(u64, ComponentId)> = (0..64u32)
            .map(|i| {
                (
                    u64::from(i % 7),
                    ComponentId::decode((u64::from(i % 5) << 32) | u64::from(i)).unwrap(),
                )
            })
            .collect();
        let mut expect = entries.clone();
        expect.sort_unstable();
        // A deterministic pseudo-shuffle: rotate and interleave.
        entries.rotate_left(17);
        let (front, back) = entries.split_at(32);
        let shuffled: Vec<_> = front
            .iter()
            .zip(back.iter())
            .flat_map(|(&x, &y)| [y, x])
            .collect();

        let mut h = EventHeap::new();
        for e in shuffled {
            h.push(e);
        }
        let mut popped = Vec::new();
        while let Some(e) = h.pop() {
            popped.push(e);
        }
        assert_eq!(popped, expect);
    }

    #[test]
    fn persist_is_canonical_and_round_trips() {
        let entries = [
            (5, ComponentId::DramChannel(1)),
            (1, ComponentId::Core(2)),
            (5, ComponentId::Core(0)),
            (3, ComponentId::MeshLink(7)),
        ];
        let mut fwd = EventHeap::new();
        for e in entries {
            fwd.push(e);
        }
        let mut rev = EventHeap::new();
        for e in entries.iter().rev() {
            rev.push(*e);
        }
        let mut wf = StateWriter::new();
        fwd.save(&mut wf);
        let mut wr = StateWriter::new();
        rev.save(&mut wr);
        assert_eq!(wf.bytes(), wr.bytes(), "persist must be canonical");

        let mut loaded = EventHeap::new();
        loaded
            .load(&mut StateReader::new(wf.bytes()))
            .expect("round trip");
        assert_eq!(loaded.len(), fwd.len());
        let mut a = Vec::new();
        while let Some(e) = loaded.pop() {
            a.push(e);
        }
        let mut b = Vec::new();
        while let Some(e) = fwd.pop() {
            b.push(e);
        }
        assert_eq!(a, b, "restored heap must pop identically");
    }

    #[test]
    fn corrupt_component_tag_is_a_typed_error() {
        let mut w = StateWriter::new();
        w.put_u64(1); // one entry
        w.put_u64(9); // tick
        w.put_u64(7 << 32); // unknown tag
        let mut h = EventHeap::new();
        assert!(matches!(
            h.load(&mut StateReader::new(w.bytes())),
            Err(SnapError::Invalid {
                what: "component id",
                ..
            })
        ));
    }
}

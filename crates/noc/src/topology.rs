//! Multi-chip topology: per-chip meshes joined by serializing links.
//!
//! The paper evaluates slicing effects on a single chip; scaling its claim
//! to 256+ slices runs into reticle limits, so large systems are built from
//! several chips (MuchiSim-style design exploration). A [`ChipTopology`]
//! models exactly that: `chips` identical 2-D meshes (one per chip, each
//! tile hosting a core + LLC slice) arranged on their own 2-D chip grid and
//! joined by *serializing* inter-chip links — SerDes-like channels with a
//! per-hop latency, a per-flit serialization cost several times the
//! on-chip wire, and their own energy constant, fault schedule and flit
//! counters.
//!
//! Routing is hierarchical: a message between tiles of one chip takes that
//! chip's mesh exactly as before; a cross-chip message rides its source
//! mesh to the chip's I/O gateway (local tile 0), crosses the chip grid in
//! XY order over the inter-chip links, and rides the destination mesh from
//! that chip's gateway to the target tile. Global tile numbering is
//! chip-major (`global = chip * nodes_per_chip + local`), matching
//! [`crate::slicehash::GlobalSliceMap`].
//!
//! **Degenerate contract.** With `chips == 1` every method delegates to the
//! single inner [`Mesh`] — traversal latencies, statistics, per-link flit
//! vectors, event components and persisted bytes are *bit-identical* to
//! the flat mesh the engine used before this layer existed. The
//! multi-chip extensions (inter-chip link state, separate stats block,
//! fault cursor) are only serialized when `chips > 1`.

use crate::event::{Component, ComponentId};
use crate::faults::{FaultConfig, FaultDomain, FaultSchedule};
use crate::mesh::{LinkWakeup, Mesh, MeshConfig};
use crate::snap::SnapError;
use crate::{NocStats, NodeId};

/// Parameters of one directed inter-chip link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipLinkConfig {
    /// Cycles for the head flit to traverse one inter-chip hop (SerDes +
    /// package trace; an order of magnitude above an on-chip wire).
    pub latency: u64,
    /// Cycles each flit occupies the link (serialization). On-chip links
    /// move one flit per cycle; an inter-chip channel is narrower.
    pub serialization: u64,
    /// Dynamic energy per flit per inter-chip hop, picojoules (off-chip
    /// signaling dwarfs the 25 pJ on-chip flit-hop).
    pub energy_per_flit_pj: u64,
}

impl Default for ChipLinkConfig {
    fn default() -> Self {
        ChipLinkConfig {
            latency: 32,
            serialization: 4,
            energy_per_flit_pj: 200,
        }
    }
}

/// Shape of a multi-chip system: how many chips, and what joins them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyConfig {
    /// Number of chips (1 = the flat single-chip system).
    pub chips: usize,
    /// Inter-chip link parameters (ignored when `chips == 1`).
    pub link: ChipLinkConfig,
}

impl TopologyConfig {
    /// The flat single-chip topology (the degenerate identity case).
    pub fn flat() -> Self {
        TopologyConfig {
            chips: 1,
            link: ChipLinkConfig::default(),
        }
    }

    /// A `chips`-chip topology with default link parameters.
    pub fn multi(chips: usize) -> Self {
        TopologyConfig {
            chips,
            link: ChipLinkConfig::default(),
        }
    }

    /// Whether this is the degenerate single-chip case.
    pub fn is_flat(&self) -> bool {
        self.chips <= 1
    }

    /// Validate against a total tile count. Chips must be at least one and
    /// divide the tile count evenly; link cycles must be nonzero for a
    /// genuinely multi-chip shape.
    pub fn validate(&self, total_nodes: usize) -> Result<(), String> {
        if self.chips == 0 {
            return Err("topology needs at least one chip".to_string());
        }
        if !total_nodes.is_multiple_of(self.chips) {
            return Err(format!(
                "chips ({}) must divide the core count ({total_nodes}) evenly",
                self.chips
            ));
        }
        if !self.is_flat() && (self.link.latency == 0 || self.link.serialization == 0) {
            return Err(
                "inter-chip link latency and serialization must be at least 1 cycle".to_string(),
            );
        }
        Ok(())
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig::flat()
    }
}

/// Per-inter-chip-link backlog: the same leaky bucket as a mesh link, but
/// each flit deposits [`ChipLinkConfig::serialization`] cycles of debt.
#[derive(Debug, Clone, Copy, Default)]
struct ChipLinkState {
    debt: u64,
    last: u64,
    /// Total flits ever pushed through this link (telemetry).
    flits: u64,
}

crate::impl_persist_fields!(ChipLinkState { debt, last, flits });

impl ChipLinkState {
    #[inline]
    fn occupy(&mut self, cycle: u64, flits: u64, serialization: u64) -> u64 {
        let elapsed = cycle.saturating_sub(self.last);
        self.debt = self.debt.saturating_sub(elapsed);
        self.last = self.last.max(cycle);
        let wait = self.debt;
        self.debt += flits * serialization;
        self.flits += flits;
        wait
    }
}

/// Local tile hosting a chip's I/O gateway (where cross-chip traffic
/// enters and leaves the on-chip mesh).
pub const GATEWAY_TILE: NodeId = 0;

/// Retransmission bound for dropped inter-chip packets (demand traffic
/// carries cache lines and is force-delivered after this many timeouts).
const MAX_RETRANSMITS: u64 = 8;

/// Turnaround between an inter-chip retransmission timeout and the resend.
const RETRANSMIT_GAP: u64 = 8;

/// N per-chip meshes joined by serializing inter-chip links.
#[derive(Debug, Clone)]
pub struct ChipTopology {
    cfg: TopologyConfig,
    /// Chip grid shape (squarest factorization, like the on-chip mesh).
    grid_w: usize,
    grid_h: usize,
    nodes_per_chip: usize,
    meshes: Vec<Mesh>,
    /// Outgoing inter-chip link backlog per chip and direction (E, W, N,
    /// S), flattened as `chip * 4 + direction`.
    links: Vec<[ChipLinkState; 4]>,
    /// Inter-chip traffic only; [`ChipTopology::stats`] merges the per-chip
    /// mesh blocks on demand.
    stats: NocStats,
    /// Injected-fault stream for the inter-chip links.
    faults: Option<FaultSchedule>,
}

impl ChipTopology {
    /// Build a topology of `total_nodes` tiles spread over `cfg.chips`
    /// chips, each chip a [`MeshConfig::for_nodes`] mesh.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`TopologyConfig::validate`] for
    /// `total_nodes`.
    pub fn new(cfg: TopologyConfig, total_nodes: usize) -> Self {
        ChipTopology::with_faults(cfg, total_nodes, &FaultConfig::none())
    }

    /// Fault-aware constructor. Each chip's mesh draws from the
    /// [`FaultDomain::Mesh`] stream (chips are identical dies, so they
    /// share one schedule evaluated per-chip); the inter-chip links draw
    /// from the independent [`FaultDomain::InterChip`] stream. A no-op
    /// `faults` configuration is bit-identical to [`ChipTopology::new`].
    pub fn with_faults(cfg: TopologyConfig, total_nodes: usize, faults: &FaultConfig) -> Self {
        if let Err(msg) = cfg.validate(total_nodes) {
            panic!("invalid topology: {msg}");
        }
        let nodes_per_chip = total_nodes / cfg.chips;
        let grid = MeshConfig::for_nodes(cfg.chips);
        ChipTopology {
            grid_w: grid.width,
            grid_h: grid.height,
            nodes_per_chip,
            meshes: (0..cfg.chips)
                .map(|_| Mesh::with_faults(MeshConfig::for_nodes(nodes_per_chip), faults))
                .collect(),
            links: vec![[ChipLinkState::default(); 4]; cfg.chips],
            stats: NocStats::default(),
            faults: if cfg.is_flat() {
                None
            } else {
                FaultSchedule::for_domain(faults, FaultDomain::InterChip)
            },
            cfg,
        }
    }

    /// The configuration this topology was built with.
    pub fn config(&self) -> &TopologyConfig {
        &self.cfg
    }

    /// Number of chips.
    pub fn chips(&self) -> usize {
        self.cfg.chips
    }

    /// Tiles per chip.
    pub fn nodes_per_chip(&self) -> usize {
        self.nodes_per_chip
    }

    /// Total tiles across all chips.
    pub fn nodes(&self) -> usize {
        self.nodes_per_chip * self.cfg.chips
    }

    /// `(width, height)` of the chip grid.
    pub fn chip_grid(&self) -> (usize, usize) {
        (self.grid_w, self.grid_h)
    }

    /// The chip a global tile lives on.
    pub fn chip_of(&self, node: NodeId) -> usize {
        node / self.nodes_per_chip
    }

    /// `(x, y)` of `chip` on the chip grid.
    fn chip_coords(&self, chip: usize) -> (usize, usize) {
        debug_assert!(chip < self.cfg.chips);
        (chip % self.grid_w, chip / self.grid_w)
    }

    /// Manhattan hop count between two chips on the chip grid.
    pub fn chip_hops(&self, a: usize, b: usize) -> u32 {
        let (ax, ay) = self.chip_coords(a);
        let (bx, by) = self.chip_coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }

    /// Zero-contention latency of the inter-chip segment alone: per-hop
    /// head latency plus the serialization tail of the whole packet.
    pub fn zero_load_cross(&self, chip_hops: u32, flits: u32) -> u64 {
        self.cfg.link.latency * u64::from(chip_hops)
            + (u64::from(flits) * self.cfg.link.serialization).saturating_sub(1)
    }

    /// Route one `flits`-flit packet between global tiles, starting at
    /// `cycle`; returns the end-to-end latency. Same-chip traffic is the
    /// inner mesh's [`Mesh::traverse`], unchanged. Cross-chip traffic pays
    /// three legs: source mesh to the gateway, chip-grid XY hops over the
    /// serializing links (with contention, energy, faults), destination
    /// mesh from the gateway.
    pub fn traverse(&mut self, from: NodeId, to: NodeId, cycle: u64, flits: u32) -> u64 {
        let (ca, la) = (from / self.nodes_per_chip, from % self.nodes_per_chip);
        let (cb, lb) = (to / self.nodes_per_chip, to % self.nodes_per_chip);
        if ca == cb {
            return self.meshes[ca].traverse(la, lb, cycle, flits);
        }
        let leg1 = self.meshes[ca].traverse(la, GATEWAY_TILE, cycle, flits);
        let depart = cycle + leg1;
        let cross = self.cross(ca, cb, depart, flits);
        let arrive = depart + cross;
        let leg3 = self.meshes[cb].traverse(GATEWAY_TILE, lb, arrive, flits);
        (arrive + leg3) - cycle
    }

    /// The inter-chip segment with fault handling (outage stall, jitter,
    /// bounded retransmission — mirroring the mesh's demand-traffic
    /// contract: cache lines cannot be lost, so drops cost time).
    fn cross(&mut self, from_chip: usize, to_chip: usize, cycle: u64, flits: u32) -> u64 {
        if self.faults.is_none() {
            return self.cross_once(from_chip, to_chip, cycle, flits);
        }
        let timeout =
            self.zero_load_cross(self.chip_hops(from_chip, to_chip), flits) + RETRANSMIT_GAP;
        let (extra, drops) = {
            let sched = self.faults.as_mut().expect("checked above");
            let mut extra = sched.link_outage_wait(from_chip, cycle).unwrap_or(0);
            let mut drops = 0u64;
            loop {
                let d = sched.decide(from_chip, to_chip, cycle + extra);
                if !d.dropped || drops >= MAX_RETRANSMITS {
                    extra += d.jitter;
                    break;
                }
                drops += 1;
                extra += timeout;
            }
            (extra, drops)
        };
        let lat = self.cross_once(from_chip, to_chip, cycle + extra, flits) + extra;
        self.stats.dropped += drops;
        self.stats.retries += drops;
        self.stats.fault_delay_cycles += extra;
        self.stats.total_latency += extra;
        lat
    }

    /// One healthy inter-chip crossing: XY walk over the chip grid,
    /// occupying each directed link in order.
    fn cross_once(&mut self, from_chip: usize, to_chip: usize, cycle: u64, flits: u32) -> u64 {
        let hops = self.chip_hops(from_chip, to_chip);
        self.stats.messages += 1;
        self.stats.flits += u64::from(flits);
        self.stats.hop_traversals += u64::from(hops);
        self.stats.energy_pj +=
            u64::from(flits) * u64::from(hops) * self.cfg.link.energy_per_flit_pj;

        let ser = self.cfg.link.serialization;
        let mut head = cycle;
        let mut contention = 0u64;
        let (mut x, mut y) = self.chip_coords(from_chip);
        let (tx, ty) = self.chip_coords(to_chip);
        while (x, y) != (tx, ty) {
            // Same direction encoding as the mesh: E=0, W=1, N=2, S=3.
            let (dir, nx, ny) = if x < tx {
                (0usize, x + 1, y)
            } else if x > tx {
                (1, x - 1, y)
            } else if y < ty {
                (3, x, y + 1)
            } else {
                (2, x, y - 1)
            };
            let chip = y * self.grid_w + x;
            let wait = self.links[chip][dir].occupy(head, u64::from(flits), ser);
            contention += wait;
            head += wait + self.cfg.link.latency;
            (x, y) = (nx, ny);
        }
        let arrival = head + (u64::from(flits) * ser).saturating_sub(1);
        let lat = arrival - cycle;
        self.stats.total_latency += lat;
        self.stats.contention_cycles += contention;
        lat
    }

    /// Merged traffic/energy statistics: every chip's mesh plus the
    /// inter-chip links. With one chip this equals the inner mesh's block
    /// exactly (merging with an all-zero block is the identity).
    pub fn stats(&self) -> NocStats {
        let mut merged = self.stats;
        for m in &self.meshes {
            merged.merge(m.stats());
        }
        merged
    }

    /// Inter-chip traffic alone (telemetry, energy attribution, tests).
    pub fn interchip_stats(&self) -> &NocStats {
        &self.stats
    }

    /// One chip's mesh (tests and diagnostics).
    pub fn mesh(&self, chip: usize) -> &Mesh {
        &self.meshes[chip]
    }

    /// Cumulative flit counts per link: every chip's mesh links in global
    /// id order (chip-major, `chip · nodes · 4 + local`), then — for
    /// multi-chip shapes — the `chips × 4` inter-chip links. With one chip
    /// the vector is exactly the flat mesh's.
    pub fn link_flits(&self) -> Vec<u64> {
        let mut flits: Vec<u64> = self.meshes.iter().flat_map(|m| m.link_flits()).collect();
        if !self.cfg.is_flat() {
            flits.extend(
                self.links
                    .iter()
                    .flat_map(|dirs| dirs.iter().map(|l| l.flits)),
            );
        }
        flits
    }

    /// Event-scheduler wakeup proxies for every mesh link, ids globalized
    /// chip-major to match [`ChipTopology::link_flits`].
    pub fn link_components(&self) -> Vec<LinkWakeup> {
        self.meshes
            .iter()
            .enumerate()
            .flat_map(|(c, m)| m.link_components_offset((c * self.nodes_per_chip * 4) as u32))
            .collect()
    }

    /// Wakeup proxies for the inter-chip links (empty on a flat
    /// topology). Like mesh links, these are maintenance-only: occupancy
    /// is demand-evaluated and only injected-outage boundaries schedule.
    pub fn interchip_components(&self) -> Vec<InterChipLinkWakeup> {
        if self.cfg.is_flat() {
            return Vec::new();
        }
        (0..self.cfg.chips * 4)
            .map(|link| InterChipLinkWakeup {
                link: link as u32,
                faults: self.faults.clone(),
            })
            .collect()
    }

    /// Reset statistics on every mesh and the inter-chip block (link
    /// occupancy is kept, like [`Mesh::reset_stats`]).
    pub fn reset_stats(&mut self) {
        for m in &mut self.meshes {
            m.reset_stats();
        }
        self.stats = NocStats::default();
    }

    /// Serialise mutable run-state. A flat topology writes exactly the
    /// inner mesh's bytes — the degenerate-identity contract checkpoints
    /// rely on; multi-chip shapes append the inter-chip link backlogs,
    /// stats and fault cursor after every chip's mesh state.
    pub fn save_state(&self, w: &mut crate::snap::StateWriter) {
        use crate::snap::Persist;
        for m in &self.meshes {
            m.save_state(w);
        }
        if !self.cfg.is_flat() {
            self.links.save(w);
            self.stats.save(w);
            crate::faults::save_fault_cursor(&self.faults, w);
        }
    }

    /// Restore state saved by [`ChipTopology::save_state`] into an
    /// identically-configured topology.
    pub fn load_state(&mut self, r: &mut crate::snap::StateReader<'_>) -> Result<(), SnapError> {
        use crate::snap::Persist;
        for m in &mut self.meshes {
            m.load_state(r)?;
        }
        if !self.cfg.is_flat() {
            self.links.load(r)?;
            if self.links.len() != self.cfg.chips {
                return Err(SnapError::Invalid {
                    what: "inter-chip links",
                    detail: format!(
                        "snapshot holds {} chips, configuration has {}",
                        self.links.len(),
                        self.cfg.chips
                    ),
                });
            }
            self.stats.load(r)?;
            crate::faults::load_fault_cursor(&mut self.faults, r, "inter-chip fault schedule")?;
        }
        Ok(())
    }
}

/// Discrete-event wakeup proxy for one directed inter-chip link
/// (`chip * 4 + direction`). Wakes only at injected-outage boundaries of
/// the [`FaultDomain::InterChip`] stream and performs no work.
#[derive(Debug, Clone)]
pub struct InterChipLinkWakeup {
    link: u32,
    faults: Option<FaultSchedule>,
}

impl Component for InterChipLinkWakeup {
    fn component_id(&self) -> ComponentId {
        ComponentId::InterChipLink(self.link)
    }

    fn next_wakeup(&self, now: u64) -> Option<u64> {
        self.faults
            .as_ref()
            .and_then(|f| f.link_outage_next_transition(self.link as usize, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snap::{StateReader, StateWriter};

    #[test]
    fn flat_topology_is_bit_identical_to_a_mesh() {
        let mut flat = ChipTopology::new(TopologyConfig::flat(), 16);
        let mut mesh = Mesh::new(MeshConfig::for_nodes(16));
        for i in 0..400u64 {
            let (f, t) = ((i % 16) as usize, ((i * 7 + 3) % 16) as usize);
            assert_eq!(
                flat.traverse(f, t, i * 3, 8),
                mesh.traverse(f, t, i * 3, 8),
                "message {i}"
            );
        }
        assert_eq!(flat.stats(), *mesh.stats());
        assert_eq!(flat.link_flits(), mesh.link_flits());

        // Persisted bytes must match the mesh's exactly.
        let mut wt = StateWriter::new();
        flat.save_state(&mut wt);
        let mut wm = StateWriter::new();
        mesh.save_state(&mut wm);
        assert_eq!(wt.bytes(), wm.bytes());
    }

    #[test]
    fn flat_topology_components_match_the_mesh() {
        let topo = ChipTopology::new(TopologyConfig::flat(), 16);
        let mesh = Mesh::new(MeshConfig::for_nodes(16));
        let t: Vec<_> = topo
            .link_components()
            .iter()
            .map(|c| c.component_id())
            .collect();
        let m: Vec<_> = mesh
            .link_components()
            .iter()
            .map(|c| c.component_id())
            .collect();
        assert_eq!(t, m);
        assert!(topo.interchip_components().is_empty());
    }

    #[test]
    fn same_chip_traffic_never_touches_interchip_links() {
        let mut topo = ChipTopology::new(TopologyConfig::multi(4), 32);
        for i in 0..100u64 {
            // Tiles 8..16 all live on chip 1.
            topo.traverse(8 + (i % 8) as usize, 8 + ((i * 3) % 8) as usize, i, 8);
        }
        assert_eq!(topo.interchip_stats().messages, 0);
        assert_eq!(topo.mesh(1).stats().messages, 100);
        assert_eq!(topo.mesh(0).stats().messages, 0);
    }

    #[test]
    fn cross_chip_costs_mesh_legs_plus_interchip_hops() {
        let cfg = TopologyConfig::multi(2);
        let mut topo = ChipTopology::new(cfg, 8); // 2 chips × 4 tiles
        let npc = topo.nodes_per_chip();
        assert_eq!(npc, 4);
        // Within a chip: exactly the 4-tile mesh's latency.
        let mut small = Mesh::new(MeshConfig::for_nodes(4));
        assert_eq!(topo.traverse(1, 2, 0, 8), small.traverse(1, 2, 0, 8));
        // Across chips: both mesh legs plus at least the zero-load cross.
        let lat = topo.traverse(1, npc + 2, 10_000, 8);
        let cross_floor = topo.zero_load_cross(1, 8);
        assert!(
            lat > cross_floor,
            "cross-chip latency {lat} must exceed the inter-chip segment {cross_floor}"
        );
        assert_eq!(topo.interchip_stats().messages, 1);
        assert_eq!(topo.interchip_stats().flits, 8);
        assert_eq!(
            topo.interchip_stats().energy_pj,
            8 * cfg.link.energy_per_flit_pj
        );
        // Gateway legs land in both chips' meshes.
        assert_eq!(topo.mesh(0).stats().messages, 2); // 1→2 earlier, 1→gateway
        assert_eq!(topo.mesh(1).stats().messages, 1); // gateway→2
    }

    #[test]
    fn interchip_links_serialize_and_contend() {
        let mut topo = ChipTopology::new(TopologyConfig::multi(2), 8);
        let first = topo.traverse(0, 4, 0, 8);
        let second = topo.traverse(0, 4, 0, 8); // same instant, same link
        assert!(
            second > first,
            "second crossing must queue: {first} vs {second}"
        );
        assert!(topo.interchip_stats().contention_cycles > 0);
        // The serializing link also makes a data packet slower than an
        // address packet by more than the flit-count difference alone.
        let mut fresh = ChipTopology::new(TopologyConfig::multi(2), 8);
        let addr = fresh.traverse(0, 4, 0, 1);
        let data = fresh.traverse(1, 5, 100_000, 8);
        assert!(
            data >= addr + 7,
            "serialization tail missing: {addr} {data}"
        );
    }

    #[test]
    fn link_flits_append_interchip_series() {
        let mut topo = ChipTopology::new(TopologyConfig::multi(2), 8);
        topo.traverse(0, 4, 0, 8);
        let flits = topo.link_flits();
        // 2 chips × 4 tiles × 4 dirs mesh links, then 2 × 4 inter-chip.
        assert_eq!(flits.len(), 2 * 4 * 4 + 2 * 4);
        let interchip: u64 = flits[32..].iter().sum();
        assert_eq!(interchip, 8, "one 8-flit crossing over one hop");
    }

    #[test]
    fn components_are_globally_unique_and_typed() {
        let topo = ChipTopology::new(TopologyConfig::multi(4), 32);
        let mesh_ids: Vec<_> = topo
            .link_components()
            .iter()
            .map(|c| c.component_id())
            .collect();
        assert_eq!(mesh_ids.len(), 32 * 4);
        let mut uniq = mesh_ids.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), mesh_ids.len(), "duplicate link ids");
        let inter = topo.interchip_components();
        assert_eq!(inter.len(), 4 * 4);
        for (i, c) in inter.iter().enumerate() {
            assert_eq!(c.component_id(), ComponentId::InterChipLink(i as u32));
            assert_eq!(c.next_wakeup(0), None, "healthy link scheduled a wakeup");
        }
    }

    #[test]
    fn faulty_interchip_links_wake_at_outage_boundaries() {
        let faults = FaultConfig {
            seed: 9,
            link_outage_period: 200,
            link_outage_len: 40,
            ..FaultConfig::none()
        };
        let topo = ChipTopology::with_faults(TopologyConfig::multi(2), 8, &faults);
        for c in topo.interchip_components() {
            let next = c.next_wakeup(70).expect("outage schedule must tick");
            assert!(next > 70 && next <= 70 + 200);
        }
    }

    #[test]
    fn noop_faults_are_bit_identical() {
        let mut plain = ChipTopology::new(TopologyConfig::multi(2), 16);
        let mut faulty =
            ChipTopology::with_faults(TopologyConfig::multi(2), 16, &FaultConfig::none());
        for i in 0..300u64 {
            let (f, t) = ((i % 16) as usize, ((i * 5 + 1) % 16) as usize);
            assert_eq!(plain.traverse(f, t, i, 8), faulty.traverse(f, t, i, 8));
        }
        assert_eq!(plain.stats(), faulty.stats());
    }

    #[test]
    fn drops_on_interchip_links_cost_time_not_messages() {
        let faults = FaultConfig {
            seed: 3,
            drop_pct: 100.0,
            ..FaultConfig::none()
        };
        let mut topo = ChipTopology::with_faults(TopologyConfig::multi(2), 8, &faults);
        let mut healthy = ChipTopology::new(TopologyConfig::multi(2), 8);
        let lat = topo.traverse(0, 4, 0, 8);
        let base = healthy.traverse(0, 4, 0, 8);
        assert!(lat > base, "drops must delay: {base} vs {lat}");
        assert_eq!(topo.interchip_stats().retries, MAX_RETRANSMITS);
        // The intra-chip gateway legs also saw the mesh-domain faults, but
        // the crossing itself was force-delivered.
        assert_eq!(topo.interchip_stats().messages, 1);
    }

    #[test]
    fn multichip_state_round_trips_bit_identically() {
        let faults = FaultConfig {
            seed: 7,
            drop_pct: 10.0,
            link_outage_period: 500,
            link_outage_len: 50,
            ..FaultConfig::none()
        };
        let cfg = TopologyConfig::multi(4);
        let mut a = ChipTopology::with_faults(cfg, 32, &faults);
        for i in 0..500u64 {
            a.traverse((i % 32) as usize, ((i * 11 + 5) % 32) as usize, i * 2, 8);
        }
        let mut w = StateWriter::new();
        a.save_state(&mut w);
        let mut b = ChipTopology::with_faults(cfg, 32, &faults);
        b.load_state(&mut StateReader::new(w.bytes()))
            .expect("round trip");
        // Same state ⇒ same bytes and same future behaviour.
        let mut w2 = StateWriter::new();
        b.save_state(&mut w2);
        assert_eq!(w.bytes(), w2.bytes());
        for i in 500..600u64 {
            let (f, t) = ((i % 32) as usize, ((i * 11 + 5) % 32) as usize);
            assert_eq!(a.traverse(f, t, i * 2, 8), b.traverse(f, t, i * 2, 8));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn load_rejects_wrong_chip_count() {
        let mut a = ChipTopology::new(TopologyConfig::multi(4), 32);
        let mut w = StateWriter::new();
        a.save_state(&mut w);
        // Same total tiles, different chip split: per-chip mesh sizes
        // disagree, so the per-chip mesh loads must fail.
        let mut b = ChipTopology::new(TopologyConfig::multi(2), 32);
        assert!(b.load_state(&mut StateReader::new(w.bytes())).is_err());
        let _ = &mut a;
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_core_count_panics() {
        let _ = ChipTopology::new(TopologyConfig::multi(3), 16);
    }

    #[test]
    fn chip_grid_uses_squarest_factorization() {
        let t4 = ChipTopology::new(TopologyConfig::multi(4), 32);
        assert_eq!(t4.chip_grid(), (2, 2));
        assert_eq!(t4.chip_hops(0, 3), 2);
        let t2 = ChipTopology::new(TopologyConfig::multi(2), 16);
        assert_eq!(t2.chip_hops(0, 1), 1);
    }
}

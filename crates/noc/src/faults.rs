//! Deterministic fault injection for the uncore.
//!
//! Real many-core uncore fabrics drop, delay and jitter messages; DRAM
//! channels get throttled or fenced off. The paper only probes the
//! NOCSTAR side-band with a clean ablation (Fig 11a) and a fixed-latency
//! sweep (Fig 11b); this module turns those two points into a full
//! resilience surface by injecting *reproducible* faults into every
//! uncore component:
//!
//! * **message drops** — each message is dropped with probability
//!   `drop_pct`;
//! * **latency jitter** — each delivered message gains a uniform extra
//!   latency in `[0, jitter]` cycles;
//! * **transient link outages** — periodic per-link down-windows during
//!   which messages stall until the link recovers;
//! * **DRAM channel outages** — wall-clock windows during which a channel
//!   is unavailable and its traffic must be re-steered.
//!
//! Every decision is a pure function of `(seed, domain, message identity,
//! per-schedule counter)` via a splitmix64 hash, so two runs with the same
//! [`FaultConfig`] produce bit-identical fault streams, and the fault
//! domains (mesh vs. NOCSTAR vs. DRAM) are decorrelated. A configuration
//! for which [`FaultConfig::is_noop`] holds builds **no** schedule at all
//! ([`FaultSchedule::for_domain`] returns `None`), so the zero-rate path
//! is bit-identical to a build without fault injection.

/// Which uncore component a schedule is attached to. Each domain derives
/// an independent decision stream from the shared seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDomain {
    /// The demand mesh NoC.
    Mesh,
    /// The NOCSTAR side-band interconnect.
    Nocstar,
    /// A generic predictor-fabric link (fixed-latency or mesh-backed).
    Fabric,
    /// The DRAM subsystem.
    Dram,
    /// The serializing inter-chip links of a multi-chip topology.
    InterChip,
}

impl FaultDomain {
    fn salt(self) -> u64 {
        match self {
            FaultDomain::Mesh => 0x6d65_7368,
            FaultDomain::Nocstar => 0x006e_6f63_7374_6172,
            FaultDomain::Fabric => 0x6661_6272_6963,
            FaultDomain::Dram => 0x6472_616d,
            FaultDomain::InterChip => 0x6368_6970_3263_6869, // "chip2chi"
        }
    }
}

/// A wall-clock window during which one DRAM channel is down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageWindow {
    /// The channel the outage applies to.
    pub channel: usize,
    /// First cycle of the outage.
    pub start: u64,
    /// Length in cycles (`start + len` is the first healthy cycle).
    pub len: u64,
}

impl OutageWindow {
    /// Whether `cycle` falls inside this window.
    pub fn covers(&self, cycle: u64) -> bool {
        cycle >= self.start && cycle < self.start.saturating_add(self.len)
    }
}

/// Seeded description of the faults to inject.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Base seed; all domains derive their streams from it.
    pub seed: u64,
    /// Per-message drop probability, percent (0–100).
    pub drop_pct: f64,
    /// Maximum uniform extra latency per delivered message, cycles.
    pub jitter: u64,
    /// Period of transient link outages, cycles (0 = never).
    pub link_outage_period: u64,
    /// Length of each link outage window, cycles.
    pub link_outage_len: u64,
    /// DRAM channel outage windows.
    pub dram_outages: Vec<OutageWindow>,
}

impl FaultConfig {
    /// The no-fault configuration.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            drop_pct: 0.0,
            jitter: 0,
            link_outage_period: 0,
            link_outage_len: 0,
            dram_outages: Vec::new(),
        }
    }

    /// A drop/jitter-only configuration (the resilience sweep's knob).
    pub fn with_drops(seed: u64, drop_pct: f64) -> Self {
        FaultConfig {
            seed,
            drop_pct,
            ..FaultConfig::none()
        }
    }

    /// Whether this configuration injects nothing at all. A no-op config
    /// builds no schedule, so it is bit-identical to the fault-free path.
    pub fn is_noop(&self) -> bool {
        self.drop_pct <= 0.0
            && self.jitter == 0
            && (self.link_outage_period == 0 || self.link_outage_len == 0)
            && self.dram_outages.is_empty()
    }

    /// Validate field ranges, returning a one-line human-readable reason
    /// on failure.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=100.0).contains(&self.drop_pct) || !self.drop_pct.is_finite() {
            return Err(format!(
                "drop percentage must be within 0..=100, got {}",
                self.drop_pct
            ));
        }
        if self.link_outage_len > 0
            && self.link_outage_period > 0
            && self.link_outage_len >= self.link_outage_period
        {
            return Err(format!(
                "link outage length ({}) must be shorter than its period ({})",
                self.link_outage_len, self.link_outage_period
            ));
        }
        for w in &self.dram_outages {
            if w.len == 0 {
                return Err(format!(
                    "DRAM outage window for channel {} has zero length",
                    w.channel
                ));
            }
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Per-message fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// The message is lost in transit.
    pub dropped: bool,
    /// Extra delivery latency (only meaningful when not dropped).
    pub jitter: u64,
}

impl FaultDecision {
    /// The decision a healthy fabric always makes.
    pub const CLEAN: FaultDecision = FaultDecision {
        dropped: false,
        jitter: 0,
    };
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One domain's deterministic fault stream.
///
/// The per-message counter makes repeated messages with identical
/// `(from, to, cycle)` draw distinct decisions while staying fully
/// deterministic (the hosting component is itself deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    cfg: FaultConfig,
    salt: u64,
    counter: u64,
}

impl FaultSchedule {
    /// Build the schedule for `domain`, or `None` when `cfg` injects
    /// nothing (keeping the healthy fast path untouched).
    pub fn for_domain(cfg: &FaultConfig, domain: FaultDomain) -> Option<FaultSchedule> {
        if cfg.is_noop() {
            return None;
        }
        Some(FaultSchedule {
            salt: splitmix64(cfg.seed ^ domain.salt()),
            cfg: cfg.clone(),
            counter: 0,
        })
    }

    /// The configuration driving this schedule.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The per-schedule decision counter — the schedule's only mutable
    /// run-state (everything else is a pure function of config + salt).
    /// Checkpoints persist exactly this cursor.
    pub fn cursor(&self) -> u64 {
        self.counter
    }

    /// Restore the decision counter saved by [`FaultSchedule::cursor`].
    pub fn set_cursor(&mut self, counter: u64) {
        self.counter = counter;
    }

    #[inline]
    fn draw(&mut self, from: usize, to: usize, cycle: u64) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        splitmix64(
            self.salt
                ^ self.counter
                ^ (from as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (to as u64).rotate_left(32)
                ^ cycle.wrapping_mul(0xd134_2543_de82_ef95),
        )
    }

    /// Decide the fate of one message.
    pub fn decide(&mut self, from: usize, to: usize, cycle: u64) -> FaultDecision {
        let roll = self.draw(from, to, cycle);
        // Drop with probability drop_pct / 100, using the top 32 bits.
        let dropped = self.cfg.drop_pct > 0.0
            && ((roll >> 32) as f64) < self.cfg.drop_pct / 100.0 * 4_294_967_296.0;
        let jitter = if self.cfg.jitter > 0 {
            (roll & 0xffff_ffff) % (self.cfg.jitter + 1)
        } else {
            0
        };
        FaultDecision { dropped, jitter }
    }

    /// If `link` is inside a transient outage window at `cycle`, the
    /// number of cycles until it recovers (messages stall that long).
    /// Windows recur every `link_outage_period` cycles with a per-link
    /// deterministic phase so the whole fabric never goes down at once.
    pub fn link_outage_wait(&self, link: usize, cycle: u64) -> Option<u64> {
        let period = self.cfg.link_outage_period;
        let len = self.cfg.link_outage_len;
        if period == 0 || len == 0 {
            return None;
        }
        let phase =
            splitmix64(self.salt ^ (link as u64).wrapping_mul(0xff51_afd7_ed55_8ccd)) % period;
        let pos = (cycle.wrapping_add(phase)) % period;
        if pos < len {
            Some(len - pos)
        } else {
            None
        }
    }

    /// The next cycle strictly after `now` at which `link`'s outage state
    /// changes (a down-window opens or closes), or `None` when link
    /// outages are not configured. Pure — usable as an event-engine wakeup
    /// without touching the decision counter.
    pub fn link_outage_next_transition(&self, link: usize, now: u64) -> Option<u64> {
        let period = self.cfg.link_outage_period;
        let len = self.cfg.link_outage_len;
        if period == 0 || len == 0 {
            return None;
        }
        let phase =
            splitmix64(self.salt ^ (link as u64).wrapping_mul(0xff51_afd7_ed55_8ccd)) % period;
        let pos = now.wrapping_add(phase) % period;
        // Boundaries sit where pos wraps to 0 (window opens) or reaches
        // `len` (window closes); take whichever comes first, strictly
        // after `now`.
        [0, len]
            .into_iter()
            .map(|target| {
                let mut delta = (target + period - pos) % period;
                if delta == 0 {
                    delta = period;
                }
                now.saturating_add(delta)
            })
            .min()
    }

    /// Whether DRAM `channel` is inside an outage window at `cycle`.
    pub fn dram_channel_down(&self, channel: usize, cycle: u64) -> bool {
        self.cfg
            .dram_outages
            .iter()
            .any(|w| w.channel == channel && w.covers(cycle))
    }

    /// The cycle at which DRAM `channel` next recovers, given it is down
    /// at `cycle` (used when every channel is down and the request must
    /// simply wait out the outage).
    pub fn dram_channel_up_at(&self, channel: usize, cycle: u64) -> u64 {
        self.cfg
            .dram_outages
            .iter()
            .filter(|w| w.channel == channel && w.covers(cycle))
            .map(|w| w.start.saturating_add(w.len))
            .max()
            .unwrap_or(cycle)
    }

    /// The next cycle strictly after `now` at which `channel`'s outage
    /// state changes (a window starts or ends), or `None` when every
    /// configured boundary is already in the past. Pure — usable as an
    /// event-engine wakeup.
    pub fn dram_outage_next_transition(&self, channel: usize, now: u64) -> Option<u64> {
        self.cfg
            .dram_outages
            .iter()
            .filter(|w| w.channel == channel)
            .flat_map(|w| [w.start, w.start.saturating_add(w.len)])
            .filter(|&t| t > now)
            .min()
    }
}

/// Persist the mutable cursor of an optional fault schedule: presence tag
/// plus the counter. Presence is config-derived, so a mismatch between the
/// snapshot and the rebuilt component means the checkpoint belongs to a
/// different configuration — reported as a typed error, never patched over.
pub fn save_fault_cursor(faults: &Option<FaultSchedule>, w: &mut crate::snap::StateWriter) {
    crate::snap::Persist::save(&faults.as_ref().map(|f| f.cursor()), w);
}

/// Restore a cursor saved by [`save_fault_cursor`] into an
/// already-configured optional schedule. `what` names the owning component
/// in error messages.
pub fn load_fault_cursor(
    faults: &mut Option<FaultSchedule>,
    r: &mut crate::snap::StateReader<'_>,
    what: &'static str,
) -> Result<(), crate::snap::SnapError> {
    let mut cursor: Option<u64> = None;
    crate::snap::Persist::load(&mut cursor, r)?;
    match (faults.as_mut(), cursor) {
        (Some(f), Some(c)) => {
            f.set_cursor(c);
            Ok(())
        }
        (None, None) => Ok(()),
        (have, _) => Err(crate::snap::SnapError::Invalid {
            what,
            detail: format!(
                "fault schedule {} in the snapshot but {} in this configuration",
                if have.is_none() { "present" } else { "absent" },
                if have.is_none() { "absent" } else { "present" },
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(drop_pct: f64, jitter: u64) -> FaultConfig {
        FaultConfig {
            seed: 42,
            drop_pct,
            jitter,
            ..FaultConfig::none()
        }
    }

    #[test]
    fn noop_config_builds_no_schedule() {
        assert!(FaultConfig::none().is_noop());
        assert!(FaultSchedule::for_domain(&FaultConfig::none(), FaultDomain::Mesh).is_none());
        // A seed alone does not make a config faulty.
        let seeded = FaultConfig {
            seed: 7,
            ..FaultConfig::none()
        };
        assert!(seeded.is_noop());
    }

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = FaultSchedule::for_domain(&cfg(30.0, 5), FaultDomain::Nocstar).unwrap();
        let mut b = FaultSchedule::for_domain(&cfg(30.0, 5), FaultDomain::Nocstar).unwrap();
        for i in 0..1000 {
            assert_eq!(
                a.decide(i % 7, i % 11, i as u64),
                b.decide(i % 7, i % 11, i as u64)
            );
        }
    }

    #[test]
    fn domains_are_decorrelated() {
        let c = cfg(50.0, 0);
        let mut mesh = FaultSchedule::for_domain(&c, FaultDomain::Mesh).unwrap();
        let mut star = FaultSchedule::for_domain(&c, FaultDomain::Nocstar).unwrap();
        let differs = (0..256).any(|i| mesh.decide(0, 1, i) != star.decide(0, 1, i));
        assert!(differs, "domains must not share a decision stream");
    }

    #[test]
    fn drop_rate_tracks_configuration() {
        for pct in [0.0f64, 10.0, 50.0, 100.0] {
            let mut s =
                FaultSchedule::for_domain(&cfg(pct.max(0.1), 0), FaultDomain::Mesh).unwrap();
            let n = 20_000;
            let drops = (0..n).filter(|&i| s.decide(0, 1, i).dropped).count();
            let observed = drops as f64 / n as f64 * 100.0;
            assert!(
                (observed - pct.max(0.1)).abs() < 2.0,
                "configured {pct}%, observed {observed:.1}%"
            );
        }
    }

    #[test]
    fn jitter_is_bounded_and_exercised() {
        let mut s = FaultSchedule::for_domain(&cfg(0.0, 6), FaultDomain::Dram).unwrap();
        let mut seen_nonzero = false;
        for i in 0..1000 {
            let d = s.decide(0, 0, i);
            assert!(d.jitter <= 6);
            seen_nonzero |= d.jitter > 0;
        }
        assert!(seen_nonzero, "jitter never fired");
    }

    #[test]
    fn link_outages_recur_with_per_link_phase() {
        let c = FaultConfig {
            seed: 9,
            link_outage_period: 100,
            link_outage_len: 10,
            ..FaultConfig::none()
        };
        let s = FaultSchedule::for_domain(&c, FaultDomain::Mesh).unwrap();
        for link in 0..4 {
            let down: Vec<u64> = (0..300)
                .filter(|&t| s.link_outage_wait(link, t).is_some())
                .collect();
            assert_eq!(down.len(), 30, "10 cycles down per 100-cycle period");
            // The wait returned always reaches the end of the window.
            for &t in &down {
                let w = s.link_outage_wait(link, t).unwrap();
                assert!((1..=10).contains(&w));
                assert!(
                    s.link_outage_wait(link, t + w).is_none(),
                    "link still down after wait"
                );
            }
        }
        // Phases differ across links (with overwhelming probability).
        let p0 = (0..100).find(|&t| s.link_outage_wait(0, t).is_some());
        let p1 = (0..100).find(|&t| s.link_outage_wait(1, t).is_some());
        let p2 = (0..100).find(|&t| s.link_outage_wait(2, t).is_some());
        assert!(p0 != p1 || p1 != p2, "all links share an outage phase");
    }

    #[test]
    fn dram_outage_windows_cover_their_range() {
        let c = FaultConfig {
            seed: 1,
            dram_outages: vec![OutageWindow {
                channel: 1,
                start: 100,
                len: 50,
            }],
            ..FaultConfig::none()
        };
        assert!(!c.is_noop());
        let s = FaultSchedule::for_domain(&c, FaultDomain::Dram).unwrap();
        assert!(!s.dram_channel_down(1, 99));
        assert!(s.dram_channel_down(1, 100));
        assert!(s.dram_channel_down(1, 149));
        assert!(!s.dram_channel_down(1, 150));
        assert!(!s.dram_channel_down(0, 120), "other channels stay up");
        assert_eq!(s.dram_channel_up_at(1, 120), 150);
    }

    #[test]
    fn link_outage_transitions_bracket_every_state_flip() {
        let c = FaultConfig {
            seed: 9,
            link_outage_period: 100,
            link_outage_len: 10,
            ..FaultConfig::none()
        };
        let s = FaultSchedule::for_domain(&c, FaultDomain::Mesh).unwrap();
        for link in 0..8 {
            for now in 0..250u64 {
                let next = s.link_outage_next_transition(link, now).unwrap();
                assert!(next > now, "transition must be strictly after now");
                // The down/up state is constant on (now, next) and flips
                // at `next`.
                let state_after_now = s.link_outage_wait(link, now + 1).is_some();
                for t in now + 1..next {
                    assert_eq!(s.link_outage_wait(link, t).is_some(), state_after_now);
                }
                assert_ne!(
                    s.link_outage_wait(link, next).is_some(),
                    s.link_outage_wait(link, next - 1).is_some(),
                    "link {link}: no flip at reported transition {next} (now {now})"
                );
            }
        }
        // No outage configuration → no wakeups.
        let quiet = FaultSchedule::for_domain(&cfg(10.0, 0), FaultDomain::Mesh).unwrap();
        assert_eq!(quiet.link_outage_next_transition(0, 0), None);
    }

    #[test]
    fn dram_outage_transitions_match_window_edges() {
        let c = FaultConfig {
            seed: 1,
            dram_outages: vec![
                OutageWindow {
                    channel: 1,
                    start: 100,
                    len: 50,
                },
                OutageWindow {
                    channel: 1,
                    start: 400,
                    len: 10,
                },
                OutageWindow {
                    channel: 0,
                    start: 5,
                    len: 5,
                },
            ],
            ..FaultConfig::none()
        };
        let s = FaultSchedule::for_domain(&c, FaultDomain::Dram).unwrap();
        assert_eq!(s.dram_outage_next_transition(1, 0), Some(100));
        assert_eq!(s.dram_outage_next_transition(1, 100), Some(150));
        assert_eq!(s.dram_outage_next_transition(1, 150), Some(400));
        assert_eq!(s.dram_outage_next_transition(1, 405), Some(410));
        assert_eq!(s.dram_outage_next_transition(1, 410), None);
        assert_eq!(s.dram_outage_next_transition(0, 9), Some(10));
        assert_eq!(s.dram_outage_next_transition(2, 0), None);
    }

    #[test]
    fn validate_rejects_bad_ranges() {
        let mut c = cfg(120.0, 0);
        assert!(c.validate().is_err());
        c.drop_pct = 50.0;
        assert!(c.validate().is_ok());
        c.link_outage_period = 10;
        c.link_outage_len = 10;
        assert!(c.validate().is_err());
        c.link_outage_len = 5;
        assert!(c.validate().is_ok());
        c.dram_outages.push(OutageWindow {
            channel: 0,
            start: 0,
            len: 0,
        });
        assert!(c.validate().is_err());
    }
}

//! Property-based tests of the interconnect models.

use drishti_noc::link::{FixedLatencyLink, MeshLink, NocstarLink, PredictorLink};
use drishti_noc::mesh::{Mesh, MeshConfig};
use drishti_noc::nocstar::{Nocstar, NocstarPath};
use drishti_noc::slicehash::{SliceHasher, XorFoldHash};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every traversal takes at least the zero-load latency and statistics
    /// stay consistent under arbitrary traffic.
    #[test]
    fn mesh_latency_lower_bound(
        msgs in prop::collection::vec((0usize..16, 0usize..16, 0u64..10_000, 1u32..9), 1..200)
    ) {
        let cfg = MeshConfig::for_nodes(16);
        let mut mesh = Mesh::new(cfg);
        let mut sorted = msgs.clone();
        sorted.sort_by_key(|&(_, _, t, _)| t);
        for (from, to, cycle, flits) in sorted {
            let hops = mesh.hops(from, to);
            let zero = mesh.zero_load_latency(hops, flits);
            let lat = mesh.traverse(from, to, cycle, flits);
            if from == to {
                prop_assert_eq!(lat, cfg.router_latency);
            } else {
                prop_assert!(lat >= zero, "latency {lat} below zero-load {zero}");
            }
        }
        let s = mesh.stats();
        prop_assert_eq!(s.messages, msgs.len() as u64);
        prop_assert!(s.total_latency >= s.contention_cycles);
    }

    /// NOCSTAR latency is at least the base latency for remote messages and
    /// contention only adds delay.
    #[test]
    fn nocstar_latency_bounds(
        msgs in prop::collection::vec((0usize..32, 0usize..32, 0u64..5_000, any::<bool>()), 1..200)
    ) {
        let mut star = Nocstar::with_defaults(32);
        let mut sorted = msgs.clone();
        sorted.sort_by_key(|&(_, _, t, _)| t);
        for (from, to, cycle, resp) in sorted {
            let path = if resp { NocstarPath::Response } else { NocstarPath::Request };
            let lat = star.access(from, to, path, cycle);
            if from == to {
                prop_assert_eq!(lat, star.config().local_latency);
            } else {
                prop_assert!(lat >= star.config().base_latency);
            }
        }
        prop_assert_eq!(star.stats().energy_pj, 50 * msgs.len() as u64);
    }

    /// All PredictorLink implementations return finite, plausible latencies
    /// and count their traffic.
    #[test]
    fn links_are_well_behaved(
        msgs in prop::collection::vec((0usize..8, 0usize..8, 0u64..10_000), 1..100)
    ) {
        let mut links: Vec<Box<dyn PredictorLink>> = vec![
            Box::new(MeshLink::new(8)),
            Box::new(NocstarLink::new(8)),
            Box::new(FixedLatencyLink::new(7)),
        ];
        for link in &mut links {
            for &(from, to, cycle) in &msgs {
                let lat = link.access(from, to, cycle);
                prop_assert!(lat < 1_000_000, "{} runaway latency {lat}", link.name());
            }
            prop_assert_eq!(link.stats().messages, msgs.len() as u64);
            link.reset_stats();
            prop_assert_eq!(link.stats().messages, 0);
        }
    }

    /// The slice hash spreads any arithmetic sequence reasonably evenly.
    #[test]
    fn hash_spreads_sequences(start in any::<u64>(), stride in 1u64..4096) {
        let h = XorFoldHash::new();
        let n = 16usize;
        let mut counts = vec![0u32; n];
        for i in 0..2048u64 {
            counts[h.slice_of(start.wrapping_add(i * stride), n)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        // No slice may absorb more than half of a 2048-element sequence.
        prop_assert!(max < 1024, "degenerate spread: {counts:?} (stride {stride})");
    }
}

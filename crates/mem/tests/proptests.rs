//! Property-based tests of the memory-hierarchy substrate.

use drishti_mem::cache::{CacheConfig, PrivateCache, ReplacementKind};
use drishti_mem::dram::{Dram, DramConfig};
use drishti_mem::prefetch::{Prefetcher, PrefetcherKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The private cache never exceeds capacity, and hits+misses == accesses.
    #[test]
    fn private_cache_invariants(
        ops in prop::collection::vec((0u64..500, any::<bool>()), 50..500),
        ways in 1usize..8,
        lru in any::<bool>(),
    ) {
        let cfg = CacheConfig {
            sets: 16,
            ways,
            replacement: if lru { ReplacementKind::Lru } else { ReplacementKind::Srrip },
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        for &(line, store) in &ops {
            if !c.access(line, store) {
                c.fill(line, store);
            }
            prop_assert!(c.resident_lines() <= 16 * ways);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.accesses, ops.len() as u64);
    }

    /// A filled line is immediately resident; re-access hits.
    #[test]
    fn fill_then_hit(lines in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut c = PrivateCache::new(CacheConfig::l1d());
        for &l in &lines {
            if !c.access(l, false) {
                c.fill(l, false);
            }
            prop_assert!(c.access(l, false), "line {l} missing after fill");
        }
    }

    /// DRAM latencies are bounded below by the column access + burst and
    /// above by the backlog ceiling; row hits never exceed row misses in
    /// the steady state of a single bank.
    #[test]
    fn dram_latency_bounds(
        reqs in prop::collection::vec((0u64..1_000_000, 0u64..100_000, any::<bool>()), 1..300)
    ) {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|&(_, t, _)| t);
        for (line, cycle, write) in sorted {
            if write {
                d.write(line, cycle);
            } else {
                let lat = d.read(line, cycle);
                prop_assert!(lat >= cfg.t_cas + cfg.burst);
                prop_assert!(lat < 10_000_000, "runaway DRAM latency {lat}");
            }
        }
        let s = d.stats();
        prop_assert_eq!(s.reads + s.writes, reqs.len() as u64);
        // Writes are posted into the queue and may not have drained yet,
        // so serviced events (row hits + activations) cover all reads but
        // at most reads + writes.
        prop_assert!(s.row_hits + s.activations >= s.reads);
        prop_assert!(s.row_hits + s.activations <= s.reads + s.writes);
    }

    /// No prefetcher may emit unbounded requests per access, and every
    /// request must carry the triggering PC.
    #[test]
    fn prefetchers_are_bounded(
        accesses in prop::collection::vec((0u64..64, 0u64..100_000, any::<bool>()), 20..300)
    ) {
        for kind in [
            PrefetcherKind::NextLine,
            PrefetcherKind::IpStride,
            PrefetcherKind::SppPpf,
            PrefetcherKind::Bingo,
            PrefetcherKind::Ipcp,
            PrefetcherKind::Berti,
            PrefetcherKind::Gaze,
        ] {
            let mut p: Box<dyn Prefetcher> = kind.build();
            for &(pc, line, hit) in &accesses {
                let mut out = Vec::new();
                p.on_access(0x400 + pc, line, hit, &mut out);
                prop_assert!(out.len() <= 16, "{} burst of {}", p.name(), out.len());
                for r in &out {
                    prop_assert_eq!(r.trigger_pc, 0x400 + pc);
                }
            }
        }
    }
}

//! DDR DRAM model.
//!
//! Paper Table 4: one channel per four cores, 6400 MT/s, FR-FCFS, write
//! watermark 7/8, 4 KB row buffer, open page, tRP = tRCD = tCAS = 12.5 ns.
//! At the 4 GHz core clock those timings are 50 cycles each.
//!
//! The model is occupancy-based rather than a cycle-stepped controller:
//! each bank remembers its open row and the cycle it becomes free; each
//! channel's data bus serializes 64-byte bursts. Reads experience
//! row-hit/row-miss latency plus any bank/bus queueing — enough to
//! reproduce the paper's channel-count sensitivity (Fig 22) and the
//! bandwidth pressure that makes LLC misses expensive on many cores.
//! Writes are buffered (write watermark) and drain opportunistically; they
//! consume bank/bus time that delays subsequent reads, which is how extra
//! write-backs (paper Table 5) cost performance and energy.

use crate::LineAddr;
use drishti_noc::event::{Component, ComponentId};
use drishti_noc::faults::{FaultConfig, FaultDomain, FaultSchedule};

/// DRAM timing/geometry parameters (in core cycles at 4 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent channels (paper: cores / 4).
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size in cache lines (4 KB row ⇒ 64 lines).
    pub row_lines: u64,
    /// Row precharge, cycles (12.5 ns ⇒ 50).
    pub t_rp: u64,
    /// Row activate (RAS-to-CAS), cycles.
    pub t_rcd: u64,
    /// Column access, cycles.
    pub t_cas: u64,
    /// Data-bus occupancy of one 64 B burst, cycles (6400 MT/s ⇒ ~5 cycles).
    pub burst: u64,
    /// Energy per read burst, picojoules.
    pub read_energy_pj: u64,
    /// Energy per write burst, picojoules.
    pub write_energy_pj: u64,
    /// Energy per row activation, picojoules.
    pub activate_energy_pj: u64,
    /// Per-channel write-queue capacity (paper Table 4 controller).
    pub write_queue_capacity: usize,
    /// Queue occupancy (in entries) at which buffered writes drain to the
    /// banks (paper: 7/8 of the queue).
    pub write_watermark: usize,
}

impl DramConfig {
    /// Paper-baseline DRAM for `cores` cores (one channel per four cores,
    /// minimum one).
    pub fn for_cores(cores: usize) -> Self {
        DramConfig {
            channels: (cores / 4).max(1),
            ..DramConfig::default()
        }
    }

    /// Same, with an explicit channel count (Fig 22 sweep).
    pub fn with_channels(channels: usize) -> Self {
        DramConfig {
            channels: channels.max(1),
            ..DramConfig::default()
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 4,
            banks_per_channel: 16,
            row_lines: 64,
            t_rp: 50,
            t_rcd: 50,
            t_cas: 50,
            burst: 5,
            read_energy_pj: 15_000,
            write_energy_pj: 15_000,
            activate_energy_pj: 10_000,
            write_queue_capacity: 64,
            write_watermark: 56, // 7/8 × 64
        }
    }
}

/// Leaky-bucket occupancy: `debt` cycles of pending work that drains one
/// cycle per cycle; a new request waits behind it. Tolerant of slightly
/// out-of-order request timestamps (cores' clocks drift within a
/// scheduling step).
#[derive(Debug, Clone, Copy, Default)]
struct Occupancy {
    debt: u64,
    last: u64,
}

impl Occupancy {
    #[inline]
    fn occupy(&mut self, cycle: u64, work: u64) -> u64 {
        let elapsed = cycle.saturating_sub(self.last);
        self.debt = self.debt.saturating_sub(elapsed);
        self.last = self.last.max(cycle);
        let wait = self.debt;
        self.debt += work;
        wait
    }
}

drishti_noc::impl_persist_fields!(Occupancy { debt, last });

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy: Occupancy,
}

drishti_noc::impl_persist_fields!(Bank { open_row, busy });

/// Traffic and energy counters for the DRAM subsystem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read bursts serviced.
    pub reads: u64,
    /// Write bursts serviced.
    pub writes: u64,
    /// Row-buffer hits (reads + writes).
    pub row_hits: u64,
    /// Row activations (row-buffer misses).
    pub activations: u64,
    /// Sum of read latencies (cycles), for mean-latency reporting.
    pub total_read_latency: u64,
    /// Dynamic energy, picojoules.
    pub energy_pj: u64,
    /// Requests re-steered off a failed channel to a surviving one.
    pub resteered: u64,
    /// Extra cycles charged by injected faults (jitter, outage stalls,
    /// degraded-bandwidth penalties).
    pub fault_delay_cycles: u64,
}

drishti_noc::impl_persist_fields!(DramStats {
    reads,
    writes,
    row_hits,
    activations,
    total_read_latency,
    energy_pj,
    resteered,
    fault_delay_cycles,
});

impl DramStats {
    /// Mean read latency in cycles (0 if no reads).
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads as f64
        }
    }
}

/// Point-in-time view of one DRAM channel (telemetry).
///
/// `reads`/`writes` are cumulative bursts *serviced* on the channel (after
/// any fault re-steer, so they attribute traffic to the channel that
/// actually carried it); `queue_depth` is the posted writes currently
/// buffered and not yet drained; `bus_backlog` is the data-bus leaky-bucket
/// debt in cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramChannelSnapshot {
    pub reads: u64,
    pub writes: u64,
    pub queue_depth: u64,
    pub bus_backlog: u64,
}

/// The DRAM subsystem: `channels × banks` with open-page row buffers.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Vec<Bank>>,
    bus: Vec<Occupancy>,
    /// Buffered (posted) writes per channel, drained at the watermark.
    write_queues: Vec<Vec<LineAddr>>,
    /// Read bursts serviced per channel (post-re-steer).
    chan_reads: Vec<u64>,
    /// Write bursts drained per channel (post-re-steer).
    chan_writes: Vec<u64>,
    stats: DramStats,
    /// Injected-fault stream (`None` on the healthy fast path).
    faults: Option<FaultSchedule>,
}

impl Dram {
    /// Create an idle DRAM subsystem.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels or banks.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(
            cfg.channels > 0 && cfg.banks_per_channel > 0,
            "degenerate DRAM"
        );
        Dram {
            banks: vec![vec![Bank::default(); cfg.banks_per_channel]; cfg.channels],
            bus: vec![Occupancy::default(); cfg.channels],
            write_queues: vec![Vec::new(); cfg.channels],
            chan_reads: vec![0; cfg.channels],
            chan_writes: vec![0; cfg.channels],
            cfg,
            stats: DramStats::default(),
            faults: None,
        }
    }

    /// Create a fault-aware DRAM subsystem. With a no-op `faults`
    /// configuration this is bit-identical to [`Dram::new`].
    ///
    /// DRAM faults are *channel outages* plus latency jitter — stored data
    /// is never lost (there is no analogue of a message drop), but while a
    /// channel is inside an outage window its traffic is re-steered to the
    /// first surviving channel at degraded bandwidth; if every channel is
    /// down, requests stall until the original channel recovers.
    pub fn with_faults(cfg: DramConfig, faults: &FaultConfig) -> Self {
        let mut d = Dram::new(cfg);
        d.faults = FaultSchedule::for_domain(faults, FaultDomain::Dram);
        d
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    #[inline]
    fn map(&self, line: LineAddr) -> (usize, usize, u64) {
        // Row = line / row_lines. Interleave channels then banks by row
        // bits, with higher row bits XOR-folded into the bank index (as
        // real controllers do) to spread pathological row hot-spots.
        let row = line / self.cfg.row_lines;
        let channel = (row as usize) % self.cfg.channels;
        let bank_bits = row / self.cfg.channels as u64;
        let bank = ((bank_bits ^ (bank_bits >> 7) ^ (bank_bits >> 13)) as usize)
            % self.cfg.banks_per_channel;
        (channel, bank, row)
    }

    fn service(&mut self, line: LineAddr, cycle: u64, is_write: bool) -> u64 {
        let (mapped_ch, bk, row) = self.map(line);
        let channels = self.cfg.channels;

        // Fault layer: jitter every request; re-steer traffic off a failed
        // channel (degraded bandwidth on the rescue path), or stall until
        // recovery when no channel survives.
        let mut ch = mapped_ch;
        let mut fault_extra = 0u64;
        let mut resteered = false;
        if let Some(sched) = self.faults.as_mut() {
            fault_extra += sched.decide(mapped_ch, bk, cycle).jitter;
            if sched.dram_channel_down(mapped_ch, cycle) {
                let survivor = (1..channels)
                    .map(|k| (mapped_ch + k) % channels)
                    .find(|&cand| !sched.dram_channel_down(cand, cycle));
                match survivor {
                    Some(cand) => {
                        ch = cand;
                        resteered = true;
                    }
                    None => {
                        fault_extra += sched
                            .dram_channel_up_at(mapped_ch, cycle)
                            .saturating_sub(cycle);
                    }
                }
            }
        }
        if resteered {
            self.stats.resteered += 1;
        }
        self.stats.fault_delay_cycles += fault_extra;
        if is_write {
            self.chan_writes[ch] += 1;
        } else {
            self.chan_reads[ch] += 1;
        }

        let bank = &mut self.banks[ch][bk];

        // Latency vs. occupancy: a request *experiences* the full array
        // latency, but the bank is only *occupied* until it can accept the
        // next command — column accesses to an open row pipeline at the
        // burst rate (tCCD), while a row miss holds the bank for
        // precharge + activate. The shared channel bus is occupied for the
        // data burst only.
        let (array_latency, occupancy) = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                (self.cfg.t_cas, self.cfg.burst)
            }
            Some(_) => {
                self.stats.activations += 1;
                self.stats.energy_pj += self.cfg.activate_energy_pj;
                (
                    self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas,
                    self.cfg.t_rp + self.cfg.t_rcd,
                )
            }
            None => {
                self.stats.activations += 1;
                self.stats.energy_pj += self.cfg.activate_energy_pj;
                (self.cfg.t_rcd + self.cfg.t_cas, self.cfg.t_rcd)
            }
        };
        bank.open_row = Some(row);
        let bank_wait = bank.busy.occupy(cycle, occupancy);
        // A re-steered burst crosses the rescue channel at degraded
        // bandwidth: it holds the surviving bus twice as long, modelling
        // the cross-channel detour, and that slower burst is also what the
        // requester experiences.
        let burst = if resteered {
            self.cfg.burst * 2
        } else {
            self.cfg.burst
        };
        let bus_wait = self.bus[ch].occupy(cycle, burst);
        if resteered {
            self.stats.fault_delay_cycles += burst - self.cfg.burst;
        }

        if !is_write {
            self.stats.energy_pj += self.cfg.read_energy_pj;
        }
        bank_wait + array_latency + bus_wait + burst + fault_extra
    }

    /// Issue a read for `line` at `cycle`; returns the load-to-use latency
    /// in cycles (including queueing).
    pub fn read(&mut self, line: LineAddr, cycle: u64) -> u64 {
        let lat = self.service(line, cycle, false);
        self.stats.reads += 1;
        self.stats.total_read_latency += lat;
        lat
    }

    /// Issue a write (LLC write-back) for `line` at `cycle`. Writes are
    /// posted into a per-channel write queue; when the queue reaches the
    /// watermark (paper: 7/8 of its capacity) the buffered writes drain in
    /// a burst, occupying the banks and data bus and delaying subsequent
    /// reads — which is how extra write-backs (paper Table 5) cost read
    /// performance.
    pub fn write(&mut self, line: LineAddr, cycle: u64) {
        self.stats.writes += 1;
        self.stats.energy_pj += self.cfg.write_energy_pj;
        let (ch, _, _) = self.map(line);
        self.write_queues[ch].push(line);
        if self.write_queues[ch].len() >= self.cfg.write_watermark {
            let drained = std::mem::take(&mut self.write_queues[ch]);
            for l in drained {
                self.service(l, cycle, true);
            }
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Event-scheduler wakeup proxies, one per channel.
    ///
    /// Bank and bus occupancy are leaky buckets evaluated lazily when a
    /// request arrives, so a channel's only scheduled events are injected
    /// outage-window edges — and those wakeups mutate nothing, because
    /// channel health is a pure function of the fault configuration
    /// (DESIGN.md §16). Healthy DRAM is fully demand-driven.
    pub fn channel_components(&self) -> Vec<DramChannelWakeup> {
        (0..self.cfg.channels)
            .map(|channel| DramChannelWakeup {
                channel: channel as u32,
                faults: self.faults.clone(),
            })
            .collect()
    }

    /// Per-channel telemetry snapshot, indexed by channel.
    pub fn channel_snapshots(&self) -> Vec<DramChannelSnapshot> {
        (0..self.cfg.channels)
            .map(|ch| DramChannelSnapshot {
                reads: self.chan_reads[ch],
                writes: self.chan_writes[ch],
                queue_depth: self.write_queues[ch].len() as u64,
                bus_backlog: self.bus[ch].debt,
            })
            .collect()
    }

    /// Reset statistics (bank state retained).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        self.chan_reads.fill(0);
        self.chan_writes.fill(0);
    }

    /// Serialize the controller's mutable state: banks, bus occupancy,
    /// posted-write queues, per-channel counters, stats, and the fault
    /// cursor. Configuration is excluded — the loader rebuilds it first.
    pub fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        use drishti_noc::snap::Persist;
        self.banks.save(w);
        self.bus.save(w);
        self.write_queues.save(w);
        self.chan_reads.save(w);
        self.chan_writes.save(w);
        self.stats.save(w);
        drishti_noc::faults::save_fault_cursor(&self.faults, w);
    }

    /// Restore state written by [`Dram::save_state`] into a DRAM subsystem
    /// built with the same configuration.
    pub fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        use drishti_noc::snap::{Persist, SnapError};
        self.banks.load(r)?;
        if self.banks.len() != self.cfg.channels
            || self
                .banks
                .iter()
                .any(|c| c.len() != self.cfg.banks_per_channel)
        {
            return Err(SnapError::Invalid {
                what: "dram banks",
                detail: format!(
                    "{} channels x {} banks expected",
                    self.cfg.channels, self.cfg.banks_per_channel
                ),
            });
        }
        self.bus.load(r)?;
        self.write_queues.load(r)?;
        self.chan_reads.load(r)?;
        self.chan_writes.load(r)?;
        if self.bus.len() != self.cfg.channels
            || self.write_queues.len() != self.cfg.channels
            || self.chan_reads.len() != self.cfg.channels
            || self.chan_writes.len() != self.cfg.channels
        {
            return Err(SnapError::Invalid {
                what: "dram channels",
                detail: format!("{} channels expected", self.cfg.channels),
            });
        }
        self.stats.load(r)?;
        drishti_noc::faults::load_fault_cursor(&mut self.faults, r, "dram fault schedule")
    }
}

/// Discrete-event wakeup proxy for one DRAM channel.
///
/// Produced by [`Dram::channel_components`]; wakes exactly at injected
/// channel-outage window edges and performs no work, so scheduling or
/// skipping these wakeups cannot change simulation results.
#[derive(Debug, Clone)]
pub struct DramChannelWakeup {
    channel: u32,
    faults: Option<FaultSchedule>,
}

impl Component for DramChannelWakeup {
    fn component_id(&self) -> ComponentId {
        ComponentId::DramChannel(self.channel)
    }

    fn next_wakeup(&self, now: u64) -> Option<u64> {
        self.faults
            .as_ref()
            .and_then(|f| f.dram_outage_next_transition(self.channel as usize, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_cores_scales_channels() {
        assert_eq!(DramConfig::for_cores(4).channels, 1);
        assert_eq!(DramConfig::for_cores(16).channels, 4);
        assert_eq!(DramConfig::for_cores(32).channels, 8);
        assert_eq!(DramConfig::for_cores(1).channels, 1);
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut d = Dram::new(DramConfig::default());
        let first = d.read(0, 0); // cold activate
        let hit = d.read(1, 10_000); // same row
        let miss = d.read(1_000_000, 20_000); // far row: may be same bank or not
        assert!(hit < first, "row hit {hit} should beat activation {first}");
        assert!(hit >= d.config().t_cas);
        assert!(miss >= hit);
    }

    #[test]
    fn conflicting_reads_queue() {
        let mut d = Dram::new(DramConfig::default());
        let a = d.read(0, 0);
        let b = d.read(0, 0); // same bank, same instant
        assert!(b >= a, "second read must not be faster: {a} vs {b}");
    }

    #[test]
    fn write_drain_bursts_delay_reads() {
        let mut d1 = Dram::new(DramConfig::default());
        let clean = d1.read(0, 0);
        // Below the watermark, posted writes cost reads nothing.
        let mut d2 = Dram::new(DramConfig::default());
        for i in 0..8u64 {
            d2.write(i * 7, 0);
        }
        assert_eq!(d2.read(0, 0), clean, "buffered writes are free");
        // Past the watermark, the drain burst back-pressures reads.
        // (Rows that are multiples of the channel count all map to
        // channel 0, so one queue actually reaches its watermark.)
        let mut d3 = Dram::new(DramConfig::default());
        for i in 0..56u64 {
            d3.write(i * 4 * 64, 0);
        }
        let delayed = d3.read(0, 0);
        assert!(
            delayed > clean,
            "drain burst should delay reads: {delayed} vs {clean}"
        );
    }

    #[test]
    fn more_channels_spread_traffic() {
        let run = |channels: usize| -> u64 {
            let mut d = Dram::new(DramConfig::with_channels(channels));
            let mut total = 0;
            for i in 0..256u64 {
                total += d.read(i * 64, 0); // distinct rows, all at cycle 0
            }
            total
        };
        assert!(
            run(8) < run(2),
            "8-channel DRAM should be faster under load"
        );
    }

    #[test]
    fn stats_count_reads_writes_energy() {
        let mut d = Dram::new(DramConfig::default());
        d.read(0, 0);
        d.write(64, 0);
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert!(s.energy_pj > 0);
        assert!(s.mean_read_latency() > 0.0);
    }

    #[test]
    fn noop_faults_are_bit_identical_to_healthy_dram() {
        let mut plain = Dram::new(DramConfig::default());
        let mut faulty = Dram::with_faults(DramConfig::default(), &FaultConfig::none());
        for i in 0..500u64 {
            assert_eq!(plain.read(i * 37, i * 3), faulty.read(i * 37, i * 3));
            plain.write(i * 11, i * 3);
            faulty.write(i * 11, i * 3);
        }
        assert_eq!(plain.stats(), faulty.stats());
    }

    #[test]
    fn channel_outage_resteers_to_survivors() {
        use drishti_noc::faults::OutageWindow;
        let cfg = DramConfig::with_channels(4);
        // Channel 0 is down for cycles 0..10_000.
        let faults = FaultConfig {
            seed: 1,
            dram_outages: vec![OutageWindow {
                channel: 0,
                start: 0,
                len: 10_000,
            }],
            ..FaultConfig::none()
        };
        let mut d = Dram::with_faults(cfg, &faults);
        // Rows that are multiples of 4 map to channel 0.
        let during = d.read(0, 100);
        assert_eq!(d.stats().resteered, 1, "channel-0 read must re-steer");
        assert!(
            d.stats().fault_delay_cycles > 0,
            "degraded bandwidth must be charged"
        );
        // After the outage the same traffic goes back to its home channel.
        let after = d.read(64 * 4 * 50, 20_000); // another channel-0 row, fresh bank state
        assert_eq!(d.stats().resteered, 1, "no re-steer after recovery");
        // Both complete — outage degrades, never loses, requests.
        assert!(during > 0 && after > 0);
    }

    #[test]
    fn all_channels_down_stalls_until_recovery() {
        use drishti_noc::faults::OutageWindow;
        let cfg = DramConfig::with_channels(2);
        let faults = FaultConfig {
            seed: 1,
            dram_outages: vec![
                OutageWindow {
                    channel: 0,
                    start: 0,
                    len: 1_000,
                },
                OutageWindow {
                    channel: 1,
                    start: 0,
                    len: 1_000,
                },
            ],
            ..FaultConfig::none()
        };
        let mut d = Dram::with_faults(cfg, &faults);
        let mut healthy = Dram::new(cfg);
        let stalled = d.read(0, 100);
        let clean = healthy.read(0, 100);
        assert!(
            stalled >= clean + 900,
            "request at cycle 100 must wait out the outage ending at 1000: {stalled} vs {clean}"
        );
        assert_eq!(d.stats().resteered, 0, "nowhere to re-steer to");
    }

    #[test]
    fn dram_jitter_is_deterministic_and_bounded() {
        let faults = FaultConfig {
            seed: 77,
            jitter: 8,
            ..FaultConfig::none()
        };
        let run = || {
            let mut d = Dram::with_faults(DramConfig::default(), &faults);
            (0..300u64)
                .map(|i| d.read(i * 97, i * 5))
                .collect::<Vec<u64>>()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same seed must reproduce identical latencies");
        let mut healthy = Dram::new(DramConfig::default());
        let base: Vec<u64> = (0..300u64).map(|i| healthy.read(i * 97, i * 5)).collect();
        for (f, h) in a.iter().zip(&base) {
            assert!(*f >= *h && *f <= *h + 8, "jitter out of bounds: {f} vs {h}");
        }
    }

    #[test]
    fn channel_snapshots_conserve_traffic() {
        let mut d = Dram::new(DramConfig::with_channels(4));
        for i in 0..200u64 {
            d.read(i * 64, i);
            d.write(i * 64 + 7, i);
        }
        let snaps = d.channel_snapshots();
        assert_eq!(snaps.len(), 4);
        assert_eq!(snaps.iter().map(|s| s.reads).sum::<u64>(), d.stats().reads);
        // Posted writes either drained on some channel or still sit in a
        // queue — nothing is lost in between.
        let drained: u64 = snaps.iter().map(|s| s.writes).sum();
        let queued: u64 = snaps.iter().map(|s| s.queue_depth).sum();
        assert_eq!(drained + queued, d.stats().writes);
    }

    #[test]
    fn channel_components_wake_only_for_outage_windows() {
        use drishti_noc::faults::OutageWindow;
        let healthy = Dram::new(DramConfig::with_channels(4));
        for c in healthy.channel_components() {
            assert_eq!(c.next_wakeup(0), None, "healthy channel scheduled a wakeup");
        }
        let faults = FaultConfig {
            seed: 1,
            dram_outages: vec![OutageWindow {
                channel: 2,
                start: 500,
                len: 100,
            }],
            ..FaultConfig::none()
        };
        let d = Dram::with_faults(DramConfig::with_channels(4), &faults);
        let comps = d.channel_components();
        assert_eq!(comps.len(), 4);
        assert_eq!(comps[2].component_id(), ComponentId::DramChannel(2));
        assert_eq!(comps[2].next_wakeup(0), Some(500), "window start edge");
        assert_eq!(comps[2].next_wakeup(500), Some(600), "window end edge");
        assert_eq!(comps[2].next_wakeup(600), None, "no events after recovery");
        assert_eq!(comps[0].next_wakeup(0), None, "other channels unaffected");
    }

    #[test]
    fn sequential_lines_share_rows() {
        let mut d = Dram::new(DramConfig::default());
        d.read(0, 0);
        for i in 1..16u64 {
            d.read(i, 100_000 * i);
        }
        assert!(
            d.stats().row_hits >= 14,
            "sequential lines should be row hits"
        );
    }
}

//! The sliced, NUCA last-level cache container.
//!
//! One slice per core (paper Table 4: 2 MB, 16-way, 20-cycle slices,
//! non-inclusive, address-to-slice mapping per the complex hash). The
//! container owns the line arrays and per-set instrumentation; all
//! replacement intelligence lives behind [`LlcPolicy`].
//!
//! Protocol per request (driven by the simulator):
//!
//! 1. [`SlicedLlc::lookup`] — returns hit/miss (plus any policy-charged
//!    extra cycles). On write-back hits the line is marked dirty.
//! 2. On a miss, the caller services the request from DRAM and then calls
//!    [`SlicedLlc::fill`], which picks a victim via the policy (or bypasses)
//!    and returns an evicted dirty line for the caller to write back.
//!
//! Per-set access/miss counters are always maintained: they feed the
//! paper's Fig 5 (MPKA per LLC set) and the Table 1 oracle-selection study.

use crate::access::{Access, AccessKind};
use crate::bits::{bit_assign, bit_get, bit_set, range_mask};
use crate::policy::{Decision, LlcLineState, LlcLoc, LlcPolicy, SetProbe};
use crate::shadow::{FillOutcome, LlcObserver};
use crate::{CoreId, LineAddr};
use drishti_noc::event::{Component, ComponentId};
use drishti_noc::slicehash::{SliceHasher, XorFoldHash};

/// Geometry of the sliced LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcGeometry {
    /// Number of slices (= cores in the baseline).
    pub slices: usize,
    /// Sets per slice (2 MB 16-way slice ⇒ 2048).
    pub sets_per_slice: usize,
    /// Associativity.
    pub ways: usize,
    /// Slice access latency, cycles (paper: 20).
    pub latency: u64,
}

impl LlcGeometry {
    /// The paper's baseline: one 2 MB, 16-way, 20-cycle slice per core.
    pub fn per_core_2mb(cores: usize) -> Self {
        LlcGeometry {
            slices: cores,
            sets_per_slice: 2048,
            ways: 16,
            latency: 20,
        }
    }

    /// A slice of `mib` MiB per core (16-way), for the Fig 20 LLC-size sweep
    /// (1, 2, 4 MB per core).
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is not a power of two.
    pub fn per_core_mib(cores: usize, mib: usize) -> Self {
        let sets = mib * 1024 * 1024 / 64 / 16;
        assert!(
            sets.is_power_of_two() && sets > 0,
            "invalid slice size {mib} MiB"
        );
        LlcGeometry {
            slices: cores,
            sets_per_slice: sets,
            ways: 16,
            latency: 20,
        }
    }

    /// Total capacity in bytes across all slices.
    pub fn capacity_bytes(&self) -> usize {
        self.slices * self.sets_per_slice * self.ways * crate::LINE_BYTES as usize
    }

    /// Total lines in one slice.
    pub fn lines_per_slice(&self) -> usize {
        self.sets_per_slice * self.ways
    }
}

/// Counters the LLC keeps for every request category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlcStats {
    /// Demand (load/store) lookups.
    pub demand_accesses: u64,
    /// Demand lookup misses.
    pub demand_misses: u64,
    /// Prefetch lookups.
    pub prefetch_accesses: u64,
    /// Prefetch lookup misses.
    pub prefetch_misses: u64,
    /// Write-back lookups arriving from L2.
    pub writeback_accesses: u64,
    /// Write-back lookups that missed (the line allocates without a DRAM
    /// fetch, but the miss still triggers a fill).
    pub writeback_misses: u64,
    /// Dirty victims the LLC pushed to DRAM.
    pub dram_writebacks: u64,
    /// Fills that the policy chose to bypass.
    pub bypasses: u64,
    /// Fills installed.
    pub fills: u64,
}

drishti_noc::impl_persist_fields!(LlcStats {
    demand_accesses,
    demand_misses,
    prefetch_accesses,
    prefetch_misses,
    writeback_accesses,
    writeback_misses,
    dram_writebacks,
    bypasses,
    fills,
});

impl LlcStats {
    /// Total lookups across all request categories.
    pub fn total_accesses(&self) -> u64 {
        self.demand_accesses + self.prefetch_accesses + self.writeback_accesses
    }

    /// Total lookup misses across all request categories.
    pub fn total_misses(&self) -> u64 {
        self.demand_misses + self.prefetch_misses + self.writeback_misses
    }
}

/// Per-slice traffic and eviction-reason counters (telemetry).
///
/// Unlike [`SetCounters`] these fold the whole slice together but split
/// *why* lines left: clean eviction, dirty eviction (DRAM write-back), or
/// a bypass that never installed the line at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceCounters {
    /// Lookups (any kind) that hit in this slice.
    pub hits: u64,
    /// Lookups (any kind) that missed in this slice.
    pub misses: u64,
    /// Fills installed into this slice.
    pub fills: u64,
    /// Victims evicted clean.
    pub evictions_clean: u64,
    /// Victims evicted dirty (each one is a DRAM write-back).
    pub evictions_dirty: u64,
    /// Fills the policy chose to bypass.
    pub bypasses: u64,
}

drishti_noc::impl_persist_fields!(SliceCounters {
    hits,
    misses,
    fills,
    evictions_clean,
    evictions_dirty,
    bypasses,
});

/// Per-set instrumentation record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetCounters {
    /// Lookups that indexed this set.
    pub accesses: u64,
    /// Lookups that missed in this set.
    pub misses: u64,
}

drishti_noc::impl_persist_fields!(SetCounters { accesses, misses });

impl SetCounters {
    /// Misses per kilo-access for this set (the paper's MPKA metric, Fig 5).
    pub fn mpka(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / self.accesses as f64
        }
    }
}

/// Result of an LLC lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// Whether the line was resident.
    pub hit: bool,
    /// The slice the address maps to (for NUCA distance).
    pub slice: usize,
    /// Extra critical-path cycles charged by the policy.
    pub extra_latency: u64,
}

/// Result of an LLC fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillResult {
    /// A dirty victim that must be written to DRAM, if any.
    pub writeback: Option<LineAddr>,
    /// Extra critical-path cycles charged by the policy (e.g. a remote
    /// predictor lookup on the fill path).
    pub extra_latency: u64,
    /// Whether the policy chose not to cache the line.
    pub bypassed: bool,
}

/// The sliced LLC.
///
/// Line metadata is held struct-of-arrays (DESIGN.md §15): one packed tag
/// plane for the probe scan, `u64` bitsets for valid/dirty, and separate
/// core/signature planes that are only touched on hits, victims and
/// fills. The global line index is `slice * lines_per_slice + set *
/// ways + way`. Policies, observers and checkpoints still see
/// [`LlcLineState`]: the container materialises per-set views (and, for
/// `Persist`, the historical `Vec<Vec<LlcLineState>>` byte stream) at the
/// boundary.
pub struct SlicedLlc {
    geom: LlcGeometry,
    /// Cached `geom.lines_per_slice()`.
    lps: usize,
    hasher: Box<dyn SliceHasher>,
    policy: Box<dyn LlcPolicy>,
    /// Resident tag per line (stale after eviction; gated by `valid`).
    tags: Vec<LineAddr>,
    /// Valid bits, packed 64 lines per word.
    valid: Vec<u64>,
    /// Dirty bits, packed 64 lines per word.
    dirty: Vec<u64>,
    /// Installing core per line (read on hit/victim/fill only).
    cores: Vec<CoreId>,
    /// Installing PC signature per line (read on hit/victim/fill only).
    sigs: Vec<u64>,
    /// Reusable per-set [`LlcLineState`] view handed to the policy.
    view: Vec<LlcLineState>,
    set_counters: Vec<Vec<SetCounters>>,
    slice_counters: Vec<SliceCounters>,
    stats: LlcStats,
    observer: Option<Box<dyn LlcObserver>>,
    /// When set, the `n`-th installed fill (1-based) double-counts in its
    /// slice's `fills` counter — a deliberate, hidden corruption used to
    /// prove the conformance harness catches real violations.
    miscount_fill: Option<u64>,
}

impl std::fmt::Debug for SlicedLlc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlicedLlc")
            .field("geom", &self.geom)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl SlicedLlc {
    /// Build an LLC with the default complex slice hash.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has zero slices/sets/ways or a non-power-of-two
    /// set count.
    pub fn new(geom: LlcGeometry, policy: Box<dyn LlcPolicy>) -> Self {
        SlicedLlc::with_hasher(geom, policy, Box::new(XorFoldHash::new()))
    }

    /// Build an LLC with an explicit slice hash (tests use [`ModuloHash`] to
    /// create degenerate mappings).
    ///
    /// [`ModuloHash`]: drishti_noc::slicehash::ModuloHash
    pub fn with_hasher(
        geom: LlcGeometry,
        policy: Box<dyn LlcPolicy>,
        hasher: Box<dyn SliceHasher>,
    ) -> Self {
        assert!(geom.slices > 0 && geom.ways > 0, "degenerate geometry");
        assert!(
            geom.sets_per_slice.is_power_of_two(),
            "sets per slice must be a power of two"
        );
        let lps = geom.lines_per_slice();
        let total = geom.slices * lps;
        let words = total.div_ceil(64);
        SlicedLlc {
            lps,
            tags: vec![0; total],
            valid: vec![0; words],
            dirty: vec![0; words],
            cores: vec![0; total],
            sigs: vec![0; total],
            view: Vec::with_capacity(geom.ways),
            set_counters: vec![vec![SetCounters::default(); geom.sets_per_slice]; geom.slices],
            slice_counters: vec![SliceCounters::default(); geom.slices],
            geom,
            hasher,
            policy,
            stats: LlcStats::default(),
            observer: None,
            miscount_fill: None,
        }
    }

    /// Global line index of `(slice, set, way 0)`.
    #[inline]
    fn set_base(&self, slice: usize, set: usize) -> usize {
        slice * self.lps + set * self.geom.ways
    }

    /// The [`LlcLineState`] view of the line at global index `g`.
    #[inline]
    fn line_state_at(&self, g: usize) -> LlcLineState {
        LlcLineState {
            line: self.tags[g],
            valid: bit_get(&self.valid, g),
            dirty: bit_get(&self.dirty, g),
            core: self.cores[g],
            signature: self.sigs[g],
        }
    }

    /// Rebuild the reusable per-set view for the set at `base`. The valid
    /// and dirty masks are extracted once per set, not once per way.
    fn refresh_view(&mut self, base: usize) {
        let ways = self.geom.ways;
        self.view.clear();
        if ways <= 64 {
            let vm = range_mask(&self.valid, base, ways);
            let dm = range_mask(&self.dirty, base, ways);
            for w in 0..ways {
                self.view.push(LlcLineState {
                    line: self.tags[base + w],
                    valid: vm >> w & 1 != 0,
                    dirty: dm >> w & 1 != 0,
                    core: self.cores[base + w],
                    signature: self.sigs[base + w],
                });
            }
        } else {
            for w in 0..ways {
                let s = self.line_state_at(base + w);
                self.view.push(s);
            }
        }
    }

    /// Way holding `line` in the set at `base`, if resident: a branch-light
    /// scan of the valid mask and packed tag plane.
    #[inline]
    fn probe_set(&self, base: usize, line: LineAddr) -> Option<usize> {
        let ways = self.geom.ways;
        if ways <= 64 {
            let mut m = range_mask(&self.valid, base, ways);
            while m != 0 {
                let w = m.trailing_zeros() as usize;
                if self.tags[base + w] == line {
                    return Some(w);
                }
                m &= m - 1;
            }
            None
        } else {
            (0..ways).find(|&w| bit_get(&self.valid, base + w) && self.tags[base + w] == line)
        }
    }

    /// First invalid way of the set at `base`, if any.
    #[inline]
    fn first_invalid(&self, base: usize) -> Option<usize> {
        let ways = self.geom.ways;
        if ways <= 64 {
            let full = if ways == 64 {
                u64::MAX
            } else {
                (1u64 << ways) - 1
            };
            let m = !range_mask(&self.valid, base, ways) & full;
            if m == 0 {
                None
            } else {
                Some(m.trailing_zeros() as usize)
            }
        } else {
            (0..ways).find(|&w| !bit_get(&self.valid, base + w))
        }
    }

    /// Install a shadow observer. Observation-only: results are
    /// byte-identical with or without one.
    pub fn set_observer(&mut self, obs: Box<dyn LlcObserver>) {
        self.observer = Some(obs);
    }

    /// Remove and return the installed observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<dyn LlcObserver>> {
        self.observer.take()
    }

    /// Deliberately corrupt the slice `fills` counter at the `nth` installed
    /// fill (1-based). Exists solely so the conformance harness can prove it
    /// detects, shrinks and replays a real contract violation; never set in
    /// normal operation.
    #[doc(hidden)]
    pub fn inject_fill_miscount(&mut self, nth: u64) {
        self.miscount_fill = Some(nth);
    }

    /// The LLC geometry.
    pub fn geometry(&self) -> &LlcGeometry {
        &self.geom
    }

    /// Event-scheduler wakeup proxies, one per slice.
    ///
    /// An LLC slice holds no clocked state at all — tags, recency and
    /// policy metadata change only when a request arrives — so slices are
    /// purely demand-driven under the event engine and never schedule a
    /// wakeup (DESIGN.md §16).
    pub fn slice_components(&self) -> Vec<SliceWakeup> {
        (0..self.geom.slices)
            .map(|slice| SliceWakeup {
                slice: slice as u32,
            })
            .collect()
    }

    /// The governing policy (shared reference).
    pub fn policy(&self) -> &dyn LlcPolicy {
        self.policy.as_ref()
    }

    /// The governing policy (mutable, for instrumentation toggles).
    pub fn policy_mut(&mut self) -> &mut dyn LlcPolicy {
        self.policy.as_mut()
    }

    /// Slice index for a line address.
    pub fn slice_of(&self, line: LineAddr) -> usize {
        self.hasher.slice_of(line, self.geom.slices)
    }

    /// Set index (within its slice) for a line address.
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line as usize) & (self.geom.sets_per_slice - 1)
    }

    /// Probe the LLC for `acc`. Hits update recency (via the policy) and
    /// dirty state; misses notify the policy so samplers observe them.
    pub fn lookup(&mut self, acc: &Access, cycle: u64) -> LookupResult {
        let slice = self.slice_of(acc.line);
        let set = self.set_of(acc.line);
        let loc = LlcLoc { slice, set };
        self.set_counters[slice][set].accesses += 1;
        match acc.kind {
            AccessKind::Load | AccessKind::Store => self.stats.demand_accesses += 1,
            AccessKind::Prefetch => self.stats.prefetch_accesses += 1,
            AccessKind::Writeback => self.stats.writeback_accesses += 1,
        }

        let base = self.set_base(slice, set);
        let way = self.probe_set(base, acc.line);

        if let Some(way) = way {
            self.slice_counters[slice].hits += 1;
            if matches!(acc.kind, AccessKind::Store | AccessKind::Writeback) {
                bit_set(&mut self.dirty, base + way);
            }
            self.refresh_view(base);
            let extra = self.policy.on_hit(loc, way, &self.view, acc, cycle);
            if let Some(obs) = &mut self.observer {
                obs.on_lookup(acc, loc, Some(way), &self.slice_counters[slice]);
            }
            LookupResult {
                hit: true,
                slice,
                extra_latency: extra,
            }
        } else {
            self.set_counters[slice][set].misses += 1;
            self.slice_counters[slice].misses += 1;
            match acc.kind {
                AccessKind::Load | AccessKind::Store => self.stats.demand_misses += 1,
                AccessKind::Prefetch => self.stats.prefetch_misses += 1,
                AccessKind::Writeback => self.stats.writeback_misses += 1,
            }
            self.policy.on_miss(loc, acc, cycle);
            if let Some(obs) = &mut self.observer {
                obs.on_lookup(acc, loc, None, &self.slice_counters[slice]);
            }
            LookupResult {
                hit: false,
                slice,
                extra_latency: 0,
            }
        }
    }

    /// Snapshot the policy's per-way metadata for `loc`, but only when an
    /// observer is installed (probing is free when shadowing is off).
    fn probe_for_observer(&self, loc: LlcLoc) -> Option<SetProbe> {
        if self.observer.is_some() {
            self.policy.probe().map(|p| p.probe_set(loc))
        } else {
            None
        }
    }

    /// Install the line for `acc` after its miss was serviced. The policy
    /// picks the victim (or bypasses); a dirty victim is returned for DRAM
    /// write-back.
    pub fn fill(&mut self, acc: &Access, cycle: u64) -> FillResult {
        let slice = self.slice_of(acc.line);
        let set = self.set_of(acc.line);
        let loc = LlcLoc { slice, set };
        let base = self.set_base(slice, set);

        // Already resident (e.g. two cores racing on one line): refresh dirty.
        if let Some(way) = self.probe_set(base, acc.line) {
            if matches!(acc.kind, AccessKind::Store | AccessKind::Writeback) {
                bit_set(&mut self.dirty, base + way);
            }
            let probe = self.probe_for_observer(loc);
            if let Some(obs) = &mut self.observer {
                obs.on_fill(
                    acc,
                    loc,
                    FillOutcome::AlreadyResident { way },
                    &self.slice_counters[slice],
                    probe.as_ref(),
                );
            }
            return FillResult {
                writeback: None,
                extra_latency: 0,
                bypassed: false,
            };
        }

        // Prefer an invalid way; otherwise ask the policy. Track whether
        // the victim scan already materialised the set view, so the
        // post-install state for `on_fill` is a one-slot patch instead of
        // a second full refresh.
        let mut view_fresh = false;
        let (way, evicted) = match self.first_invalid(base) {
            Some(w) => (w, None),
            None => {
                view_fresh = true;
                self.refresh_view(base);
                match self.policy.choose_victim(loc, &self.view, acc, cycle) {
                    Decision::Evict(w) => {
                        assert!(w < self.geom.ways, "policy returned way {w} out of range");
                        (w, Some(self.line_state_at(base + w)))
                    }
                    Decision::Bypass => {
                        self.stats.bypasses += 1;
                        self.slice_counters[slice].bypasses += 1;
                        let probe = self.probe_for_observer(loc);
                        if let Some(obs) = &mut self.observer {
                            obs.on_fill(
                                acc,
                                loc,
                                FillOutcome::Bypassed,
                                &self.slice_counters[slice],
                                probe.as_ref(),
                            );
                        }
                        // The policy still sees the fill event as a bypass so
                        // it can train; we model that as no state change.
                        return FillResult {
                            writeback: None,
                            extra_latency: 0,
                            bypassed: true,
                        };
                    }
                }
            }
        };

        let writeback = evicted.and_then(|v| if v.dirty { Some(v.line) } else { None });
        if writeback.is_some() {
            self.stats.dram_writebacks += 1;
        }
        if evicted.is_some() {
            if writeback.is_some() {
                self.slice_counters[slice].evictions_dirty += 1;
            } else {
                self.slice_counters[slice].evictions_clean += 1;
            }
        }

        let g = base + way;
        self.tags[g] = acc.line;
        bit_set(&mut self.valid, g);
        bit_assign(
            &mut self.dirty,
            g,
            matches!(acc.kind, AccessKind::Store | AccessKind::Writeback),
        );
        self.cores[g] = acc.core;
        self.sigs[g] = acc.signature();
        self.stats.fills += 1;
        self.slice_counters[slice].fills += 1;
        if self.miscount_fill == Some(self.stats.fills) {
            // Deliberate corruption (see `inject_fill_miscount`).
            self.slice_counters[slice].fills += 1;
        }

        if view_fresh {
            self.view[way] = self.line_state_at(g);
        } else {
            self.refresh_view(base);
        }
        let extra = self
            .policy
            .on_fill(loc, way, &self.view, acc, evicted.as_ref(), cycle);
        let probe = self.probe_for_observer(loc);
        if let Some(obs) = &mut self.observer {
            obs.on_fill(
                acc,
                loc,
                FillOutcome::Installed {
                    way,
                    evicted: evicted.as_ref(),
                },
                &self.slice_counters[slice],
                probe.as_ref(),
            );
        }
        FillResult {
            writeback,
            extra_latency: extra,
            bypassed: false,
        }
    }

    /// Whether `line` is currently resident (no state change).
    pub fn peek(&self, line: LineAddr) -> bool {
        let slice = self.slice_of(line);
        let set = self.set_of(line);
        self.probe_set(self.set_base(slice, set), line).is_some()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    /// Per-set counters of one slice (Fig 5 instrumentation).
    pub fn set_counters(&self, slice: usize) -> &[SetCounters] {
        &self.set_counters[slice]
    }

    /// Per-slice traffic and eviction counters (telemetry), indexed by slice.
    pub fn slice_counters(&self) -> &[SliceCounters] {
        &self.slice_counters
    }

    /// Serialize the LLC's mutable state: line arrays, per-set and per-slice
    /// counters, aggregate stats, and the policy's predictor state. The
    /// geometry, slice hasher, observer, and injected-corruption knobs are
    /// configuration — the loader reconstructs those before restoring.
    ///
    /// The SoA planes are materialised back into the historical
    /// `Vec<Vec<LlcLineState>>` encoding, so `drishti-ckpt/v1` snapshots
    /// are byte-identical to the per-line layout's (the §15 `Persist`
    /// compatibility rule; pinned by `tests/checkpoint.rs`).
    pub fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        use drishti_noc::snap::Persist;
        let lines: Vec<Vec<LlcLineState>> = (0..self.geom.slices)
            .map(|s| {
                let start = s * self.lps;
                (start..start + self.lps)
                    .map(|g| self.line_state_at(g))
                    .collect()
            })
            .collect();
        lines.save(w);
        self.set_counters.save(w);
        self.slice_counters.save(w);
        self.stats.save(w);
        self.policy.save_state(w);
    }

    /// Restore state written by [`SlicedLlc::save_state`] into an LLC built
    /// with the same geometry and policy configuration.
    pub fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        use drishti_noc::snap::{Persist, SnapError};
        let mut lines: Vec<Vec<LlcLineState>> = Vec::new();
        lines.load(r)?;
        if lines.len() != self.geom.slices
            || lines
                .iter()
                .any(|s| s.len() != self.geom.sets_per_slice * self.geom.ways)
        {
            return Err(SnapError::Invalid {
                what: "llc lines",
                detail: format!(
                    "snapshot line array does not match geometry \
                     ({} slices x {} lines expected)",
                    self.geom.slices,
                    self.geom.sets_per_slice * self.geom.ways
                ),
            });
        }
        for (s, slice_lines) in lines.iter().enumerate() {
            for (i, l) in slice_lines.iter().enumerate() {
                let g = s * self.lps + i;
                self.tags[g] = l.line;
                bit_assign(&mut self.valid, g, l.valid);
                bit_assign(&mut self.dirty, g, l.dirty);
                self.cores[g] = l.core;
                self.sigs[g] = l.signature;
            }
        }
        self.set_counters.load(r)?;
        if self.set_counters.len() != self.geom.slices
            || self
                .set_counters
                .iter()
                .any(|s| s.len() != self.geom.sets_per_slice)
        {
            return Err(SnapError::Invalid {
                what: "llc set counters",
                detail: format!(
                    "snapshot set counters do not match geometry \
                     ({} slices x {} sets expected)",
                    self.geom.slices, self.geom.sets_per_slice
                ),
            });
        }
        self.slice_counters.load(r)?;
        if self.slice_counters.len() != self.geom.slices {
            return Err(SnapError::Invalid {
                what: "llc slice counters",
                detail: format!("{} slices expected", self.geom.slices),
            });
        }
        self.stats.load(r)?;
        self.policy.load_state(r)
    }

    /// Number of valid lines currently resident in one slice.
    pub fn slice_occupancy(&self, slice: usize) -> usize {
        let start = slice * self.lps;
        (start..start + self.lps)
            .filter(|&g| bit_get(&self.valid, g))
            .count()
    }

    /// Reset aggregate and per-set statistics (contents retained) — used at
    /// the end of warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = LlcStats::default();
        for slice in &mut self.set_counters {
            slice.fill(SetCounters::default());
        }
        self.slice_counters.fill(SliceCounters::default());
    }

    /// Number of valid lines resident across all slices (tests).
    pub fn resident_lines(&self) -> usize {
        self.valid.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Discrete-event wakeup proxy for one LLC slice.
///
/// Produced by [`SlicedLlc::slice_components`]; slices keep no clocked
/// state, so this component exists only to give each slice a stable
/// [`ComponentId`] in the scheduler's tie-break order and never requests
/// a wakeup.
#[derive(Debug, Clone, Copy)]
pub struct SliceWakeup {
    slice: u32,
}

impl Component for SliceWakeup {
    fn component_id(&self) -> ComponentId {
        ComponentId::Slice(self.slice)
    }

    fn next_wakeup(&self, _now: u64) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Decision;
    use drishti_noc::slicehash::ModuloHash;

    /// Tiny always-evict-way-0 policy for container tests.
    #[derive(Debug, Default)]
    struct EvictZero {
        hits: u64,
        misses: u64,
        fills: u64,
    }

    impl LlcPolicy for EvictZero {
        fn name(&self) -> String {
            "evict-zero".into()
        }
        fn on_hit(&mut self, _: LlcLoc, _: usize, _: &[LlcLineState], _: &Access, _: u64) -> u64 {
            self.hits += 1;
            0
        }
        fn on_miss(&mut self, _: LlcLoc, _: &Access, _: u64) {
            self.misses += 1;
        }
        fn choose_victim(&mut self, _: LlcLoc, _: &[LlcLineState], _: &Access, _: u64) -> Decision {
            Decision::Evict(0)
        }
        fn on_fill(
            &mut self,
            _: LlcLoc,
            _: usize,
            _: &[LlcLineState],
            _: &Access,
            _: Option<&LlcLineState>,
            _: u64,
        ) -> u64 {
            self.fills += 1;
            0
        }
    }

    fn small_geom() -> LlcGeometry {
        LlcGeometry {
            slices: 4,
            sets_per_slice: 8,
            ways: 2,
            latency: 20,
        }
    }

    #[test]
    fn slice_components_never_request_wakeups() {
        let llc = SlicedLlc::with_hasher(
            small_geom(),
            Box::new(EvictZero::default()),
            Box::new(ModuloHash),
        );
        let comps = llc.slice_components();
        assert_eq!(comps.len(), 4);
        for (i, c) in comps.iter().enumerate() {
            assert_eq!(c.component_id(), ComponentId::Slice(i as u32));
            assert_eq!(c.next_wakeup(123), None);
        }
    }

    #[test]
    fn per_core_2mb_geometry() {
        let g = LlcGeometry::per_core_2mb(32);
        assert_eq!(g.capacity_bytes(), 32 * 2 * 1024 * 1024);
        assert_eq!(g.lines_per_slice(), 32 * 1024);
    }

    #[test]
    fn size_sweep_geometries() {
        assert_eq!(LlcGeometry::per_core_mib(16, 1).capacity_bytes(), 16 << 20);
        assert_eq!(LlcGeometry::per_core_mib(16, 4).capacity_bytes(), 64 << 20);
    }

    #[test]
    fn miss_fill_hit_roundtrip() {
        let mut llc = SlicedLlc::new(small_geom(), Box::new(EvictZero::default()));
        let acc = Access::load(0, 0x400, 0x1234);
        assert!(!llc.lookup(&acc, 0).hit);
        llc.fill(&acc, 0);
        assert!(llc.lookup(&acc, 1).hit);
        assert_eq!(llc.stats().demand_accesses, 2);
        assert_eq!(llc.stats().demand_misses, 1);
    }

    #[test]
    fn same_line_same_slice_always() {
        let llc = SlicedLlc::new(small_geom(), Box::new(EvictZero::default()));
        for line in 0..1000u64 {
            assert_eq!(llc.slice_of(line), llc.slice_of(line));
            assert!(llc.slice_of(line) < 4);
        }
    }

    #[test]
    fn dirty_victim_produces_dram_writeback() {
        let g = LlcGeometry {
            slices: 1,
            sets_per_slice: 1,
            ways: 1,
            latency: 20,
        };
        let mut llc = SlicedLlc::with_hasher(
            g,
            Box::new(EvictZero::default()),
            Box::new(ModuloHash::new()),
        );
        let st = Access::store(0, 0x1, 100);
        llc.lookup(&st, 0);
        llc.fill(&st, 0);
        let ld = Access::load(0, 0x2, 200);
        llc.lookup(&ld, 1);
        let fr = llc.fill(&ld, 1);
        assert_eq!(fr.writeback, Some(100));
        assert_eq!(llc.stats().dram_writebacks, 1);
    }

    #[test]
    fn writeback_hit_marks_dirty() {
        let g = LlcGeometry {
            slices: 1,
            sets_per_slice: 1,
            ways: 2,
            latency: 20,
        };
        let mut llc = SlicedLlc::with_hasher(
            g,
            Box::new(EvictZero::default()),
            Box::new(ModuloHash::new()),
        );
        let ld = Access::load(0, 0x1, 100);
        llc.lookup(&ld, 0);
        llc.fill(&ld, 0);
        let wb = Access::writeback(0, 100);
        assert!(llc.lookup(&wb, 1).hit);
        // Evict it: way 0 holds line 100 and is now dirty.
        let ld2 = Access::load(0, 0x2, 200);
        llc.lookup(&ld2, 2);
        llc.fill(&ld2, 2);
        let ld3 = Access::load(0, 0x3, 300);
        llc.lookup(&ld3, 3);
        let fr = llc.fill(&ld3, 3);
        assert_eq!(fr.writeback, Some(100));
    }

    #[test]
    fn set_counters_track_mpka() {
        let mut llc = SlicedLlc::new(small_geom(), Box::new(EvictZero::default()));
        let acc = Access::load(0, 0x1, 0x40);
        let slice = llc.slice_of(0x40);
        let set = llc.set_of(0x40);
        llc.lookup(&acc, 0); // miss
        llc.fill(&acc, 0);
        llc.lookup(&acc, 1); // hit
        let c = llc.set_counters(slice)[set];
        assert_eq!(c.accesses, 2);
        assert_eq!(c.misses, 1);
        assert!((c.mpka() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn resident_never_exceeds_capacity() {
        let mut llc = SlicedLlc::new(small_geom(), Box::new(EvictZero::default()));
        for a in 0..2000u64 {
            let acc = Access::load(0, 0x1, a % 257);
            if !llc.lookup(&acc, a).hit {
                llc.fill(&acc, a);
            }
        }
        assert!(llc.resident_lines() <= 4 * 8 * 2);
    }

    #[test]
    fn refill_of_resident_line_is_idempotent() {
        let mut llc = SlicedLlc::new(small_geom(), Box::new(EvictZero::default()));
        let acc = Access::load(0, 0x1, 42);
        llc.lookup(&acc, 0);
        llc.fill(&acc, 0);
        llc.fill(&acc, 1);
        assert_eq!(llc.resident_lines(), 1);
    }

    #[test]
    fn reset_stats_clears_counters_but_keeps_contents() {
        let mut llc = SlicedLlc::new(small_geom(), Box::new(EvictZero::default()));
        let acc = Access::load(0, 0x1, 7);
        llc.lookup(&acc, 0);
        llc.fill(&acc, 0);
        llc.reset_stats();
        assert_eq!(llc.stats().demand_accesses, 0);
        assert_eq!(
            llc.slice_counters().iter().map(|c| c.misses).sum::<u64>(),
            0
        );
        assert!(llc.peek(7));
    }

    #[test]
    fn writeback_miss_is_counted() {
        let mut llc = SlicedLlc::new(small_geom(), Box::new(EvictZero::default()));
        let wb = Access::writeback(0, 0x99);
        assert!(!llc.lookup(&wb, 0).hit);
        assert_eq!(llc.stats().writeback_accesses, 1);
        assert_eq!(llc.stats().writeback_misses, 1);
        assert_eq!(llc.stats().total_accesses(), 1);
        assert_eq!(llc.stats().total_misses(), 1);
    }

    #[test]
    fn slice_counters_track_hits_misses_and_evictions() {
        let g = LlcGeometry {
            slices: 1,
            sets_per_slice: 1,
            ways: 1,
            latency: 20,
        };
        let mut llc = SlicedLlc::with_hasher(
            g,
            Box::new(EvictZero::default()),
            Box::new(ModuloHash::new()),
        );
        // Miss + fill, hit, then a conflicting store evicts the clean line,
        // and a second conflict evicts the now-dirty line.
        let ld = Access::load(0, 0x1, 1);
        llc.lookup(&ld, 0);
        llc.fill(&ld, 0);
        llc.lookup(&ld, 1);
        let st = Access::store(0, 0x2, 2);
        llc.lookup(&st, 2);
        llc.fill(&st, 2);
        let ld3 = Access::load(0, 0x3, 3);
        llc.lookup(&ld3, 3);
        llc.fill(&ld3, 3);

        let c = llc.slice_counters()[0];
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 3);
        assert_eq!(c.fills, 3);
        assert_eq!(c.evictions_clean, 1);
        assert_eq!(c.evictions_dirty, 1);
        assert_eq!(c.bypasses, 0);
        assert_eq!(c.hits + c.misses, llc.stats().total_accesses());
        assert_eq!(llc.slice_occupancy(0), 1);
    }
}

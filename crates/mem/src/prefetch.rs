//! Hardware prefetcher framework.
//!
//! The paper's baseline attaches a next-line prefetcher at L1D and an
//! IP-stride prefetcher at L2 (Table 4); its Fig 23 sensitivity study swaps
//! in five state-of-the-art prefetchers — SPP+PPF, Bingo, IPCP, Berti and
//! Gaze. This module defines the [`Prefetcher`] trait plus the two baseline
//! prefetchers; the five advanced ones live in submodules ([`spp`],
//! [`bingo`], [`ipcp`], [`berti`], [`gaze`]) as simplified but functional
//! models that preserve each design's *coverage/accuracy character* (see
//! DESIGN.md §1 on substitutions).
//!
//! Prefetch requests carry the *triggering* PC: the paper notes policies
//! like Mockingjay signature prefetches with the load PC that triggered
//! them plus a prefetch bit (§3.3).

pub mod berti;
pub mod bingo;
pub mod gaze;
pub mod ipcp;
pub mod spp;

use crate::LineAddr;

/// Lines per 4 KB page (the natural training granularity for most
/// prefetchers).
pub const PAGE_LINES: u64 = 64;

/// One prefetch the prefetcher wants issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// The line to prefetch.
    pub line: LineAddr,
    /// The demand PC that triggered it.
    pub trigger_pc: u64,
}

/// A hardware prefetcher attached to one cache level of one core.
pub trait Prefetcher: std::fmt::Debug + Send {
    /// Short name for experiment output, e.g. `"ip-stride"`.
    fn name(&self) -> &'static str;

    /// Observe a demand access (after the cache probe) and append any
    /// prefetches to `out`. `hit` is whether the probe hit at this level.
    fn on_access(&mut self, pc: u64, line: LineAddr, hit: bool, out: &mut Vec<PrefetchRequest>);

    /// Feedback: a previously issued prefetch for `line` was used by demand
    /// before eviction (`useful`) or evicted unused (`!useful`). Default:
    /// ignored.
    fn on_feedback(&mut self, line: LineAddr, useful: bool) {
        let _ = (line, useful);
    }

    /// Serialize the prefetcher's training state for a checkpoint. Stateless
    /// prefetchers keep the no-op default; the loader rebuilds the object
    /// from [`PrefetcherKind`] before calling [`Prefetcher::load_state`].
    fn save_state(&self, _w: &mut drishti_noc::snap::StateWriter) {}

    /// Restore state written by [`Prefetcher::save_state`].
    fn load_state(
        &mut self,
        _r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        Ok(())
    }
}

/// The prefetcher configurations the experiments select between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No prefetching at this level.
    None,
    /// Degree-1 next-line (baseline L1D).
    NextLine,
    /// IP-stride with confidence (baseline L2).
    IpStride,
    /// Simplified Signature-Path Prefetcher with perceptron filter.
    SppPpf,
    /// Simplified Bingo spatial footprint prefetcher.
    Bingo,
    /// Simplified Instruction-Pointer-Classifier prefetcher.
    Ipcp,
    /// Simplified Berti local-delta prefetcher.
    Berti,
    /// Simplified Gaze spatial-pattern prefetcher.
    Gaze,
}

impl PrefetcherKind {
    /// Instantiate the prefetcher.
    pub fn build(self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::None => Box::new(NoPrefetcher),
            PrefetcherKind::NextLine => Box::new(NextLine::new()),
            PrefetcherKind::IpStride => Box::new(IpStride::new()),
            PrefetcherKind::SppPpf => Box::new(spp::SppPpf::new()),
            PrefetcherKind::Bingo => Box::new(bingo::Bingo::new()),
            PrefetcherKind::Ipcp => Box::new(ipcp::Ipcp::new()),
            PrefetcherKind::Berti => Box::new(berti::Berti::new()),
            PrefetcherKind::Gaze => Box::new(gaze::Gaze::new()),
        }
    }

    /// Name without instantiating.
    pub fn label(self) -> &'static str {
        match self {
            PrefetcherKind::None => "none",
            PrefetcherKind::NextLine => "next-line",
            PrefetcherKind::IpStride => "ip-stride",
            PrefetcherKind::SppPpf => "spp+ppf",
            PrefetcherKind::Bingo => "bingo",
            PrefetcherKind::Ipcp => "ipcp",
            PrefetcherKind::Berti => "berti",
            PrefetcherKind::Gaze => "gaze",
        }
    }
}

/// A prefetcher that never prefetches.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetcher;

impl Prefetcher for NoPrefetcher {
    fn name(&self) -> &'static str {
        "none"
    }
    fn on_access(&mut self, _: u64, _: LineAddr, _: bool, _: &mut Vec<PrefetchRequest>) {}
}

/// Degree-1 next-line prefetcher (the paper's L1D baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NextLine {
    last: LineAddr,
}

impl NextLine {
    /// Create the prefetcher.
    pub fn new() -> Self {
        NextLine::default()
    }
}

drishti_noc::impl_persist_fields!(NextLine { last });

impl Prefetcher for NextLine {
    fn name(&self) -> &'static str {
        "next-line"
    }

    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        drishti_noc::snap::Persist::save(self, w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        drishti_noc::snap::Persist::load(self, r)
    }

    fn on_access(&mut self, pc: u64, line: LineAddr, _hit: bool, out: &mut Vec<PrefetchRequest>) {
        // Avoid re-issuing for back-to-back accesses to the same line.
        if line != self.last {
            self.last = line;
            out.push(PrefetchRequest {
                line: line + 1,
                trigger_pc: pc,
            });
        }
    }
}

/// IP-stride prefetcher (the paper's L2 baseline): a per-PC table learns a
/// stride with 2-bit confidence and issues degree-2 prefetches once
/// confident.
#[derive(Debug, Clone)]
pub struct IpStride {
    entries: Vec<IpStrideEntry>,
    degree: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct IpStrideEntry {
    tag: u64,
    last_line: LineAddr,
    stride: i64,
    confidence: u8,
}

drishti_noc::impl_persist_fields!(IpStrideEntry {
    tag,
    last_line,
    stride,
    confidence
});

const IP_STRIDE_TABLE: usize = 1024;
const IP_STRIDE_CONF_MAX: u8 = 3;
const IP_STRIDE_CONF_THRESHOLD: u8 = 2;

impl IpStride {
    /// Create the prefetcher with the default degree of 2.
    pub fn new() -> Self {
        IpStride {
            entries: vec![IpStrideEntry::default(); IP_STRIDE_TABLE],
            degree: 2,
        }
    }
}

impl Default for IpStride {
    fn default() -> Self {
        IpStride::new()
    }
}

impl Prefetcher for IpStride {
    fn name(&self) -> &'static str {
        "ip-stride"
    }

    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        drishti_noc::snap::Persist::save(&self.entries, w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        drishti_noc::snap::Persist::load(&mut self.entries, r)
    }

    fn on_access(&mut self, pc: u64, line: LineAddr, _hit: bool, out: &mut Vec<PrefetchRequest>) {
        let idx = (pc as usize ^ (pc >> 10) as usize) % IP_STRIDE_TABLE;
        let e = &mut self.entries[idx];
        if e.tag != pc {
            *e = IpStrideEntry {
                tag: pc,
                last_line: line,
                stride: 0,
                confidence: 0,
            };
            return;
        }
        let observed = line as i64 - e.last_line as i64;
        e.last_line = line;
        if observed == 0 {
            return;
        }
        if observed == e.stride {
            e.confidence = (e.confidence + 1).min(IP_STRIDE_CONF_MAX);
        } else {
            e.stride = observed;
            e.confidence = 0;
            return;
        }
        if e.confidence >= IP_STRIDE_CONF_THRESHOLD {
            for d in 1..=self.degree {
                let target = line as i64 + e.stride * d as i64;
                if target >= 0 {
                    out.push(PrefetchRequest {
                        line: target as LineAddr,
                        trigger_pc: pc,
                    });
                }
            }
        }
    }
}

/// Offset of `line` within its 4 KB page.
#[inline]
pub(crate) fn page_of(line: LineAddr) -> u64 {
    line / PAGE_LINES
}

/// Page number of `line`.
#[inline]
pub(crate) fn offset_of(line: LineAddr) -> u64 {
    line % PAGE_LINES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_prefetches_successor() {
        let mut p = NextLine::new();
        let mut out = Vec::new();
        p.on_access(0x40, 100, false, &mut out);
        assert_eq!(
            out,
            vec![PrefetchRequest {
                line: 101,
                trigger_pc: 0x40
            }]
        );
    }

    #[test]
    fn next_line_dedups_repeats() {
        let mut p = NextLine::new();
        let mut out = Vec::new();
        p.on_access(0x40, 100, false, &mut out);
        p.on_access(0x40, 100, true, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn ip_stride_learns_unit_stride() {
        let mut p = IpStride::new();
        let mut out = Vec::new();
        for i in 0..6u64 {
            p.on_access(0x400, 100 + i, false, &mut out);
        }
        assert!(!out.is_empty(), "stride should be learned");
        assert!(out.iter().all(|r| r.trigger_pc == 0x400));
        // Degree 2: last trigger issues line+1 and line+2.
        let last = *out.last().unwrap();
        assert_eq!(last.line, 105 + 2);
    }

    #[test]
    fn ip_stride_learns_negative_stride() {
        let mut p = IpStride::new();
        let mut out = Vec::new();
        for i in 0..6u64 {
            p.on_access(0x400, 1000 - 3 * i, false, &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| r.line < 1000));
    }

    #[test]
    fn ip_stride_ignores_random_pcs() {
        let mut p = IpStride::new();
        let mut out = Vec::new();
        let addrs = [5u64, 900, 17, 4242, 33, 781, 56, 12000];
        for (i, &a) in addrs.iter().enumerate() {
            p.on_access(0x400 + i as u64 * 4, a, false, &mut out);
        }
        assert!(out.is_empty(), "one access per PC must not prefetch");
    }

    #[test]
    fn kinds_build_and_label() {
        for kind in [
            PrefetcherKind::None,
            PrefetcherKind::NextLine,
            PrefetcherKind::IpStride,
            PrefetcherKind::SppPpf,
            PrefetcherKind::Bingo,
            PrefetcherKind::Ipcp,
            PrefetcherKind::Berti,
            PrefetcherKind::Gaze,
        ] {
            let p = kind.build();
            assert_eq!(p.name(), kind.label());
        }
    }

    #[test]
    fn page_helpers() {
        assert_eq!(page_of(64), 1);
        assert_eq!(offset_of(64), 0);
        assert_eq!(offset_of(65), 1);
    }
}

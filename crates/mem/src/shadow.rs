//! Shadow-observation hooks for differential checking of the sliced LLC.
//!
//! A conformance checker (the `RefCache` in `drishti_sim::conformance`)
//! needs to see every container-level event — lookup outcome, fill
//! outcome, victim identity — *as it happens*, together with the
//! counter state after the event, so a contract violation can be pinned
//! to an exact access index. [`LlcObserver`] is that tap: the container
//! calls it after each lookup and each fill, on every return path.
//!
//! The hooks are strictly observation-only. The container never lets an
//! observer influence a decision, and when no observer is installed the
//! cost is a single `Option` branch per event — golden outputs are
//! byte-identical with and without shadow checking.

use crate::access::Access;
use crate::llc::SliceCounters;
use crate::policy::{LlcLineState, LlcLoc, SetProbe};
use std::any::Any;

/// What an LLC fill did, as reported to an observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOutcome<'a> {
    /// The line was installed in `way`; `evicted` is the displaced line if
    /// the set was full (its pre-eviction state, dirty bit included).
    Installed {
        /// The way the line now occupies.
        way: usize,
        /// The line that was displaced, if any.
        evicted: Option<&'a LlcLineState>,
    },
    /// The policy declined to cache the line; the set is unchanged.
    Bypassed,
    /// The line was already resident (racing fills); only the dirty bit
    /// may have been refreshed.
    AlreadyResident {
        /// The way the line already occupied.
        way: usize,
    },
}

/// Observation tap on the sliced LLC, installed via
/// [`crate::llc::SlicedLlc::set_observer`].
///
/// `counters` is the slice's [`SliceCounters`] *after* the event, so an
/// observer can verify counter telescoping event-by-event. `probe` (fill
/// only) is the policy's per-way metadata snapshot when the policy
/// implements [`crate::policy::PolicyProbe`].
pub trait LlcObserver: Any {
    /// A lookup completed. `hit_way` is the resident way on a hit, `None`
    /// on a miss.
    fn on_lookup(
        &mut self,
        acc: &Access,
        loc: LlcLoc,
        hit_way: Option<usize>,
        counters: &SliceCounters,
    );

    /// A fill completed with `outcome`.
    fn on_fill(
        &mut self,
        acc: &Access,
        loc: LlcLoc,
        outcome: FillOutcome<'_>,
        counters: &SliceCounters,
        probe: Option<&SetProbe>,
    );

    /// Upcast for retrieving a concrete observer after a run (the
    /// container only holds `Box<dyn LlcObserver>`).
    fn as_any(&self) -> &dyn Any;
}

//! Simplified Bingo spatial data prefetcher.
//!
//! Bingo [Bakhshalipour et al., HPCA 2019 — paper ref 16] records the
//! *footprint* of lines touched inside a spatial region and associates it
//! with both a long event (`PC+offset` of the trigger access) and a short
//! event (`PC` alone). On a later trigger it prefers the long-event match
//! and falls back to the short one, replaying the whole footprint at once.
//!
//! This model keeps the dual-event history and footprint replay over 2 KB
//! regions; the original's history-table packing tricks are elided.

use super::{PrefetchRequest, Prefetcher};
use crate::LineAddr;
use std::collections::HashMap;

/// Lines per Bingo region (2 KB regions ⇒ 32 lines).
pub const REGION_LINES: u64 = 32;
const ACCUMULATION_CAPACITY: usize = 64;
const HISTORY_CAPACITY: usize = 4096;

#[derive(Debug, Clone, Copy, Default)]
struct RegionTracker {
    region: u64,
    trigger_pc: u64,
    trigger_offset: u64,
    footprint: u32,
    age: u64,
}

drishti_noc::impl_persist_fields!(RegionTracker {
    region,
    trigger_pc,
    trigger_offset,
    footprint,
    age
});

/// Simplified Bingo.
#[derive(Debug)]
pub struct Bingo {
    tracking: Vec<RegionTracker>,
    /// Long event: hash(PC, trigger offset) → footprint.
    long_history: HashMap<u64, u32>,
    /// Short event: PC → footprint.
    short_history: HashMap<u64, u32>,
    clock: u64,
}

impl Bingo {
    /// Create the prefetcher.
    pub fn new() -> Self {
        Bingo {
            tracking: Vec::with_capacity(ACCUMULATION_CAPACITY),
            long_history: HashMap::new(),
            short_history: HashMap::new(),
            clock: 0,
        }
    }

    fn long_key(pc: u64, offset: u64) -> u64 {
        pc.wrapping_mul(0x9e37_79b9).wrapping_add(offset)
    }

    fn retire(&mut self, idx: usize) {
        let t = self.tracking.swap_remove(idx);
        // Only remember regions with at least two touched lines: singleton
        // footprints generate useless prefetches.
        if t.footprint.count_ones() >= 2 {
            if self.long_history.len() >= HISTORY_CAPACITY {
                self.long_history.clear();
            }
            if self.short_history.len() >= HISTORY_CAPACITY {
                self.short_history.clear();
            }
            self.long_history
                .insert(Self::long_key(t.trigger_pc, t.trigger_offset), t.footprint);
            self.short_history.insert(t.trigger_pc, t.footprint);
        }
    }
}

impl Default for Bingo {
    fn default() -> Self {
        Bingo::new()
    }
}

drishti_noc::impl_persist_fields!(Bingo {
    tracking,
    long_history,
    short_history,
    clock
});

impl Prefetcher for Bingo {
    fn name(&self) -> &'static str {
        "bingo"
    }

    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        drishti_noc::snap::Persist::save(self, w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        drishti_noc::snap::Persist::load(self, r)
    }

    fn on_access(&mut self, pc: u64, line: LineAddr, _hit: bool, out: &mut Vec<PrefetchRequest>) {
        self.clock += 1;
        let region = line / REGION_LINES;
        let offset = line % REGION_LINES;

        if let Some(t) = self.tracking.iter_mut().find(|t| t.region == region) {
            t.footprint |= 1 << offset;
            t.age = self.clock;
            return;
        }

        // New region trigger: retire the oldest tracker if full, start
        // tracking, and replay any remembered footprint.
        if self.tracking.len() >= ACCUMULATION_CAPACITY {
            let oldest = self
                .tracking
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.age)
                .map(|(i, _)| i)
                .expect("tracker nonempty");
            self.retire(oldest);
        }
        self.tracking.push(RegionTracker {
            region,
            trigger_pc: pc,
            trigger_offset: offset,
            footprint: 1 << offset,
            age: self.clock,
        });

        let footprint = self
            .long_history
            .get(&Self::long_key(pc, offset))
            .or_else(|| self.short_history.get(&pc))
            .copied();
        if let Some(fp) = footprint {
            for bit in 0..REGION_LINES {
                if bit != offset && fp & (1 << bit) != 0 {
                    out.push(PrefetchRequest {
                        line: region * REGION_LINES + bit,
                        trigger_pc: pc,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Touch a fixed intra-region pattern in several regions, then verify
    /// the footprint is replayed on a new region's trigger.
    #[test]
    fn replays_learned_footprint() {
        let mut p = Bingo::new();
        let mut out = Vec::new();
        let pattern = [0u64, 3, 7, 12];
        // Train: visit many regions with the same PC and pattern. Regions
        // retire when the tracker overflows.
        for r in 0..200u64 {
            for &o in &pattern {
                p.on_access(0x77, r * REGION_LINES + o, false, &mut out);
            }
        }
        out.clear();
        // Trigger a brand-new region at the pattern's first offset.
        p.on_access(0x77, 100_000 * REGION_LINES, false, &mut out);
        let lines: Vec<u64> = out.iter().map(|r| r.line % REGION_LINES).collect();
        assert_eq!(
            lines,
            vec![3, 7, 12],
            "footprint replay mismatch: {lines:?}"
        );
    }

    #[test]
    fn no_replay_without_history() {
        let mut p = Bingo::new();
        let mut out = Vec::new();
        p.on_access(0x1, 42, false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn singleton_footprints_are_not_remembered() {
        let mut p = Bingo::new();
        let mut out = Vec::new();
        // Touch one line in each of many regions with the same PC.
        for r in 0..200u64 {
            p.on_access(0x9, r * REGION_LINES + 5, false, &mut out);
        }
        out.clear();
        p.on_access(0x9, 999_999 * REGION_LINES + 5, false, &mut out);
        assert!(out.is_empty(), "singleton regions should not train Bingo");
    }

    #[test]
    fn long_event_beats_short_event() {
        let mut p = Bingo::new();
        let mut out = Vec::new();
        // Same PC, two different trigger offsets with different footprints.
        for r in 0..100u64 {
            p.on_access(0x5, r * REGION_LINES, false, &mut out); // trigger off 0
            p.on_access(0x5, r * REGION_LINES + 1, false, &mut out);
        }
        for r in 100..200u64 {
            p.on_access(0x5, r * REGION_LINES + 8, false, &mut out); // trigger off 8
            p.on_access(0x5, r * REGION_LINES + 9, false, &mut out);
        }
        out.clear();
        p.on_access(0x5, 500_000 * REGION_LINES, false, &mut out);
        assert!(
            out.iter().all(|r| r.line % REGION_LINES == 1),
            "long event (PC, offset=0) should replay its own footprint: {out:?}"
        );
    }
}

//! Simplified SPP+PPF: Signature-Path Prefetcher with a perceptron filter.
//!
//! SPP [Kim et al., MICRO 2016] compresses the recent *delta history within
//! a page* into a signature, looks the signature up in a pattern table of
//! delta candidates with confidences, and chases the signature path with
//! multiplicative confidence for lookahead. PPF [Bhatia et al., ISCA 2019 —
//! paper ref 20] vets each candidate with a perceptron over simple features
//! trained by usefulness feedback.
//!
//! This model keeps the signature/pattern-table/lookahead core and a
//! one-layer perceptron filter trained on [`Prefetcher::on_feedback`]; the
//! original's paging structures (GHR cross-page bootstrap, quotient tags)
//! are elided as they only affect warm-up.

use super::{offset_of, page_of, PrefetchRequest, Prefetcher};
use crate::LineAddr;

const SIG_BITS: u32 = 12;
const SIG_MASK: u64 = (1 << SIG_BITS) - 1;
const PAGE_TABLE: usize = 256;
const PATTERN_TABLE: usize = 1 << SIG_BITS;
const DELTAS_PER_SIG: usize = 4;
const CONF_MAX: u16 = 15;
const FILL_THRESHOLD: f64 = 0.25;
const LOOKAHEAD_THRESHOLD: f64 = 0.5;
const MAX_DEGREE: usize = 4;

const PERCEPTRON_FEATURES: usize = 3;
const PERCEPTRON_TABLE: usize = 1024;
const PERCEPTRON_MAX: i16 = 31;
const PERCEPTRON_THRESHOLD: i32 = -8;

#[derive(Debug, Clone, Copy, Default)]
struct PageEntry {
    page: u64,
    last_offset: u64,
    signature: u64,
    valid: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct DeltaSlot {
    delta: i64,
    confidence: u16,
}

#[derive(Debug, Clone, Copy, Default)]
struct PatternEntry {
    total: u16,
    slots: [DeltaSlot; DELTAS_PER_SIG],
}

drishti_noc::impl_persist_fields!(PageEntry {
    page,
    last_offset,
    signature,
    valid
});
drishti_noc::impl_persist_fields!(DeltaSlot { delta, confidence });
drishti_noc::impl_persist_fields!(PatternEntry { total, slots });

/// Simplified SPP with perceptron prefetch filtering.
#[derive(Debug)]
pub struct SppPpf {
    pages: Vec<PageEntry>,
    patterns: Vec<PatternEntry>,
    /// Perceptron weight tables, one per feature.
    weights: Vec<Vec<i16>>,
    /// Ring of recently issued prefetches and their feature indices, so
    /// usefulness feedback can train the perceptron.
    issued: Vec<(LineAddr, [usize; PERCEPTRON_FEATURES])>,
    issued_next: usize,
}

impl SppPpf {
    /// Create the prefetcher.
    pub fn new() -> Self {
        SppPpf {
            pages: vec![PageEntry::default(); PAGE_TABLE],
            patterns: vec![PatternEntry::default(); PATTERN_TABLE],
            weights: vec![vec![0; PERCEPTRON_TABLE]; PERCEPTRON_FEATURES],
            issued: vec![(u64::MAX, [0; PERCEPTRON_FEATURES]); 256],
            issued_next: 0,
        }
    }

    fn features(pc: u64, sig: u64, offset: u64) -> [usize; PERCEPTRON_FEATURES] {
        [
            (pc as usize ^ (pc >> 12) as usize) % PERCEPTRON_TABLE,
            (sig as usize) % PERCEPTRON_TABLE,
            ((pc ^ offset) as usize) % PERCEPTRON_TABLE,
        ]
    }

    fn perceptron_sum(&self, f: &[usize; PERCEPTRON_FEATURES]) -> i32 {
        (0..PERCEPTRON_FEATURES)
            .map(|i| i32::from(self.weights[i][f[i]]))
            .sum()
    }

    fn train_pattern(&mut self, sig: u64, delta: i64) {
        let e = &mut self.patterns[(sig & SIG_MASK) as usize];
        e.total = (e.total + 1).min(u16::MAX - 1);
        if let Some(slot) = e
            .slots
            .iter_mut()
            .find(|s| s.delta == delta && s.confidence > 0)
        {
            slot.confidence = (slot.confidence + 1).min(CONF_MAX);
        } else if let Some(slot) = e
            .slots
            .iter_mut()
            .min_by_key(|s| s.confidence)
            .filter(|s| s.confidence <= 1)
        {
            *slot = DeltaSlot {
                delta,
                confidence: 1,
            };
        }
        if e.total >= u16::MAX - 2 || e.slots.iter().all(|s| s.confidence >= CONF_MAX) {
            for s in &mut e.slots {
                s.confidence /= 2;
            }
            e.total /= 2;
        }
    }

    fn next_sig(sig: u64, delta: i64) -> u64 {
        let enc = (delta.rem_euclid(64)) as u64;
        ((sig << 3) ^ enc) & SIG_MASK
    }
}

impl Default for SppPpf {
    fn default() -> Self {
        SppPpf::new()
    }
}

drishti_noc::impl_persist_fields!(SppPpf {
    pages,
    patterns,
    weights,
    issued,
    issued_next
});

impl Prefetcher for SppPpf {
    fn name(&self) -> &'static str {
        "spp+ppf"
    }

    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        drishti_noc::snap::Persist::save(self, w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        drishti_noc::snap::Persist::load(self, r)
    }

    fn on_access(&mut self, pc: u64, line: LineAddr, _hit: bool, out: &mut Vec<PrefetchRequest>) {
        let page = page_of(line);
        let offset = offset_of(line) as i64;
        let idx = (page as usize ^ (page >> 8) as usize) % PAGE_TABLE;

        let (sig_for_predict, trained) = {
            let e = &mut self.pages[idx];
            if e.valid && e.page == page {
                let delta = offset - e.last_offset as i64;
                if delta == 0 {
                    return;
                }
                let old_sig = e.signature;
                e.last_offset = offset as u64;
                e.signature = Self::next_sig(old_sig, delta);
                (e.signature, Some((old_sig, delta)))
            } else {
                *e = PageEntry {
                    page,
                    last_offset: offset as u64,
                    signature: 0,
                    valid: true,
                };
                return;
            }
        };
        if let Some((old_sig, delta)) = trained {
            self.train_pattern(old_sig, delta);
        }

        // Signature-path lookahead with multiplicative confidence.
        let mut sig = sig_for_predict;
        let mut conf = 1.0f64;
        let mut cursor = offset;
        for _ in 0..MAX_DEGREE {
            let entry = self.patterns[(sig & SIG_MASK) as usize];
            if entry.total == 0 {
                break;
            }
            let best = entry
                .slots
                .iter()
                .max_by_key(|s| s.confidence)
                .copied()
                .unwrap_or_default();
            if best.confidence == 0 {
                break;
            }
            let path_conf =
                conf * f64::from(best.confidence) / f64::from(entry.total.max(best.confidence));
            if path_conf < FILL_THRESHOLD {
                break;
            }
            let target_off = cursor + best.delta;
            if !(0..super::PAGE_LINES as i64).contains(&target_off) {
                break; // SPP does not cross pages without the GHR
            }
            let target = page * super::PAGE_LINES + target_off as u64;
            let feats = Self::features(pc, sig, target_off as u64);
            if self.perceptron_sum(&feats) >= PERCEPTRON_THRESHOLD {
                out.push(PrefetchRequest {
                    line: target,
                    trigger_pc: pc,
                });
                self.issued[self.issued_next] = (target, feats);
                self.issued_next = (self.issued_next + 1) % self.issued.len();
            }
            if path_conf < LOOKAHEAD_THRESHOLD {
                break;
            }
            conf = path_conf;
            cursor = target_off;
            sig = Self::next_sig(sig, best.delta);
        }
    }

    fn on_feedback(&mut self, line: LineAddr, useful: bool) {
        if let Some(&(_, feats)) = self.issued.iter().find(|(l, _)| *l == line) {
            for (weights, &feat) in self.weights.iter_mut().zip(feats.iter()) {
                let w = &mut weights[feat];
                *w = if useful {
                    (*w + 1).min(PERCEPTRON_MAX)
                } else {
                    (*w - 1).max(-PERCEPTRON_MAX)
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_unit_stride_within_page() {
        let mut p = SppPpf::new();
        let mut out = Vec::new();
        // Two pages of warm-up so the signature path gains confidence.
        for page in 0..4u64 {
            for off in 0..32u64 {
                p.on_access(0x10, page * 1000 * 64 / 64 * 64 + off, false, &mut out);
            }
        }
        assert!(!out.is_empty(), "SPP should issue for a dense stride");
        // Prefetches must stay within a page.
        for r in &out {
            assert!(super::super::offset_of(r.line) < super::super::PAGE_LINES);
        }
    }

    #[test]
    fn no_prefetch_on_first_touch() {
        let mut p = SppPpf::new();
        let mut out = Vec::new();
        p.on_access(0x10, 12345, false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn negative_feedback_suppresses() {
        let mut trained = SppPpf::new();
        let mut out = Vec::new();
        for off in 0..40u64 {
            trained.on_access(0x10, off, false, &mut out);
        }
        let baseline = out.len();
        assert!(baseline > 0);

        // Same stream, but every issued prefetch is reported useless.
        let mut filtered = SppPpf::new();
        let mut out2 = Vec::new();
        for off in 0..40u64 {
            let mut step = Vec::new();
            filtered.on_access(0x10, off, false, &mut step);
            for r in &step {
                filtered.on_feedback(r.line, false);
                // Extra negative reinforcement to overcome hysteresis fast.
                for _ in 0..8 {
                    filtered.on_feedback(r.line, false);
                }
            }
            out2.extend(step);
        }
        // Re-run a fresh page: the filter should now reject.
        let mut out3 = Vec::new();
        for off in 0..40u64 {
            filtered.on_access(0x10, 64 * 1000 + off, false, &mut out3);
        }
        assert!(
            out3.len() < baseline,
            "perceptron filter should suppress useless prefetches ({} vs {baseline})",
            out3.len()
        );
    }

    #[test]
    fn repeated_same_line_is_ignored() {
        let mut p = SppPpf::new();
        let mut out = Vec::new();
        for _ in 0..10 {
            p.on_access(0x10, 500, false, &mut out);
        }
        assert!(out.is_empty());
    }
}

//! Simplified Berti: accurate local-delta prefetching.
//!
//! Berti [Navarro-Torres et al., MICRO 2022 — paper ref 43] learns, per
//! load IP, the set of *timely* local deltas: for each demand access it
//! checks which earlier accesses of the same IP (within a recent-history
//! window) are exactly `delta` behind, and credits deltas whose prefetch
//! would have completed in time. Only deltas whose coverage exceeds a high
//! confidence threshold are used, which is what makes Berti accurate.
//!
//! This model keeps the per-IP recent-access history and coverage-ratio
//! delta selection; the latency-aware timeliness test is approximated by a
//! fixed history-depth horizon.

use super::{page_of, PrefetchRequest, Prefetcher};
use crate::LineAddr;

const IP_TABLE: usize = 512;
const HISTORY: usize = 8;
const DELTA_SLOTS: usize = 6;
/// A delta is used once its hit ratio (coverage) reaches this many
/// sixteenths of the opportunities.
const USE_THRESHOLD_16THS: u32 = 10;
const MIN_OPPORTUNITIES: u32 = 8;

#[derive(Debug, Clone, Copy, Default)]
struct DeltaStat {
    delta: i64,
    hits: u32,
    opportunities: u32,
}

#[derive(Debug, Clone)]
struct IpEntry {
    tag: u64,
    recent: [LineAddr; HISTORY],
    recent_len: usize,
    deltas: [DeltaStat; DELTA_SLOTS],
}

impl Default for IpEntry {
    fn default() -> Self {
        IpEntry {
            tag: 0,
            recent: [0; HISTORY],
            recent_len: 0,
            deltas: [DeltaStat::default(); DELTA_SLOTS],
        }
    }
}

drishti_noc::impl_persist_fields!(DeltaStat {
    delta,
    hits,
    opportunities
});
drishti_noc::impl_persist_fields!(IpEntry {
    tag,
    recent,
    recent_len,
    deltas
});

/// Simplified Berti.
#[derive(Debug)]
pub struct Berti {
    ips: Vec<IpEntry>,
}

impl Berti {
    /// Create the prefetcher.
    pub fn new() -> Self {
        Berti {
            ips: vec![IpEntry::default(); IP_TABLE],
        }
    }
}

impl Default for Berti {
    fn default() -> Self {
        Berti::new()
    }
}

impl Prefetcher for Berti {
    fn name(&self) -> &'static str {
        "berti"
    }

    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        drishti_noc::snap::Persist::save(&self.ips, w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        drishti_noc::snap::Persist::load(&mut self.ips, r)
    }

    fn on_access(&mut self, pc: u64, line: LineAddr, _hit: bool, out: &mut Vec<PrefetchRequest>) {
        let idx = (pc as usize ^ (pc >> 9) as usize) % IP_TABLE;
        let e = &mut self.ips[idx];
        if e.tag != pc {
            *e = IpEntry {
                tag: pc,
                ..IpEntry::default()
            };
        }

        // Evaluate candidate deltas against the recent history: "would a
        // prefetch of (past + delta) have produced this line?"
        for h in 0..e.recent_len {
            let past = e.recent[h];
            let delta = line as i64 - past as i64;
            if delta == 0 || delta.unsigned_abs() >= 64 {
                continue;
            }
            // Timeliness approximation: the delta must span at least two
            // history slots of distance so the prefetch had time to land.
            let timely = h + 2 <= e.recent_len;
            if let Some(s) = e
                .deltas
                .iter_mut()
                .find(|s| s.delta == delta && s.opportunities > 0)
            {
                s.opportunities += 1;
                if timely {
                    s.hits += 1;
                }
            } else if let Some(s) = e
                .deltas
                .iter_mut()
                .min_by_key(|s| s.hits)
                .filter(|s| s.opportunities == 0 || s.hits * 4 < s.opportunities)
            {
                *s = DeltaStat {
                    delta,
                    hits: u32::from(timely),
                    opportunities: 1,
                };
            }
        }

        // Shift history (most recent first).
        let len = e.recent_len.min(HISTORY - 1);
        e.recent.copy_within(0..len, 1);
        e.recent[0] = line;
        e.recent_len = (e.recent_len + 1).min(HISTORY);

        // Issue every confident delta (Berti can use several).
        for s in e.deltas {
            if s.opportunities >= MIN_OPPORTUNITIES
                && s.hits * 16 >= s.opportunities * USE_THRESHOLD_16THS
            {
                let t = line as i64 + s.delta;
                if t >= 0 && page_of(t as u64) == page_of(line) {
                    out.push(PrefetchRequest {
                        line: t as LineAddr,
                        trigger_pc: pc,
                    });
                }
            }
        }

        // Periodic decay keeps ratios adaptive.
        if e.deltas.iter().any(|s| s.opportunities > 4096) {
            for s in &mut e.deltas {
                s.hits /= 2;
                s.opportunities /= 2;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_dominant_local_delta() {
        let mut p = Berti::new();
        let mut out = Vec::new();
        for i in 0..64u64 {
            p.on_access(0x11, 4096 + 2 * i, false, &mut out);
        }
        assert!(!out.is_empty(), "stride-2 should be learned");
        assert!(out.iter().all(|r| (r.line as i64 - 4096) % 2 == 0));
    }

    #[test]
    fn stays_silent_on_random_stream() {
        let mut p = Berti::new();
        let mut out = Vec::new();
        // Pseudo-random large jumps: no small delta repeats.
        let mut a: u64 = 12345;
        for _ in 0..64 {
            a = a
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            p.on_access(0x22, a >> 16, false, &mut out);
        }
        assert!(
            out.len() <= 2,
            "Berti must be near-silent on random traffic, issued {}",
            out.len()
        );
    }

    #[test]
    fn does_not_cross_pages() {
        let mut p = Berti::new();
        let mut out = Vec::new();
        for i in 0..256u64 {
            p.on_access(0x33, i, false, &mut out);
        }
        for r in &out {
            assert!(r.line < 256 + 64);
        }
    }

    #[test]
    fn distinct_pcs_learn_independently() {
        let mut p = Berti::new();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for i in 0..64u64 {
            p.on_access(0xAAA, 10_000 + i, false, &mut out_a);
            p.on_access(0xBBB, 90_000 + 3 * i, false, &mut out_b);
        }
        assert!(!out_a.is_empty());
        assert!(!out_b.is_empty());
        assert!(out_b.iter().all(|r| r.line >= 90_000));
    }
}

//! Simplified Gaze: spatial patterns with internal temporal correlation.
//!
//! Gaze [Chen et al., HPCA 2025 — paper ref 21] observes that the *first
//! few* offsets touched in a spatial region strongly predict the region's
//! full footprint, and that replaying the footprint in the learned
//! *temporal order* (rather than bitmap order) improves timeliness. It also
//! separates dense streaming regions (handled by a cheap stream engine)
//! from sparse patterned regions.
//!
//! This model keeps: (i) per-region tracking of the ordered touch sequence,
//! (ii) a pattern history keyed by the PC and the first two offsets (the
//! "probing" prefix), (iii) ordered replay, and (iv) a dense-region stream
//! bypass.

use super::{PrefetchRequest, Prefetcher};
use crate::LineAddr;
use std::collections::HashMap;

/// Lines per Gaze region (4 KB ⇒ 64 lines).
pub const REGION_LINES: u64 = 64;
const TRACKERS: usize = 64;
const HISTORY_CAPACITY: usize = 4096;
const MAX_PATTERN: usize = 16;
const DENSE_THRESHOLD: usize = 12;
const STREAM_DEGREE: u64 = 4;

#[derive(Debug, Clone, Default)]
struct Tracker {
    region: u64,
    pc: u64,
    order: Vec<u8>,
    age: u64,
}

drishti_noc::impl_persist_fields!(Tracker {
    region,
    pc,
    order,
    age
});

/// Simplified Gaze.
#[derive(Debug)]
pub struct Gaze {
    trackers: Vec<Tracker>,
    /// hash(pc, first two offsets) → ordered offset sequence.
    history: HashMap<u64, Vec<u8>>,
    clock: u64,
}

impl Gaze {
    /// Create the prefetcher.
    pub fn new() -> Self {
        Gaze {
            trackers: Vec::with_capacity(TRACKERS),
            history: HashMap::new(),
            clock: 0,
        }
    }

    fn key(pc: u64, first: u8, second: u8) -> u64 {
        pc.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (u64::from(first) << 8) ^ u64::from(second)
    }

    fn retire(&mut self, idx: usize) {
        let t = self.trackers.swap_remove(idx);
        if t.order.len() >= 3 {
            if self.history.len() >= HISTORY_CAPACITY {
                self.history.clear();
            }
            let mut order = t.order;
            order.truncate(MAX_PATTERN);
            self.history
                .insert(Self::key(t.pc, order[0], order[1]), order);
        }
    }
}

impl Default for Gaze {
    fn default() -> Self {
        Gaze::new()
    }
}

drishti_noc::impl_persist_fields!(Gaze {
    trackers,
    history,
    clock
});

impl Prefetcher for Gaze {
    fn name(&self) -> &'static str {
        "gaze"
    }

    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        drishti_noc::snap::Persist::save(self, w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        drishti_noc::snap::Persist::load(self, r)
    }

    fn on_access(&mut self, pc: u64, line: LineAddr, _hit: bool, out: &mut Vec<PrefetchRequest>) {
        self.clock += 1;
        let region = line / REGION_LINES;
        let offset = (line % REGION_LINES) as u8;

        if let Some(pos) = self.trackers.iter().position(|t| t.region == region) {
            let clock = self.clock;
            let (fire, first, second) = {
                let t = &mut self.trackers[pos];
                t.age = clock;
                if !t.order.contains(&offset) {
                    t.order.push(offset);
                }
                if t.order.len() == 2 {
                    (true, t.order[0], t.order[1])
                } else {
                    (false, 0, 0)
                }
            };
            // Dense-region stream bypass: once the region looks like a
            // stream, run ahead of the leading edge.
            let len = self.trackers[pos].order.len();
            if len >= DENSE_THRESHOLD {
                let dir: i64 = {
                    let o = &self.trackers[pos].order;
                    if o[len - 1] >= o[0] {
                        1
                    } else {
                        -1
                    }
                };
                for d in 1..=STREAM_DEGREE {
                    let t = line as i64 + dir * d as i64;
                    if t >= 0 {
                        out.push(PrefetchRequest {
                            line: t as LineAddr,
                            trigger_pc: pc,
                        });
                    }
                }
                return;
            }
            // The two-offset probing prefix is complete: replay the learned
            // pattern in temporal order.
            if fire {
                if let Some(pattern) = self.history.get(&Self::key(pc, first, second)) {
                    for &o in pattern.iter().skip(2) {
                        out.push(PrefetchRequest {
                            line: region * REGION_LINES + u64::from(o),
                            trigger_pc: pc,
                        });
                    }
                }
            }
            return;
        }

        if self.trackers.len() >= TRACKERS {
            let oldest = self
                .trackers
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.age)
                .map(|(i, _)| i)
                .expect("trackers nonempty");
            self.retire(oldest);
        }
        self.trackers.push(Tracker {
            region,
            pc,
            order: vec![offset],
            age: self.clock,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_pattern_in_temporal_order() {
        let mut p = Gaze::new();
        let mut out = Vec::new();
        let pattern = [2u64, 9, 30, 17, 4]; // deliberately non-monotonic
        for r in 0..200u64 {
            for &o in &pattern {
                p.on_access(0xF0, r * REGION_LINES + o, false, &mut out);
            }
        }
        out.clear();
        // New region: touch the two-offset probing prefix.
        let base = 7_000_000 * REGION_LINES;
        p.on_access(0xF0, base + 2, false, &mut out);
        p.on_access(0xF0, base + 9, false, &mut out);
        let offs: Vec<u64> = out.iter().map(|r| r.line - base).collect();
        assert_eq!(offs, vec![30, 17, 4], "ordered replay mismatch: {offs:?}");
    }

    #[test]
    fn dense_region_switches_to_streaming() {
        let mut p = Gaze::new();
        let mut out = Vec::new();
        let base = 50 * REGION_LINES;
        for i in 0..20u64 {
            p.on_access(0xE0, base + i, false, &mut out);
        }
        let max = out.iter().map(|r| r.line).max().unwrap_or(0);
        assert!(max > base + 20, "stream bypass should run ahead: {max}");
    }

    #[test]
    fn cold_start_is_silent() {
        let mut p = Gaze::new();
        let mut out = Vec::new();
        p.on_access(0x1, 100, false, &mut out);
        p.on_access(0x1, 105, false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn short_patterns_are_not_remembered() {
        let mut p = Gaze::new();
        let mut out = Vec::new();
        for r in 0..200u64 {
            p.on_access(0xD0, r * REGION_LINES + 1, false, &mut out);
            p.on_access(0xD0, r * REGION_LINES + 2, false, &mut out);
        }
        out.clear();
        let base = 9_000_000 * REGION_LINES;
        p.on_access(0xD0, base + 1, false, &mut out);
        p.on_access(0xD0, base + 2, false, &mut out);
        assert!(out.is_empty(), "two-touch regions carry no replayable tail");
    }
}

//! Simplified IPCP: Instruction-Pointer-Classifier-based prefetching.
//!
//! IPCP [Pakalapati & Panda, ISCA 2020 — paper ref 44] classifies each load
//! IP into one of three classes and prefetches accordingly:
//!
//! * **CS** (constant stride): a per-IP stride with confidence, degree ~4;
//! * **CPLX** (complex): a per-IP *delta signature* indexes a shared
//!   delta-prediction table, chasing irregular-but-repeating delta chains;
//! * **GS** (global stream): a dense region-activity detector that streams
//!   ahead of the leading edge regardless of IP.
//!
//! Class priority on each access is GS > CS > CPLX, as in the original.

use super::{offset_of, page_of, PrefetchRequest, Prefetcher, PAGE_LINES};
use crate::LineAddr;

const IP_TABLE: usize = 1024;
const CPLX_TABLE: usize = 4096;
const CS_DEGREE: i64 = 4;
const GS_DEGREE: u64 = 6;
const REGION_TRACKERS: usize = 16;
const GS_DENSITY: u32 = 24; // of 32 lines touched ⇒ stream

#[derive(Debug, Clone, Copy, Default)]
struct IpEntry {
    tag: u64,
    last_line: LineAddr,
    stride: i64,
    cs_conf: u8,
    signature: u16,
}

#[derive(Debug, Clone, Copy, Default)]
struct CplxEntry {
    delta: i64,
    conf: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct Region {
    region: u64,
    footprint: u32,
    age: u64,
}

drishti_noc::impl_persist_fields!(IpEntry {
    tag,
    last_line,
    stride,
    cs_conf,
    signature
});
drishti_noc::impl_persist_fields!(CplxEntry { delta, conf });
drishti_noc::impl_persist_fields!(Region {
    region,
    footprint,
    age
});

/// Simplified IPCP.
#[derive(Debug)]
pub struct Ipcp {
    ips: Vec<IpEntry>,
    cplx: Vec<CplxEntry>,
    regions: [Region; REGION_TRACKERS],
    clock: u64,
    /// Latched global-stream direction: +1 / -1.
    stream_dir: i64,
}

impl Ipcp {
    /// Create the prefetcher.
    pub fn new() -> Self {
        Ipcp {
            ips: vec![IpEntry::default(); IP_TABLE],
            cplx: vec![CplxEntry::default(); CPLX_TABLE],
            regions: [Region::default(); REGION_TRACKERS],
            clock: 0,
            stream_dir: 1,
        }
    }

    /// Returns true when the access falls in a densely touched region,
    /// i.e. the global-stream class fires.
    fn update_regions(&mut self, line: LineAddr) -> bool {
        self.clock += 1;
        let region = line / 32;
        let off = line % 32;
        if let Some(r) = self.regions.iter_mut().find(|r| r.region == region) {
            r.footprint |= 1 << off;
            r.age = self.clock;
            return r.footprint.count_ones() >= GS_DENSITY;
        }
        let slot = self
            .regions
            .iter_mut()
            .min_by_key(|r| r.age)
            .expect("regions nonempty");
        *slot = Region {
            region,
            footprint: 1 << off,
            age: self.clock,
        };
        false
    }
}

impl Default for Ipcp {
    fn default() -> Self {
        Ipcp::new()
    }
}

drishti_noc::impl_persist_fields!(Ipcp {
    ips,
    cplx,
    regions,
    clock,
    stream_dir
});

impl Prefetcher for Ipcp {
    fn name(&self) -> &'static str {
        "ipcp"
    }

    fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        drishti_noc::snap::Persist::save(self, w);
    }

    fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        drishti_noc::snap::Persist::load(self, r)
    }

    fn on_access(&mut self, pc: u64, line: LineAddr, _hit: bool, out: &mut Vec<PrefetchRequest>) {
        let streaming = self.update_regions(line);
        let idx = (pc as usize ^ (pc >> 10) as usize) % IP_TABLE;
        let e = &mut self.ips[idx];
        if e.tag != pc {
            *e = IpEntry {
                tag: pc,
                last_line: line,
                ..IpEntry::default()
            };
            return;
        }
        let delta = line as i64 - e.last_line as i64;
        e.last_line = line;
        if delta == 0 {
            return;
        }
        if delta > 0 {
            self.stream_dir = 1;
        } else {
            self.stream_dir = -1;
        }

        // Train CS class.
        if delta == e.stride {
            e.cs_conf = (e.cs_conf + 1).min(3);
        } else {
            e.stride = delta;
            e.cs_conf = e.cs_conf.saturating_sub(1);
        }

        // Train CPLX class: previous signature predicted this delta.
        let sig_idx = (e.signature as usize) % CPLX_TABLE;
        let slot = &mut self.cplx[sig_idx];
        if slot.delta == delta {
            slot.conf = (slot.conf + 1).min(3);
        } else if slot.conf == 0 {
            slot.delta = delta;
            slot.conf = 1;
        } else {
            slot.conf -= 1;
        }
        let new_sig =
            ((u32::from(e.signature) << 3) ^ (delta.rem_euclid(64) as u32)) as u16 & 0x0fff;
        e.signature = new_sig;

        // Class priority: GS > CS > CPLX.
        if streaming {
            for d in 1..=GS_DEGREE {
                let t = line as i64 + self.stream_dir * d as i64;
                if t >= 0 {
                    out.push(PrefetchRequest {
                        line: t as LineAddr,
                        trigger_pc: pc,
                    });
                }
            }
        } else if e.cs_conf >= 2 {
            for d in 1..=CS_DEGREE {
                let t = line as i64 + e.stride * d;
                if t >= 0 && page_of(t as u64) == page_of(line) {
                    out.push(PrefetchRequest {
                        line: t as LineAddr,
                        trigger_pc: pc,
                    });
                }
            }
        } else {
            // CPLX: chase the delta chain while confident.
            let mut sig = new_sig;
            let mut cursor = line as i64;
            for _ in 0..3 {
                let s = self.cplx[(sig as usize) % CPLX_TABLE];
                if s.conf < 2 {
                    break;
                }
                cursor += s.delta;
                if cursor < 0 || offset_of(cursor as u64) >= PAGE_LINES {
                    break;
                }
                out.push(PrefetchRequest {
                    line: cursor as LineAddr,
                    trigger_pc: pc,
                });
                sig = ((u32::from(sig) << 3) ^ (s.delta.rem_euclid(64) as u32)) as u16 & 0x0fff;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs_class_covers_constant_stride() {
        let mut p = Ipcp::new();
        let mut out = Vec::new();
        for i in 0..8u64 {
            p.on_access(0x40, 1000 + 2 * i, false, &mut out);
        }
        assert!(!out.is_empty());
        // Stride-2 prefetches ahead of the leading edge.
        assert!(out.iter().any(|r| r.line > 1014));
    }

    #[test]
    fn gs_class_fires_on_dense_region() {
        let mut p = Ipcp::new();
        let mut out = Vec::new();
        // Dense walk of one 32-line region with one PC.
        for i in 0..32u64 {
            p.on_access(0x99, 320_000 + i, false, &mut out);
        }
        // GS degree exceeds CS degree once density threshold reached.
        let max_line = out.iter().map(|r| r.line).max().unwrap_or(0);
        assert!(max_line > 320_031, "stream should run ahead: {max_line}");
    }

    #[test]
    fn cplx_class_learns_repeating_delta_pattern() {
        let mut p = Ipcp::new();
        let mut out = Vec::new();
        // Repeating non-constant delta chain: +1, +3, +1, +3 … inside pages.
        let mut a = 0u64;
        for i in 0..200u64 {
            p.on_access(0x7, a, false, &mut out);
            a += if i % 2 == 0 { 1 } else { 3 };
            if a % PAGE_LINES > 56 {
                a = (a / PAGE_LINES + 1) * PAGE_LINES; // fresh page
            }
        }
        assert!(!out.is_empty(), "CPLX should cover a repeating delta chain");
    }

    #[test]
    fn single_access_pc_is_silent() {
        let mut p = Ipcp::new();
        let mut out = Vec::new();
        p.on_access(0x1, 5, false, &mut out);
        p.on_access(0x2, 700, false, &mut out);
        assert!(out.is_empty());
    }
}

//! Memory-hierarchy substrate for the Drishti reproduction.
//!
//! The paper evaluates LLC replacement policies on a ChampSim-style
//! trace-driven system: per-core L1D/L2 private caches with hardware
//! prefetchers, a sliced non-inclusive LLC distributed over a mesh (one 2 MB
//! 16-way slice per core), and a DDR DRAM model with FR-FCFS-like bank/row
//! timing. This crate implements all of that from scratch:
//!
//! * [`access`] — the memory-access vocabulary ([`access::Access`],
//!   [`access::AccessKind`]) shared by every level.
//! * [`cache`] — a private set-associative cache ([`cache::PrivateCache`])
//!   with LRU/SRRIP replacement, used for L1D and L2.
//! * [`policy`] — the sliced-LLC replacement-policy trait
//!   ([`policy::LlcPolicy`]) that `drishti-policies` implements; a policy
//!   object owns the state of *all* slices so slice-global organisations
//!   (the Drishti predictor) are expressible.
//! * [`llc`] — the sliced LLC container ([`llc::SlicedLlc`]): slice hashing,
//!   per-slice arrays, per-set instrumentation (for the paper's MPKA
//!   studies), write-back generation.
//! * [`dram`] — DDR model ([`dram::Dram`]): channels, banks, open-page row
//!   buffer, bank/bus occupancy, read/write energy accounting.
//! * [`shadow`] — observation-only LLC hooks ([`shadow::LlcObserver`])
//!   that conformance checkers use to shadow every lookup/fill event.
//! * [`prefetch`] — the prefetcher framework plus seven prefetchers:
//!   next-line, IP-stride (the baseline pair), and simplified SPP+PPF,
//!   Bingo, IPCP, Berti and Gaze models for the paper's Fig 23 sweep.
//!
//! # Example: a tiny two-level lookup
//!
//! ```
//! use drishti_mem::cache::{CacheConfig, PrivateCache};
//!
//! let mut l1 = PrivateCache::new(CacheConfig::l1d());
//! assert!(!l1.access(0x40, false)); // cold miss
//! l1.fill(0x40, false);
//! assert!(l1.access(0x40, false)); // now a hit
//! ```

pub mod access;
pub mod bits;
pub mod cache;
pub mod dram;
pub mod llc;
pub mod policy;
pub mod prefetch;
pub mod shadow;

/// Bytes per cache line across the hierarchy.
pub const LINE_BYTES: u64 = 64;

/// A cache-line address (byte address >> 6).
pub type LineAddr = u64;

/// Identifier of a core (and, one slice per core, of its home tile).
pub type CoreId = usize;

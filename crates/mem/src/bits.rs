//! Dense `u64` bitset helpers for the struct-of-arrays cache layouts
//! (see DESIGN.md §15).
//!
//! Both [`crate::llc::SlicedLlc`] and [`crate::cache::PrivateCache`] keep
//! their valid/dirty flags packed 64 lines to a word so the tag-match and
//! victim scans stay branch-light: a set's occupancy is a single
//! [`range_mask`] extraction, and way iteration walks set bits with
//! `trailing_zeros` instead of testing a `bool` per way.

/// Whether bit `i` is set.
#[inline]
pub fn bit_get(bits: &[u64], i: usize) -> bool {
    bits[i >> 6] >> (i & 63) & 1 != 0
}

/// Set bit `i`.
#[inline]
pub fn bit_set(bits: &mut [u64], i: usize) {
    bits[i >> 6] |= 1u64 << (i & 63);
}

/// Set bit `i` to `v`.
#[inline]
pub fn bit_assign(bits: &mut [u64], i: usize, v: bool) {
    let word = &mut bits[i >> 6];
    let mask = 1u64 << (i & 63);
    if v {
        *word |= mask;
    } else {
        *word &= !mask;
    }
}

/// The `len` bits (`len <= 64`) of `bits` starting at bit `start`, as the
/// low bits of one word.
#[inline]
pub fn range_mask(bits: &[u64], start: usize, len: usize) -> u64 {
    debug_assert!(len <= 64);
    let w = start >> 6;
    let off = start & 63;
    let mut m = bits[w] >> off;
    if off + len > 64 {
        m |= bits[w + 1] << (64 - off);
    }
    if len < 64 {
        m &= (1u64 << len) - 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_assign_round_trip() {
        let mut bits = vec![0u64; 2];
        assert!(!bit_get(&bits, 70));
        bit_set(&mut bits, 70);
        assert!(bit_get(&bits, 70));
        bit_assign(&mut bits, 70, false);
        assert!(!bit_get(&bits, 70));
        bit_assign(&mut bits, 3, true);
        assert!(bit_get(&bits, 3));
    }

    #[test]
    fn range_mask_within_one_word() {
        let bits = vec![0b1011_0100u64];
        assert_eq!(range_mask(&bits, 2, 4), 0b1101);
        assert_eq!(range_mask(&bits, 0, 8), 0b1011_0100);
    }

    #[test]
    fn range_mask_spans_word_boundary() {
        let mut bits = vec![0u64; 2];
        bit_set(&mut bits, 63);
        bit_set(&mut bits, 64);
        bit_set(&mut bits, 66);
        assert_eq!(range_mask(&bits, 62, 6), 0b010110);
    }

    #[test]
    fn range_mask_full_word() {
        let bits = vec![u64::MAX, 0];
        assert_eq!(range_mask(&bits, 0, 64), u64::MAX);
        assert_eq!(range_mask(&bits, 32, 64), u64::MAX >> 32);
    }
}

//! Private set-associative caches (L1D and L2).
//!
//! These levels only need to *filter* the stream that reaches the shared
//! LLC, so they use simple stack policies: true LRU at L1D and SRRIP at L2
//! (paper Table 4). The LLC itself lives in [`crate::llc`] with pluggable
//! policies.

use crate::LineAddr;

/// Replacement policy for a private cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementKind {
    /// True least-recently-used.
    Lru,
    /// Static re-reference interval prediction (2-bit RRPV, insert at 2,
    /// promote to 0 on hit) — the paper's L2 policy.
    Srrip,
}

/// Geometry and policy of a [`PrivateCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Replacement policy.
    pub replacement: ReplacementKind,
    /// Access latency in cycles (hit latency).
    pub latency: u64,
    /// Miss-status-holding registers: outstanding misses this level supports.
    pub mshrs: usize,
}

impl CacheConfig {
    /// Paper Table 4 L1D: 32 KB, 8-way, 4 cycles, 8 MSHRs, LRU.
    pub fn l1d() -> Self {
        CacheConfig {
            sets: 64,
            ways: 8,
            replacement: ReplacementKind::Lru,
            latency: 4,
            mshrs: 8,
        }
    }

    /// Paper Table 4 L2: 512 KB, 8-way, 15 cycles, 32 MSHRs, SRRIP.
    pub fn l2() -> Self {
        CacheConfig {
            sets: 1024,
            ways: 8,
            replacement: ReplacementKind::Srrip,
            latency: 15,
            mshrs: 32,
        }
    }

    /// An L2 of `kib` kibibytes (8-way), for the paper's Fig 21 L2-size
    /// sensitivity sweep (256 KB … 2 MB).
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is not a power of two or is zero.
    pub fn l2_with_kib(kib: usize) -> Self {
        let sets = kib * 1024 / 64 / 8;
        assert!(
            sets.is_power_of_two() && sets > 0,
            "invalid L2 size {kib} KiB"
        );
        CacheConfig {
            sets,
            ..CacheConfig::l2()
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * crate::LINE_BYTES as usize
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp or RRPV, depending on the policy.
    meta: u64,
}

drishti_noc::impl_persist_fields!(Line {
    tag,
    valid,
    dirty,
    meta
});

/// Hit/miss and write-back statistics for one private cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookup count.
    pub accesses: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Dirty victims produced by fills.
    pub writebacks: u64,
    /// Fills performed.
    pub fills: u64,
}

drishti_noc::impl_persist_fields!(CacheStats {
    accesses,
    hits,
    misses,
    writebacks,
    fills
});

impl CacheStats {
    /// Miss ratio in `[0, 1]` (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A victim line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The victim's line address.
    pub line: LineAddr,
    /// Whether it must be written back to the next level.
    pub dirty: bool,
}

/// A private (per-core) set-associative cache.
///
/// The functional contract is split in two so the caller controls timing:
/// [`PrivateCache::access`] probes (and on a hit updates recency/dirty
/// state); on a miss the caller fetches the line from the next level and
/// then calls [`PrivateCache::fill`], which may hand back a dirty victim to
/// write back.
#[derive(Debug, Clone)]
pub struct PrivateCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

const SRRIP_MAX: u64 = 3;
const SRRIP_INSERT: u64 = 2;

impl PrivateCache {
    /// Create an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways > 0, "ways must be nonzero");
        PrivateCache {
            sets: vec![vec![Line::default(); cfg.ways]; cfg.sets],
            cfg,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn index(&self, line: LineAddr) -> (usize, u64) {
        let set = (line as usize) & (self.cfg.sets - 1);
        let tag = line >> self.cfg.sets.trailing_zeros();
        (set, tag)
    }

    /// Probe for `line`. On a hit, recency state is updated and the line is
    /// marked dirty if `is_store`. Returns `true` on hit.
    pub fn access(&mut self, line: LineAddr, is_store: bool) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let (set, tag) = self.index(line);
        let clock = self.clock;
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                self.stats.hits += 1;
                way.dirty |= is_store;
                match self.cfg.replacement {
                    ReplacementKind::Lru => way.meta = clock,
                    ReplacementKind::Srrip => way.meta = 0,
                }
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Probe without updating any state (for instrumentation).
    pub fn peek(&self, line: LineAddr) -> bool {
        let (set, tag) = self.index(line);
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Install `line` (after a miss was serviced). Returns a dirty victim if
    /// one must be written back. Filling a line that is already present just
    /// refreshes it.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        self.clock += 1;
        self.stats.fills += 1;
        let (set, tag) = self.index(line);
        let sets_bits = self.cfg.sets.trailing_zeros();
        let clock = self.clock;

        // Already present (e.g. a racing prefetch): refresh in place.
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.valid && w.tag == tag) {
            way.dirty |= dirty;
            match self.cfg.replacement {
                ReplacementKind::Lru => way.meta = clock,
                ReplacementKind::Srrip => way.meta = 0,
            }
            return None;
        }

        let victim_way = self.choose_victim(set);
        let victim = &mut self.sets[set][victim_way];
        let evicted = if victim.valid && victim.dirty {
            Some(Evicted {
                line: (victim.tag << sets_bits) | set as u64,
                dirty: true,
            })
        } else {
            None
        };
        if evicted.is_some() {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty,
            meta: match self.cfg.replacement {
                ReplacementKind::Lru => clock,
                ReplacementKind::Srrip => SRRIP_INSERT,
            },
        };
        None.or(evicted)
    }

    fn choose_victim(&mut self, set: usize) -> usize {
        // Prefer an invalid way.
        if let Some(w) = self.sets[set].iter().position(|l| !l.valid) {
            return w;
        }
        match self.cfg.replacement {
            ReplacementKind::Lru => self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.meta)
                .map(|(i, _)| i)
                .expect("nonzero ways"),
            ReplacementKind::Srrip => loop {
                if let Some(w) = self.sets[set].iter().position(|l| l.meta >= SRRIP_MAX) {
                    return w;
                }
                for l in &mut self.sets[set] {
                    l.meta += 1;
                }
            },
        }
    }

    /// Invalidate `line` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let (set, tag) = self.index(line);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.valid = false;
                return Some(way.dirty);
            }
        }
        None
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset statistics (contents retained) — used after warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of valid lines currently resident (for tests).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.valid).count()
    }
}

// The cache's mutable run-state: line array, replacement clock, stats.
// Geometry comes from config on restore, not from the snapshot.
drishti_noc::impl_persist_fields!(PrivateCache { sets, clock, stats });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1d_capacity_is_32_kib() {
        assert_eq!(CacheConfig::l1d().capacity_bytes(), 32 * 1024);
    }

    #[test]
    fn l2_capacity_is_512_kib() {
        assert_eq!(CacheConfig::l2().capacity_bytes(), 512 * 1024);
    }

    #[test]
    fn l2_size_sweep_configs() {
        assert_eq!(CacheConfig::l2_with_kib(256).capacity_bytes(), 256 * 1024);
        assert_eq!(CacheConfig::l2_with_kib(1024).capacity_bytes(), 1024 * 1024);
        assert_eq!(CacheConfig::l2_with_kib(2048).capacity_bytes(), 2048 * 1024);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = PrivateCache::new(CacheConfig::l1d());
        assert!(!c.access(100, false));
        c.fill(100, false);
        assert!(c.access(100, false));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 2,
            replacement: ReplacementKind::Lru,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        c.fill(1, false);
        c.fill(2, false);
        c.access(1, false); // 1 is now MRU
        c.fill(3, false); // evicts 2
        assert!(c.peek(1));
        assert!(!c.peek(2));
        assert!(c.peek(3));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 1,
            replacement: ReplacementKind::Lru,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        c.fill(5, true);
        let ev = c.fill(9, false).expect("dirty victim");
        assert_eq!(ev.line, 5);
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 1,
            replacement: ReplacementKind::Lru,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        c.fill(5, false);
        assert!(c.fill(9, false).is_none());
    }

    #[test]
    fn store_hit_marks_dirty_and_later_writes_back() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 1,
            replacement: ReplacementKind::Lru,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        c.fill(5, false);
        assert!(c.access(5, true)); // store hit marks dirty
        let ev = c.fill(9, false).expect("dirty victim");
        assert!(ev.dirty);
    }

    #[test]
    fn victim_line_address_reconstruction() {
        let cfg = CacheConfig {
            sets: 4,
            ways: 1,
            replacement: ReplacementKind::Lru,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        let addr = 0b10_1101; // set 1, tag 0b1011
        c.fill(addr, true);
        let ev = c.fill(addr + 4 * 7, false).expect("same set, dirty victim");
        assert_eq!(ev.line, addr);
    }

    #[test]
    fn srrip_promotes_on_hit() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 2,
            replacement: ReplacementKind::Srrip,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        c.fill(1, false);
        c.fill(2, false);
        c.access(1, false); // rrpv(1) = 0
        c.fill(3, false); // must evict 2 (rrpv 2) not 1 (rrpv 0)
        assert!(c.peek(1));
        assert!(!c.peek(2));
    }

    #[test]
    fn fill_present_line_does_not_duplicate() {
        let mut c = PrivateCache::new(CacheConfig::l1d());
        c.fill(7, false);
        c.fill(7, true);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = PrivateCache::new(CacheConfig::l1d());
        c.fill(7, true);
        assert_eq!(c.invalidate(7), Some(true));
        assert!(!c.peek(7));
        assert_eq!(c.invalidate(7), None);
    }

    #[test]
    fn resident_never_exceeds_capacity() {
        let cfg = CacheConfig {
            sets: 4,
            ways: 2,
            replacement: ReplacementKind::Lru,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        for a in 0..1000u64 {
            if !c.access(a % 37, a % 3 == 0) {
                c.fill(a % 37, false);
            }
            assert!(c.resident_lines() <= 8);
        }
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = PrivateCache::new(CacheConfig::l1d());
        c.access(1, false);
        c.fill(1, false);
        c.access(1, false);
        let s = c.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-9);
    }
}

//! Private set-associative caches (L1D and L2).
//!
//! These levels only need to *filter* the stream that reaches the shared
//! LLC, so they use simple stack policies: true LRU at L1D and SRRIP at L2
//! (paper Table 4). The LLC itself lives in [`crate::llc`] with pluggable
//! policies.

use crate::bits::{bit_assign, bit_get, bit_set, range_mask};
use crate::LineAddr;
use drishti_noc::snap::{Persist, SnapError, StateReader, StateWriter};

/// Replacement policy for a private cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementKind {
    /// True least-recently-used.
    Lru,
    /// Static re-reference interval prediction (2-bit RRPV, insert at 2,
    /// promote to 0 on hit) — the paper's L2 policy.
    Srrip,
}

/// Geometry and policy of a [`PrivateCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Replacement policy.
    pub replacement: ReplacementKind,
    /// Access latency in cycles (hit latency).
    pub latency: u64,
    /// Miss-status-holding registers: outstanding misses this level supports.
    pub mshrs: usize,
}

impl CacheConfig {
    /// Paper Table 4 L1D: 32 KB, 8-way, 4 cycles, 8 MSHRs, LRU.
    pub fn l1d() -> Self {
        CacheConfig {
            sets: 64,
            ways: 8,
            replacement: ReplacementKind::Lru,
            latency: 4,
            mshrs: 8,
        }
    }

    /// Paper Table 4 L2: 512 KB, 8-way, 15 cycles, 32 MSHRs, SRRIP.
    pub fn l2() -> Self {
        CacheConfig {
            sets: 1024,
            ways: 8,
            replacement: ReplacementKind::Srrip,
            latency: 15,
            mshrs: 32,
        }
    }

    /// An L2 of `kib` kibibytes (8-way), for the paper's Fig 21 L2-size
    /// sensitivity sweep (256 KB … 2 MB).
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is not a power of two or is zero.
    pub fn l2_with_kib(kib: usize) -> Self {
        let sets = kib * 1024 / 64 / 8;
        assert!(
            sets.is_power_of_two() && sets > 0,
            "invalid L2 size {kib} KiB"
        );
        CacheConfig {
            sets,
            ..CacheConfig::l2()
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * crate::LINE_BYTES as usize
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp or RRPV, depending on the policy.
    meta: u64,
}

drishti_noc::impl_persist_fields!(Line {
    tag,
    valid,
    dirty,
    meta
});

/// Hit/miss and write-back statistics for one private cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookup count.
    pub accesses: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Dirty victims produced by fills.
    pub writebacks: u64,
    /// Fills performed.
    pub fills: u64,
}

drishti_noc::impl_persist_fields!(CacheStats {
    accesses,
    hits,
    misses,
    writebacks,
    fills
});

impl CacheStats {
    /// Miss ratio in `[0, 1]` (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A victim line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The victim's line address.
    pub line: LineAddr,
    /// Whether it must be written back to the next level.
    pub dirty: bool,
}

/// A private (per-core) set-associative cache.
///
/// The functional contract is split in two so the caller controls timing:
/// [`PrivateCache::access`] probes (and on a hit updates recency/dirty
/// state); on a miss the caller fetches the line from the next level and
/// then calls [`PrivateCache::fill`], which may hand back a dirty victim to
/// write back.
///
/// Line metadata lives in a struct-of-arrays layout (DESIGN.md §15): the
/// probe scan walks a packed tag array guided by a valid bitset, and the
/// dirty/meta planes are touched only on hit or victim selection. Snapshots
/// still use the historical per-line `Line` encoding — see the manual
/// `Persist` impl below.
#[derive(Debug, Clone)]
pub struct PrivateCache {
    cfg: CacheConfig,
    /// Tag per line, indexed `set * ways + way`.
    tags: Vec<u64>,
    /// Valid bits, 64 lines per word.
    valid: Vec<u64>,
    /// Dirty bits, 64 lines per word.
    dirty: Vec<u64>,
    /// LRU timestamp or RRPV per line, depending on the policy.
    meta: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

const SRRIP_MAX: u64 = 3;
const SRRIP_INSERT: u64 = 2;

impl PrivateCache {
    /// Create an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways > 0, "ways must be nonzero");
        let total = cfg.sets * cfg.ways;
        let words = total.div_ceil(64);
        PrivateCache {
            cfg,
            tags: vec![0; total],
            valid: vec![0; words],
            dirty: vec![0; words],
            meta: vec![0; total],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn index(&self, line: LineAddr) -> (usize, u64) {
        let set = (line as usize) & (self.cfg.sets - 1);
        let tag = line >> self.cfg.sets.trailing_zeros();
        (set, tag)
    }

    /// Way index of `tag` in the set starting at line index `base`, if
    /// resident: a bit scan of the valid mask plus tag compares.
    #[inline]
    fn probe(&self, base: usize, tag: u64) -> Option<usize> {
        let ways = self.cfg.ways;
        if ways <= 64 {
            let mut m = range_mask(&self.valid, base, ways);
            while m != 0 {
                let w = m.trailing_zeros() as usize;
                if self.tags[base + w] == tag {
                    return Some(w);
                }
                m &= m - 1;
            }
            None
        } else {
            (0..ways).find(|&w| bit_get(&self.valid, base + w) && self.tags[base + w] == tag)
        }
    }

    /// Probe for `line`. On a hit, recency state is updated and the line is
    /// marked dirty if `is_store`. Returns `true` on hit.
    pub fn access(&mut self, line: LineAddr, is_store: bool) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let (set, tag) = self.index(line);
        let base = set * self.cfg.ways;
        if let Some(way) = self.probe(base, tag) {
            let g = base + way;
            self.stats.hits += 1;
            if is_store {
                bit_set(&mut self.dirty, g);
            }
            self.meta[g] = match self.cfg.replacement {
                ReplacementKind::Lru => self.clock,
                ReplacementKind::Srrip => 0,
            };
            return true;
        }
        self.stats.misses += 1;
        false
    }

    /// Probe without updating any state (for instrumentation).
    pub fn peek(&self, line: LineAddr) -> bool {
        let (set, tag) = self.index(line);
        self.probe(set * self.cfg.ways, tag).is_some()
    }

    /// Install `line` (after a miss was serviced). Returns a dirty victim if
    /// one must be written back. Filling a line that is already present just
    /// refreshes it.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        self.clock += 1;
        self.stats.fills += 1;
        let (set, tag) = self.index(line);
        let sets_bits = self.cfg.sets.trailing_zeros();
        let base = set * self.cfg.ways;

        // Already present (e.g. a racing prefetch): refresh in place.
        if let Some(way) = self.probe(base, tag) {
            let g = base + way;
            if dirty {
                bit_set(&mut self.dirty, g);
            }
            self.meta[g] = match self.cfg.replacement {
                ReplacementKind::Lru => self.clock,
                ReplacementKind::Srrip => 0,
            };
            return None;
        }

        let victim_way = self.choose_victim(base);
        let g = base + victim_way;
        let evicted = if bit_get(&self.valid, g) && bit_get(&self.dirty, g) {
            Some(Evicted {
                line: (self.tags[g] << sets_bits) | set as u64,
                dirty: true,
            })
        } else {
            None
        };
        if evicted.is_some() {
            self.stats.writebacks += 1;
        }
        self.tags[g] = tag;
        bit_set(&mut self.valid, g);
        bit_assign(&mut self.dirty, g, dirty);
        self.meta[g] = match self.cfg.replacement {
            ReplacementKind::Lru => self.clock,
            ReplacementKind::Srrip => SRRIP_INSERT,
        };
        evicted
    }

    fn choose_victim(&mut self, base: usize) -> usize {
        let ways = self.cfg.ways;
        // Prefer an invalid way.
        if ways <= 64 {
            let full = if ways == 64 {
                u64::MAX
            } else {
                (1u64 << ways) - 1
            };
            let free = !range_mask(&self.valid, base, ways) & full;
            if free != 0 {
                return free.trailing_zeros() as usize;
            }
        } else if let Some(w) = (0..ways).find(|&w| !bit_get(&self.valid, base + w)) {
            return w;
        }
        match self.cfg.replacement {
            // First minimal timestamp, matching `Iterator::min_by_key` on
            // the per-line layout.
            ReplacementKind::Lru => {
                let mut best = 0;
                let mut best_meta = self.meta[base];
                for w in 1..ways {
                    if self.meta[base + w] < best_meta {
                        best = w;
                        best_meta = self.meta[base + w];
                    }
                }
                best
            }
            ReplacementKind::Srrip => loop {
                if let Some(w) = (0..ways).find(|&w| self.meta[base + w] >= SRRIP_MAX) {
                    return w;
                }
                for w in 0..ways {
                    self.meta[base + w] += 1;
                }
            },
        }
    }

    /// Invalidate `line` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let (set, tag) = self.index(line);
        let base = set * self.cfg.ways;
        if let Some(way) = self.probe(base, tag) {
            let g = base + way;
            bit_assign(&mut self.valid, g, false);
            return Some(bit_get(&self.dirty, g));
        }
        None
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset statistics (contents retained) — used after warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of valid lines currently resident (for tests).
    pub fn resident_lines(&self) -> usize {
        self.valid.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The [`Line`] view of slot `g`, materialised from the SoA planes for
    /// the snapshot encoding.
    fn line_at(&self, g: usize) -> Line {
        Line {
            tag: self.tags[g],
            valid: bit_get(&self.valid, g),
            dirty: bit_get(&self.dirty, g),
            meta: self.meta[g],
        }
    }
}

// The cache's mutable run-state: line array, replacement clock, stats.
// Geometry comes from config on restore, not from the snapshot. The line
// array is written in the historical `Vec<Vec<Line>>` per-line encoding so
// `drishti-ckpt/v1` snapshots stay byte-identical across the SoA rework
// (DESIGN.md §15).
impl Persist for PrivateCache {
    fn save(&self, w: &mut StateWriter) {
        w.put_u64(self.cfg.sets as u64);
        for set in 0..self.cfg.sets {
            w.put_u64(self.cfg.ways as u64);
            for way in 0..self.cfg.ways {
                self.line_at(set * self.cfg.ways + way).save(w);
            }
        }
        self.clock.save(w);
        self.stats.save(w);
    }

    fn load(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let mut sets: Vec<Vec<Line>> = Vec::new();
        sets.load(r)?;
        if sets.len() != self.cfg.sets || sets.iter().any(|s| s.len() != self.cfg.ways) {
            return Err(SnapError::Invalid {
                what: "private cache lines",
                detail: format!(
                    "snapshot line array does not match geometry \
                     ({} sets x {} ways expected)",
                    self.cfg.sets, self.cfg.ways
                ),
            });
        }
        for (set, lines) in sets.iter().enumerate() {
            for (way, l) in lines.iter().enumerate() {
                let g = set * self.cfg.ways + way;
                self.tags[g] = l.tag;
                bit_assign(&mut self.valid, g, l.valid);
                bit_assign(&mut self.dirty, g, l.dirty);
                self.meta[g] = l.meta;
            }
        }
        self.clock.load(r)?;
        self.stats.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1d_capacity_is_32_kib() {
        assert_eq!(CacheConfig::l1d().capacity_bytes(), 32 * 1024);
    }

    #[test]
    fn l2_capacity_is_512_kib() {
        assert_eq!(CacheConfig::l2().capacity_bytes(), 512 * 1024);
    }

    #[test]
    fn l2_size_sweep_configs() {
        assert_eq!(CacheConfig::l2_with_kib(256).capacity_bytes(), 256 * 1024);
        assert_eq!(CacheConfig::l2_with_kib(1024).capacity_bytes(), 1024 * 1024);
        assert_eq!(CacheConfig::l2_with_kib(2048).capacity_bytes(), 2048 * 1024);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = PrivateCache::new(CacheConfig::l1d());
        assert!(!c.access(100, false));
        c.fill(100, false);
        assert!(c.access(100, false));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 2,
            replacement: ReplacementKind::Lru,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        c.fill(1, false);
        c.fill(2, false);
        c.access(1, false); // 1 is now MRU
        c.fill(3, false); // evicts 2
        assert!(c.peek(1));
        assert!(!c.peek(2));
        assert!(c.peek(3));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 1,
            replacement: ReplacementKind::Lru,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        c.fill(5, true);
        let ev = c.fill(9, false).expect("dirty victim");
        assert_eq!(ev.line, 5);
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 1,
            replacement: ReplacementKind::Lru,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        c.fill(5, false);
        assert!(c.fill(9, false).is_none());
    }

    #[test]
    fn store_hit_marks_dirty_and_later_writes_back() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 1,
            replacement: ReplacementKind::Lru,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        c.fill(5, false);
        assert!(c.access(5, true)); // store hit marks dirty
        let ev = c.fill(9, false).expect("dirty victim");
        assert!(ev.dirty);
    }

    #[test]
    fn victim_line_address_reconstruction() {
        let cfg = CacheConfig {
            sets: 4,
            ways: 1,
            replacement: ReplacementKind::Lru,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        let addr = 0b10_1101; // set 1, tag 0b1011
        c.fill(addr, true);
        let ev = c.fill(addr + 4 * 7, false).expect("same set, dirty victim");
        assert_eq!(ev.line, addr);
    }

    #[test]
    fn srrip_promotes_on_hit() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 2,
            replacement: ReplacementKind::Srrip,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        c.fill(1, false);
        c.fill(2, false);
        c.access(1, false); // rrpv(1) = 0
        c.fill(3, false); // must evict 2 (rrpv 2) not 1 (rrpv 0)
        assert!(c.peek(1));
        assert!(!c.peek(2));
    }

    #[test]
    fn fill_present_line_does_not_duplicate() {
        let mut c = PrivateCache::new(CacheConfig::l1d());
        c.fill(7, false);
        c.fill(7, true);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = PrivateCache::new(CacheConfig::l1d());
        c.fill(7, true);
        assert_eq!(c.invalidate(7), Some(true));
        assert!(!c.peek(7));
        assert_eq!(c.invalidate(7), None);
    }

    #[test]
    fn resident_never_exceeds_capacity() {
        let cfg = CacheConfig {
            sets: 4,
            ways: 2,
            replacement: ReplacementKind::Lru,
            latency: 1,
            mshrs: 8,
        };
        let mut c = PrivateCache::new(cfg);
        for a in 0..1000u64 {
            if !c.access(a % 37, a % 3 == 0) {
                c.fill(a % 37, false);
            }
            assert!(c.resident_lines() <= 8);
        }
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = PrivateCache::new(CacheConfig::l1d());
        c.access(1, false);
        c.fill(1, false);
        c.access(1, false);
        let s = c.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-9);
    }
}

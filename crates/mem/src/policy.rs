//! The sliced-LLC replacement-policy interface.
//!
//! A single [`LlcPolicy`] object governs *all* slices of the LLC. This is
//! deliberate: the Drishti design space is about which state is per-slice
//! (sampled caches) and which is global (reuse predictors), so the policy
//! must be able to own both kinds of state. Per-slice policies (LRU, SRRIP)
//! simply keep independent state per slice and ignore the rest.
//!
//! The container ([`crate::llc::SlicedLlc`]) drives the policy with four
//! events per request: `on_hit`, `on_miss`, `choose_victim` (only when the
//! set is full) and `on_fill`. Two of them return *extra critical-path
//! cycles*, which is how predictor-fabric latency (mesh vs. NOCSTAR,
//! paper Fig 11) is charged to the request.

use crate::access::Access;
use crate::{CoreId, LineAddr};
use drishti_noc::NocStats;

/// Where a request landed inside the sliced LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LlcLoc {
    /// Slice index (one slice per core in the baseline).
    pub slice: usize,
    /// Set index within the slice.
    pub set: usize,
}

/// Replacement-relevant state of one resident LLC line, as exposed to
/// policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LlcLineState {
    /// The resident line address (0 if invalid).
    pub line: LineAddr,
    /// Whether this way holds a valid line.
    pub valid: bool,
    /// Whether the line is dirty (must be written back on eviction).
    pub dirty: bool,
    /// The core whose request installed the line.
    pub core: CoreId,
    /// The PC signature ([`Access::signature`]) that installed the line.
    pub signature: u64,
}

drishti_noc::impl_persist_fields!(LlcLineState {
    line,
    valid,
    dirty,
    core,
    signature
});

/// A victim decision for a fill into a full set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Evict the line in this way and install the new line there.
    Evict(usize),
    /// Do not cache the new line at all (paper policies may bypass
    /// cache-averse fills).
    Bypass,
}

/// How to interpret the per-way metadata a policy exposes via
/// [`PolicyProbe::probe_set`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// Values are recency stamps: nonzero values must be pairwise
    /// distinct within a set (LRU-family clocks).
    RecencyStamp,
    /// Values are bounded counters (RRPV, ETR): every value must lie in
    /// `min..=max`.
    Bounded {
        /// Smallest legal value.
        min: i64,
        /// Largest legal value.
        max: i64,
    },
}

/// A snapshot of one set's per-way replacement metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetProbe {
    /// How to validate [`SetProbe::values`].
    pub kind: ProbeKind,
    /// One metadata value per way, widened to `i64`.
    pub values: Vec<i64>,
}

impl SetProbe {
    /// Check this snapshot against its own declared invariant. Returns a
    /// human-readable violation description, or `None` if the snapshot is
    /// well-formed.
    pub fn check(&self) -> Option<String> {
        match self.kind {
            ProbeKind::Bounded { min, max } => {
                for (way, &v) in self.values.iter().enumerate() {
                    if v < min || v > max {
                        return Some(format!("way {way} metadata {v} outside [{min}, {max}]"));
                    }
                }
                None
            }
            ProbeKind::RecencyStamp => {
                let mut seen = Vec::with_capacity(self.values.len());
                for (way, &v) in self.values.iter().enumerate() {
                    if v != 0 {
                        if seen.contains(&v) {
                            return Some(format!("way {way} duplicates recency stamp {v}"));
                        }
                        seen.push(v);
                    }
                }
                None
            }
        }
    }
}

/// Narrow introspection surface a policy may expose for conformance
/// checking: a read-only snapshot of one set's per-way metadata plus the
/// invariant it must satisfy.
///
/// This deliberately reveals nothing about global predictor state — only
/// the per-line replacement fields whose corruption the shadow checker
/// could never infer from hit/miss behaviour alone.
pub trait PolicyProbe {
    /// Snapshot the per-way metadata of the set at `loc`.
    fn probe_set(&self, loc: LlcLoc) -> SetProbe;
}

/// A replacement policy for the sliced LLC.
///
/// Implementations are constructed with the LLC geometry (see
/// [`crate::llc::LlcGeometry`]) so they can size per-slice/per-set metadata.
pub trait LlcPolicy: std::fmt::Debug {
    /// Human-readable policy name, e.g. `"mockingjay"` or `"d-hawkeye"`.
    fn name(&self) -> String;

    /// A resident line was hit. `way` indexes into `lines`. Returns extra
    /// critical-path cycles (almost always 0 on hits).
    fn on_hit(
        &mut self,
        loc: LlcLoc,
        way: usize,
        lines: &[LlcLineState],
        acc: &Access,
        cycle: u64,
    ) -> u64;

    /// A lookup missed (called before the fill, so samplers observe the
    /// miss even if the fill later bypasses).
    fn on_miss(&mut self, loc: LlcLoc, acc: &Access, cycle: u64);

    /// Choose a victim for a fill into a *full* set.
    fn choose_victim(
        &mut self,
        loc: LlcLoc,
        lines: &[LlcLineState],
        acc: &Access,
        cycle: u64,
    ) -> Decision;

    /// A line was installed in `way` (after any eviction). `evicted` is the
    /// line that was displaced, if the set was full. Returns extra
    /// critical-path cycles charged to the miss — this is where remote
    /// predictor lookups bill their fabric latency.
    fn on_fill(
        &mut self,
        loc: LlcLoc,
        way: usize,
        lines: &[LlcLineState],
        acc: &Access,
        evicted: Option<&LlcLineState>,
        cycle: u64,
    ) -> u64;

    /// Predictor-fabric traffic accumulated by this policy (zero for
    /// memoryless policies).
    fn fabric_stats(&self) -> NocStats {
        NocStats::default()
    }

    /// Per-policy diagnostic counters (sampler hits, trainings, …) as
    /// `(name, value)` pairs for experiment output.
    fn diagnostics(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// The policy's [`PolicyProbe`] introspection surface, if it exposes
    /// one. The container forwards probe snapshots to shadow observers on
    /// every fill; policies without checkable per-way metadata return
    /// `None` (the default).
    fn probe(&self) -> Option<&dyn PolicyProbe> {
        None
    }

    /// Serialize the policy's mutable predictor/replacement state for a
    /// checkpoint. Memoryless policies keep the no-op default; the loader
    /// reconstructs the policy object from configuration before calling
    /// [`LlcPolicy::load_state`], so only run-state belongs here.
    fn save_state(&self, _w: &mut drishti_noc::snap::StateWriter) {}

    /// Restore state written by [`LlcPolicy::save_state`] into a freshly
    /// constructed policy of the same configuration.
    fn load_state(
        &mut self,
        _r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal always-evict-way-0 policy to exercise the trait surface.
    #[derive(Debug, Default)]
    struct EvictZero;

    impl LlcPolicy for EvictZero {
        fn name(&self) -> String {
            "evict-zero".into()
        }
        fn on_hit(&mut self, _: LlcLoc, _: usize, _: &[LlcLineState], _: &Access, _: u64) -> u64 {
            0
        }
        fn on_miss(&mut self, _: LlcLoc, _: &Access, _: u64) {}
        fn choose_victim(&mut self, _: LlcLoc, _: &[LlcLineState], _: &Access, _: u64) -> Decision {
            Decision::Evict(0)
        }
        fn on_fill(
            &mut self,
            _: LlcLoc,
            _: usize,
            _: &[LlcLineState],
            _: &Access,
            _: Option<&LlcLineState>,
            _: u64,
        ) -> u64 {
            0
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let p: Box<dyn LlcPolicy> = Box::new(EvictZero);
        assert_eq!(p.name(), "evict-zero");
        assert_eq!(p.fabric_stats(), NocStats::default());
        assert!(p.diagnostics().is_empty());
    }

    #[test]
    fn default_line_state_is_invalid() {
        let l = LlcLineState::default();
        assert!(!l.valid);
        assert!(!l.dirty);
    }

    #[test]
    fn default_probe_is_absent() {
        let p: Box<dyn LlcPolicy> = Box::new(EvictZero);
        assert!(p.probe().is_none());
    }

    #[test]
    fn bounded_probe_flags_out_of_range() {
        let ok = SetProbe {
            kind: ProbeKind::Bounded { min: 0, max: 3 },
            values: vec![0, 3, 1, 2],
        };
        assert!(ok.check().is_none());
        let bad = SetProbe {
            kind: ProbeKind::Bounded { min: 0, max: 3 },
            values: vec![0, 4],
        };
        assert!(bad.check().unwrap().contains("outside"));
    }

    #[test]
    fn recency_probe_flags_duplicates_but_allows_zero() {
        let ok = SetProbe {
            kind: ProbeKind::RecencyStamp,
            values: vec![0, 0, 5, 9],
        };
        assert!(ok.check().is_none());
        let bad = SetProbe {
            kind: ProbeKind::RecencyStamp,
            values: vec![7, 7],
        };
        assert!(bad.check().unwrap().contains("duplicates"));
    }
}

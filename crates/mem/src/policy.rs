//! The sliced-LLC replacement-policy interface.
//!
//! A single [`LlcPolicy`] object governs *all* slices of the LLC. This is
//! deliberate: the Drishti design space is about which state is per-slice
//! (sampled caches) and which is global (reuse predictors), so the policy
//! must be able to own both kinds of state. Per-slice policies (LRU, SRRIP)
//! simply keep independent state per slice and ignore the rest.
//!
//! The container ([`crate::llc::SlicedLlc`]) drives the policy with four
//! events per request: `on_hit`, `on_miss`, `choose_victim` (only when the
//! set is full) and `on_fill`. Two of them return *extra critical-path
//! cycles*, which is how predictor-fabric latency (mesh vs. NOCSTAR,
//! paper Fig 11) is charged to the request.

use crate::access::Access;
use crate::{CoreId, LineAddr};
use drishti_noc::NocStats;

/// Where a request landed inside the sliced LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LlcLoc {
    /// Slice index (one slice per core in the baseline).
    pub slice: usize,
    /// Set index within the slice.
    pub set: usize,
}

/// Replacement-relevant state of one resident LLC line, as exposed to
/// policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LlcLineState {
    /// The resident line address (0 if invalid).
    pub line: LineAddr,
    /// Whether this way holds a valid line.
    pub valid: bool,
    /// Whether the line is dirty (must be written back on eviction).
    pub dirty: bool,
    /// The core whose request installed the line.
    pub core: CoreId,
    /// The PC signature ([`Access::signature`]) that installed the line.
    pub signature: u64,
}

/// A victim decision for a fill into a full set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Evict the line in this way and install the new line there.
    Evict(usize),
    /// Do not cache the new line at all (paper policies may bypass
    /// cache-averse fills).
    Bypass,
}

/// A replacement policy for the sliced LLC.
///
/// Implementations are constructed with the LLC geometry (see
/// [`crate::llc::LlcGeometry`]) so they can size per-slice/per-set metadata.
pub trait LlcPolicy: std::fmt::Debug {
    /// Human-readable policy name, e.g. `"mockingjay"` or `"d-hawkeye"`.
    fn name(&self) -> String;

    /// A resident line was hit. `way` indexes into `lines`. Returns extra
    /// critical-path cycles (almost always 0 on hits).
    fn on_hit(
        &mut self,
        loc: LlcLoc,
        way: usize,
        lines: &[LlcLineState],
        acc: &Access,
        cycle: u64,
    ) -> u64;

    /// A lookup missed (called before the fill, so samplers observe the
    /// miss even if the fill later bypasses).
    fn on_miss(&mut self, loc: LlcLoc, acc: &Access, cycle: u64);

    /// Choose a victim for a fill into a *full* set.
    fn choose_victim(
        &mut self,
        loc: LlcLoc,
        lines: &[LlcLineState],
        acc: &Access,
        cycle: u64,
    ) -> Decision;

    /// A line was installed in `way` (after any eviction). `evicted` is the
    /// line that was displaced, if the set was full. Returns extra
    /// critical-path cycles charged to the miss — this is where remote
    /// predictor lookups bill their fabric latency.
    fn on_fill(
        &mut self,
        loc: LlcLoc,
        way: usize,
        lines: &[LlcLineState],
        acc: &Access,
        evicted: Option<&LlcLineState>,
        cycle: u64,
    ) -> u64;

    /// Predictor-fabric traffic accumulated by this policy (zero for
    /// memoryless policies).
    fn fabric_stats(&self) -> NocStats {
        NocStats::default()
    }

    /// Per-policy diagnostic counters (sampler hits, trainings, …) as
    /// `(name, value)` pairs for experiment output.
    fn diagnostics(&self) -> Vec<(String, u64)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal always-evict-way-0 policy to exercise the trait surface.
    #[derive(Debug, Default)]
    struct EvictZero;

    impl LlcPolicy for EvictZero {
        fn name(&self) -> String {
            "evict-zero".into()
        }
        fn on_hit(&mut self, _: LlcLoc, _: usize, _: &[LlcLineState], _: &Access, _: u64) -> u64 {
            0
        }
        fn on_miss(&mut self, _: LlcLoc, _: &Access, _: u64) {}
        fn choose_victim(&mut self, _: LlcLoc, _: &[LlcLineState], _: &Access, _: u64) -> Decision {
            Decision::Evict(0)
        }
        fn on_fill(
            &mut self,
            _: LlcLoc,
            _: usize,
            _: &[LlcLineState],
            _: &Access,
            _: Option<&LlcLineState>,
            _: u64,
        ) -> u64 {
            0
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let p: Box<dyn LlcPolicy> = Box::new(EvictZero);
        assert_eq!(p.name(), "evict-zero");
        assert_eq!(p.fabric_stats(), NocStats::default());
        assert!(p.diagnostics().is_empty());
    }

    #[test]
    fn default_line_state_is_invalid() {
        let l = LlcLineState::default();
        assert!(!l.valid);
        assert!(!l.dirty);
    }
}

//! The memory-access vocabulary shared by every hierarchy level.

use crate::{CoreId, LineAddr};

/// What kind of request is flowing through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load (has a PC; trains reuse predictors).
    Load,
    /// A demand store (has a PC; marks lines dirty).
    Store,
    /// A hardware prefetch. Carries the *triggering* load's PC, because
    /// "prefetch requests do not have a PC associated with \[them\]; policies
    /// like Mockingjay use the PC of the load that triggered the prefetch"
    /// (paper §3.3). Predictors fold a *prefetch bit* into the signature.
    Prefetch,
    /// A write-back of a dirty victim from an inner level. No PC.
    Writeback,
}

impl drishti_noc::snap::Persist for AccessKind {
    fn save(&self, w: &mut drishti_noc::snap::StateWriter) {
        w.put_u8(match self {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
            AccessKind::Prefetch => 2,
            AccessKind::Writeback => 3,
        });
    }
    fn load(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        *self = match r.take_u8("access kind tag")? {
            0 => AccessKind::Load,
            1 => AccessKind::Store,
            2 => AccessKind::Prefetch,
            3 => AccessKind::Writeback,
            other => {
                return Err(drishti_noc::snap::SnapError::Invalid {
                    what: "access kind tag",
                    detail: format!("unknown variant {other}"),
                })
            }
        };
        Ok(())
    }
}

impl AccessKind {
    /// Whether this request kind carries a meaningful PC signature.
    pub fn has_pc(self) -> bool {
        !matches!(self, AccessKind::Writeback)
    }

    /// Whether this is a demand request (load or store).
    pub fn is_demand(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Store)
    }
}

/// One memory request as seen by the shared LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The requesting core.
    pub core: CoreId,
    /// Program counter of the instruction (or triggering instruction for a
    /// prefetch; 0 for write-backs).
    pub pc: u64,
    /// Cache-line address.
    pub line: LineAddr,
    /// Request kind.
    pub kind: AccessKind,
}

/// Placeholder value required by the snapshot codec's container impls
/// (`Vec<Access>`); overwritten field-by-field on load.
impl Default for Access {
    fn default() -> Self {
        Access::load(0, 0, 0)
    }
}

drishti_noc::impl_persist_fields!(Access {
    core,
    pc,
    line,
    kind
});

impl Access {
    /// Convenience constructor for a demand load.
    pub fn load(core: CoreId, pc: u64, line: LineAddr) -> Self {
        Access {
            core,
            pc,
            line,
            kind: AccessKind::Load,
        }
    }

    /// Convenience constructor for a demand store.
    pub fn store(core: CoreId, pc: u64, line: LineAddr) -> Self {
        Access {
            core,
            pc,
            line,
            kind: AccessKind::Store,
        }
    }

    /// Convenience constructor for a prefetch triggered by `pc`.
    pub fn prefetch(core: CoreId, pc: u64, line: LineAddr) -> Self {
        Access {
            core,
            pc,
            line,
            kind: AccessKind::Prefetch,
        }
    }

    /// Convenience constructor for a write-back.
    pub fn writeback(core: CoreId, line: LineAddr) -> Self {
        Access {
            core,
            pc: 0,
            line,
            kind: AccessKind::Writeback,
        }
    }

    /// The PC signature predictors should use: the PC with a folded-in
    /// prefetch bit so demand and prefetch streams from the same PC train
    /// separate entries (paper §3.3).
    pub fn signature(&self) -> u64 {
        match self.kind {
            AccessKind::Prefetch => self.pc | (1 << 63),
            _ => self.pc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify() {
        assert!(AccessKind::Load.has_pc());
        assert!(AccessKind::Prefetch.has_pc());
        assert!(!AccessKind::Writeback.has_pc());
        assert!(AccessKind::Load.is_demand());
        assert!(AccessKind::Store.is_demand());
        assert!(!AccessKind::Prefetch.is_demand());
    }

    #[test]
    fn prefetch_signature_differs_from_demand() {
        let ld = Access::load(0, 0x400, 10);
        let pf = Access::prefetch(0, 0x400, 11);
        assert_ne!(ld.signature(), pf.signature());
        assert_eq!(ld.signature(), 0x400);
    }

    #[test]
    fn writeback_has_no_pc() {
        let wb = Access::writeback(3, 99);
        assert_eq!(wb.pc, 0);
        assert_eq!(wb.kind, AccessKind::Writeback);
    }
}

//! Named Drishti configurations.
//!
//! A [`DrishtiConfig`] bundles the three independent knobs the paper's
//! experiments turn:
//!
//! * predictor organisation ([`PredictorOrg`]) — local / centralized /
//!   per-core-global;
//! * transport ([`FabricKind`]) — none / mesh (Fig 11a) / NOCSTAR /
//!   fixed-latency (Fig 11b);
//! * sampled-set selection ([`SamplingMode`]) — static random /
//!   dynamic (Enhancement II) / explicit lists (Table 1).
//!
//! The named constructors correspond to the paper's configurations:
//! `baseline` (Hawkeye/Mockingjay as published), `drishti` (D-Hawkeye /
//! D-Mockingjay), `global_view_only` (Fig 17's middle bar), and the
//! interconnect ablations.

use crate::dsc::DscConfig;
use crate::fabric::{FabricKind, PredictorFabric};
use crate::faults::{DegradeConfig, FaultConfig};
use crate::org::{PredictorOrg, SamplerOrg};
use crate::select::SetSelector;

/// How sampled sets are chosen per slice.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingMode {
    /// Conventional: fixed random sets per slice.
    StaticRandom,
    /// Drishti Enhancement II: dynamic sampled cache.
    Dynamic,
    /// Explicit per-slice lists (`lists[slice]`), for Table 1 studies.
    Explicit(Vec<Vec<usize>>),
}

/// A complete Drishti (or baseline) configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DrishtiConfig {
    /// Cores (= slices = tiles).
    pub cores: usize,
    /// Predictor placement.
    pub predictor_org: PredictorOrg,
    /// Sampled-cache placement.
    pub sampler_org: SamplerOrg,
    /// Transport for predictor messages.
    pub fabric: FabricKind,
    /// Sampled-set selection strategy.
    pub sampling: SamplingMode,
    /// Overrides the policy's default sampled-set count if set.
    pub sampled_sets_override: Option<usize>,
    /// Base seed for all randomized selections.
    pub seed: u64,
    /// Injected faults for the predictor fabric (no-op by default).
    pub faults: FaultConfig,
    /// Degradation policy used when `faults` is active.
    pub degrade: DegradeConfig,
    /// Chips the tiles are spread over (1 = the flat single-chip system).
    /// NOCSTAR is die-local, so on a multi-chip system cross-chip
    /// predictor traffic falls back to the hierarchical path (gateway legs
    /// plus a serializing inter-chip segment) whatever the fabric kind.
    pub chips: usize,
    /// Inter-chip link parameters for that fallback (ignored when
    /// `chips == 1`).
    pub chip_link: drishti_noc::topology::ChipLinkConfig,
}

impl DrishtiConfig {
    /// The baseline organisation: per-slice predictor and sampler, static
    /// random sampled sets, no interconnect (paper's unmodified
    /// Hawkeye/Mockingjay port).
    pub fn baseline(cores: usize) -> Self {
        DrishtiConfig {
            cores,
            predictor_org: PredictorOrg::LocalPerSlice,
            sampler_org: SamplerOrg::LocalPerSlice,
            fabric: FabricKind::Local,
            sampling: SamplingMode::StaticRandom,
            sampled_sets_override: None,
            seed: 0xD815,
            faults: FaultConfig::none(),
            degrade: DegradeConfig::resilient(),
            chips: 1,
            chip_link: drishti_noc::topology::ChipLinkConfig::default(),
        }
    }

    /// This configuration spread over `chips` chips (see
    /// [`DrishtiConfig::chips`]).
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero or does not divide the core count.
    pub fn with_chips(mut self, chips: usize) -> Self {
        assert!(
            chips > 0 && self.cores.is_multiple_of(chips),
            "chips ({chips}) must divide the core count ({})",
            self.cores
        );
        self.chips = chips;
        self
    }

    /// This configuration with injected faults (see [`crate::faults`]).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Full Drishti: per-core-yet-global predictor over NOCSTAR plus the
    /// dynamic sampled cache (D-Hawkeye / D-Mockingjay).
    pub fn drishti(cores: usize) -> Self {
        DrishtiConfig {
            predictor_org: PredictorOrg::GlobalPerCore,
            fabric: FabricKind::Nocstar,
            sampling: SamplingMode::Dynamic,
            ..DrishtiConfig::baseline(cores)
        }
    }

    /// Enhancement I only (Fig 17's "global view" bar): per-core global
    /// predictor over NOCSTAR, conventional random sampled sets.
    pub fn global_view_only(cores: usize) -> Self {
        DrishtiConfig {
            sampling: SamplingMode::StaticRandom,
            ..DrishtiConfig::drishti(cores)
        }
    }

    /// Enhancement II only: dynamic sampled cache with the myopic local
    /// predictor (for ablations beyond the paper's Fig 17).
    pub fn dsc_only(cores: usize) -> Self {
        DrishtiConfig {
            sampling: SamplingMode::Dynamic,
            ..DrishtiConfig::baseline(cores)
        }
    }

    /// Drishti riding the existing mesh instead of NOCSTAR (Fig 11a).
    pub fn drishti_without_nocstar(cores: usize) -> Self {
        DrishtiConfig {
            fabric: FabricKind::Mesh,
            ..DrishtiConfig::drishti(cores)
        }
    }

    /// Drishti with a fixed slice↔predictor latency (Fig 11b sweep).
    pub fn drishti_fixed_latency(cores: usize, latency: u64) -> Self {
        DrishtiConfig {
            fabric: FabricKind::Fixed(latency),
            ..DrishtiConfig::drishti(cores)
        }
    }

    /// A centralized global predictor over the mesh (Fig 10's contrast).
    pub fn centralized(cores: usize) -> Self {
        DrishtiConfig {
            predictor_org: PredictorOrg::GlobalCentralized,
            fabric: FabricKind::Mesh,
            ..DrishtiConfig::baseline(cores)
        }
    }

    /// Build the predictor fabric for this configuration. A no-op fault
    /// configuration yields a fabric bit-identical to the fault-free one.
    pub fn build_fabric(&self) -> PredictorFabric {
        PredictorFabric::with_faults(
            self.predictor_org,
            self.sampler_org,
            self.fabric,
            self.cores,
            &self.faults,
            self.degrade,
        )
        .hierarchical(self.chips, self.chip_link)
    }

    /// Sampled sets per slice, given the policy's conventional
    /// (`default_static`) and Drishti (`default_dynamic`) counts — e.g.
    /// Hawkeye 64/8, Mockingjay 32/16.
    pub fn sampled_sets(&self, default_static: usize, default_dynamic: usize) -> usize {
        self.sampled_sets_override.unwrap_or(match self.sampling {
            SamplingMode::Dynamic => default_dynamic,
            _ => default_static,
        })
    }

    /// Build the sampled-set selector for `slice` (each slice gets an
    /// independent seed).
    ///
    /// # Panics
    ///
    /// Panics if an [`SamplingMode::Explicit`] configuration has no list
    /// for `slice`.
    pub fn build_selector(
        &self,
        slice: usize,
        n_sets: usize,
        default_static: usize,
        default_dynamic: usize,
    ) -> SetSelector {
        let n = self
            .sampled_sets(default_static, default_dynamic)
            .min(n_sets);
        let seed = self.seed ^ (slice as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        match &self.sampling {
            SamplingMode::StaticRandom => SetSelector::static_random(n_sets, n, seed),
            SamplingMode::Dynamic => {
                let cfg = DscConfig {
                    n_sampled: n,
                    seed,
                    // The paper monitors for L = 32 K accesses (lines per
                    // slice) and keeps a selection for 4 L, tuned for 200 M
                    // instruction runs. Our runs are ~100× shorter, so the
                    // windows scale down proportionally (keeping the 1:4
                    // monitor:active ratio) — selection stays responsive to
                    // phase changes at reduced trace lengths.
                    monitor_interval: (n_sets as u64 * 4).max(512),
                    active_interval: (n_sets as u64 * 16).max(2048),
                    ..DscConfig::paper_default(n)
                };
                SetSelector::dynamic(cfg, n_sets)
            }
            SamplingMode::Explicit(lists) => {
                let list = lists
                    .get(slice)
                    .unwrap_or_else(|| panic!("no explicit sampled-set list for slice {slice}"))
                    .clone();
                SetSelector::explicit(n_sets, list)
            }
        }
    }

    /// Short label for experiment output (e.g. `"drishti"`).
    pub fn label(&self) -> String {
        match (self.predictor_org, &self.sampling, self.fabric) {
            (PredictorOrg::LocalPerSlice, SamplingMode::StaticRandom, _) => "baseline".into(),
            (PredictorOrg::LocalPerSlice, SamplingMode::Dynamic, _) => "dsc-only".into(),
            (PredictorOrg::GlobalPerCore, SamplingMode::Dynamic, FabricKind::Nocstar) => {
                "drishti".into()
            }
            (PredictorOrg::GlobalPerCore, SamplingMode::StaticRandom, _) => {
                "global-view-only".into()
            }
            (PredictorOrg::GlobalCentralized, _, _) => "centralized".into(),
            _ => format!("{}-{:?}", self.predictor_org, self.fabric).to_lowercase(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_local_and_static() {
        let c = DrishtiConfig::baseline(16);
        assert_eq!(c.predictor_org, PredictorOrg::LocalPerSlice);
        assert_eq!(c.fabric, FabricKind::Local);
        assert!(!c.build_fabric().global_view());
        assert_eq!(c.label(), "baseline");
    }

    #[test]
    fn drishti_is_per_core_nocstar_dynamic() {
        let c = DrishtiConfig::drishti(32);
        assert_eq!(c.predictor_org, PredictorOrg::GlobalPerCore);
        assert_eq!(c.fabric, FabricKind::Nocstar);
        assert_eq!(c.sampling, SamplingMode::Dynamic);
        assert!(c.build_fabric().global_view());
        assert_eq!(c.label(), "drishti");
    }

    #[test]
    fn sampled_set_counts_follow_mode() {
        // Hawkeye: 64 static → 8 dynamic. Mockingjay: 32 → 16.
        assert_eq!(DrishtiConfig::baseline(4).sampled_sets(64, 8), 64);
        assert_eq!(DrishtiConfig::drishti(4).sampled_sets(64, 8), 8);
        assert_eq!(DrishtiConfig::drishti(4).sampled_sets(32, 16), 16);
        let mut c = DrishtiConfig::drishti(4);
        c.sampled_sets_override = Some(24);
        assert_eq!(c.sampled_sets(32, 16), 24);
    }

    #[test]
    fn selectors_differ_across_slices() {
        let c = DrishtiConfig::baseline(4);
        let a = c.build_selector(0, 2048, 64, 8);
        let b = c.build_selector(1, 2048, 64, 8);
        assert_ne!(a.sampled_sets(), b.sampled_sets());
    }

    #[test]
    fn dynamic_selector_windows_scale_with_geometry() {
        let c = DrishtiConfig::drishti(4);
        let s = c.build_selector(0, 2048, 64, 8);
        assert!(s.is_dynamic());
        if let SetSelector::Dynamic(d) = &s {
            assert_eq!(d.config().monitor_interval, 2048 * 4);
            assert_eq!(d.config().active_interval, 2048 * 16);
        }
    }

    #[test]
    fn explicit_mode_uses_given_lists() {
        let mut c = DrishtiConfig::baseline(2);
        c.sampling = SamplingMode::Explicit(vec![vec![1, 2], vec![3, 4]]);
        let s = c.build_selector(1, 64, 32, 16);
        assert_eq!(s.sampled_sets(), vec![3, 4]);
    }

    #[test]
    fn ablation_labels() {
        assert_eq!(
            DrishtiConfig::global_view_only(8).label(),
            "global-view-only"
        );
        assert_eq!(DrishtiConfig::dsc_only(8).label(), "dsc-only");
        assert_eq!(DrishtiConfig::centralized(8).label(), "centralized");
    }

    #[test]
    fn chips_default_to_one_and_validate() {
        let c = DrishtiConfig::drishti(32);
        assert_eq!(c.chips, 1);
        let c = DrishtiConfig::drishti(32).with_chips(4);
        assert_eq!(c.chips, 4);
        assert!(c.build_fabric().global_view());
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_chip_count_is_rejected() {
        let _ = DrishtiConfig::drishti(32).with_chips(3);
    }

    #[test]
    fn fig11_configs_use_requested_fabric() {
        assert_eq!(
            DrishtiConfig::drishti_without_nocstar(8).fabric,
            FabricKind::Mesh
        );
        assert_eq!(
            DrishtiConfig::drishti_fixed_latency(8, 20).fabric,
            FabricKind::Fixed(20)
        );
    }
}

//! Per-core hardware storage accounting (paper Table 3).
//!
//! Drishti's enhancements *save* storage: the informed sampled-set choice
//! lets Hawkeye run with 8 instead of 64 sampled sets per slice and
//! Mockingjay with 16 instead of 32, shrinking the sampled cache by more
//! than the new per-set saturating counters cost. This module computes the
//! budget from structural formulas (sets × ways × bits) for a 16-way 2 MB
//! LLC slice, reproducing Table 3.

/// Sets in a 2 MB, 16-way slice.
const SLICE_SETS: u64 = 2048;
/// Ways per set.
const SLICE_WAYS: u64 = 16;

/// One storage component of a policy's budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetComponent {
    /// Component name as it appears in Table 3.
    pub name: &'static str,
    /// Size in bits.
    pub bits: u64,
}

impl BudgetComponent {
    /// Size in KiB.
    pub fn kib(&self) -> f64 {
        self.bits as f64 / 8.0 / 1024.0
    }
}

/// A per-core storage budget (one slice's worth of policy state).
#[derive(Debug, Clone, PartialEq)]
pub struct Budget {
    /// Policy name ("hawkeye" / "mockingjay").
    pub policy: &'static str,
    /// Whether Drishti's enhancements are applied.
    pub with_drishti: bool,
    /// The components, in Table 3 order.
    pub components: Vec<BudgetComponent>,
}

impl Budget {
    /// Total size in KiB.
    pub fn total_kib(&self) -> f64 {
        self.components.iter().map(BudgetComponent::kib).sum()
    }

    /// Hawkeye's per-core budget (Table 3 upper half).
    ///
    /// * Sampled cache: 64 sampled sets × 128 history entries × 12-bit
    ///   entries = 12 KB without Drishti; with Drishti only 8 sets but
    ///   24-bit entries (the dynamic set identity needs wider tags) = 3 KB.
    /// * Occupancy vectors (OPTgen): 1 KB.
    /// * PC predictor: 8 K counters × 3 bits = 3 KB.
    /// * RRIP counters: 2048 sets × 16 ways × 3 bits = 12 KB.
    /// * Saturating counters (Drishti only): 2048 sets × 7 bits = 1.75 KB.
    pub fn hawkeye(with_drishti: bool) -> Budget {
        let sampled = if with_drishti {
            BudgetComponent {
                name: "Sampled Cache",
                bits: 8 * 128 * 24,
            }
        } else {
            BudgetComponent {
                name: "Sampled Cache",
                bits: 64 * 128 * 12,
            }
        };
        let mut components = vec![
            sampled,
            BudgetComponent {
                name: "Occupancy Vector",
                bits: 8 * 1024 * 8 / 8, // 1 KB of OPTgen occupancy state
            },
            BudgetComponent {
                name: "Predictor",
                bits: 8192 * 3,
            },
            BudgetComponent {
                name: "RRIP counters",
                bits: SLICE_SETS * SLICE_WAYS * 3,
            },
        ];
        if with_drishti {
            components.push(BudgetComponent {
                name: "Saturating counters",
                bits: SLICE_SETS * 7,
            });
        }
        Budget {
            policy: "hawkeye",
            with_drishti,
            components,
        }
    }

    /// Mockingjay's per-core budget (Table 3 lower half).
    ///
    /// * Sampled cache: per sampled set, 80 entries × 30 bits (10-bit tag,
    ///   11-bit PC signature, 8-bit timestamp, valid) — 32 sets without
    ///   Drishti (≈9.4 KB), 16 with (≈4.7 KB).
    /// * PC predictor: 2048 counters × 7 bits = 1.75 KB.
    /// * ETR counters: 2048 × 16 × 5 bits + 2048 × 3-bit set clocks
    ///   = 20.75 KB.
    /// * Saturating counters (Drishti only): 1.75 KB.
    pub fn mockingjay(with_drishti: bool) -> Budget {
        let sampled_sets: u64 = if with_drishti { 16 } else { 32 };
        let mut components = vec![
            BudgetComponent {
                name: "Sampled Cache",
                bits: sampled_sets * 80 * 30,
            },
            BudgetComponent {
                name: "Predictor",
                bits: 2048 * 7,
            },
            BudgetComponent {
                name: "ETR counters",
                bits: SLICE_SETS * SLICE_WAYS * 5 + SLICE_SETS * 3,
            },
        ];
        if with_drishti {
            components.push(BudgetComponent {
                name: "Saturating counters",
                bits: SLICE_SETS * 7,
            });
        }
        Budget {
            policy: "mockingjay",
            with_drishti,
            components,
        }
    }

    /// Storage saved by applying Drishti to `policy`
    /// (`"hawkeye"` / `"mockingjay"`), in KiB. Positive = savings.
    ///
    /// # Panics
    ///
    /// Panics on an unknown policy name.
    pub fn drishti_savings_kib(policy: &str) -> f64 {
        let (without, with) = match policy {
            "hawkeye" => (Budget::hawkeye(false), Budget::hawkeye(true)),
            "mockingjay" => (Budget::mockingjay(false), Budget::mockingjay(true)),
            other => panic!("unknown policy {other}"),
        };
        without.total_kib() - with.total_kib()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn hawkeye_without_drishti_is_28_kib() {
        let b = Budget::hawkeye(false);
        assert!(close(b.total_kib(), 28.0, 0.01), "{}", b.total_kib());
    }

    #[test]
    fn hawkeye_with_drishti_is_20_75_kib() {
        let b = Budget::hawkeye(true);
        assert!(close(b.total_kib(), 20.75, 0.01), "{}", b.total_kib());
    }

    #[test]
    fn mockingjay_without_drishti_matches_paper() {
        let b = Budget::mockingjay(false);
        // Paper: 31.91 KB (our structural formula gives ≈31.88).
        assert!(close(b.total_kib(), 31.91, 0.1), "{}", b.total_kib());
    }

    #[test]
    fn mockingjay_with_drishti_matches_paper() {
        let b = Budget::mockingjay(true);
        // Paper: 28.95 KB.
        assert!(close(b.total_kib(), 28.95, 0.1), "{}", b.total_kib());
    }

    #[test]
    fn drishti_always_saves_storage() {
        // Paper: savings of 7.25 KB (Hawkeye) and 2.96 KB (Mockingjay).
        let h = Budget::drishti_savings_kib("hawkeye");
        assert!(close(h, 7.25, 0.01), "{h}");
        let m = Budget::drishti_savings_kib("mockingjay");
        assert!(close(m, 2.96, 0.1), "{m}");
    }

    #[test]
    fn component_breakdown_matches_table3() {
        let h = Budget::hawkeye(false);
        let by_name = |n: &str| {
            h.components
                .iter()
                .find(|c| c.name == n)
                .map(BudgetComponent::kib)
                .unwrap()
        };
        assert!(close(by_name("Sampled Cache"), 12.0, 0.01));
        assert!(close(by_name("RRIP counters"), 12.0, 0.01));
        assert!(close(by_name("Predictor"), 3.0, 0.01));
        assert!(close(by_name("Occupancy Vector"), 1.0, 0.01));
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn unknown_policy_panics() {
        let _ = Budget::drishti_savings_kib("belady");
    }
}

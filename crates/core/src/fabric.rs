//! The predictor fabric: placement + transport for reuse-predictor access.
//!
//! Every prediction-based policy funnels its predictor traffic through a
//! [`PredictorFabric`]. The fabric answers two questions per access:
//!
//! * **which bank** holds the entry — a function of the [`PredictorOrg`]
//!   (the slice's own bank, the single central bank, or the requesting
//!   core's bank); and
//! * **what it costs** — the transport latency over the configured
//!   [`PredictorLink`] (nothing for local, mesh hops for the no-NOCSTAR
//!   ablation of Fig 11a, 3 cycles for NOCSTAR, or a fixed latency for the
//!   Fig 11b sweep), plus traffic/energy accounting.
//!
//! Training and prediction lookups are counted separately because the
//! paper's Fig 10 reports their sum per kilo-instruction for the
//! centralized vs. per-core organisations.

use crate::org::{PredictorOrg, SamplerOrg};
use drishti_noc::link::{FixedLatencyLink, LocalLink, MeshLink, NocstarLink, PredictorLink};
use drishti_noc::{NocStats, NodeId};

/// Which transport carries predictor messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricKind {
    /// No transport (predictor co-located with each slice).
    Local,
    /// The regular mesh NoC (Fig 11a ablation: Drishti *without* NOCSTAR).
    Mesh,
    /// The dedicated NOCSTAR side-band interconnect (Drishti default).
    Nocstar,
    /// A fixed per-access latency (Fig 11b sensitivity sweep).
    Fixed(u64),
}

impl FabricKind {
    fn build(self, tiles: usize) -> Box<dyn PredictorLink> {
        match self {
            FabricKind::Local => Box::new(LocalLink),
            FabricKind::Mesh => Box::new(MeshLink::new(tiles)),
            FabricKind::Nocstar => Box::new(NocstarLink::new(tiles)),
            FabricKind::Fixed(lat) => Box::new(FixedLatencyLink::new(lat)),
        }
    }
}

/// Separated counts of the two predictor access categories (Fig 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricCounters {
    /// Training updates pushed by samplers.
    pub train_accesses: u64,
    /// Prediction lookups on the fill path.
    pub predict_accesses: u64,
    /// Broadcast fan-out messages (global-sampler organisations only).
    pub broadcast_messages: u64,
}

impl FabricCounters {
    /// Total predictor accesses (the quantity Fig 10 normalises per kilo
    /// instruction).
    pub fn total(&self) -> u64 {
        self.train_accesses + self.predict_accesses
    }
}

/// Placement + transport for predictor access.
#[derive(Debug)]
pub struct PredictorFabric {
    org: PredictorOrg,
    sampler_org: SamplerOrg,
    kind: FabricKind,
    link: Box<dyn PredictorLink>,
    tiles: usize,
    central: NodeId,
    counters: FabricCounters,
}

impl PredictorFabric {
    /// Build a fabric for `tiles` tiles (cores = slices = tiles).
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn new(org: PredictorOrg, sampler_org: SamplerOrg, kind: FabricKind, tiles: usize) -> Self {
        assert!(tiles > 0, "fabric needs at least one tile");
        PredictorFabric {
            org,
            sampler_org,
            kind,
            link: kind.build(tiles),
            tiles,
            central: tiles / 2, // a roughly central tile for the centralized bank
            counters: FabricCounters::default(),
        }
    }

    /// The predictor organisation.
    pub fn org(&self) -> PredictorOrg {
        self.org
    }

    /// The sampled-cache organisation.
    pub fn sampler_org(&self) -> SamplerOrg {
        self.sampler_org
    }

    /// The transport kind.
    pub fn kind(&self) -> FabricKind {
        self.kind
    }

    /// Number of predictor banks the governing policy must allocate.
    pub fn banks(&self) -> usize {
        self.org.banks(self.tiles)
    }

    /// Whether predictors see a global training view (i.e. whether one
    /// core's reuse behaviour observed at any slice reaches the bank used
    /// for that core's fills at every slice).
    pub fn global_view(&self) -> bool {
        self.org.is_global_view() || self.sampler_org.requires_broadcast()
    }

    /// Bank index that handles an access from `slice` on behalf of `core`.
    /// The baseline keeps one bank per (slice, core) pair — paper Fig 1's
    /// per-slice per-core predictors, indexed by hash(PC, core ID).
    pub fn bank_of(&self, slice: usize, core: usize) -> usize {
        match self.org {
            PredictorOrg::LocalPerSlice => slice * self.tiles + core,
            PredictorOrg::GlobalCentralized => 0,
            PredictorOrg::GlobalPerCore => core,
        }
    }

    /// Banks holding `core`'s entries across all slices (the broadcast
    /// targets of a global-sampler organisation, paper Figs 6–7).
    pub fn broadcast_banks(&self, core: usize) -> Vec<usize> {
        match self.org {
            PredictorOrg::LocalPerSlice => {
                (0..self.tiles).map(|s| s * self.tiles + core).collect()
            }
            PredictorOrg::GlobalCentralized => vec![0],
            PredictorOrg::GlobalPerCore => vec![core],
        }
    }

    /// Tile that hosts `bank`.
    fn tile_of_bank(&self, bank: usize) -> NodeId {
        match self.org {
            PredictorOrg::LocalPerSlice => bank / self.tiles,
            PredictorOrg::GlobalPerCore => bank,
            PredictorOrg::GlobalCentralized => self.central,
        }
    }

    /// A sampler at `slice` trains the predictor for `core`'s PC at `cycle`.
    /// Returns `(bank, latency)` — training is off the critical path, so
    /// the latency only matters for fabric occupancy, but it is returned
    /// for completeness.
    pub fn train(&mut self, slice: usize, core: usize, cycle: u64) -> (usize, u64) {
        self.counters.train_accesses += 1;
        let bank = self.bank_of(slice, core);
        let lat = match self.org {
            PredictorOrg::LocalPerSlice => {
                // Global-sampler organisations broadcast each training to
                // every slice's local predictor (paper Figs 6–7). A
                // *centralized* sampler additionally ships every sampled
                // access (PC, address, hit/miss) inbound to the central
                // node first (paper Fig 6 step 1) — the "High" bandwidth
                // row of Table 2.
                if self.sampler_org.requires_broadcast() {
                    let mut worst = 0;
                    if self.sampler_org == SamplerOrg::GlobalCentralized {
                        worst = self.link.access(slice, self.central, cycle);
                    }
                    for dest in 0..self.tiles {
                        let l = self.link.access(slice, dest, cycle);
                        worst = worst.max(l);
                        self.counters.broadcast_messages += 1;
                    }
                    worst
                } else {
                    0
                }
            }
            _ => {
                let dest = self.tile_of_bank(bank);
                self.link.access(slice, dest, cycle)
            }
        };
        (bank, lat)
    }

    /// Cycles of predictor-lookup latency hidden under the fill itself: the
    /// lookup launches when the miss is detected and the insertion decision
    /// is only needed when the data returns, so a short transport is fully
    /// overlapped. The paper's Fig 11b calibrates this window — "latency of
    /// less than five cycles does not lead to a significant performance
    /// slowdown" — while ~20-cycle mesh transports are exposed (Fig 11a).
    pub const OVERLAP_WINDOW: u64 = 8;

    /// A fill at `slice` for `core`'s request looks up the predictor at
    /// `cycle`. Returns `(bank, latency)` — the *exposed* interconnect
    /// latency the lookup adds to the fill path: the one-way transport
    /// latency minus the [`Self::OVERLAP_WINDOW`] hidden under the miss.
    pub fn predict(&mut self, slice: usize, core: usize, cycle: u64) -> (usize, u64) {
        self.counters.predict_accesses += 1;
        let bank = self.bank_of(slice, core);
        let lat = match self.org {
            PredictorOrg::LocalPerSlice => 0,
            _ => {
                let dest = self.tile_of_bank(bank);
                // Both legs are issued at the current time: reserving the
                // response link at `cycle + req` would make later near-time
                // messages wait for a reservation in their future, which
                // destabilises an occupancy model (the same rule the demand
                // mesh follows). Only the slower leg is exposed.
                let req = self.link.access(slice, dest, cycle);
                let resp = self.link.access_response(dest, slice, cycle);
                req.max(resp).saturating_sub(Self::OVERLAP_WINDOW)
            }
        };
        (bank, lat)
    }

    /// Access-category counters (Fig 10).
    pub fn counters(&self) -> &FabricCounters {
        &self.counters
    }

    /// Transport traffic/energy statistics.
    pub fn link_stats(&self) -> NocStats {
        self.link.stats()
    }

    /// Reset all counters and transport statistics (used after warm-up).
    pub fn reset_stats(&mut self) {
        self.counters = FabricCounters::default();
        self.link.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(org: PredictorOrg, kind: FabricKind) -> PredictorFabric {
        PredictorFabric::new(org, SamplerOrg::LocalPerSlice, kind, 32)
    }

    #[test]
    fn local_org_is_free_and_myopic() {
        let mut f = fabric(PredictorOrg::LocalPerSlice, FabricKind::Local);
        assert!(!f.global_view());
        // Paper Fig 1: one bank per (slice, core) pair.
        assert_eq!(f.banks(), 32 * 32);
        let (bank, lat) = f.train(5, 9, 0);
        assert_eq!(bank, 5 * 32 + 9, "bank is the slice's table for core 9");
        assert_eq!(lat, 0);
        let (_, plat) = f.predict(5, 9, 0);
        assert_eq!(plat, 0);
    }

    #[test]
    fn per_core_org_routes_to_core_bank() {
        let mut f = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar);
        assert!(f.global_view());
        let (bank, lat) = f.train(5, 9, 0);
        assert_eq!(bank, 9, "per-core predictor bank is the requesting core's");
        assert_eq!(lat, 3);
    }

    #[test]
    fn per_core_predict_is_hidden_under_the_miss() {
        let mut f = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar);
        // An uncontended NOCSTAR traversal (3 cycles) fits entirely within
        // the overlap window: no exposed latency.
        let (bank, lat) = f.predict(5, 9, 0);
        assert_eq!(bank, 9);
        assert_eq!(lat, 0, "3-cycle NOCSTAR lookup is fully hidden");
    }

    #[test]
    fn centralized_org_uses_one_bank() {
        let mut f = fabric(PredictorOrg::GlobalCentralized, FabricKind::Mesh);
        assert_eq!(f.banks(), 1);
        let (bank, lat) = f.train(0, 31, 0);
        assert_eq!(bank, 0);
        assert!(lat > 0, "mesh transport must cost cycles");
    }

    #[test]
    fn mesh_fabric_is_much_slower_than_nocstar() {
        let mut mesh = fabric(PredictorOrg::GlobalPerCore, FabricKind::Mesh);
        let mut star = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar);
        let mut mesh_total = 0;
        let mut star_total = 0;
        for s in 0..32 {
            for c in 0..32 {
                mesh_total += mesh.predict(s, c, (s * 32 + c) as u64 * 1000).1;
                star_total += star.predict(s, c, (s * 32 + c) as u64 * 1000).1;
            }
        }
        assert!(
            mesh_total > 3 * star_total,
            "mesh {mesh_total} vs nocstar {star_total}"
        );
    }

    #[test]
    fn fixed_fabric_exposes_latency_beyond_overlap() {
        let mut f = fabric(PredictorOrg::GlobalPerCore, FabricKind::Fixed(20));
        let (_, lat) = f.predict(0, 31, 0);
        assert_eq!(
            lat,
            20 - PredictorFabric::OVERLAP_WINDOW,
            "a Fig 11b sweep value of N exposes N − overlap cycles"
        );
        let mut f = fabric(PredictorOrg::GlobalPerCore, FabricKind::Fixed(4));
        let (_, lat) = f.predict(0, 31, 0);
        assert_eq!(lat, 0, "below-window latencies are free (Fig 11b ≤5)");
    }

    #[test]
    fn counters_separate_train_and_predict() {
        let mut f = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar);
        f.train(0, 1, 0);
        f.train(2, 1, 0);
        f.predict(3, 1, 0);
        let c = f.counters();
        assert_eq!(c.train_accesses, 2);
        assert_eq!(c.predict_accesses, 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn global_sampler_broadcasts_to_all_tiles() {
        let mut f = PredictorFabric::new(
            PredictorOrg::LocalPerSlice,
            SamplerOrg::GlobalDistributed,
            FabricKind::Mesh,
            16,
        );
        assert!(f.global_view());
        f.train(0, 3, 0);
        assert_eq!(f.counters().broadcast_messages, 16);
    }

    #[test]
    fn reset_clears_everything() {
        let mut f = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar);
        f.train(0, 1, 0);
        f.reset_stats();
        assert_eq!(f.counters().total(), 0);
        assert_eq!(f.link_stats().messages, 0);
    }
}

//! The predictor fabric: placement + transport for reuse-predictor access.
//!
//! Every prediction-based policy funnels its predictor traffic through a
//! [`PredictorFabric`]. The fabric answers two questions per access:
//!
//! * **which bank** holds the entry — a function of the [`PredictorOrg`]
//!   (the slice's own bank, the single central bank, or the requesting
//!   core's bank); and
//! * **what it costs** — the transport latency over the configured
//!   [`PredictorLink`] (nothing for local, mesh hops for the no-NOCSTAR
//!   ablation of Fig 11a, 3 cycles for NOCSTAR, or a fixed latency for the
//!   Fig 11b sweep), plus traffic/energy accounting.
//!
//! Training and prediction lookups are counted separately because the
//! paper's Fig 10 reports their sum per kilo-instruction for the
//! centralized vs. per-core organisations.

use crate::faults::{DegradeConfig, FaultConfig};
use crate::org::{PredictorOrg, SamplerOrg};
use drishti_noc::link::{
    FixedLatencyLink, HierarchicalLink, LocalLink, MeshLink, NocstarLink, PredictorLink,
};
use drishti_noc::topology::ChipLinkConfig;
use drishti_noc::{NocStats, NodeId};

/// Which transport carries predictor messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricKind {
    /// No transport (predictor co-located with each slice).
    Local,
    /// The regular mesh NoC (Fig 11a ablation: Drishti *without* NOCSTAR).
    Mesh,
    /// The dedicated NOCSTAR side-band interconnect (Drishti default).
    Nocstar,
    /// A fixed per-access latency (Fig 11b sensitivity sweep).
    Fixed(u64),
}

impl FabricKind {
    fn build(self, tiles: usize) -> Box<dyn PredictorLink> {
        match self {
            FabricKind::Local => Box::new(LocalLink),
            FabricKind::Mesh => Box::new(MeshLink::new(tiles)),
            FabricKind::Nocstar => Box::new(NocstarLink::new(tiles)),
            FabricKind::Fixed(lat) => Box::new(FixedLatencyLink::new(lat)),
        }
    }

    fn build_with_faults(self, tiles: usize, faults: &FaultConfig) -> Box<dyn PredictorLink> {
        match self {
            FabricKind::Local => Box::new(LocalLink),
            FabricKind::Mesh => Box::new(MeshLink::with_faults(tiles, faults)),
            FabricKind::Nocstar => Box::new(NocstarLink::with_faults(tiles, faults)),
            FabricKind::Fixed(lat) => Box::new(FixedLatencyLink::with_faults(lat, faults)),
        }
    }
}

/// Separated counts of the two predictor access categories (Fig 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricCounters {
    /// Training updates pushed by samplers.
    pub train_accesses: u64,
    /// Prediction lookups on the fill path.
    pub predict_accesses: u64,
    /// Broadcast fan-out messages (global-sampler organisations only).
    pub broadcast_messages: u64,
    /// Prediction lookups whose request or response was lost in transit.
    pub dropped_predictions: u64,
    /// Fills that fell back to the local static insertion decision (lost
    /// or over-deadline lookups).
    pub fallback_decisions: u64,
    /// Training updates lost after exhausting their retries.
    pub dropped_trainings: u64,
    /// Training retransmissions performed after a drop.
    pub retried_trainings: u64,
}

drishti_noc::impl_persist_fields!(FabricCounters {
    train_accesses,
    predict_accesses,
    broadcast_messages,
    dropped_predictions,
    fallback_decisions,
    dropped_trainings,
    retried_trainings,
});

impl FabricCounters {
    /// Total predictor accesses (the quantity Fig 10 normalises per kilo
    /// instruction).
    pub fn total(&self) -> u64 {
        self.train_accesses + self.predict_accesses
    }
}

/// Result of pushing one training update through the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainOutcome {
    /// Predictor bank the update targets.
    pub bank: usize,
    /// Transport latency experienced (including retries and backoff).
    pub latency: u64,
    /// Whether the update reached the bank. `false` means the message was
    /// lost after all retries — the caller must *not* update the table.
    pub delivered: bool,
}

/// Result of one prediction lookup through the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictOutcome {
    /// Predictor bank consulted.
    pub bank: usize,
    /// Exposed latency the lookup adds to the fill path.
    pub latency: u64,
    /// Whether the lookup was abandoned (message lost or transport over
    /// the degradation deadline). The caller must ignore the remote table
    /// and use its local static insertion decision instead.
    pub fallback: bool,
}

/// Placement + transport for predictor access.
#[derive(Debug)]
pub struct PredictorFabric {
    org: PredictorOrg,
    sampler_org: SamplerOrg,
    kind: FabricKind,
    link: Box<dyn PredictorLink>,
    tiles: usize,
    central: NodeId,
    counters: FabricCounters,
    degrade: DegradeConfig,
    /// Whether the link was built with an active fault schedule. Healthy
    /// fabrics skip the degradation layer entirely, so fault-free runs are
    /// bit-identical to builds that predate fault injection.
    faulty: bool,
}

impl PredictorFabric {
    /// Build a fabric for `tiles` tiles (cores = slices = tiles).
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn new(org: PredictorOrg, sampler_org: SamplerOrg, kind: FabricKind, tiles: usize) -> Self {
        assert!(tiles > 0, "fabric needs at least one tile");
        PredictorFabric {
            org,
            sampler_org,
            kind,
            link: kind.build(tiles),
            tiles,
            central: tiles / 2, // a roughly central tile for the centralized bank
            counters: FabricCounters::default(),
            degrade: DegradeConfig::resilient(),
            faulty: false,
        }
    }

    /// Build a fault-aware fabric. With a no-op `faults` configuration
    /// this is bit-identical to [`PredictorFabric::new`]; otherwise the
    /// transport may drop or delay messages and the fabric degrades per
    /// `degrade` (timeout fallback on lookups, bounded retry on training).
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn with_faults(
        org: PredictorOrg,
        sampler_org: SamplerOrg,
        kind: FabricKind,
        tiles: usize,
        faults: &FaultConfig,
        degrade: DegradeConfig,
    ) -> Self {
        let mut f = PredictorFabric::new(org, sampler_org, kind, tiles);
        f.degrade = degrade;
        if !faults.is_noop() {
            f.link = kind.build_with_faults(tiles, faults);
            f.faulty = true;
        }
        f
    }

    /// Spread this fabric's tiles over `chips` chips: the transport is
    /// wrapped in a [`HierarchicalLink`], so intra-chip accesses are
    /// untouched while cross-chip accesses pay gateway legs plus a
    /// serializing inter-chip segment. `chips == 1` is the identity —
    /// bit-identical to the unwrapped fabric.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero or does not divide the tile count.
    pub fn hierarchical(mut self, chips: usize, link: ChipLinkConfig) -> Self {
        if chips > 1 {
            let inner = std::mem::replace(&mut self.link, Box::new(LocalLink));
            self.link = Box::new(HierarchicalLink::new(inner, chips, self.tiles, link));
        } else {
            assert!(chips == 1, "fabric needs at least one chip");
        }
        self
    }

    /// The degradation policy in force.
    pub fn degrade(&self) -> DegradeConfig {
        self.degrade
    }

    /// The predictor organisation.
    pub fn org(&self) -> PredictorOrg {
        self.org
    }

    /// The sampled-cache organisation.
    pub fn sampler_org(&self) -> SamplerOrg {
        self.sampler_org
    }

    /// The transport kind.
    pub fn kind(&self) -> FabricKind {
        self.kind
    }

    /// Number of predictor banks the governing policy must allocate.
    pub fn banks(&self) -> usize {
        self.org.banks(self.tiles)
    }

    /// Whether predictors see a global training view (i.e. whether one
    /// core's reuse behaviour observed at any slice reaches the bank used
    /// for that core's fills at every slice).
    pub fn global_view(&self) -> bool {
        self.org.is_global_view() || self.sampler_org.requires_broadcast()
    }

    /// Bank index that handles an access from `slice` on behalf of `core`.
    /// The baseline keeps one bank per (slice, core) pair — paper Fig 1's
    /// per-slice per-core predictors, indexed by hash(PC, core ID).
    pub fn bank_of(&self, slice: usize, core: usize) -> usize {
        match self.org {
            PredictorOrg::LocalPerSlice => slice * self.tiles + core,
            PredictorOrg::GlobalCentralized => 0,
            PredictorOrg::GlobalPerCore => core,
        }
    }

    /// Banks holding `core`'s entries across all slices (the broadcast
    /// targets of a global-sampler organisation, paper Figs 6–7).
    pub fn broadcast_banks(&self, core: usize) -> Vec<usize> {
        match self.org {
            PredictorOrg::LocalPerSlice => (0..self.tiles).map(|s| s * self.tiles + core).collect(),
            PredictorOrg::GlobalCentralized => vec![0],
            PredictorOrg::GlobalPerCore => vec![core],
        }
    }

    /// Tile that hosts `bank`.
    fn tile_of_bank(&self, bank: usize) -> NodeId {
        match self.org {
            PredictorOrg::LocalPerSlice => bank / self.tiles,
            PredictorOrg::GlobalPerCore => bank,
            PredictorOrg::GlobalCentralized => self.central,
        }
    }

    /// A sampler at `slice` trains the predictor for `core`'s PC at `cycle`.
    /// Training is off the critical path, so the latency only matters for
    /// fabric occupancy, but it is returned for completeness.
    ///
    /// On a fault-aware fabric a dropped update is retried up to
    /// [`DegradeConfig::train_retries`] times with linear backoff; if every
    /// attempt is lost the outcome reports `delivered: false` and the
    /// caller must skip its table update (predictors tolerate sparse
    /// training — they merely converge slower).
    pub fn train(&mut self, slice: usize, core: usize, cycle: u64) -> TrainOutcome {
        self.counters.train_accesses += 1;
        let bank = self.bank_of(slice, core);
        match self.org {
            PredictorOrg::LocalPerSlice => {
                // Global-sampler organisations broadcast each training to
                // every slice's local predictor (paper Figs 6–7). A
                // *centralized* sampler additionally ships every sampled
                // access (PC, address, hit/miss) inbound to the central
                // node first (paper Fig 6 step 1) — the "High" bandwidth
                // row of Table 2. Broadcast legs are fire-and-forget: a
                // lost leg is counted but not retried (the next sampled
                // access refreshes that slice's view anyway).
                let mut worst = 0;
                if self.sampler_org.requires_broadcast() {
                    if self.sampler_org == SamplerOrg::GlobalCentralized {
                        let d = self.link.send(slice, self.central, cycle);
                        if d.dropped {
                            self.counters.dropped_trainings += 1;
                        }
                        worst = d.latency;
                    }
                    for dest in 0..self.tiles {
                        let d = self.link.send(slice, dest, cycle);
                        if d.dropped {
                            self.counters.dropped_trainings += 1;
                        }
                        worst = worst.max(d.latency);
                        self.counters.broadcast_messages += 1;
                    }
                }
                TrainOutcome {
                    bank,
                    latency: worst,
                    delivered: true,
                }
            }
            _ => {
                let dest = self.tile_of_bank(bank);
                if !self.faulty {
                    let lat = self.link.access(slice, dest, cycle);
                    return TrainOutcome {
                        bank,
                        latency: lat,
                        delivered: true,
                    };
                }
                let mut elapsed = 0u64;
                for attempt in 0..=self.degrade.train_retries {
                    let d = self.link.send(slice, dest, cycle + elapsed);
                    elapsed += d.latency;
                    if !d.dropped {
                        return TrainOutcome {
                            bank,
                            latency: elapsed,
                            delivered: true,
                        };
                    }
                    if attempt < self.degrade.train_retries {
                        self.counters.retried_trainings += 1;
                        elapsed += u64::from(attempt + 1) * self.degrade.retry_backoff;
                    }
                }
                self.counters.dropped_trainings += 1;
                TrainOutcome {
                    bank,
                    latency: elapsed,
                    delivered: false,
                }
            }
        }
    }

    /// Cycles of predictor-lookup latency hidden under the fill itself: the
    /// lookup launches when the miss is detected and the insertion decision
    /// is only needed when the data returns, so a short transport is fully
    /// overlapped. The paper's Fig 11b calibrates this window — "latency of
    /// less than five cycles does not lead to a significant performance
    /// slowdown" — while ~20-cycle mesh transports are exposed (Fig 11a).
    pub const OVERLAP_WINDOW: u64 = 8;

    /// A fill at `slice` for `core`'s request looks up the predictor at
    /// `cycle`. The outcome's `latency` is the *exposed* interconnect
    /// latency the lookup adds to the fill path: the one-way transport
    /// latency minus the [`Self::OVERLAP_WINDOW`] hidden under the miss.
    ///
    /// On a fault-aware fabric a lookup whose request or response is lost,
    /// or whose transport exceeds [`DegradeConfig::prediction_deadline`],
    /// is abandoned: the outcome reports `fallback: true` and the caller
    /// must insert with its local static (untrained-default, SRRIP-like)
    /// decision instead of blocking the fill on a message that may never
    /// arrive. The exposed cost of an abandoned lookup is the deadline
    /// itself (the slice waits that long before giving up), less the
    /// overlap window.
    pub fn predict(&mut self, slice: usize, core: usize, cycle: u64) -> PredictOutcome {
        self.counters.predict_accesses += 1;
        let bank = self.bank_of(slice, core);
        match self.org {
            PredictorOrg::LocalPerSlice => PredictOutcome {
                bank,
                latency: 0,
                fallback: false,
            },
            _ => {
                let dest = self.tile_of_bank(bank);
                // Both legs are issued at the current time: reserving the
                // response link at `cycle + req` would make later near-time
                // messages wait for a reservation in their future, which
                // destabilises an occupancy model (the same rule the demand
                // mesh follows). Only the slower leg is exposed.
                let req = self.link.send(slice, dest, cycle);
                let resp = self.link.send_response(dest, slice, cycle);
                let raw = req.latency.max(resp.latency);
                if self.faulty {
                    let lost = req.dropped || resp.dropped;
                    if lost {
                        self.counters.dropped_predictions += 1;
                    }
                    if lost || raw > self.degrade.prediction_deadline {
                        // The slice cannot distinguish "lost" from "late"
                        // before the deadline expires, so every abandoned
                        // lookup costs exactly the deadline.
                        self.counters.fallback_decisions += 1;
                        let exposed = self
                            .degrade
                            .prediction_deadline
                            .saturating_sub(Self::OVERLAP_WINDOW);
                        return PredictOutcome {
                            bank,
                            latency: exposed,
                            fallback: true,
                        };
                    }
                }
                PredictOutcome {
                    bank,
                    latency: raw.saturating_sub(Self::OVERLAP_WINDOW),
                    fallback: false,
                }
            }
        }
    }

    /// Access-category counters (Fig 10).
    pub fn counters(&self) -> &FabricCounters {
        &self.counters
    }

    /// Transport traffic/energy statistics.
    pub fn link_stats(&self) -> NocStats {
        self.link.stats()
    }

    /// Reset all counters and transport statistics (used after warm-up).
    pub fn reset_stats(&mut self) {
        self.counters = FabricCounters::default();
        self.link.reset_stats();
    }

    /// Serialize the fabric's mutable state: counters plus the transport's
    /// own state (link occupancy, stats, fault cursor). Organisation and
    /// kind are configuration and excluded.
    pub fn save_state(&self, w: &mut drishti_noc::snap::StateWriter) {
        use drishti_noc::snap::Persist;
        self.counters.save(w);
        self.link.save_state(w);
    }

    /// Restore state written by [`PredictorFabric::save_state`] into a
    /// fabric built with the same configuration.
    pub fn load_state(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        use drishti_noc::snap::Persist;
        self.counters.load(r)?;
        self.link.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(org: PredictorOrg, kind: FabricKind) -> PredictorFabric {
        PredictorFabric::new(org, SamplerOrg::LocalPerSlice, kind, 32)
    }

    #[test]
    fn local_org_is_free_and_myopic() {
        let mut f = fabric(PredictorOrg::LocalPerSlice, FabricKind::Local);
        assert!(!f.global_view());
        // Paper Fig 1: one bank per (slice, core) pair.
        assert_eq!(f.banks(), 32 * 32);
        let t = f.train(5, 9, 0);
        assert_eq!(t.bank, 5 * 32 + 9, "bank is the slice's table for core 9");
        assert_eq!(t.latency, 0);
        assert!(t.delivered);
        let p = f.predict(5, 9, 0);
        assert_eq!(p.latency, 0);
        assert!(!p.fallback);
    }

    #[test]
    fn per_core_org_routes_to_core_bank() {
        let mut f = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar);
        assert!(f.global_view());
        let t = f.train(5, 9, 0);
        assert_eq!(
            t.bank, 9,
            "per-core predictor bank is the requesting core's"
        );
        assert_eq!(t.latency, 3);
        assert!(t.delivered);
    }

    #[test]
    fn per_core_predict_is_hidden_under_the_miss() {
        let mut f = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar);
        // An uncontended NOCSTAR traversal (3 cycles) fits entirely within
        // the overlap window: no exposed latency.
        let p = f.predict(5, 9, 0);
        assert_eq!(p.bank, 9);
        assert_eq!(p.latency, 0, "3-cycle NOCSTAR lookup is fully hidden");
        assert!(!p.fallback);
    }

    #[test]
    fn centralized_org_uses_one_bank() {
        let mut f = fabric(PredictorOrg::GlobalCentralized, FabricKind::Mesh);
        assert_eq!(f.banks(), 1);
        let t = f.train(0, 31, 0);
        assert_eq!(t.bank, 0);
        assert!(t.latency > 0, "mesh transport must cost cycles");
    }

    #[test]
    fn mesh_fabric_is_much_slower_than_nocstar() {
        let mut mesh = fabric(PredictorOrg::GlobalPerCore, FabricKind::Mesh);
        let mut star = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar);
        let mut mesh_total = 0;
        let mut star_total = 0;
        for s in 0..32 {
            for c in 0..32 {
                mesh_total += mesh.predict(s, c, (s * 32 + c) as u64 * 1000).latency;
                star_total += star.predict(s, c, (s * 32 + c) as u64 * 1000).latency;
            }
        }
        assert!(
            mesh_total > 3 * star_total,
            "mesh {mesh_total} vs nocstar {star_total}"
        );
    }

    #[test]
    fn fixed_fabric_exposes_latency_beyond_overlap() {
        let mut f = fabric(PredictorOrg::GlobalPerCore, FabricKind::Fixed(20));
        let lat = f.predict(0, 31, 0).latency;
        assert_eq!(
            lat,
            20 - PredictorFabric::OVERLAP_WINDOW,
            "a Fig 11b sweep value of N exposes N − overlap cycles"
        );
        let mut f = fabric(PredictorOrg::GlobalPerCore, FabricKind::Fixed(4));
        let lat = f.predict(0, 31, 0).latency;
        assert_eq!(lat, 0, "below-window latencies are free (Fig 11b ≤5)");
    }

    #[test]
    fn counters_separate_train_and_predict() {
        let mut f = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar);
        f.train(0, 1, 0);
        f.train(2, 1, 0);
        f.predict(3, 1, 0);
        let c = f.counters();
        assert_eq!(c.train_accesses, 2);
        assert_eq!(c.predict_accesses, 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn global_sampler_broadcasts_to_all_tiles() {
        let mut f = PredictorFabric::new(
            PredictorOrg::LocalPerSlice,
            SamplerOrg::GlobalDistributed,
            FabricKind::Mesh,
            16,
        );
        assert!(f.global_view());
        f.train(0, 3, 0);
        assert_eq!(f.counters().broadcast_messages, 16);
    }

    #[test]
    fn reset_clears_everything() {
        let mut f = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar);
        f.train(0, 1, 0);
        f.reset_stats();
        assert_eq!(f.counters().total(), 0);
        assert_eq!(f.link_stats().messages, 0);
    }

    #[test]
    fn one_chip_hierarchical_is_the_identity() {
        let mut plain = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar);
        let mut wrapped = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar)
            .hierarchical(1, ChipLinkConfig::default());
        for i in 0..200u64 {
            let (s, c) = ((i % 32) as usize, ((i * 5) % 32) as usize);
            assert_eq!(plain.train(s, c, i), wrapped.train(s, c, i));
            assert_eq!(plain.predict(s, c, i), wrapped.predict(s, c, i));
        }
        assert_eq!(plain.link_stats(), wrapped.link_stats());
    }

    #[test]
    fn cross_chip_lookups_expose_latency_nocstar_cannot_hide() {
        let mut f = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar)
            .hierarchical(2, ChipLinkConfig::default());
        // Slice 1 looking up core 2's bank: both on chip 0 — still hidden.
        let intra = f.predict(1, 2, 0);
        assert_eq!(intra.latency, 0, "intra-chip NOCSTAR stays free");
        // Slice 1 looking up core 20's bank on chip 1: the inter-chip
        // segment (32 + 3 cycles by default) dwarfs the overlap window.
        let cross = f.predict(1, 20, 1_000);
        assert!(
            cross.latency > PredictorFabric::OVERLAP_WINDOW,
            "cross-chip lookup must be exposed, got {}",
            cross.latency
        );
    }

    fn faulty_fabric(drop_pct: f64, deadline: u64) -> PredictorFabric {
        PredictorFabric::with_faults(
            PredictorOrg::GlobalPerCore,
            SamplerOrg::LocalPerSlice,
            FabricKind::Nocstar,
            32,
            &FaultConfig::with_drops(42, drop_pct),
            DegradeConfig {
                prediction_deadline: deadline,
                train_retries: 2,
                retry_backoff: 8,
            },
        )
    }

    #[test]
    fn noop_faults_leave_fabric_bit_identical() {
        let mut plain = fabric(PredictorOrg::GlobalPerCore, FabricKind::Nocstar);
        let mut faulty = PredictorFabric::with_faults(
            PredictorOrg::GlobalPerCore,
            SamplerOrg::LocalPerSlice,
            FabricKind::Nocstar,
            32,
            &FaultConfig::none(),
            DegradeConfig::resilient(),
        );
        for i in 0..200u64 {
            let (s, c) = ((i % 32) as usize, ((i * 5) % 32) as usize);
            assert_eq!(plain.train(s, c, i), faulty.train(s, c, i));
            assert_eq!(plain.predict(s, c, i), faulty.predict(s, c, i));
        }
        assert_eq!(plain.counters(), faulty.counters());
        assert_eq!(plain.link_stats(), faulty.link_stats());
    }

    #[test]
    fn dropped_lookup_falls_back_with_deadline_cost() {
        let mut f = faulty_fabric(100.0, 64);
        let p = f.predict(0, 9, 0);
        assert!(p.fallback, "100% drops must force fallback");
        assert_eq!(p.latency, 64 - PredictorFabric::OVERLAP_WINDOW);
        let c = *f.counters();
        assert_eq!(c.dropped_predictions, 1);
        assert_eq!(c.fallback_decisions, 1);
    }

    #[test]
    fn over_deadline_transport_falls_back_without_a_drop() {
        // A 100-cycle fixed link with a 64-cycle deadline: every lookup is
        // delivered but abandoned as too slow. Jitter-only fault config
        // keeps the link fault-aware without dropping anything.
        let cfg = FaultConfig {
            seed: 1,
            jitter: 1,
            ..FaultConfig::none()
        };
        let mut f = PredictorFabric::with_faults(
            PredictorOrg::GlobalPerCore,
            SamplerOrg::LocalPerSlice,
            FabricKind::Fixed(100),
            32,
            &cfg,
            DegradeConfig {
                prediction_deadline: 64,
                train_retries: 0,
                retry_backoff: 0,
            },
        );
        let p = f.predict(0, 9, 0);
        assert!(p.fallback);
        assert_eq!(p.latency, 64 - PredictorFabric::OVERLAP_WINDOW);
        assert_eq!(f.counters().dropped_predictions, 0, "nothing was lost");
        assert_eq!(f.counters().fallback_decisions, 1);
    }

    #[test]
    fn dropped_training_retries_then_gives_up() {
        let mut f = faulty_fabric(100.0, 64);
        let t = f.train(0, 9, 0);
        assert!(!t.delivered, "100% drops exhaust every retry");
        assert!(t.latency > 0, "retries and backoff must cost cycles");
        let c = *f.counters();
        assert_eq!(c.retried_trainings, 2);
        assert_eq!(c.dropped_trainings, 1);

        // At a moderate rate most trainings eventually land.
        let mut f = faulty_fabric(30.0, 64);
        let delivered = (0..500u64)
            .filter(|&i| f.train(0, 9, i * 10).delivered)
            .count();
        assert!(
            delivered > 450,
            "30% drops with 2 retries should mostly deliver: {delivered}"
        );
        assert!(f.counters().retried_trainings > 0);
    }

    #[test]
    fn fault_counters_are_deterministic() {
        let run = || {
            let mut f = faulty_fabric(25.0, 64);
            for i in 0..400u64 {
                f.train((i % 32) as usize, ((i * 3) % 32) as usize, i);
                f.predict((i % 32) as usize, ((i * 7) % 32) as usize, i);
            }
            *f.counters()
        };
        assert_eq!(run(), run());
    }
}

//! Enhancement II: the dynamic sampled cache (paper §4.2).
//!
//! Randomly chosen sampled sets often see few LLC misses and contribute
//! little training signal (paper Fig 5, Observation II). Drishti instead
//! *measures* per-set capacity demand and samples the hottest sets:
//!
//! * a k-bit saturating counter per LLC set (k = 8, initialised to 2^k/2)
//!   is incremented on a miss and decremented on a hit;
//! * counters are monitored over L accesses to the slice (L = 32 K, the
//!   number of cache lines in a 2 MB slice) so every line has an equal
//!   chance of being observed;
//! * the N sets with the highest counters become the sampled sets for the
//!   next 128 K accesses (4 × L), after which the counters are reset and
//!   the cycle repeats — this adapts to phase changes;
//! * if the highest and lowest counters differ by less than a threshold,
//!   the slice has *uniform* capacity demand (streaming workloads like
//!   lbm); the DSC turns itself off and falls back to random selection.
//!
//! Thanks to the informed choice, far fewer sampled sets are needed:
//! 8 instead of 64 per slice for Hawkeye, 16 instead of 32 for Mockingjay —
//! which is where the paper's storage *savings* come from (Table 3).

/// Configuration of one slice's [`DynamicSampledCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DscConfig {
    /// Saturating-counter width in bits (paper: 8).
    pub k_bits: u8,
    /// Monitoring window in slice accesses (paper: 32 K = lines per slice).
    pub monitor_interval: u64,
    /// Active (selected) window in slice accesses (paper: 128 K = 4 × L).
    pub active_interval: u64,
    /// Number of sampled sets to select per slice.
    pub n_sampled: usize,
    /// Counter spread below which demand is considered uniform and random
    /// selection is used instead. The paper uses an MPKA difference of 100
    /// (the average difference across its outlier workloads); on k = 8
    /// saturating counters that corresponds to a small absolute spread.
    pub uniform_threshold: u32,
    /// Seed for the random fallback / initial selection.
    pub seed: u64,
}

impl DscConfig {
    /// Paper-default configuration for a 2 MB slice (2048 sets, 32 K lines)
    /// and `n_sampled` sampled sets.
    pub fn paper_default(n_sampled: usize) -> Self {
        DscConfig {
            k_bits: 8,
            monitor_interval: 32 * 1024,
            active_interval: 128 * 1024,
            n_sampled,
            uniform_threshold: 12,
            seed: 0xD815_0001,
        }
    }

    /// Counter initial value (2^k / 2).
    pub fn counter_init(&self) -> u32 {
        1 << (self.k_bits - 1)
    }

    /// Counter maximum value (2^k − 1).
    pub fn counter_max(&self) -> u32 {
        (1u32 << self.k_bits) - 1
    }
}

/// What changed as a result of observing an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DscEvent {
    /// No selection change.
    None,
    /// A new set of sampled sets was just selected; the policy must flush
    /// its sampled-cache contents (they describe the old sets).
    Reselected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Counters are live; previous sampled sets remain active.
    Monitoring { remaining: u64 },
    /// Sampled sets are fixed; counters idle.
    Active { remaining: u64 },
}

impl drishti_noc::snap::Persist for Phase {
    fn save(&self, w: &mut drishti_noc::snap::StateWriter) {
        match *self {
            Phase::Monitoring { remaining } => {
                w.put_u8(0);
                w.put_u64(remaining);
            }
            Phase::Active { remaining } => {
                w.put_u8(1);
                w.put_u64(remaining);
            }
        }
    }
    fn load(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        let tag = r.take_u8("dsc phase tag")?;
        let remaining = r.take_u64("dsc phase remaining")?;
        *self = match tag {
            0 => Phase::Monitoring { remaining },
            1 => Phase::Active { remaining },
            other => {
                return Err(drishti_noc::snap::SnapError::Invalid {
                    what: "dsc phase tag",
                    detail: format!("unknown variant {other}"),
                })
            }
        };
        Ok(())
    }
}

// Mutable selector state only; `cfg` is rebuilt from configuration.
drishti_noc::impl_persist_fields!(DynamicSampledCache {
    counters,
    phase,
    slot_of,
    sampled,
    rng_state,
    changed_slots,
    reselections,
    uniform_epochs,
});

/// Per-slice dynamic sampled-set selector.
#[derive(Debug, Clone)]
pub struct DynamicSampledCache {
    cfg: DscConfig,
    counters: Vec<u32>,
    phase: Phase,
    /// `slot_of[set]` = sampler slot index + 1, or 0 if not sampled.
    slot_of: Vec<u32>,
    sampled: Vec<usize>,
    rng_state: u64,
    /// Slots whose set changed at the last reselection (these are the only
    /// sampler slots whose contents must be flushed — sets that stay
    /// selected keep their history).
    changed_slots: Vec<usize>,
    /// Diagnostics.
    reselections: u64,
    uniform_epochs: u64,
}

impl DynamicSampledCache {
    /// Create a DSC for a slice with `n_sets` sets. The initial sampled
    /// sets are chosen randomly (the conventional scheme) while the first
    /// monitoring window runs.
    ///
    /// # Panics
    ///
    /// Panics if `n_sampled` is zero or exceeds `n_sets`.
    pub fn new(cfg: DscConfig, n_sets: usize) -> Self {
        assert!(
            cfg.n_sampled > 0 && cfg.n_sampled <= n_sets,
            "n_sampled {} out of range for {n_sets} sets",
            cfg.n_sampled
        );
        let mut dsc = DynamicSampledCache {
            counters: vec![cfg.counter_init(); n_sets],
            phase: Phase::Monitoring {
                remaining: cfg.monitor_interval,
            },
            slot_of: vec![0; n_sets],
            sampled: Vec::new(),
            changed_slots: Vec::new(),
            rng_state: cfg.seed | 1,
            reselections: 0,
            uniform_epochs: 0,
            cfg,
        };
        let random = dsc.random_sets();
        dsc.install(random);
        dsc.reselections = 0; // the initial install is not a reselection
        dsc
    }

    /// The configuration in use.
    pub fn config(&self) -> &DscConfig {
        &self.cfg
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic, seed-stable.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn random_sets(&mut self) -> Vec<usize> {
        let n_sets = self.counters.len();
        let mut chosen = Vec::with_capacity(self.cfg.n_sampled);
        while chosen.len() < self.cfg.n_sampled {
            let s = (self.next_rand() % n_sets as u64) as usize;
            if !chosen.contains(&s) {
                chosen.push(s);
            }
        }
        chosen
    }

    fn top_sets(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.counters.len()).collect();
        // Stable order among ties: prefer lower set index (deterministic).
        idx.sort_by(|&a, &b| self.counters[b].cmp(&self.counters[a]).then(a.cmp(&b)));
        idx.truncate(self.cfg.n_sampled);
        idx
    }

    fn install(&mut self, sets: Vec<usize>) {
        // Preserve the slots of sets that remain selected; hand the freed
        // slots to the newly selected sets.
        let n = self.cfg.n_sampled;
        let mut new_assign: Vec<Option<usize>> = vec![None; n]; // slot -> set
        let mut pending: Vec<usize> = Vec::new();
        for &set in &sets {
            match self.slot_of[set] {
                0 => pending.push(set),
                s => new_assign[s as usize - 1] = Some(set),
            }
        }
        self.changed_slots.clear();
        let mut pending = pending.into_iter();
        for (slot, a) in new_assign.iter_mut().enumerate() {
            if a.is_none() {
                *a = pending.next();
                self.changed_slots.push(slot);
            }
        }
        self.slot_of.fill(0);
        self.sampled = vec![0; n];
        for (slot, a) in new_assign.into_iter().enumerate() {
            let set = a.expect("every slot assigned");
            self.slot_of[set] = slot as u32 + 1;
            self.sampled[slot] = set;
        }
        self.reselections += 1;
    }

    /// Slots whose set changed at the last reselection.
    pub fn changed_slots(&self) -> &[usize] {
        &self.changed_slots
    }

    /// Whether `set` is currently a sampled set.
    pub fn is_sampled(&self, set: usize) -> bool {
        self.slot_of[set] != 0
    }

    /// Sampler storage slot for `set` (`0..n_sampled`), if sampled.
    pub fn slot_of(&self, set: usize) -> Option<usize> {
        match self.slot_of[set] {
            0 => None,
            s => Some(s as usize - 1),
        }
    }

    /// The currently selected sampled sets, in slot order.
    pub fn sampled_sets(&self) -> &[usize] {
        &self.sampled
    }

    /// Observe one access to `set` (`hit` = LLC hit). Drives the
    /// monitor/select/active state machine; returns
    /// [`DscEvent::Reselected`] when the sampled sets just changed.
    pub fn observe(&mut self, set: usize, hit: bool) -> DscEvent {
        match self.phase {
            Phase::Monitoring { ref mut remaining } => {
                let c = &mut self.counters[set];
                if hit {
                    *c = c.saturating_sub(1);
                } else {
                    *c = (*c + 1).min(self.cfg.counter_max());
                }
                *remaining -= 1;
                if *remaining == 0 {
                    let max = *self.counters.iter().max().expect("nonempty");
                    let min = *self.counters.iter().min().expect("nonempty");
                    let uniform = max - min < self.cfg.uniform_threshold;
                    let sets = if uniform {
                        self.uniform_epochs += 1;
                        self.random_sets()
                    } else {
                        self.top_sets()
                    };
                    self.install(sets);
                    self.phase = Phase::Active {
                        remaining: self.cfg.active_interval,
                    };
                    DscEvent::Reselected
                } else {
                    DscEvent::None
                }
            }
            Phase::Active { ref mut remaining } => {
                *remaining -= 1;
                if *remaining == 0 {
                    // Phase change: reset counters and start monitoring.
                    self.counters.fill(self.cfg.counter_init());
                    self.phase = Phase::Monitoring {
                        remaining: self.cfg.monitor_interval,
                    };
                }
                DscEvent::None
            }
        }
    }

    /// `(reselections, uniform_epochs)` diagnostics.
    pub fn diagnostics(&self) -> (u64, u64) {
        (self.reselections, self.uniform_epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(n_sampled: usize, monitor: u64, active: u64) -> DscConfig {
        DscConfig {
            monitor_interval: monitor,
            active_interval: active,
            ..DscConfig::paper_default(n_sampled)
        }
    }

    #[test]
    fn paper_defaults() {
        let cfg = DscConfig::paper_default(16);
        assert_eq!(cfg.k_bits, 8);
        assert_eq!(cfg.counter_init(), 128);
        assert_eq!(cfg.counter_max(), 255);
        assert_eq!(cfg.monitor_interval, 32 * 1024);
        assert_eq!(cfg.active_interval, 128 * 1024);
    }

    #[test]
    fn initial_selection_is_populated_and_unique() {
        let dsc = DynamicSampledCache::new(tiny_cfg(8, 100, 100), 64);
        let s = dsc.sampled_sets();
        assert_eq!(s.len(), 8);
        let mut dedup = s.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
        for (slot, &set) in s.iter().enumerate() {
            assert_eq!(dsc.slot_of(set), Some(slot));
        }
    }

    #[test]
    fn selects_high_miss_sets_after_monitoring() {
        let mut dsc = DynamicSampledCache::new(tiny_cfg(4, 400, 1000), 16);
        // Sets 0–3 always miss; the rest always hit.
        let mut reselected = false;
        for i in 0..400u64 {
            let set = (i % 16) as usize;
            let hit = set >= 4;
            if dsc.observe(set, hit) == DscEvent::Reselected {
                reselected = true;
            }
        }
        assert!(reselected, "monititoring window should complete");
        let mut sel = dsc.sampled_sets().to_vec();
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1, 2, 3], "hottest sets must be selected");
    }

    #[test]
    fn uniform_demand_falls_back_to_random() {
        let cfg = DscConfig {
            uniform_threshold: 50,
            ..tiny_cfg(4, 320, 1000)
        };
        let mut dsc = DynamicSampledCache::new(cfg, 16);
        // Perfectly uniform miss pattern: every set misses equally often.
        for i in 0..320u64 {
            dsc.observe((i % 16) as usize, i % 2 == 0);
        }
        let (_, uniform) = dsc.diagnostics();
        assert_eq!(uniform, 1, "uniform demand must be detected");
        assert_eq!(dsc.sampled_sets().len(), 4);
    }

    #[test]
    fn phase_cycle_monitor_active_monitor() {
        let mut dsc = DynamicSampledCache::new(tiny_cfg(2, 10, 20), 8);
        let mut reselects = 0;
        for i in 0..90u64 {
            // Bias misses toward set (epoch-dependent) to force changes.
            let set = (i % 8) as usize;
            let hit = if i < 40 { set != 0 } else { set != 5 };
            if dsc.observe(set, hit) == DscEvent::Reselected {
                reselects += 1;
            }
        }
        // 90 observations / (10 monitor + 20 active) = 3 full cycles.
        assert_eq!(reselects, 3);
    }

    #[test]
    fn adapts_to_phase_change() {
        let mut dsc = DynamicSampledCache::new(tiny_cfg(2, 80, 80), 8);
        // Phase 1: sets 0,1 hot.
        for i in 0..80u64 {
            let set = (i % 8) as usize;
            dsc.observe(set, set >= 2);
        }
        let mut first: Vec<usize> = dsc.sampled_sets().to_vec();
        first.sort_unstable();
        assert_eq!(first, vec![0, 1]);
        // Drain the active phase.
        for i in 0..80u64 {
            dsc.observe((i % 8) as usize, true);
        }
        // Phase 2: sets 6,7 hot.
        for i in 0..80u64 {
            let set = (i % 8) as usize;
            dsc.observe(set, set < 6);
        }
        let mut second: Vec<usize> = dsc.sampled_sets().to_vec();
        second.sort_unstable();
        assert_eq!(second, vec![6, 7], "DSC must track the new hot sets");
    }

    #[test]
    fn counters_saturate() {
        let cfg = tiny_cfg(1, 1_000_000, 10);
        let mut dsc = DynamicSampledCache::new(cfg, 2);
        for _ in 0..600 {
            dsc.observe(0, false); // misses: counter climbs to max 255
            dsc.observe(1, true); // hits: counter floors at 0
        }
        assert_eq!(dsc.counters[0], 255);
        assert_eq!(dsc.counters[1], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_sampled_panics() {
        let _ = DynamicSampledCache::new(tiny_cfg(0, 10, 10), 8);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = DynamicSampledCache::new(tiny_cfg(4, 10, 10), 64);
        let b = DynamicSampledCache::new(tiny_cfg(4, 10, 10), 64);
        assert_eq!(a.sampled_sets(), b.sampled_sets());
    }
}

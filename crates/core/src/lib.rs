//! The Drishti enhancements (MICRO 2025).
//!
//! State-of-the-art LLC replacement policies (Hawkeye, Mockingjay, SHiP++,
//! Glider, CHROME, …) are built from two seminal structures: a *sampled
//! cache* that observes a few LLC sets, and a PC-indexed *reuse predictor*
//! trained by the sampler. On a sliced LLC, the naive port instantiates both
//! per slice, and the paper identifies two resulting pathologies:
//!
//! 1. **Myopic predictions** (Observation I): loads of one PC scatter over
//!    slices via the complex address hash, so each slice's predictor is
//!    trained on a fragment of the PC's behaviour.
//! 2. **Under-utilised sampled sets** (Observation II): randomly chosen
//!    sampled sets often have few misses and contribute little training
//!    signal, while high-MPKA sets go unobserved.
//!
//! Drishti's two enhancements, both implemented here:
//!
//! * **Enhancement I** ([`org`], [`fabric`]): keep the sampled cache local
//!   per slice but make the reuse predictor *per-core and yet global* — one
//!   predictor per core, placed at the core's home tile, reachable from
//!   every slice over a dedicated 3-cycle NOCSTAR interconnect. This gives
//!   every slice a global view of each PC's reuse without the bandwidth
//!   bottleneck of a centralized predictor or the broadcast cost of a
//!   global sampled cache (paper Table 2).
//! * **Enhancement II** ([`dsc`]): a *dynamic sampled cache* — per-slice
//!   8-bit saturating counters identify the sets with the highest
//!   misses-per-kilo-access over a 32 K-access monitoring window; the top-N
//!   become the sampled sets for the next 128 K accesses. Workloads with
//!   uniform per-set demand (streaming, e.g. lbm) are detected and fall
//!   back to random selection.
//!
//! [`budget`] reproduces the paper's per-core storage accounting (Table 3)
//! and [`config`] bundles everything into named configurations
//! (`baseline`, `drishti`, ablations).
//!
//! # Example
//!
//! ```
//! use drishti_core::config::DrishtiConfig;
//!
//! // The full Drishti configuration for a 32-core system.
//! let cfg = DrishtiConfig::drishti(32);
//! let fabric = cfg.build_fabric();
//! assert_eq!(fabric.org().to_string(), "per-core-global");
//! ```

pub mod budget;
pub mod config;
pub mod dsc;
pub mod fabric;
pub mod faults;
pub mod org;
pub mod select;

//! Fault injection and graceful degradation, core-side facade.
//!
//! The fault *primitives* — seeded schedules, drop/jitter decisions, link
//! and DRAM outage windows — live at the bottom of the crate stack in
//! [`drishti_noc::faults`] so every uncore component can consume them.
//! This module re-exports them under `drishti_core::faults` (the name the
//! rest of the system imports) and adds the piece that only makes sense at
//! this layer: [`DegradeConfig`], the policy for how the predictor fabric
//! *degrades gracefully* when its transport misbehaves.
//!
//! Degradation semantics (see [`crate::fabric::PredictorFabric`]):
//!
//! * a prediction lookup that is dropped, or whose transport latency
//!   exceeds [`DegradeConfig::prediction_deadline`], abandons the remote
//!   predictor and falls back to the policy's local static insertion
//!   decision (its untrained default — SRRIP-like middle-of-the-road
//!   insertion) so the fill never blocks on a lost message;
//! * a dropped training update is retried up to
//!   [`DegradeConfig::train_retries`] times with a linear backoff of
//!   [`DegradeConfig::retry_backoff`] cycles per attempt; training lost
//!   after the last retry is simply skipped — predictors tolerate sparse
//!   training, they merely converge slower.
//!
//! These rules only ever engage on a fault-aware fabric built from a
//! non-no-op [`FaultConfig`]; healthy builds take the exact pre-existing
//! code path, so fault-free runs are bit-identical to the seed behaviour.

pub use drishti_noc::faults::{
    FaultConfig, FaultDecision, FaultDomain, FaultSchedule, OutageWindow,
};

/// How the predictor fabric degrades under injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeConfig {
    /// One-way transport latency (cycles) above which a prediction lookup
    /// stops waiting and falls back to the local static decision. Also the
    /// latency charged for a lookup whose request or response was dropped
    /// (the slice waits out the deadline before giving up).
    pub prediction_deadline: u64,
    /// Retransmissions attempted for a dropped training update.
    pub train_retries: u32,
    /// Backoff between training retries, cycles (linear: attempt `k`
    /// waits `k × retry_backoff`).
    pub retry_backoff: u64,
}

impl DegradeConfig {
    /// Sensible degradation for fault-injected runs: the deadline sits
    /// well above any healthy NOCSTAR access (3 cycles) and above typical
    /// contended mesh accesses (~20 cycles on 32 cores, paper Fig 11), so
    /// it only fires on genuinely pathological transports.
    pub fn resilient() -> Self {
        DegradeConfig {
            prediction_deadline: 64,
            train_retries: 2,
            retry_backoff: 8,
        }
    }
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig::resilient()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilient_deadline_clears_healthy_transports() {
        let d = DegradeConfig::resilient();
        assert!(
            d.prediction_deadline > 30,
            "must not fire on a healthy mesh"
        );
        assert!(d.train_retries > 0);
    }

    #[test]
    fn reexports_reach_the_noc_primitives() {
        assert!(FaultConfig::none().is_noop());
        assert!(FaultSchedule::for_domain(&FaultConfig::none(), FaultDomain::Fabric).is_none());
    }
}

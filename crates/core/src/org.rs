//! The predictor/sampler organisation design space (paper §4.1, Table 2).
//!
//! Four structural choices exist for (sampled cache × reuse predictor)
//! placement; the paper's Table 2 catalogues their costs. Functionally they
//! collapse into two *views* — a **myopic** view (both structures local)
//! and a **global** view (at least one structure global) — but their
//! traffic, latency and broadcast characteristics differ enormously, which
//! is why Drishti lands on a local sampler plus a distributed per-core
//! predictor.

/// Where the reuse predictor lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorOrg {
    /// Per-slice *per-core* predictors, trained only by the slice's own
    /// sampler (the baseline port of Hawkeye/Mockingjay, paper Fig 1:
    /// "each slice has its per-core predictor, indexed with a hash of PC
    /// and core ID"; *myopic*).
    LocalPerSlice,
    /// A single predictor shared by all slices at a central tile.
    /// Global view, but every sampled access and every fill-path lookup
    /// crosses the chip to one node — the bandwidth bottleneck of
    /// paper Fig 10 (≥65 accesses per kilo-instruction at 32 cores).
    GlobalCentralized,
    /// Drishti Enhancement I: one predictor per *core*, placed at the
    /// core's home tile, used by all slices. Global view; traffic spreads
    /// over per-core structures (~2.46 APKI average at 32 cores).
    GlobalPerCore,
}

impl PredictorOrg {
    /// Whether this organisation trains predictors on all slices' samplers.
    pub fn is_global_view(self) -> bool {
        !matches!(self, PredictorOrg::LocalPerSlice)
    }

    /// How many predictor banks exist for `cores` cores / slices.
    pub fn banks(self, cores: usize) -> usize {
        match self {
            // Baseline: one bank per (slice, core) pair — paper Fig 1.
            PredictorOrg::LocalPerSlice => cores * cores,
            PredictorOrg::GlobalPerCore => cores,
            PredictorOrg::GlobalCentralized => 1,
        }
    }
}

impl std::fmt::Display for PredictorOrg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PredictorOrg::LocalPerSlice => "local",
            PredictorOrg::GlobalCentralized => "centralized-global",
            PredictorOrg::GlobalPerCore => "per-core-global",
        })
    }
}

/// Where the sampled cache lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplerOrg {
    /// One sampler per slice observing that slice's sampled sets
    /// (Drishti's choice — sampler contents are inherently slice-local).
    LocalPerSlice,
    /// One sampler shared by all slices (paper Fig 6). Every sampled-set
    /// access ships (PC, block address, hit/miss) to one node, and each
    /// training *broadcasts* to all local predictors.
    GlobalCentralized,
    /// Sampler distributed across slices but training all slices'
    /// predictors (paper Fig 7). Fixes the inbound bandwidth, keeps the
    /// broadcast.
    GlobalDistributed,
}

impl SamplerOrg {
    /// Whether sampler training events must be broadcast to every
    /// predictor bank (paper: any global sampler with local predictors).
    pub fn requires_broadcast(self) -> bool {
        !matches!(self, SamplerOrg::LocalPerSlice)
    }
}

impl std::fmt::Display for SamplerOrg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SamplerOrg::LocalPerSlice => "local",
            SamplerOrg::GlobalCentralized => "centralized-global",
            SamplerOrg::GlobalDistributed => "distributed-global",
        })
    }
}

/// One row of the paper's Table 2: a (sampler, predictor) combination and
/// its qualitative costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignPoint {
    /// Sampled-cache placement.
    pub sampler: SamplerOrg,
    /// Predictor placement.
    pub predictor: PredictorOrg,
}

impl DesignPoint {
    /// The paper's baseline: everything local (myopic).
    pub fn baseline() -> Self {
        DesignPoint {
            sampler: SamplerOrg::LocalPerSlice,
            predictor: PredictorOrg::LocalPerSlice,
        }
    }

    /// Drishti: local sampler, per-core-yet-global predictor.
    pub fn drishti() -> Self {
        DesignPoint {
            sampler: SamplerOrg::LocalPerSlice,
            predictor: PredictorOrg::GlobalPerCore,
        }
    }

    /// Whether the combination achieves a global training view.
    pub fn global_view(&self) -> bool {
        self.predictor.is_global_view() || self.sampler.requires_broadcast()
    }

    /// Whether the combination needs broadcast messages.
    pub fn broadcast(&self) -> bool {
        self.sampler.requires_broadcast() && matches!(self.predictor, PredictorOrg::LocalPerSlice)
    }

    /// Whether the combination funnels traffic through a single node
    /// ("High" bandwidth demand in Table 2).
    pub fn high_bandwidth(&self) -> bool {
        matches!(self.sampler, SamplerOrg::GlobalCentralized)
            || matches!(self.predictor, PredictorOrg::GlobalCentralized)
    }

    /// The six meaningful rows of the design space, in Table 2 order
    /// (global sampler × local predictor: centralized/distributed; local
    /// sampler × global predictor: centralized/distributed), prefixed by
    /// the baseline and suffixed by Drishti's pick for measurement.
    pub fn design_space() -> Vec<DesignPoint> {
        vec![
            DesignPoint::baseline(),
            DesignPoint {
                sampler: SamplerOrg::GlobalCentralized,
                predictor: PredictorOrg::LocalPerSlice,
            },
            DesignPoint {
                sampler: SamplerOrg::GlobalDistributed,
                predictor: PredictorOrg::LocalPerSlice,
            },
            DesignPoint {
                sampler: SamplerOrg::LocalPerSlice,
                predictor: PredictorOrg::GlobalCentralized,
            },
            DesignPoint::drishti(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_myopic() {
        assert!(!DesignPoint::baseline().global_view());
        assert!(!DesignPoint::baseline().broadcast());
        assert!(!DesignPoint::baseline().high_bandwidth());
    }

    #[test]
    fn drishti_is_global_low_bandwidth_no_broadcast() {
        let d = DesignPoint::drishti();
        assert!(d.global_view());
        assert!(!d.broadcast());
        assert!(!d.high_bandwidth());
    }

    #[test]
    fn table2_rows_match_paper() {
        // Global sampler + local predictor, centralized: global, high BW, broadcast.
        let p = DesignPoint {
            sampler: SamplerOrg::GlobalCentralized,
            predictor: PredictorOrg::LocalPerSlice,
        };
        assert!(p.global_view() && p.high_bandwidth() && p.broadcast());

        // Global sampler + local predictor, distributed: global, low BW, broadcast.
        let p = DesignPoint {
            sampler: SamplerOrg::GlobalDistributed,
            predictor: PredictorOrg::LocalPerSlice,
        };
        assert!(p.global_view() && !p.high_bandwidth() && p.broadcast());

        // Local sampler + centralized predictor: global, high BW, no broadcast.
        let p = DesignPoint {
            sampler: SamplerOrg::LocalPerSlice,
            predictor: PredictorOrg::GlobalCentralized,
        };
        assert!(p.global_view() && p.high_bandwidth() && !p.broadcast());

        // Local sampler + distributed (per-core) predictor: global, low BW, no broadcast.
        let p = DesignPoint::drishti();
        assert!(p.global_view() && !p.high_bandwidth() && !p.broadcast());
    }

    #[test]
    fn bank_counts() {
        // Baseline: per-slice per-core (paper Fig 1) ⇒ slices × cores.
        assert_eq!(PredictorOrg::LocalPerSlice.banks(32), 32 * 32);
        assert_eq!(PredictorOrg::GlobalCentralized.banks(32), 1);
        assert_eq!(PredictorOrg::GlobalPerCore.banks(32), 32);
    }

    #[test]
    fn display_names() {
        assert_eq!(PredictorOrg::GlobalPerCore.to_string(), "per-core-global");
        assert_eq!(
            SamplerOrg::GlobalDistributed.to_string(),
            "distributed-global"
        );
    }
}

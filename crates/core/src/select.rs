//! Sampled-set selection strategies.
//!
//! Policies ask one question per LLC access: *is this set a sampled set,
//! and if so which sampler slot does it own?* Three strategies answer it:
//!
//! * [`SetSelector::static_random`] — the conventional scheme: N sets chosen
//!   randomly at construction, fixed forever (Hawkeye: 64/slice,
//!   Mockingjay: 32/slice).
//! * [`SetSelector::explicit`] — a caller-provided list, used by the
//!   paper's Table 1 study (top-32 MPKA sets / bottom-32 / half-half,
//!   chosen from a profiling run).
//! * [`SetSelector::dynamic`] — Drishti's Enhancement II
//!   ([`DynamicSampledCache`]).

use crate::dsc::{DscConfig, DscEvent, DynamicSampledCache};

/// A per-slice sampled-set membership oracle.
#[derive(Debug, Clone)]
pub enum SetSelector {
    /// Fixed membership (random or explicit).
    Fixed {
        /// `slot_of[set]` = slot + 1 or 0.
        slot_of: Vec<u32>,
        /// Selected sets in slot order.
        sampled: Vec<usize>,
    },
    /// Drishti's dynamic sampled cache.
    Dynamic(DynamicSampledCache),
}

/// Placeholder value required by the snapshot codec's container impls
/// (`Vec<SetSelector>`); never observed by policies, which always build
/// real selectors from configuration before any restore.
impl Default for SetSelector {
    fn default() -> Self {
        SetSelector::Fixed {
            slot_of: Vec::new(),
            sampled: Vec::new(),
        }
    }
}

impl drishti_noc::snap::Persist for SetSelector {
    fn save(&self, w: &mut drishti_noc::snap::StateWriter) {
        match self {
            SetSelector::Fixed { slot_of, sampled } => {
                w.put_u8(0);
                slot_of.save(w);
                sampled.save(w);
            }
            SetSelector::Dynamic(dsc) => {
                w.put_u8(1);
                dsc.save(w);
            }
        }
    }
    fn load(
        &mut self,
        r: &mut drishti_noc::snap::StateReader<'_>,
    ) -> Result<(), drishti_noc::snap::SnapError> {
        use drishti_noc::snap::SnapError;
        let tag = r.take_u8("set selector tag")?;
        // The selector is rebuilt from configuration before restore, so the
        // snapshot's variant must agree with the configured one — a mismatch
        // means the snapshot came from a different configuration.
        match (tag, &mut *self) {
            (0, SetSelector::Fixed { slot_of, sampled }) => {
                slot_of.load(r)?;
                sampled.load(r)
            }
            (1, SetSelector::Dynamic(dsc)) => dsc.load(r),
            (0 | 1, _) => Err(SnapError::Invalid {
                what: "set selector tag",
                detail: "snapshot selector kind does not match this configuration".into(),
            }),
            (other, _) => Err(SnapError::Invalid {
                what: "set selector tag",
                detail: format!("unknown variant {other}"),
            }),
        }
    }
}

impl SetSelector {
    /// The conventional scheme: `n_sampled` sets chosen pseudo-randomly
    /// (deterministically from `seed`) out of `n_sets`.
    ///
    /// # Panics
    ///
    /// Panics if `n_sampled` is zero or exceeds `n_sets`.
    pub fn static_random(n_sets: usize, n_sampled: usize, seed: u64) -> Self {
        assert!(
            n_sampled > 0 && n_sampled <= n_sets,
            "n_sampled {n_sampled} out of range for {n_sets} sets"
        );
        let mut state = seed | 1;
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut sampled = Vec::with_capacity(n_sampled);
        while sampled.len() < n_sampled {
            let s = (next() % n_sets as u64) as usize;
            if !sampled.contains(&s) {
                sampled.push(s);
            }
        }
        SetSelector::from_list(n_sets, sampled)
    }

    /// An explicit sampled-set list (Table 1 oracle studies).
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, contains duplicates, or references sets
    /// outside `0..n_sets`.
    pub fn explicit(n_sets: usize, sets: Vec<usize>) -> Self {
        assert!(!sets.is_empty(), "explicit selection cannot be empty");
        let mut dedup = sets.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sets.len(), "duplicate sets in selection");
        assert!(
            sets.iter().all(|&s| s < n_sets),
            "set index out of range in selection"
        );
        SetSelector::from_list(n_sets, sets)
    }

    /// Drishti's dynamic sampled cache.
    pub fn dynamic(cfg: DscConfig, n_sets: usize) -> Self {
        SetSelector::Dynamic(DynamicSampledCache::new(cfg, n_sets))
    }

    fn from_list(n_sets: usize, sampled: Vec<usize>) -> Self {
        let mut slot_of = vec![0u32; n_sets];
        for (slot, &set) in sampled.iter().enumerate() {
            slot_of[set] = slot as u32 + 1;
        }
        SetSelector::Fixed { slot_of, sampled }
    }

    /// Sampler slot for `set`, if it is currently sampled.
    pub fn slot_of(&self, set: usize) -> Option<usize> {
        match self {
            SetSelector::Fixed { slot_of, .. } => match slot_of[set] {
                0 => None,
                s => Some(s as usize - 1),
            },
            SetSelector::Dynamic(dsc) => dsc.slot_of(set),
        }
    }

    /// Number of sampled sets.
    pub fn n_sampled(&self) -> usize {
        match self {
            SetSelector::Fixed { sampled, .. } => sampled.len(),
            SetSelector::Dynamic(dsc) => dsc.sampled_sets().len(),
        }
    }

    /// The currently sampled sets, in slot order.
    pub fn sampled_sets(&self) -> Vec<usize> {
        match self {
            SetSelector::Fixed { sampled, .. } => sampled.clone(),
            SetSelector::Dynamic(dsc) => dsc.sampled_sets().to_vec(),
        }
    }

    /// Observe one access (drives the dynamic selector's state machine).
    /// Returns [`DscEvent::Reselected`] when sampled-set membership just
    /// changed and the policy must flush its sampler contents.
    pub fn observe(&mut self, set: usize, hit: bool) -> DscEvent {
        match self {
            SetSelector::Fixed { .. } => DscEvent::None,
            SetSelector::Dynamic(dsc) => dsc.observe(set, hit),
        }
    }

    /// Whether this selector is dynamic (Drishti Enhancement II on).
    pub fn is_dynamic(&self) -> bool {
        matches!(self, SetSelector::Dynamic(_))
    }

    /// Sampler slots whose set changed at the last reselection — the only
    /// slots whose sampler contents must be flushed.
    pub fn changed_slots(&self) -> &[usize] {
        match self {
            SetSelector::Fixed { .. } => &[],
            SetSelector::Dynamic(dsc) => dsc.changed_slots(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_random_is_deterministic_and_unique() {
        let a = SetSelector::static_random(2048, 64, 42);
        let b = SetSelector::static_random(2048, 64, 42);
        assert_eq!(a.sampled_sets(), b.sampled_sets());
        assert_eq!(a.n_sampled(), 64);
        let mut sets = a.sampled_sets();
        sets.sort_unstable();
        sets.dedup();
        assert_eq!(sets.len(), 64);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SetSelector::static_random(2048, 64, 1);
        let b = SetSelector::static_random(2048, 64, 2);
        assert_ne!(a.sampled_sets(), b.sampled_sets());
    }

    #[test]
    fn slot_mapping_round_trips() {
        let s = SetSelector::static_random(256, 16, 7);
        for (slot, set) in s.sampled_sets().into_iter().enumerate() {
            assert_eq!(s.slot_of(set), Some(slot));
        }
        let non_sampled = (0..256).find(|&x| s.slot_of(x).is_none()).unwrap();
        assert!(s.slot_of(non_sampled).is_none());
    }

    #[test]
    fn explicit_list_respected() {
        let s = SetSelector::explicit(64, vec![5, 9, 33]);
        assert_eq!(s.sampled_sets(), vec![5, 9, 33]);
        assert_eq!(s.slot_of(9), Some(1));
        assert!(!s.is_dynamic());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn explicit_duplicates_panic() {
        let _ = SetSelector::explicit(64, vec![5, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_out_of_range_panics() {
        let _ = SetSelector::explicit(64, vec![64]);
    }

    #[test]
    fn fixed_observe_never_reselects() {
        let mut s = SetSelector::static_random(64, 4, 3);
        for i in 0..100_000usize {
            assert_eq!(s.observe(i % 64, i % 3 == 0), DscEvent::None);
        }
    }

    #[test]
    fn dynamic_selector_reselects() {
        let cfg = DscConfig {
            monitor_interval: 64,
            active_interval: 64,
            ..DscConfig::paper_default(4)
        };
        let mut s = SetSelector::dynamic(cfg, 32);
        assert!(s.is_dynamic());
        let mut reselected = false;
        for i in 0..128u64 {
            let set = (i % 32) as usize;
            if s.observe(set, set >= 4) == DscEvent::Reselected {
                reselected = true;
            }
        }
        assert!(reselected);
    }
}

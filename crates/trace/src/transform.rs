//! Behaviour-preserving trace transforms for metamorphic testing.
//!
//! The conformance harness re-runs a cell under transforms that *should
//! not* change what a correct simulator computes (or should change it
//! only in tightly-specified ways) and asserts the corresponding
//! invariance. This module holds the trace-level transform: bijective PC
//! relabeling.
//!
//! Relabeling every PC through a bijection preserves the *structure* of
//! the access stream — same lines, same order, same kinds, and distinct
//! PCs stay distinct — so any policy that treats PCs as opaque signatures
//! must produce identical hit/miss behaviour, and PC-trained predictors
//! must still satisfy every hard contract even though their decisions may
//! legitimately differ.

use crate::TraceRecord;

/// Bijectively permute the low `bits` bits of `pc`, preserving the high
/// bits, keyed by `key`.
///
/// The permutation composes three bijections on the `2^bits` domain —
/// xor-fold, odd-constant multiply (mod `2^bits`), key xor — applied for
/// two rounds, so distinct inputs map to distinct outputs and the
/// transform is invertible (though the harness never needs the inverse).
///
/// # Panics
///
/// Panics unless `1 <= bits <= 64`.
pub fn relabel_pc(pc: u64, key: u64, bits: u32) -> u64 {
    assert!((1..=64).contains(&bits), "bits must be in 1..=64");
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let mut x = pc & mask;
    for round in 0..2u64 {
        x ^= (key.wrapping_add(round)) & mask;
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15 | 1) & mask;
        if bits > 1 {
            x ^= x >> (bits / 2).max(1);
            x &= mask;
        }
    }
    (pc & !mask) | x
}

/// Apply [`relabel_pc`] to every record of a trace; all other fields are
/// untouched.
pub fn relabel_trace(trace: &[TraceRecord], key: u64, bits: u32) -> Vec<TraceRecord> {
    trace
        .iter()
        .map(|r| TraceRecord {
            pc: relabel_pc(r.pc, key, bits),
            ..*r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn relabel_is_bijective_on_small_domain() {
        for key in [0u64, 1, 0xdead_beef] {
            let mut seen = HashSet::new();
            for pc in 0..(1u64 << 12) {
                assert!(seen.insert(relabel_pc(pc, key, 12)), "collision at {pc:#x}");
            }
            assert_eq!(seen.len(), 1 << 12);
        }
    }

    #[test]
    fn relabel_preserves_high_bits() {
        let pc = 0xabcd_0000_0000_1234u64;
        let out = relabel_pc(pc, 99, 40);
        assert_eq!(out >> 40, pc >> 40);
    }

    #[test]
    fn relabel_is_deterministic_and_key_sensitive() {
        assert_eq!(relabel_pc(0x400, 7, 32), relabel_pc(0x400, 7, 32));
        assert_ne!(relabel_pc(0x400, 7, 32), relabel_pc(0x400, 8, 32));
    }

    #[test]
    fn relabel_trace_touches_only_pcs() {
        let trace = vec![
            TraceRecord {
                instr_gap: 3,
                pc: 0x400,
                line: 77,
                is_store: true,
            },
            TraceRecord {
                instr_gap: 0,
                pc: 0x404,
                line: 78,
                is_store: false,
            },
        ];
        let out = relabel_trace(&trace, 42, 48);
        assert_eq!(out.len(), 2);
        for (a, b) in trace.iter().zip(&out) {
            assert_eq!(a.instr_gap, b.instr_gap);
            assert_eq!(a.line, b.line);
            assert_eq!(a.is_store, b.is_store);
            assert_ne!(a.pc, b.pc, "relabeling should move typical PCs");
        }
        // Distinct PCs stay distinct.
        assert_ne!(out[0].pc, out[1].pc);
    }

    #[test]
    fn full_width_relabel_is_accepted() {
        let out = relabel_pc(u64::MAX, 5, 64);
        assert_eq!(relabel_pc(u64::MAX, 5, 64), out);
    }
}

//! Composition of primitive patterns into benchmark-like workloads.
//!
//! A [`SyntheticWorkload`] interleaves several [`StreamSpec`]s by weight.
//! Each stream owns a private address region, a pool of PCs, a store
//! fraction and an instruction-gap distribution — enough structure to dial
//! in MPKI, PC scattering and set skew independently.

use crate::pattern::{Pattern, PatternState};
use crate::{Rng, TraceRecord, WorkloadGen};

/// Specification of one access stream inside a workload.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// The address pattern.
    pub pattern: Pattern,
    /// Number of distinct PCs that issue this stream's accesses.
    pub pcs: u32,
    /// Relative share of the workload's accesses (weights are normalised).
    pub weight: f64,
    /// Fraction of accesses that are stores.
    pub store_fraction: f64,
    /// Mean non-memory instructions between accesses.
    pub instr_gap: u32,
}

impl StreamSpec {
    /// A convenience constructor with 10% stores and a gap of 14
    /// (memory-intensive workloads retire roughly one *LLC-relevant* access
    /// per few tens of instructions once L1/L2 filter the stream; this gap
    /// keeps LLC and predictor traffic per kilo-instruction in the
    /// regime the paper reports, e.g. Fig 10's ≤8 APKI per core).
    pub fn new(pattern: Pattern, pcs: u32, weight: f64) -> Self {
        StreamSpec {
            pattern,
            pcs,
            weight,
            store_fraction: 0.1,
            instr_gap: 14,
        }
    }
}

#[derive(Debug)]
struct StreamState {
    spec: StreamSpec,
    pattern: PatternState,
    pc_base: u64,
    pc_cursor: u64,
    cum_weight: f64,
}

/// A deterministic workload built from weighted streams.
///
/// A workload may carry several *phases* (stream sets): every
/// `phase_period` emitted records the active set advances cyclically,
/// flipping the program's archetype mid-run (see
/// [`SyntheticWorkload::phased`]). Single-phase workloads — the common
/// case — never switch.
#[derive(Debug)]
pub struct SyntheticWorkload {
    name: String,
    streams: Vec<StreamState>,
    /// `streams` index range of each phase (single-phase: one full range).
    phase_ranges: Vec<std::ops::Range<usize>>,
    /// Records per phase before switching (unused when single-phase).
    phase_period: u64,
    /// Records emitted so far (drives phase selection).
    emitted: u64,
    rng: Rng,
}

/// Address-space slot size per stream: 1 GiB of lines keeps regions
/// disjoint for any realistic footprint.
const REGION_LINES: u64 = 1 << 24;

impl SyntheticWorkload {
    /// Build a workload named `name` from `specs`, seeded by `seed`.
    /// Regions and PC pools are disjoint across streams; different seeds
    /// shift the whole address space so two cores running the "same"
    /// benchmark (different sim-points) do not share lines.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, any weight is non-positive, or any
    /// stream has zero PCs.
    pub fn new(name: impl Into<String>, specs: Vec<StreamSpec>, seed: u64) -> Self {
        SyntheticWorkload::phased(name, vec![specs], 0, seed)
    }

    /// Build a *phase-alternating* workload: `phases[p]` is the stream set
    /// active during phase `p`, and the active phase advances cyclically
    /// every `period` emitted records. The archetype therefore flips
    /// mid-run — the re-learning pressure the paper's §4.2 phase handling
    /// targets: a predictor trained on phase 0's PCs/reuse must detect and
    /// re-learn phase 1's, repeatedly.
    ///
    /// Address regions and PC pools are enumerated *across* phases, so
    /// every stream of every phase stays disjoint exactly as in a
    /// single-phase workload. With a single phase, `period` is ignored and
    /// this is identical (bit-for-bit) to [`SyntheticWorkload::new`].
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, any phase's spec list is empty, any
    /// weight is non-positive, any stream has zero PCs, or `period` is
    /// zero while more than one phase is given.
    pub fn phased(
        name: impl Into<String>,
        phases: Vec<Vec<StreamSpec>>,
        period: u64,
        seed: u64,
    ) -> Self {
        assert!(!phases.is_empty(), "workload needs at least one phase");
        assert!(
            phases.len() == 1 || period > 0,
            "multi-phase workloads need a nonzero phase period"
        );
        let name = name.into();
        let name_ref = name.as_str();
        let mut rng = Rng::new(seed ^ 0xACE1_BEEF);
        // Private 2^40-line offset per seed keeps cores disjoint.
        let space_base = (seed & 0xffff) << 40;
        let mut streams = Vec::new();
        let mut phase_ranges = Vec::with_capacity(phases.len());
        for specs in phases {
            assert!(!specs.is_empty(), "workload needs at least one stream");
            let start = streams.len();
            let total: f64 = specs.iter().map(|s| s.weight).sum();
            let mut cum = 0.0;
            for spec in specs {
                assert!(spec.weight > 0.0, "weights must be positive");
                assert!(spec.pcs > 0, "streams need at least one PC");
                cum += spec.weight / total;
                // Streams are enumerated globally across phases, so
                // regions, salts and PC pools stay disjoint.
                let i = streams.len();
                let base = space_base + (i as u64 + 1) * REGION_LINES;
                // The salt is a function of the workload *name* and stream
                // index — stable across seeds/cores of the same benchmark —
                // so structural alignment (set-column bands, phase band
                // sequences) is shared the way a common binary shares it.
                let salt = name_ref.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, c| {
                    (h ^ u64::from(c)).wrapping_mul(0x1000_0000_01b3)
                }) ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                streams.push(StreamState {
                    pattern: PatternState::with_salt(spec.pattern, base, salt, &mut rng),
                    pc_base: 0x40_0000 + seed.rotate_left(17) % 0xffff + (i as u64) * 0x1000,
                    pc_cursor: 0,
                    cum_weight: cum,
                    spec,
                });
            }
            phase_ranges.push(start..streams.len());
        }
        SyntheticWorkload {
            name,
            streams,
            phase_ranges,
            phase_period: period,
            emitted: 0,
            rng,
        }
    }
}

impl WorkloadGen for SyntheticWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_record(&mut self) -> TraceRecord {
        let phase = if self.phase_ranges.len() == 1 {
            0
        } else {
            ((self.emitted / self.phase_period) as usize) % self.phase_ranges.len()
        };
        self.emitted += 1;
        let range = self.phase_ranges[phase].clone();
        let u = self.rng.unit();
        let idx = self.streams[range.clone()]
            .iter()
            .position(|s| u <= s.cum_weight)
            .map(|p| range.start + p)
            .unwrap_or(range.end - 1);
        let s = &mut self.streams[idx];
        // Cycle deterministically through the stream's PC pool; each PC
        // keeps issuing from the shared pattern state.
        s.pc_cursor += 1;
        let pc_index = s.pc_cursor % u64::from(s.spec.pcs);
        let pc = s.pc_base + pc_index * 8;
        let line = s.pattern.next_line(pc_index, &mut self.rng);
        let is_store = self.rng.unit() < s.spec.store_fraction;
        let jitter = (self.rng.next_u64() % 3) as u32;
        TraceRecord {
            instr_gap: s.spec.instr_gap + jitter,
            pc,
            line,
            is_store,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn two_stream() -> SyntheticWorkload {
        SyntheticWorkload::new(
            "test",
            vec![
                StreamSpec::new(Pattern::Loop { footprint: 64 }, 4, 3.0),
                StreamSpec::new(
                    Pattern::Stream {
                        footprint: 1 << 20,
                        stride: 1,
                    },
                    2,
                    1.0,
                ),
            ],
            11,
        )
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = two_stream();
        let mut b = two_stream();
        assert_eq!(a.collect(500), b.collect(500));
    }

    #[test]
    fn weights_are_respected() {
        let mut w = two_stream();
        let recs = w.collect(20_000);
        // Loop stream lines live in region 1, stream lines in region 2.
        let loop_count = recs.iter().filter(|r| (r.line >> 24) & 0xffff == 1).count();
        // Simply check both regions appear and the loop region dominates.
        let mut by_region: HashMap<u64, usize> = HashMap::new();
        for r in &recs {
            *by_region.entry(r.line / super::REGION_LINES).or_default() += 1;
        }
        assert_eq!(by_region.len(), 2);
        let mut counts: Vec<usize> = by_region.values().copied().collect();
        counts.sort_unstable();
        assert!(counts[1] > 2 * counts[0], "3:1 weights: {counts:?}");
        let _ = loop_count;
    }

    #[test]
    fn pc_pools_are_disjoint_across_streams() {
        let mut w = two_stream();
        let recs = w.collect(5_000);
        let pcs: HashSet<u64> = recs.iter().map(|r| r.pc).collect();
        assert_eq!(pcs.len(), 6, "4 + 2 PCs expected: {pcs:?}");
    }

    #[test]
    fn different_seeds_use_disjoint_address_spaces() {
        let mut a = SyntheticWorkload::new(
            "a",
            vec![StreamSpec::new(Pattern::Loop { footprint: 32 }, 1, 1.0)],
            1,
        );
        let mut b = SyntheticWorkload::new(
            "b",
            vec![StreamSpec::new(Pattern::Loop { footprint: 32 }, 1, 1.0)],
            2,
        );
        let la: HashSet<u64> = a.collect(100).iter().map(|r| r.line).collect();
        let lb: HashSet<u64> = b.collect(100).iter().map(|r| r.line).collect();
        assert!(la.is_disjoint(&lb));
    }

    #[test]
    fn stores_fraction_reasonable() {
        let mut w = two_stream();
        let recs = w.collect(10_000);
        let stores = recs.iter().filter(|r| r.is_store).count();
        let frac = stores as f64 / recs.len() as f64;
        assert!((0.05..0.2).contains(&frac), "store fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_specs_panic() {
        let _ = SyntheticWorkload::new("x", vec![], 1);
    }

    #[test]
    #[should_panic(expected = "nonzero phase period")]
    fn multi_phase_needs_period() {
        let spec = || vec![StreamSpec::new(Pattern::Loop { footprint: 8 }, 1, 1.0)];
        let _ = SyntheticWorkload::phased("x", vec![spec(), spec()], 0, 1);
    }

    #[test]
    fn phased_flips_archetype_every_period() {
        let phases = vec![
            vec![StreamSpec::new(Pattern::Loop { footprint: 16 }, 2, 1.0)],
            vec![StreamSpec::new(
                Pattern::Stream {
                    footprint: 1 << 20,
                    stride: 1,
                },
                2,
                1.0,
            )],
        ];
        let mut w = SyntheticWorkload::phased("flip", phases, 100, 3);
        let recs = w.collect(400);
        // Streams are enumerated globally: phase 0 lives in region 1,
        // phase 1 in region 2, and each 100-record window uses only its
        // own phase's region.
        for (i, r) in recs.iter().enumerate() {
            let region = (r.line / super::REGION_LINES) & 0xff;
            let expect = 1 + (i as u64 / 100) % 2;
            assert_eq!(region, expect, "record {i} in wrong phase region");
        }
    }

    #[test]
    fn single_phase_phased_matches_new_bit_for_bit() {
        let specs = || {
            vec![
                StreamSpec::new(Pattern::PointerChase { footprint: 512 }, 3, 2.0),
                StreamSpec::new(Pattern::Loop { footprint: 64 }, 2, 1.0),
            ]
        };
        let mut a = SyntheticWorkload::new("same", specs(), 9);
        let mut b = SyntheticWorkload::phased("same", vec![specs()], 0, 9);
        assert_eq!(a.collect(2_000), b.collect(2_000));
    }
}

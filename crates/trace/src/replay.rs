//! Trace materialisation and sharing.
//!
//! The sweep harness runs the same (benchmark, seed) workload under many
//! policies and organisations. Generating the synthetic stream is cheap
//! but not free — and, more importantly, regenerating it per cell makes
//! every cell pay the cost again. [`TraceCache`] materialises each
//! workload's record stream exactly once, behind an [`Arc`], and
//! [`ReplayWorkload`] replays the shared records as a normal
//! [`WorkloadGen`].
//!
//! Replay is bit-exact: [`crate::synthetic::SyntheticWorkload`] is a
//! deterministic function of `(benchmark, seed)`, so a replayed run equals
//! a freshly generated one record for record (see the workspace-level
//! `tests/sweep.rs` proof).

use crate::presets::Benchmark;
use crate::{TraceRecord, WorkloadGen};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A [`WorkloadGen`] that replays a shared, pre-materialised record
/// stream.
///
/// Engines pull exactly as many records as their configured access count;
/// should a caller pull past the end anyway, the stream wraps around (the
/// `WorkloadGen` contract is an infinite generator).
pub struct ReplayWorkload {
    name: String,
    records: Arc<Vec<TraceRecord>>,
    pos: usize,
}

impl ReplayWorkload {
    /// Replay `records` under the benchmark-style name `name`.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty — an empty stream cannot satisfy the
    /// infinite-generator contract.
    pub fn new(name: impl Into<String>, records: Arc<Vec<TraceRecord>>) -> Self {
        assert!(!records.is_empty(), "cannot replay an empty trace");
        ReplayWorkload {
            name: name.into(),
            records,
            pos: 0,
        }
    }

    /// The shared record stream (for pointer-equality checks in tests).
    pub fn records(&self) -> &Arc<Vec<TraceRecord>> {
        &self.records
    }
}

impl std::fmt::Debug for ReplayWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayWorkload")
            .field("name", &self.name)
            .field("len", &self.records.len())
            .field("pos", &self.pos)
            .finish()
    }
}

impl WorkloadGen for ReplayWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_record(&mut self) -> TraceRecord {
        let r = self.records[self.pos % self.records.len()];
        self.pos += 1;
        r
    }
}

/// A concurrent, seed-keyed cache of materialised workload traces.
///
/// Keys are `(benchmark, seed, length)`; values are `Arc<Vec<TraceRecord>>`
/// shared by every cell that replays the same workload. Generation happens
/// outside the map lock so concurrent misses on *different* keys never
/// serialise; two racing misses on the *same* key both generate, but the
/// first insertion wins and both callers receive the same `Arc` (pointer
/// equality is part of the contract — it is what makes the cache a cache).
#[derive(Debug, Default)]
pub struct TraceCache {
    entries: Mutex<HashMap<TraceKey, Arc<Vec<TraceRecord>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Cache key: `(benchmark, seed, length)` pins a workload trace exactly.
type TraceKey = (Benchmark, u64, u64);

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// The materialised trace of `bench` at `seed`, `len` records long.
    /// Generated on first request, shared thereafter.
    pub fn get(&self, bench: Benchmark, seed: u64, len: u64) -> Arc<Vec<TraceRecord>> {
        let key = (bench, seed, len);
        if let Some(hit) = self.entries.lock().expect("trace cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Generate without holding the lock; `or_insert` keeps the racer's
        // copy if one beat us back, preserving pointer equality.
        let generated = Arc::new(bench.build(seed).collect(len as usize));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("trace cache poisoned");
        Arc::clone(entries.entry(key).or_insert(generated))
    }

    /// A replaying [`WorkloadGen`] for `bench` at `seed`, backed by the
    /// shared trace.
    pub fn replay(&self, bench: Benchmark, seed: u64, len: u64) -> ReplayWorkload {
        ReplayWorkload::new(bench.label(), self.get(bench, seed, len))
    }

    /// One replaying workload per core of `mix`, each `len` records long.
    pub fn workloads_for(&self, mix: &crate::mix::Mix, len: u64) -> Vec<ReplayWorkload> {
        mix.benchmarks
            .iter()
            .zip(&mix.seeds)
            .map(|(&b, &s)| self.replay(b, s, len))
            .collect()
    }

    /// `(hits, misses)` so far. A sweep of `C` cells over `M` distinct
    /// workloads should report `C·cores − M` hits.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_equals_generation() {
        let cache = TraceCache::new();
        let mut replayed = cache.replay(Benchmark::Mcf, 7, 500);
        let mut fresh = Benchmark::Mcf.build(7);
        for _ in 0..500 {
            assert_eq!(replayed.next_record(), fresh.next_record());
        }
    }

    #[test]
    fn cache_shares_one_arc_per_key() {
        let cache = TraceCache::new();
        let a = cache.get(Benchmark::Gcc, 3, 100);
        let b = cache.get(Benchmark::Gcc, 3, 100);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.get(Benchmark::Gcc, 4, 100);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn replay_wraps_around() {
        let cache = TraceCache::new();
        let mut w = cache.replay(Benchmark::Lbm, 1, 10);
        let first: Vec<_> = w.collect(10);
        let wrapped: Vec<_> = w.collect(10);
        assert_eq!(first, wrapped);
    }

    #[test]
    fn workloads_for_mix_cover_every_core() {
        let cache = TraceCache::new();
        let mix = crate::mix::Mix::homogeneous(Benchmark::Xalan, 4, 9);
        let ws = cache.workloads_for(&mix, 50);
        assert_eq!(ws.len(), 4);
        // Distinct seeds → distinct traces; same call again → shared Arcs.
        let again = cache.workloads_for(&mix, 50);
        for (w, a) in ws.iter().zip(&again) {
            assert!(Arc::ptr_eq(w.records(), a.records()));
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_replay_rejected() {
        let _ = ReplayWorkload::new("x", Arc::new(Vec::new()));
    }
}

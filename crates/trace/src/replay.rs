//! Trace materialisation and sharing.
//!
//! The sweep harness runs the same (benchmark, seed) workload under many
//! policies and organisations. Generating the synthetic stream is cheap
//! but not free — and, more importantly, regenerating it per cell makes
//! every cell pay the cost again. [`TraceCache`] materialises each
//! workload's record stream exactly once, behind an [`Arc`], and
//! [`ReplayWorkload`] replays the shared records as a normal
//! [`WorkloadGen`].
//!
//! Replay is bit-exact: [`crate::synthetic::SyntheticWorkload`] is a
//! deterministic function of `(benchmark, seed)`, so a replayed run equals
//! a freshly generated one record for record (see the workspace-level
//! `tests/sweep.rs` proof).
//!
//! # Two tiers
//!
//! The cache has an in-RAM tier and an optional on-disk tier. The RAM
//! tier holds strong `Arc`s up to a configurable byte budget
//! ([`TraceCache::with_budget`]); beyond it, the least-recently-used
//! trace is evicted — spilled to a [`store`](crate::store) file first when
//! a spill directory is configured ([`TraceCache::with_spill`]), so the
//! next request re-reads it instead of regenerating. Entries also keep a
//! [`Weak`] handle, so a trace still alive in running cells is re-shared
//! without touching disk. Every tier transition is lossless (the codec
//! round-trips bit-exactly), so **results are byte-identical at any
//! budget** — the budget only moves where the bytes live. The pointer
//! -equality contract survives capping: concurrent `get`s for the same
//! key always resolve to one `Arc` while any copy of it is alive.

use crate::presets::Benchmark;
use crate::store::{read_trace, write_trace};
use crate::{TraceRecord, WorkloadGen};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// A [`WorkloadGen`] that replays a shared, pre-materialised record
/// stream.
///
/// Engines pull exactly as many records as their configured access count;
/// should a caller pull past the end anyway, the stream wraps around (the
/// `WorkloadGen` contract is an infinite generator).
pub struct ReplayWorkload {
    name: String,
    records: Arc<Vec<TraceRecord>>,
    pos: usize,
}

impl ReplayWorkload {
    /// Replay `records` under the benchmark-style name `name`.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty — an empty stream cannot satisfy the
    /// infinite-generator contract.
    pub fn new(name: impl Into<String>, records: Arc<Vec<TraceRecord>>) -> Self {
        assert!(!records.is_empty(), "cannot replay an empty trace");
        ReplayWorkload {
            name: name.into(),
            records,
            pos: 0,
        }
    }

    /// The shared record stream (for pointer-equality checks in tests).
    pub fn records(&self) -> &Arc<Vec<TraceRecord>> {
        &self.records
    }
}

impl std::fmt::Debug for ReplayWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayWorkload")
            .field("name", &self.name)
            .field("len", &self.records.len())
            .field("pos", &self.pos)
            .finish()
    }
}

impl WorkloadGen for ReplayWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_record(&mut self) -> TraceRecord {
        // Wrap eagerly instead of indexing `pos % len`: the division would
        // otherwise run once per record on the hottest trace-replay path.
        if self.pos >= self.records.len() {
            self.pos = 0;
        }
        let r = self.records[self.pos];
        self.pos += 1;
        r
    }
}

/// Cache key: `(benchmark, seed, length)` pins a workload trace exactly.
type TraceKey = (Benchmark, u64, u64);

/// One cached trace across its tier lifecycle.
#[derive(Debug)]
struct Entry {
    /// RAM tier: present while the entry is under budget.
    strong: Option<Arc<Vec<TraceRecord>>>,
    /// Outstanding-Arc tier: lets racing cells re-share an evicted trace
    /// that some cell still replays, preserving pointer equality.
    weak: Weak<Vec<TraceRecord>>,
    /// Decoded size, counted against the budget while `strong` is held.
    bytes: usize,
    /// LRU stamp (cache-wide monotonic tick of the last `get`).
    last_use: u64,
    /// Disk tier: spill file location, once written.
    spill: Option<PathBuf>,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<TraceKey, Entry>,
    /// Bytes held by strong entries (the RAM tier).
    resident: usize,
    /// Monotonic use counter driving LRU.
    tick: u64,
}

/// A concurrent, seed-keyed, two-tier cache of materialised workload
/// traces.
///
/// Keys are `(benchmark, seed, length)`; values are `Arc<Vec<TraceRecord>>`
/// shared by every cell that replays the same workload. Generation happens
/// outside the map lock so concurrent misses on *different* keys never
/// serialise; two racing misses on the *same* key both generate, but the
/// first insertion wins and both callers receive the same `Arc` (pointer
/// equality is part of the contract — it is what makes the cache a cache).
///
/// The byte budget is a soft cap on the RAM tier: the trace being
/// requested is never evicted on its own behalf, so a single trace larger
/// than the whole budget still works (resident peaks at budget + one
/// trace). Spill-file I/O failures degrade gracefully — the entry is
/// evicted without a disk copy and the next miss regenerates it.
#[derive(Debug)]
pub struct TraceCache {
    inner: Mutex<Inner>,
    /// RAM-tier byte budget (`usize::MAX` = unbounded).
    budget: usize,
    /// Where evicted traces spill; `None` disables the disk tier.
    spill_dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    spills: AtomicU64,
    disk_loads: AtomicU64,
}

impl Default for TraceCache {
    fn default() -> Self {
        TraceCache::new()
    }
}

impl TraceCache {
    /// An empty, unbounded cache (RAM tier only — the behaviour every
    /// existing call site expects).
    pub fn new() -> Self {
        TraceCache::with_budget(usize::MAX)
    }

    /// An empty cache whose RAM tier is capped at `budget_bytes` of
    /// decoded trace data, evicting LRU entries past it (no disk tier:
    /// evicted traces are regenerated on the next miss).
    pub fn with_budget(budget_bytes: usize) -> Self {
        TraceCache {
            inner: Mutex::new(Inner::default()),
            budget: budget_bytes,
            spill_dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            disk_loads: AtomicU64::new(0),
        }
    }

    /// A capped cache that spills evicted traces to `drishti-trace/v1`
    /// files under `dir` (created if missing) and reloads them from disk
    /// instead of regenerating.
    pub fn with_spill(budget_bytes: usize, dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut cache = TraceCache::with_budget(budget_bytes);
        cache.spill_dir = Some(dir);
        Ok(cache)
    }

    fn spill_path(&self, key: &TraceKey) -> Option<PathBuf> {
        let (bench, seed, len) = key;
        self.spill_dir
            .as_ref()
            .map(|d| d.join(format!("{}-{seed}-{len}.drtr", bench.label())))
    }

    /// Evicts LRU strong entries until the RAM tier fits the budget,
    /// never evicting `keep` (the trace being served). Spills to disk
    /// when configured; a spill write failure just forfeits the disk copy.
    fn enforce_budget(&self, inner: &mut Inner, keep: &TraceKey) {
        while inner.resident > self.budget {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, e)| e.strong.is_some() && *k != keep)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k);
            let Some(vkey) = victim else { break };
            let path = self.spill_path(&vkey);
            let entry = inner.entries.get_mut(&vkey).expect("victim exists");
            let records = entry.strong.take().expect("victim is strong");
            inner.resident -= entry.bytes;
            if entry.spill.is_none() {
                if let Some(path) = path {
                    let (bench, seed, _) = vkey;
                    if write_trace(&path, bench.label(), seed, &records).is_ok() {
                        entry.spill = Some(path);
                        self.spills.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Promotes `records` to the RAM tier for `key` and trims to budget.
    fn admit(&self, inner: &mut Inner, key: TraceKey, records: &Arc<Vec<TraceRecord>>) {
        inner.tick += 1;
        let tick = inner.tick;
        let bytes = records.len() * std::mem::size_of::<TraceRecord>();
        let entry = inner.entries.entry(key).or_insert_with(|| Entry {
            strong: None,
            weak: Weak::new(),
            bytes,
            last_use: tick,
            spill: None,
        });
        entry.last_use = tick;
        if entry.strong.is_none() {
            entry.strong = Some(Arc::clone(records));
            entry.weak = Arc::downgrade(records);
            inner.resident += entry.bytes;
        }
        self.enforce_budget(inner, &key);
    }

    /// The materialised trace of `bench` at `seed`, `len` records long.
    /// Generated on first request, shared thereafter; possibly reloaded
    /// from the disk tier if it was spilled in between.
    pub fn get(&self, bench: Benchmark, seed: u64, len: u64) -> Arc<Vec<TraceRecord>> {
        let key = (bench, seed, len);
        // Fast path under the lock: RAM tier, or an outstanding Arc.
        let spill = {
            let mut inner = self.inner.lock().expect("trace cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(&key) {
                entry.last_use = tick;
                if let Some(strong) = &entry.strong {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(strong);
                }
                if let Some(alive) = entry.weak.upgrade() {
                    // Evicted but still replaying somewhere: re-admit.
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    entry.strong = Some(Arc::clone(&alive));
                    let bytes = entry.bytes;
                    inner.resident += bytes;
                    self.enforce_budget(&mut inner, &key);
                    return alive;
                }
                entry.spill.clone()
            } else {
                None
            }
        };
        // Slow path without the lock: disk tier, else generate.
        let records = spill
            .as_ref()
            .and_then(|path| match read_trace(path) {
                Ok((_, recs)) if recs.len() as u64 == len => {
                    self.disk_loads.fetch_add(1, Ordering::Relaxed);
                    Some(Arc::new(recs))
                }
                // Unreadable or stale spill: regenerate below.
                _ => None,
            })
            .unwrap_or_else(|| {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Arc::new(bench.build(seed).collect(len as usize))
            });
        // First insertion wins: if a racer beat us back, take its copy so
        // every caller shares one Arc.
        let mut inner = self.inner.lock().expect("trace cache poisoned");
        if let Some(entry) = inner.entries.get_mut(&key) {
            if let Some(strong) = &entry.strong {
                return Arc::clone(strong);
            }
            if let Some(alive) = entry.weak.upgrade() {
                entry.strong = Some(Arc::clone(&alive));
                let bytes = entry.bytes;
                inner.resident += bytes;
                self.enforce_budget(&mut inner, &key);
                return alive;
            }
        }
        self.admit(&mut inner, key, &records);
        records
    }

    /// Preloads a trace (e.g. read from a `--trace-file`) so later `get`s
    /// for its key share it without generating. First insertion wins: if
    /// the key is already live, the existing `Arc` is returned instead.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    pub fn insert(
        &self,
        bench: Benchmark,
        seed: u64,
        records: Vec<TraceRecord>,
    ) -> Arc<Vec<TraceRecord>> {
        assert!(!records.is_empty(), "cannot cache an empty trace");
        let key = (bench, seed, records.len() as u64);
        let records = Arc::new(records);
        let mut inner = self.inner.lock().expect("trace cache poisoned");
        if let Some(entry) = inner.entries.get_mut(&key) {
            if let Some(strong) = &entry.strong {
                return Arc::clone(strong);
            }
            if let Some(alive) = entry.weak.upgrade() {
                entry.strong = Some(Arc::clone(&alive));
                let bytes = entry.bytes;
                inner.resident += bytes;
                self.enforce_budget(&mut inner, &key);
                return alive;
            }
        }
        self.admit(&mut inner, key, &records);
        records
    }

    /// A replaying [`WorkloadGen`] for `bench` at `seed`, backed by the
    /// shared trace.
    pub fn replay(&self, bench: Benchmark, seed: u64, len: u64) -> ReplayWorkload {
        ReplayWorkload::new(bench.label(), self.get(bench, seed, len))
    }

    /// One replaying workload per core of `mix`, each `len` records long.
    pub fn workloads_for(&self, mix: &crate::mix::Mix, len: u64) -> Vec<ReplayWorkload> {
        mix.benchmarks
            .iter()
            .zip(&mix.seeds)
            .map(|(&b, &s)| self.replay(b, s, len))
            .collect()
    }

    /// `(hits, misses)` so far. A sweep of `C` cells over `M` distinct
    /// workloads should report `C·cores − M` hits (when nothing is
    /// evicted; disk reloads count as neither).
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// `(spills, disk_loads)`: traces written to and re-read from the
    /// disk tier.
    pub fn tier_stats(&self) -> (u64, u64) {
        (
            self.spills.load(Ordering::Relaxed),
            self.disk_loads.load(Ordering::Relaxed),
        )
    }

    /// Bytes currently held by the RAM tier. At most `budget` + the size
    /// of the largest single trace (the soft-cap guarantee).
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().expect("trace cache poisoned").resident
    }
}

impl Drop for TraceCache {
    fn drop(&mut self) {
        // Spill files are scratch state owned by this cache instance;
        // best-effort cleanup, never fail a drop.
        if let Ok(inner) = self.inner.get_mut() {
            for entry in inner.entries.values() {
                if let Some(path) = &entry.spill {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_equals_generation() {
        let cache = TraceCache::new();
        let mut replayed = cache.replay(Benchmark::Mcf, 7, 500);
        let mut fresh = Benchmark::Mcf.build(7);
        for _ in 0..500 {
            assert_eq!(replayed.next_record(), fresh.next_record());
        }
    }

    #[test]
    fn cache_shares_one_arc_per_key() {
        let cache = TraceCache::new();
        let a = cache.get(Benchmark::Gcc, 3, 100);
        let b = cache.get(Benchmark::Gcc, 3, 100);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.get(Benchmark::Gcc, 4, 100);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn replay_wraps_around() {
        let cache = TraceCache::new();
        let mut w = cache.replay(Benchmark::Lbm, 1, 10);
        let first: Vec<_> = w.collect(10);
        let wrapped: Vec<_> = w.collect(10);
        assert_eq!(first, wrapped);
    }

    #[test]
    fn workloads_for_mix_cover_every_core() {
        let cache = TraceCache::new();
        let mix = crate::mix::Mix::homogeneous(Benchmark::Xalan, 4, 9);
        let ws = cache.workloads_for(&mix, 50);
        assert_eq!(ws.len(), 4);
        // Distinct seeds → distinct traces; same call again → shared Arcs.
        let again = cache.workloads_for(&mix, 50);
        for (w, a) in ws.iter().zip(&again) {
            assert!(Arc::ptr_eq(w.records(), a.records()));
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_replay_rejected() {
        let _ = ReplayWorkload::new("x", Arc::new(Vec::new()));
    }

    #[test]
    fn budget_evicts_lru_and_regenerates_identically() {
        let rec = std::mem::size_of::<TraceRecord>();
        // Room for two 100-record traces, not three.
        let cache = TraceCache::with_budget(2 * 100 * rec);
        let a = cache.get(Benchmark::Mcf, 1, 100);
        let a_snapshot: Vec<_> = a.to_vec();
        let _b = cache.get(Benchmark::Gcc, 1, 100);
        drop(a); // no outstanding Arc → eviction really frees it
        let _c = cache.get(Benchmark::Lbm, 1, 100);
        assert!(cache.resident_bytes() <= 2 * 100 * rec);
        // Mcf (LRU) was evicted; regeneration is bit-identical.
        let a2 = cache.get(Benchmark::Mcf, 1, 100);
        assert_eq!(*a2, a_snapshot);
        assert_eq!(cache.stats().1, 4, "mcf regenerated after eviction");
    }

    #[test]
    fn outstanding_arc_survives_eviction_pointer_equal() {
        let rec = std::mem::size_of::<TraceRecord>();
        let cache = TraceCache::with_budget(100 * rec);
        let a = cache.get(Benchmark::Mcf, 1, 100);
        let _b = cache.get(Benchmark::Gcc, 1, 100); // evicts mcf from RAM tier
                                                    // The held Arc keeps the trace alive: a re-get re-shares it.
        let a2 = cache.get(Benchmark::Mcf, 1, 100);
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(cache.stats().1, 2, "no regeneration while an Arc lives");
    }

    #[test]
    fn spill_tier_round_trips() {
        let rec = std::mem::size_of::<TraceRecord>();
        let dir = std::env::temp_dir().join(format!("drishti-spill-test-{}", std::process::id()));
        let cache = TraceCache::with_spill(100 * rec, &dir).unwrap();
        let a_snapshot = cache.get(Benchmark::Mcf, 1, 100).to_vec();
        drop(cache.get(Benchmark::Gcc, 1, 100)); // spills mcf…
        drop(cache.get(Benchmark::Mcf, 1, 100)); // …gcc spills, mcf reloads
        let a2 = cache.get(Benchmark::Mcf, 1, 100);
        assert_eq!(*a2, a_snapshot, "disk round-trip is bit-identical");
        let (spills, disk_loads) = cache.tier_stats();
        assert!(spills >= 1, "eviction spilled to {}", dir.display());
        assert!(disk_loads >= 1, "reload came from the disk tier");
        drop(cache);
        let _ = std::fs::remove_dir(&dir); // cache Drop removed the files
    }

    #[test]
    fn insert_preloads_and_first_insert_wins() {
        let cache = TraceCache::new();
        let records: Vec<_> = Benchmark::Mcf.build(5).collect(50);
        let a = cache.insert(Benchmark::Mcf, 5, records.clone());
        // get() for the same key shares the preloaded copy, no generation.
        let b = cache.get(Benchmark::Mcf, 5, 50);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().1, 0, "preload avoided generation");
        // A second insert yields the existing Arc, not the new one.
        let c = cache.insert(Benchmark::Mcf, 5, records);
        assert!(Arc::ptr_eq(&a, &c));
    }
}

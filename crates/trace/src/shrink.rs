//! Greedy trace shrinking for the conformance fuzzer.
//!
//! When a fuzz cell finds a contract violation, the raw failing trace is
//! thousands of records long and useless for debugging. [`shrink`]
//! minimizes it against a caller-supplied *oracle* (does this candidate
//! trace still fail?) in two phases:
//!
//! 1. **Prefix truncation** — contract violations are detected at a
//!    specific access, so everything after the first failing index is
//!    dead weight. We binary-search the shortest failing prefix.
//! 2. **Greedy chunk removal** (ddmin-style) — repeatedly try deleting
//!    interior chunks, halving the chunk size until single records, and
//!    keep any deletion that still fails.
//!
//! The oracle is called O(n log n) times in the worst case; fuzz traces
//! are short (thousands of records) so this completes in milliseconds.

use crate::TraceRecord;

/// Minimize `trace` to a (locally) minimal subsequence for which
/// `fails` still returns `true`.
///
/// Requires `fails(trace)` to be true on entry; returns the input
/// unchanged (and makes no oracle calls beyond the initial check) if it
/// is not, so a flaky oracle can never "shrink" a passing trace into a
/// fabricated failure.
pub fn shrink<F>(trace: &[TraceRecord], mut fails: F) -> Vec<TraceRecord>
where
    F: FnMut(&[TraceRecord]) -> bool,
{
    if trace.is_empty() || !fails(trace) {
        return trace.to_vec();
    }

    // Phase 1: shortest failing prefix, by binary search. Failure is
    // prefix-monotone for contract violations (once the violating access
    // has happened, longer prefixes still contain it), which the oracle
    // re-verifies at every probe — a non-monotone oracle just costs
    // extra probes, never a wrong result.
    let mut lo = 1usize; // shortest length not yet known to pass
    let mut hi = trace.len(); // shortest length known to fail
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails(&trace[..mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut current: Vec<TraceRecord> = trace[..hi].to_vec();
    if !fails(&current) {
        // Non-monotone oracle: fall back to the full trace as the prefix.
        current = trace.to_vec();
    }

    // Phase 2: greedy interior deletion with geometrically shrinking
    // chunks. The final record is pinned — it is the access where the
    // violation fires, so deleting it can never keep the failure.
    let mut chunk = current.len().saturating_sub(1) / 2;
    while chunk >= 1 {
        let mut start = 0;
        while start + chunk < current.len() {
            let mut candidate = Vec::with_capacity(current.len() - chunk);
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[start + chunk..]);
            if fails(&candidate) {
                current = candidate;
            } else {
                start += chunk;
            }
        }
        chunk /= 2;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(line: u64) -> TraceRecord {
        TraceRecord {
            instr_gap: 1,
            pc: 0x400,
            line,
            is_store: false,
        }
    }

    #[test]
    fn shrinks_to_single_triggering_record() {
        let trace: Vec<TraceRecord> = (0..1000).map(rec).collect();
        // "Fails" iff line 637 is present.
        let shrunk = shrink(&trace, |t| t.iter().any(|r| r.line == 637));
        assert_eq!(shrunk.len(), 1);
        assert_eq!(shrunk[0].line, 637);
    }

    #[test]
    fn shrinks_conjunction_to_both_records() {
        let trace: Vec<TraceRecord> = (0..500).map(rec).collect();
        // Fails iff 100 appears before 400.
        let shrunk = shrink(&trace, |t| {
            let a = t.iter().position(|r| r.line == 100);
            let b = t.iter().position(|r| r.line == 400);
            matches!((a, b), (Some(a), Some(b)) if a < b)
        });
        assert_eq!(
            shrunk.iter().map(|r| r.line).collect::<Vec<_>>(),
            vec![100, 400]
        );
    }

    #[test]
    fn passing_trace_is_returned_unchanged() {
        let trace: Vec<TraceRecord> = (0..10).map(rec).collect();
        let shrunk = shrink(&trace, |_| false);
        assert_eq!(shrunk, trace);
    }

    #[test]
    fn prefix_truncation_respects_violation_index() {
        let trace: Vec<TraceRecord> = (0..256).map(rec).collect();
        // Count-based failure: fails once ≥ 10 records are present —
        // monotone in the prefix, minimal answer is exactly 10 records.
        let shrunk = shrink(&trace, |t| t.len() >= 10);
        assert_eq!(shrunk.len(), 10);
    }

    #[test]
    fn empty_trace_is_a_no_op() {
        assert!(shrink(&[], |_| true).is_empty());
    }

    #[test]
    fn oracle_result_is_final_failing_state() {
        // Whatever shrink returns must itself fail — the repro guarantee.
        let trace: Vec<TraceRecord> = (0..333).map(rec).collect();
        let oracle = |t: &[TraceRecord]| t.iter().filter(|r| r.line % 7 == 0).count() >= 3;
        let shrunk = shrink(&trace, oracle);
        assert!(oracle(&shrunk));
        assert_eq!(shrunk.len(), 3);
    }
}

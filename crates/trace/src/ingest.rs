//! ChampSim trace ingestion.
//!
//! The paper's evaluation runs on ChampSim, whose native trace format is a
//! raw concatenation of fixed-size 64-byte `input_instr` records (the
//! published traces add xz/gz compression on top; this adapter consumes the
//! decompressed raw framing):
//!
//! ```text
//! offset  field                        type
//! 0       ip                           u64 (little-endian)
//! 8       is_branch                    u8  (0 or 1)
//! 9       branch_taken                 u8  (0 or 1)
//! 10      destination_registers        u8 × 2
//! 12      source_registers             u8 × 4
//! 16      destination_memory           u64 × 2 (store addresses; 0 = unused)
//! 32      source_memory                u64 × 4 (load addresses; 0 = unused)
//! ```
//!
//! [`decode_champsim`] converts that byte stream into the repo's
//! [`TraceRecord`] stream and [`ingest_champsim`] persists it losslessly as
//! a `drishti-trace/v1` (`.drtr`) file via [`TraceWriter`]: every non-zero
//! memory operand becomes one record (loads first, then stores, in operand
//! order), `line = addr >> 6`, `pc = ip`, and the instructions *between*
//! memory instructions accumulate into the `instr_gap` of the next emitted
//! record (further records of the same instruction carry gap 0). The
//! conversion is exact for everything the LLC model consumes — PC, line,
//! load/store kind and instruction gap; register fields and branch outcomes
//! have no LLC-level meaning and are dropped (see DESIGN.md §18 for the
//! fidelity boundary).
//!
//! Every corruption class surfaces as a typed [`IngestError`] — malformed
//! input never panics:
//!
//! * a file that ends before one whole record, or whose partial tail could
//!   still be a record prefix → [`IngestError::Truncated`];
//! * a complete record whose flag bytes are not 0/1 (the signature of a
//!   wrong record size or a non-ChampSim file) →
//!   [`IngestError::BadInstructionSize`];
//! * a partial tail whose flag bytes *cannot* begin a record → junk
//!   appended after the last record → [`IngestError::TrailingGarbage`].
//!
//! [`TraceWriter`]: crate::store::TraceWriter

use crate::store::{StoreError, TraceWriter};
use crate::{Rng, TraceRecord};
use std::fmt;
use std::path::Path;

/// Size of one ChampSim `input_instr` record.
pub const CHAMPSIM_RECORD_BYTES: usize = 64;

/// Byte offsets of the two flag bytes inside a record (`is_branch`,
/// `branch_taken`) — the only fields with a constrained value set, used to
/// tell a truncated record prefix from appended garbage.
const FLAG_OFFSETS: [usize; 2] = [8, 9];

/// Everything that can go wrong ingesting a ChampSim trace.
#[derive(Debug)]
pub enum IngestError {
    /// Underlying I/O failure reading the input file.
    Io(std::io::Error),
    /// The `.drtr` side of the conversion failed.
    Store(StoreError),
    /// Instruction `instr` is a complete 64-byte record but its flag bytes
    /// are not 0/1 — the file's record size (or format) is not ChampSim's.
    BadInstructionSize {
        /// 0-based index of the offending instruction record.
        instr: u64,
        /// The `is_branch` byte found.
        is_branch: u8,
        /// The `branch_taken` byte found.
        branch_taken: u8,
    },
    /// The file ends mid-record: the partial tail is still a plausible
    /// record prefix, so the file was cut short.
    Truncated {
        /// 0-based index of the incomplete instruction record.
        instr: u64,
        /// Bytes of it actually present.
        have: usize,
    },
    /// The bytes after the last whole record cannot begin a record (their
    /// flag bytes are invalid): garbage was appended to the trace.
    TrailingGarbage {
        /// Byte offset at which the garbage starts.
        offset: u64,
        /// Length of the garbage tail.
        len: usize,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest I/O error: {e}"),
            IngestError::Store(e) => write!(f, "ingest output error: {e}"),
            IngestError::BadInstructionSize {
                instr,
                is_branch,
                branch_taken,
            } => write!(
                f,
                "instruction {instr}: flag bytes ({is_branch}, {branch_taken}) are not 0/1 — \
                 not {CHAMPSIM_RECORD_BYTES}-byte ChampSim records (wrong record size or format?)"
            ),
            IngestError::Truncated { instr, have } => write!(
                f,
                "truncated ChampSim trace: instruction {instr} has only {have} of \
                 {CHAMPSIM_RECORD_BYTES} bytes"
            ),
            IngestError::TrailingGarbage { offset, len } => write!(
                f,
                "trailing garbage: {len} byte(s) at offset {offset} cannot begin a \
                 ChampSim record"
            ),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<StoreError> for IngestError {
    fn from(e: StoreError) -> Self {
        IngestError::Store(e)
    }
}

/// Summary of one ingestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// ChampSim instruction records consumed.
    pub instructions: u64,
    /// [`TraceRecord`]s emitted (one per non-zero memory operand).
    pub records: u64,
    /// Emitted records that are loads.
    pub loads: u64,
    /// Emitted records that are stores.
    pub stores: u64,
}

fn flags_plausible(bytes: &[u8]) -> bool {
    FLAG_OFFSETS
        .iter()
        .all(|&o| o >= bytes.len() || bytes[o] <= 1)
}

/// Decode a raw ChampSim byte stream into [`TraceRecord`]s.
///
/// An empty input is a valid (zero-record) trace. See the module docs for
/// the conversion and the corruption classes.
pub fn decode_champsim(bytes: &[u8]) -> Result<Vec<TraceRecord>, IngestError> {
    let whole = bytes.len() / CHAMPSIM_RECORD_BYTES;
    let tail_len = bytes.len() % CHAMPSIM_RECORD_BYTES;
    let mut records = Vec::new();
    let mut pending_gap: u32 = 0;
    for instr in 0..whole {
        let rec = &bytes[instr * CHAMPSIM_RECORD_BYTES..(instr + 1) * CHAMPSIM_RECORD_BYTES];
        if !flags_plausible(rec) {
            return Err(IngestError::BadInstructionSize {
                instr: instr as u64,
                is_branch: rec[FLAG_OFFSETS[0]],
                branch_taken: rec[FLAG_OFFSETS[1]],
            });
        }
        let ip = u64::from_le_bytes(rec[0..8].try_into().expect("8 bytes"));
        let mut first = true;
        let mut emit = |addr: u64, is_store: bool, records: &mut Vec<TraceRecord>| {
            if addr == 0 {
                return; // unused operand slot
            }
            records.push(TraceRecord {
                instr_gap: if first { pending_gap } else { 0 },
                pc: ip,
                line: addr >> 6,
                is_store,
            });
            first = false;
        };
        for slot in 0..4 {
            let addr = u64::from_le_bytes(
                rec[32 + slot * 8..40 + slot * 8]
                    .try_into()
                    .expect("8 bytes"),
            );
            emit(addr, false, &mut records);
        }
        for slot in 0..2 {
            let addr = u64::from_le_bytes(
                rec[16 + slot * 8..24 + slot * 8]
                    .try_into()
                    .expect("8 bytes"),
            );
            emit(addr, true, &mut records);
        }
        if first {
            // No memory operands: a pure-compute instruction, folded into
            // the gap of the next emitted record.
            pending_gap = pending_gap.saturating_add(1);
        } else {
            pending_gap = 0;
        }
    }
    if tail_len > 0 {
        let tail = &bytes[whole * CHAMPSIM_RECORD_BYTES..];
        if flags_plausible(tail) {
            return Err(IngestError::Truncated {
                instr: whole as u64,
                have: tail_len,
            });
        }
        return Err(IngestError::TrailingGarbage {
            offset: (whole * CHAMPSIM_RECORD_BYTES) as u64,
            len: tail_len,
        });
    }
    Ok(records)
}

/// Seed stamped into ingested `.drtr` headers: an FNV-1a hash of the trace
/// *name*. External traces have no generator seed, but the header field is
/// mandatory; a name hash keeps it deterministic and collision-resistant
/// enough to distinguish traces in diagnostics.
pub fn ingested_seed(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, c| {
        (h ^ u64::from(c)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Convert the ChampSim-format file at `input` into a `.drtr` trace at
/// `output`. The trace name is `input`'s file stem and the header seed is
/// [`ingested_seed`] of that name.
pub fn ingest_champsim(input: &Path, output: &Path) -> Result<IngestStats, IngestError> {
    let bytes = std::fs::read(input)?;
    let records = decode_champsim(&bytes)?;
    let name = input
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "ingested".to_string());
    let mut writer = TraceWriter::create(output, &name, ingested_seed(&name))?;
    let mut loads = 0u64;
    let mut stores = 0u64;
    for r in &records {
        if r.is_store {
            stores += 1;
        } else {
            loads += 1;
        }
        writer.push(*r)?;
    }
    writer.finish()?;
    Ok(IngestStats {
        instructions: (bytes.len() / CHAMPSIM_RECORD_BYTES) as u64,
        records: records.len() as u64,
        loads,
        stores,
    })
}

/// Synthesize a small, deterministic ChampSim-format byte stream —
/// `instructions` records derived from `seed`. This is the fixture behind
/// `drishti-sim --ingest-demo` (no real SPEC/GAP traces ship with the
/// repo) and the ingest round-trip tests: a mixture of pure-compute,
/// branch, load, store and multi-operand instructions with valid flags.
pub fn synthesize_demo(instructions: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed ^ 0xC4A3_5157);
    let mut bytes = Vec::with_capacity(instructions * CHAMPSIM_RECORD_BYTES);
    for _ in 0..instructions {
        let mut rec = [0u8; CHAMPSIM_RECORD_BYTES];
        let ip = 0x40_0000 + (rng.next_u64() % 256) * 4;
        rec[0..8].copy_from_slice(&ip.to_le_bytes());
        let kind = rng.next_u64() % 8;
        let is_branch = u8::from(kind == 0);
        rec[FLAG_OFFSETS[0]] = is_branch;
        rec[FLAG_OFFSETS[1]] = is_branch & u8::from(rng.next_u64().is_multiple_of(2));
        // kinds 0 (branch) and 1 stay memory-free; 2..=5 load; 6 store;
        // 7 load + store (an RMW-style instruction with two operands).
        if (2..=5).contains(&kind) || kind == 7 {
            let addr = 0x1000_0000 + (rng.next_u64() % 4096) * 64;
            rec[32..40].copy_from_slice(&addr.to_le_bytes());
            if kind == 5 {
                // A second source operand on some loads.
                let addr2 = 0x2000_0000 + (rng.next_u64() % 1024) * 64;
                rec[40..48].copy_from_slice(&addr2.to_le_bytes());
            }
        }
        if kind == 6 || kind == 7 {
            let addr = 0x3000_0000 + (rng.next_u64() % 2048) * 64;
            rec[16..24].copy_from_slice(&addr.to_le_bytes());
        }
        bytes.extend_from_slice(&rec);
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::read_trace;

    #[test]
    fn demo_bytes_decode_and_round_trip() {
        let bytes = synthesize_demo(500, 7);
        assert_eq!(bytes.len(), 500 * CHAMPSIM_RECORD_BYTES);
        let records = decode_champsim(&bytes).expect("demo decodes");
        assert!(!records.is_empty());
        assert!(records.iter().any(|r| r.is_store));
        assert!(records.iter().any(|r| !r.is_store));
        assert!(records.iter().any(|r| r.instr_gap > 0));

        let dir = std::env::temp_dir().join("drishti-ingest-unit");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let input = dir.join("demo.champsim");
        let output = dir.join("demo.drtr");
        std::fs::write(&input, &bytes).expect("write input");
        let stats = ingest_champsim(&input, &output).expect("ingest");
        assert_eq!(stats.instructions, 500);
        assert_eq!(stats.records, records.len() as u64);
        assert_eq!(stats.loads + stats.stores, stats.records);
        let (meta, stored) = read_trace(&output).expect("read back");
        assert_eq!(meta.name, "demo");
        assert_eq!(meta.seed, ingested_seed("demo"));
        assert_eq!(stored, records, "conversion is lossless through .drtr");
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn empty_input_is_a_zero_record_trace() {
        assert_eq!(decode_champsim(&[]).expect("empty ok"), Vec::new());
    }

    #[test]
    fn gap_accumulates_across_compute_instructions() {
        // compute, compute, load: the load carries gap 2.
        let mut bytes = vec![0u8; 3 * CHAMPSIM_RECORD_BYTES];
        let load_base = 2 * CHAMPSIM_RECORD_BYTES;
        bytes[load_base..load_base + 8].copy_from_slice(&0x400100u64.to_le_bytes());
        bytes[load_base + 32..load_base + 40].copy_from_slice(&0x8000u64.to_le_bytes());
        let records = decode_champsim(&bytes).expect("decode");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].instr_gap, 2);
        assert_eq!(records[0].line, 0x8000 >> 6);
        assert!(!records[0].is_store);
    }

    #[test]
    fn multi_operand_instruction_emits_loads_then_stores() {
        let mut rec = vec![0u8; CHAMPSIM_RECORD_BYTES];
        rec[0..8].copy_from_slice(&0x400200u64.to_le_bytes());
        rec[32..40].copy_from_slice(&(64u64 * 10).to_le_bytes()); // load
        rec[16..24].copy_from_slice(&(64u64 * 20).to_le_bytes()); // store
        let records = decode_champsim(&rec).expect("decode");
        assert_eq!(records.len(), 2);
        assert!(!records[0].is_store);
        assert_eq!(records[0].line, 10);
        assert!(records[1].is_store);
        assert_eq!(records[1].line, 20);
        assert_eq!(records[1].instr_gap, 0, "same instruction: no extra gap");
    }

    #[test]
    fn corruption_classes_are_typed() {
        let good = synthesize_demo(4, 1);
        // Truncation mid-record (tail flags still plausible).
        let cut = &good[..CHAMPSIM_RECORD_BYTES + 20];
        assert!(matches!(
            decode_champsim(cut),
            Err(IngestError::Truncated { instr: 1, have: 20 })
        ));
        // Bad flag bytes in a complete record.
        let mut bad = good.clone();
        bad[FLAG_OFFSETS[0]] = 0xff;
        assert!(matches!(
            decode_champsim(&bad),
            Err(IngestError::BadInstructionSize { instr: 0, .. })
        ));
        // Garbage appended after the last record.
        let mut garbage = good.clone();
        garbage.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef, 0xff, 0xff]);
        assert!(matches!(
            decode_champsim(&garbage),
            Err(IngestError::TrailingGarbage { len: 10, .. })
        ));
    }
}

//! Benchmark-like workload presets.
//!
//! Each preset is a [`SyntheticWorkload`] recipe modelling the access
//! *archetype* of a paper benchmark (SPEC CPU2017 memory-intensive subset,
//! single-threaded GAP kernels over Kron/Urand-like inputs, and the
//! server-class traces of paper Fig 19). Footprints are sized against the
//! baseline 2 MB-per-core LLC slice (32 K lines): "friendly" loops fit a
//! core's share, thrashing structures exceed it severalfold, streams are
//! effectively infinite.
//!
//! The three paper-critical knobs per preset:
//! * few PCs with big shared footprints → scattered PCs (xalan-like, low
//!   in paper Fig 2);
//! * many PCs with private small regions → concentrated PCs (pr-like,
//!   high in Fig 2);
//! * Zipf-weighted regions → per-set MPKA skew (mcf, Fig 5a) vs. pure
//!   streams → uniform MPKA (lbm, Fig 5c).
//!
//! Every preset additionally carries a *scalar* stream
//! (`PrivateRegion { lines_per_pc: 1, spacing: 1 }`): many PCs that repeatedly load
//! one line each, rarely enough that L2 evicts it in between. These are
//! the "multi-load PCs mapping to one slice" that dominate the paper's
//! Fig 2 statistic (66.2% on average; graph workloads highest).

use crate::pattern::Pattern;
use crate::synthetic::{StreamSpec, SyntheticWorkload};

/// The benchmark catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    // SPEC CPU2017 memory-intensive archetypes.
    Mcf,
    Xalan,
    Lbm,
    Gcc,
    Omnetpp,
    Cactu,
    Roms,
    Fotonik,
    Bwaves,
    Wrf,
    Cam4,
    Sphinx,
    Pop2,
    Deepsjeng,
    // GAP kernels (suffix = input graph class).
    PrKron,
    PrUrand,
    BfsKron,
    BfsUrand,
    CcKron,
    BcTwitter,
    SsspUrand,
    TcKron,
    // Server-class traces (paper Fig 19).
    Cvp1,
    GoogleWs,
    CloudSuite,
    Xsbench,
    // Scenario-diversity families (DESIGN.md §18): phase-alternating
    // composites that flip archetype mid-run, plus the seed-parameterised
    // slice-scattering adversary searched by
    // `drishti_sim::conformance::adversarial`.
    PhaseMcfLbm,
    PhaseXalanPr,
    PhaseServerBatch,
    AdvScatter,
}

impl Benchmark {
    /// The SPEC-like presets.
    pub fn spec() -> &'static [Benchmark] {
        use Benchmark::*;
        &[
            Mcf, Xalan, Lbm, Gcc, Omnetpp, Cactu, Roms, Fotonik, Bwaves, Wrf, Cam4, Sphinx, Pop2,
            Deepsjeng,
        ]
    }

    /// The GAP-like presets.
    pub fn gap() -> &'static [Benchmark] {
        use Benchmark::*;
        &[
            PrKron, PrUrand, BfsKron, BfsUrand, CcKron, BcTwitter, SsspUrand, TcKron,
        ]
    }

    /// The server-class presets (Fig 19).
    pub fn server() -> &'static [Benchmark] {
        use Benchmark::*;
        &[Cvp1, GoogleWs, CloudSuite, Xsbench]
    }

    /// SPEC + GAP (the pool the paper's 70 main mixes draw from).
    pub fn spec_and_gap() -> Vec<Benchmark> {
        let mut v = Benchmark::spec().to_vec();
        v.extend_from_slice(Benchmark::gap());
        v
    }

    /// The phase-alternating composites (predictor re-learning pressure).
    pub fn phase() -> &'static [Benchmark] {
        use Benchmark::*;
        &[PhaseMcfLbm, PhaseXalanPr, PhaseServerBatch]
    }

    /// The scenario-diversity presets: the phase composites plus the
    /// slice-scattering adversary. Deliberately *not* part of
    /// [`Benchmark::spec_and_gap`] — the paper's mix protocol and its
    /// pinned catalogue stay untouched.
    pub fn scenario() -> &'static [Benchmark] {
        use Benchmark::*;
        &[PhaseMcfLbm, PhaseXalanPr, PhaseServerBatch, AdvScatter]
    }

    /// Short name matching the paper's labels.
    pub fn label(self) -> &'static str {
        use Benchmark::*;
        match self {
            Mcf => "mcf",
            Xalan => "xalan",
            Lbm => "lbm",
            Gcc => "gcc",
            Omnetpp => "omnetpp",
            Cactu => "cactu",
            Roms => "roms",
            Fotonik => "fotonik",
            Bwaves => "bwaves",
            Wrf => "wrf",
            Cam4 => "cam4",
            Sphinx => "sphinx",
            Pop2 => "pop2",
            Deepsjeng => "deepsjeng",
            PrKron => "pr-kron",
            PrUrand => "pr-urand",
            BfsKron => "bfs-kron",
            BfsUrand => "bfs-urand",
            CcKron => "cc-kron",
            BcTwitter => "bc-twitter",
            SsspUrand => "sssp-urand",
            TcKron => "tc-kron",
            Cvp1 => "cvp1",
            GoogleWs => "google-ws",
            CloudSuite => "cloudsuite",
            Xsbench => "xsbench",
            PhaseMcfLbm => "phase-mcf-lbm",
            PhaseXalanPr => "phase-xalan-pr",
            PhaseServerBatch => "phase-server-batch",
            AdvScatter => "adv-scatter",
        }
    }

    /// The benchmark whose short name is `label`, if any.
    pub fn from_label(label: &str) -> Option<Benchmark> {
        Benchmark::spec()
            .iter()
            .chain(Benchmark::gap())
            .chain(Benchmark::server())
            .chain(Benchmark::scenario())
            .copied()
            .find(|b| b.label() == label)
    }

    /// Instantiate the workload with `seed` (a "sim-point": different seeds
    /// use disjoint address spaces and phases).
    pub fn build(self, seed: u64) -> SyntheticWorkload {
        use Benchmark::*;
        let salted = seed ^ preset_salt(self);
        match self {
            // Phase composites alternate between two base archetypes:
            // reuse-rich ↔ streaming, scattered ↔ concentrated PCs,
            // server ↔ batch. The flip period is short enough that even
            // reduced-scale runs see several re-learning events.
            PhaseMcfLbm => SyntheticWorkload::phased(
                self.label(),
                vec![Mcf.streams(), Lbm.streams()],
                crate::scenario::PHASE_PERIOD,
                salted,
            ),
            PhaseXalanPr => SyntheticWorkload::phased(
                self.label(),
                vec![Xalan.streams(), PrKron.streams()],
                crate::scenario::PHASE_PERIOD,
                salted,
            ),
            PhaseServerBatch => SyntheticWorkload::phased(
                self.label(),
                vec![GoogleWs.streams(), Bwaves.streams()],
                crate::scenario::PHASE_PERIOD,
                salted,
            ),
            // The adversary's stream set is itself seed-derived (scatter
            // stride, PC count, pressure footprint) — the raw seed is the
            // search key, so it is used before the preset salt.
            AdvScatter => SyntheticWorkload::new(
                self.label(),
                crate::scenario::adv_scatter_streams(seed),
                salted,
            ),
            _ => SyntheticWorkload::new(self.label(), self.streams(), salted),
        }
    }

    /// The stream-set recipe of a *base* preset (the giant archetype
    /// table). Scenario composites have no single stream set — they are
    /// assembled in [`Benchmark::build`] from these.
    fn streams(self) -> Vec<StreamSpec> {
        use Benchmark::*;
        use Pattern::*;
        match self {
            // Pointer-heavy, skewed, reuse-rich: the paper's star workload
            // (Fig 5a set skew, Table 1, 77% max gain). The reusable
            // structure is allocated at a large power-of-two stride, so it
            // pressures a narrow band of LLC sets — the high-MPKA skew the
            // dynamic sampled cache feeds on.
            Mcf => vec![
                StreamSpec::new(
                    PointerChase {
                        footprint: 512 * 1024,
                    },
                    8,
                    0.32,
                ),
                StreamSpec::new(
                    Zipf {
                        footprint: 256 * 1024,
                        alpha: 1.1,
                    },
                    12,
                    0.30,
                ),
                StreamSpec::new(
                    SetColumn {
                        sets: 256,
                        depth: 12,
                        row_stride: 2048,
                        phase_period: 24 * 1024,
                    },
                    6,
                    0.38,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    100,
                    0.0063,
                ),
            ],
            // Very many PCs over shared medium structures: the most
            // scattered PCs of Fig 2, strongest myopia victim.
            Xalan => vec![
                StreamSpec::new(
                    Zipf {
                        footprint: 128 * 1024,
                        alpha: 0.8,
                    },
                    320,
                    0.40,
                ),
                StreamSpec::new(
                    PhasedLoop {
                        small: 16 * 1024,
                        big: 160 * 1024,
                        period: 40 * 1024,
                    },
                    240,
                    0.40,
                ),
                StreamSpec::new(
                    Stream {
                        footprint: 1 << 20,
                        stride: 1,
                    },
                    40,
                    0.20,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    140,
                    0.0088,
                ),
            ],
            // Pure streaming with heavy stores: uniform MPKA (Fig 5c),
            // Mockingjay's worst case.
            Lbm => vec![
                StreamSpec {
                    store_fraction: 0.45,
                    ..StreamSpec::new(
                        Stream {
                            footprint: 4 << 20,
                            stride: 1,
                        },
                        8,
                        0.85,
                    )
                },
                StreamSpec::new(
                    Loop {
                        footprint: 4 * 1024,
                    },
                    4,
                    0.15,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    60,
                    0.0037,
                ),
            ],
            Gcc => vec![
                StreamSpec::new(
                    PhasedLoop {
                        small: 18 * 1024,
                        big: 128 * 1024,
                        period: 24 * 1024,
                    },
                    200,
                    0.35,
                ),
                StreamSpec::new(
                    Zipf {
                        footprint: 96 * 1024,
                        alpha: 0.9,
                    },
                    140,
                    0.35,
                ),
                StreamSpec::new(
                    Stream {
                        footprint: 512 * 1024,
                        stride: 1,
                    },
                    20,
                    0.30,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    180,
                    0.0112,
                ),
            ],
            Omnetpp => vec![
                StreamSpec::new(
                    PointerChase {
                        footprint: 256 * 1024,
                    },
                    40,
                    0.5,
                ),
                StreamSpec::new(
                    PhasedLoop {
                        small: 14 * 1024,
                        big: 96 * 1024,
                        period: 16 * 1024,
                    },
                    40,
                    0.5,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    140,
                    0.0088,
                ),
            ],
            Cactu => vec![
                StreamSpec::new(
                    Stream {
                        footprint: 2 << 20,
                        stride: 1,
                    },
                    12,
                    0.4,
                ),
                StreamSpec::new(
                    Stream {
                        footprint: 2 << 20,
                        stride: 4,
                    },
                    12,
                    0.3,
                ),
                StreamSpec::new(
                    Loop {
                        footprint: 28 * 1024,
                    },
                    16,
                    0.3,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    80,
                    0.005,
                ),
            ],
            Roms => vec![
                StreamSpec {
                    store_fraction: 0.3,
                    ..StreamSpec::new(
                        Stream {
                            footprint: 3 << 20,
                            stride: 1,
                        },
                        10,
                        0.6,
                    )
                },
                StreamSpec::new(
                    Loop {
                        footprint: 40 * 1024,
                    },
                    10,
                    0.4,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    70,
                    0.0044,
                ),
            ],
            Fotonik => vec![
                StreamSpec::new(
                    Stream {
                        footprint: 2 << 20,
                        stride: 1,
                    },
                    8,
                    0.7,
                ),
                StreamSpec::new(
                    Zipf {
                        footprint: 64 * 1024,
                        alpha: 0.7,
                    },
                    12,
                    0.3,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    70,
                    0.0044,
                ),
            ],
            Bwaves => vec![
                StreamSpec::new(
                    Stream {
                        footprint: 4 << 20,
                        stride: 2,
                    },
                    10,
                    0.65,
                ),
                StreamSpec::new(
                    Loop {
                        footprint: 48 * 1024,
                    },
                    8,
                    0.35,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    70,
                    0.0044,
                ),
            ],
            Wrf => vec![
                StreamSpec::new(
                    PhasedLoop {
                        small: 24 * 1024,
                        big: 144 * 1024,
                        period: 32 * 1024,
                    },
                    50,
                    0.4,
                ),
                StreamSpec::new(
                    Stream {
                        footprint: 1 << 20,
                        stride: 1,
                    },
                    20,
                    0.35,
                ),
                StreamSpec::new(
                    Zipf {
                        footprint: 128 * 1024,
                        alpha: 0.8,
                    },
                    30,
                    0.25,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    150,
                    0.0094,
                ),
            ],
            Cam4 => vec![
                StreamSpec::new(
                    Loop {
                        footprint: 44 * 1024,
                    },
                    60,
                    0.45,
                ),
                StreamSpec::new(
                    Stream {
                        footprint: 1 << 21,
                        stride: 1,
                    },
                    25,
                    0.55,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    140,
                    0.0088,
                ),
            ],
            Sphinx => vec![
                StreamSpec::new(
                    Zipf {
                        footprint: 48 * 1024,
                        alpha: 1.0,
                    },
                    40,
                    0.6,
                ),
                StreamSpec::new(
                    Loop {
                        footprint: 10 * 1024,
                    },
                    30,
                    0.4,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    120,
                    0.0075,
                ),
            ],
            Pop2 => vec![
                StreamSpec::new(
                    Stream {
                        footprint: 1 << 21,
                        stride: 1,
                    },
                    16,
                    0.5,
                ),
                StreamSpec::new(
                    PointerChase {
                        footprint: 96 * 1024,
                    },
                    16,
                    0.25,
                ),
                StreamSpec::new(
                    Loop {
                        footprint: 24 * 1024,
                    },
                    16,
                    0.25,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    110,
                    0.0069,
                ),
            ],
            // Mostly cache-resident: low LLC MPKI, small policy headroom.
            Deepsjeng => with_gap(
                30,
                vec![
                    StreamSpec::new(
                        Loop {
                            footprint: 6 * 1024,
                        },
                        50,
                        0.7,
                    ),
                    StreamSpec::new(
                        Zipf {
                            footprint: 40 * 1024,
                            alpha: 0.9,
                        },
                        30,
                        0.3,
                    ),
                    StreamSpec::new(
                        PrivateRegion {
                            lines_per_pc: 1,
                            spacing: 64,
                        },
                        120,
                        0.0075,
                    ),
                ],
            ),
            // GAP: edge-array streams + vertex-data skew + per-PC private
            // state (concentrated PCs — high in Fig 2).
            PrKron => vec![
                StreamSpec::new(
                    Stream {
                        footprint: 2 << 20,
                        stride: 1,
                    },
                    6,
                    0.45,
                ),
                StreamSpec::new(
                    Zipf {
                        footprint: 256 * 1024,
                        alpha: 1.0,
                    },
                    8,
                    0.30,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 12,
                        spacing: 12,
                    },
                    140,
                    0.25,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    500,
                    0.0312,
                ),
            ],
            PrUrand => vec![
                StreamSpec::new(
                    Stream {
                        footprint: 2 << 20,
                        stride: 1,
                    },
                    6,
                    0.45,
                ),
                StreamSpec::new(
                    Zipf {
                        footprint: 512 * 1024,
                        alpha: 0.2,
                    },
                    8,
                    0.30,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 12,
                        spacing: 12,
                    },
                    140,
                    0.25,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    500,
                    0.0312,
                ),
            ],
            BfsKron => vec![
                StreamSpec::new(
                    Stream {
                        footprint: 1 << 21,
                        stride: 1,
                    },
                    8,
                    0.4,
                ),
                StreamSpec::new(
                    Zipf {
                        footprint: 192 * 1024,
                        alpha: 0.9,
                    },
                    10,
                    0.35,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 16,
                        spacing: 16,
                    },
                    100,
                    0.25,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    420,
                    0.0262,
                ),
            ],
            BfsUrand => vec![
                StreamSpec::new(
                    Stream {
                        footprint: 1 << 21,
                        stride: 1,
                    },
                    8,
                    0.4,
                ),
                StreamSpec::new(
                    Zipf {
                        footprint: 384 * 1024,
                        alpha: 0.3,
                    },
                    10,
                    0.35,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 16,
                        spacing: 16,
                    },
                    100,
                    0.25,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    420,
                    0.0262,
                ),
            ],
            CcKron => vec![
                StreamSpec::new(
                    Stream {
                        footprint: 1 << 21,
                        stride: 1,
                    },
                    6,
                    0.5,
                ),
                StreamSpec::new(
                    Zipf {
                        footprint: 256 * 1024,
                        alpha: 0.8,
                    },
                    12,
                    0.3,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 10,
                        spacing: 10,
                    },
                    120,
                    0.2,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    450,
                    0.0281,
                ),
            ],
            BcTwitter => vec![
                StreamSpec::new(
                    Zipf {
                        footprint: 384 * 1024,
                        alpha: 1.1,
                    },
                    14,
                    0.45,
                ),
                StreamSpec::new(
                    Stream {
                        footprint: 1 << 21,
                        stride: 1,
                    },
                    6,
                    0.30,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 12,
                        spacing: 12,
                    },
                    110,
                    0.25,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    430,
                    0.0269,
                ),
            ],
            SsspUrand => vec![
                StreamSpec::new(
                    Zipf {
                        footprint: 448 * 1024,
                        alpha: 0.25,
                    },
                    12,
                    0.4,
                ),
                StreamSpec::new(
                    Stream {
                        footprint: 1 << 21,
                        stride: 1,
                    },
                    8,
                    0.35,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 14,
                        spacing: 14,
                    },
                    100,
                    0.25,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    420,
                    0.0262,
                ),
            ],
            TcKron => vec![
                StreamSpec::new(
                    Stream {
                        footprint: 2 << 20,
                        stride: 1,
                    },
                    8,
                    0.55,
                ),
                StreamSpec::new(
                    Zipf {
                        footprint: 160 * 1024,
                        alpha: 0.9,
                    },
                    10,
                    0.25,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 8,
                        spacing: 8,
                    },
                    130,
                    0.20,
                ),
                StreamSpec::new(
                    PrivateRegion {
                        lines_per_pc: 1,
                        spacing: 64,
                    },
                    470,
                    0.0294,
                ),
            ],
            // Server-class: large code/data but mostly upper-level-cache
            // resident ⇒ low LLC MPKI, small replacement headroom (Fig 19).
            Cvp1 => with_gap(
                40,
                vec![
                    StreamSpec::new(
                        Loop {
                            footprint: 3 * 1024,
                        },
                        250,
                        0.55,
                    ),
                    StreamSpec::new(
                        Zipf {
                            footprint: 64 * 1024,
                            alpha: 0.6,
                        },
                        150,
                        0.30,
                    ),
                    StreamSpec::new(
                        Stream {
                            footprint: 256 * 1024,
                            stride: 1,
                        },
                        40,
                        0.15,
                    ),
                    StreamSpec::new(
                        PrivateRegion {
                            lines_per_pc: 1,
                            spacing: 64,
                        },
                        300,
                        0.0187,
                    ),
                ],
            ),
            GoogleWs => with_gap(
                40,
                vec![
                    StreamSpec::new(
                        Loop {
                            footprint: 4 * 1024,
                        },
                        300,
                        0.5,
                    ),
                    StreamSpec::new(
                        Zipf {
                            footprint: 96 * 1024,
                            alpha: 0.5,
                        },
                        200,
                        0.35,
                    ),
                    StreamSpec::new(
                        Stream {
                            footprint: 512 * 1024,
                            stride: 1,
                        },
                        50,
                        0.15,
                    ),
                    StreamSpec::new(
                        PrivateRegion {
                            lines_per_pc: 1,
                            spacing: 64,
                        },
                        320,
                        0.02,
                    ),
                ],
            ),
            CloudSuite => with_gap(
                36,
                vec![
                    StreamSpec::new(
                        Zipf {
                            footprint: 128 * 1024,
                            alpha: 0.7,
                        },
                        220,
                        0.45,
                    ),
                    StreamSpec::new(
                        Loop {
                            footprint: 8 * 1024,
                        },
                        180,
                        0.35,
                    ),
                    StreamSpec::new(
                        Stream {
                            footprint: 384 * 1024,
                            stride: 1,
                        },
                        40,
                        0.20,
                    ),
                    StreamSpec::new(
                        PrivateRegion {
                            lines_per_pc: 1,
                            spacing: 64,
                        },
                        300,
                        0.0187,
                    ),
                ],
            ),
            Xsbench => with_gap(
                28,
                vec![
                    StreamSpec::new(
                        Zipf {
                            footprint: 512 * 1024,
                            alpha: 0.45,
                        },
                        30,
                        0.7,
                    ),
                    StreamSpec::new(
                        Loop {
                            footprint: 12 * 1024,
                        },
                        20,
                        0.3,
                    ),
                    StreamSpec::new(
                        PrivateRegion {
                            lines_per_pc: 1,
                            spacing: 64,
                        },
                        80,
                        0.005,
                    ),
                ],
            ),
            PhaseMcfLbm | PhaseXalanPr | PhaseServerBatch | AdvScatter => {
                unreachable!("scenario presets are assembled in Benchmark::build")
            }
        }
    }
}

/// Raise the instruction gap of every stream (low-LLC-intensity presets).
fn with_gap(gap: u32, specs: Vec<StreamSpec>) -> Vec<StreamSpec> {
    specs
        .into_iter()
        .map(|s| StreamSpec {
            instr_gap: gap,
            ..s
        })
        .collect()
}

/// Distinct salt per preset so "mcf seed 3" and "gcc seed 3" are unrelated.
fn preset_salt(b: Benchmark) -> u64 {
    (b.label().bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, c| {
        (h ^ u64::from(c)).wrapping_mul(0x1000_0000_01b3)
    })) & 0xffff_ffff
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadGen;
    use std::collections::HashSet;

    #[test]
    fn every_preset_builds_and_generates() {
        for &b in Benchmark::spec()
            .iter()
            .chain(Benchmark::gap())
            .chain(Benchmark::server())
        {
            let mut w = b.build(1);
            let recs = w.collect(1000);
            assert_eq!(recs.len(), 1000, "{b}");
            assert!(recs.iter().all(|r| r.pc != 0), "{b}");
        }
    }

    #[test]
    fn catalogue_sizes() {
        assert_eq!(Benchmark::spec().len(), 14);
        assert_eq!(Benchmark::gap().len(), 8);
        assert_eq!(Benchmark::server().len(), 4);
        assert_eq!(Benchmark::spec_and_gap().len(), 22);
        // The scenario family is additive: the paper's mix pool is pinned
        // above and must not grow.
        assert_eq!(Benchmark::phase().len(), 3);
        assert_eq!(Benchmark::scenario().len(), 4);
    }

    #[test]
    fn scenario_presets_build_and_generate() {
        for &b in Benchmark::scenario() {
            let mut w = b.build(1);
            let recs = w.collect(1000);
            assert_eq!(recs.len(), 1000, "{b}");
            assert!(recs.iter().all(|r| r.pc != 0), "{b}");
            assert_eq!(Benchmark::from_label(b.label()), Some(b));
        }
    }

    #[test]
    fn phase_preset_visits_both_archetype_regions() {
        // phase-mcf-lbm alternates mcf-like (pointer chase / zipf) and
        // lbm-like (giant stream) stream sets; both phases' address
        // regions must appear once the run crosses a phase boundary.
        let mut w = Benchmark::PhaseMcfLbm.build(1);
        let recs = w.collect(2 * crate::scenario::PHASE_PERIOD as usize + 100);
        let regions: HashSet<u64> = recs.iter().map(|r| (r.line >> 24) & 0xff).collect();
        // mcf contributes 4 streams (regions 1..=4), lbm 3 (regions 5..=7).
        assert!(
            regions.iter().any(|&r| (1..=4).contains(&r))
                && regions.iter().any(|&r| (5..=7).contains(&r)),
            "both phases must run: {regions:?}"
        );
    }

    #[test]
    fn xalan_has_many_more_pcs_than_mcf() {
        let count_pcs = |b: Benchmark| {
            let mut w = b.build(5);
            let pcs: HashSet<u64> = w.collect(50_000).iter().map(|r| r.pc).collect();
            pcs.len()
        };
        let xalan = count_pcs(Benchmark::Xalan);
        let mcf = count_pcs(Benchmark::Mcf);
        assert!(xalan > 3 * mcf, "xalan {xalan} vs mcf {mcf}");
    }

    #[test]
    fn lbm_has_larger_unique_footprint_than_deepsjeng() {
        let uniq = |b: Benchmark| {
            let mut w = b.build(5);
            let lines: HashSet<u64> = w.collect(100_000).iter().map(|r| r.line).collect();
            lines.len()
        };
        assert!(uniq(Benchmark::Lbm) > 3 * uniq(Benchmark::Deepsjeng));
    }

    #[test]
    fn different_seeds_are_disjoint_simpoints() {
        let mut a = Benchmark::Mcf.build(1);
        let mut b = Benchmark::Mcf.build(2);
        let la: HashSet<u64> = a.collect(10_000).iter().map(|r| r.line).collect();
        let lb: HashSet<u64> = b.collect(10_000).iter().map(|r| r.line).collect();
        assert!(la.is_disjoint(&lb));
    }

    #[test]
    fn pr_concentrates_pcs_on_few_lines() {
        // Count PCs touching ≤ 16 distinct lines: should dominate in pr
        // (PrivateRegion PCs) and be rare in xalan.
        let concentrated = |b: Benchmark| {
            let mut w = b.build(9);
            let recs = w.collect(100_000);
            let mut per_pc: std::collections::HashMap<u64, HashSet<u64>> = Default::default();
            for r in &recs {
                per_pc.entry(r.pc).or_default().insert(r.line);
            }
            let multi: Vec<_> = per_pc.values().filter(|s| s.len() > 1).collect();
            multi.iter().filter(|s| s.len() <= 16).count() as f64 / multi.len().max(1) as f64
        };
        let pr = concentrated(Benchmark::PrKron);
        let xalan = concentrated(Benchmark::Xalan);
        assert!(
            pr > xalan + 0.3,
            "pr concentration {pr} should exceed xalan {xalan}"
        );
    }
}

//! Multi-programmed workload mixes.
//!
//! The paper evaluates 70 mixes per core count — 35 homogeneous (every core
//! runs a different sim-point of the same benchmark) and 35 heterogeneous
//! (random draws, "similar to Mockingjay") — plus 50 server mixes for
//! Fig 19. [`paper_mixes`] and [`server_mixes`] reproduce that protocol
//! deterministically.

use crate::presets::Benchmark;
use crate::synthetic::SyntheticWorkload;
use crate::Rng;

/// A named assignment of one workload per core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix {
    /// Mix name, e.g. `"homo-mcf"` or `"hetero-07"`.
    pub name: String,
    /// Benchmark per core.
    pub benchmarks: Vec<Benchmark>,
    /// Sim-point seed per core.
    pub seeds: Vec<u64>,
}

impl Mix {
    /// A homogeneous mix: every core runs `bench` with a distinct sim-point
    /// (the paper reuses sim-points when cores outnumber them; distinct
    /// seeds model distinct sim-points).
    pub fn homogeneous(bench: Benchmark, cores: usize, base_seed: u64) -> Self {
        Mix {
            name: format!("homo-{}", bench.label()),
            benchmarks: vec![bench; cores],
            seeds: (0..cores as u64).map(|c| base_seed + c).collect(),
        }
    }

    /// A heterogeneous mix: `cores` random draws (with replacement) from
    /// `pool`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty.
    pub fn heterogeneous(pool: &[Benchmark], cores: usize, seed: u64) -> Self {
        assert!(!pool.is_empty(), "benchmark pool cannot be empty");
        let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
        let benchmarks = (0..cores)
            .map(|_| pool[rng.below(pool.len() as u64) as usize])
            .collect();
        Mix {
            name: format!("hetero-{seed:02}"),
            benchmarks,
            seeds: (0..cores as u64).map(|c| seed * 1000 + c).collect(),
        }
    }

    /// Number of cores in the mix.
    pub fn cores(&self) -> usize {
        self.benchmarks.len()
    }

    /// Whether every core runs the same benchmark.
    pub fn is_homogeneous(&self) -> bool {
        self.benchmarks.windows(2).all(|w| w[0] == w[1])
    }

    /// Instantiate the per-core workload generators.
    pub fn build(&self) -> Vec<SyntheticWorkload> {
        self.benchmarks
            .iter()
            .zip(&self.seeds)
            .map(|(b, &s)| b.build(s))
            .collect()
    }

    /// Instantiate one core's workload (for `IPC_alone` runs).
    pub fn build_core(&self, core: usize) -> SyntheticWorkload {
        self.benchmarks[core].build(self.seeds[core])
    }
}

/// The paper's main evaluation set: `n_homo` homogeneous mixes cycling
/// through the SPEC+GAP catalogue and `n_hetero` heterogeneous mixes drawn
/// from it (paper: 35 + 35).
pub fn paper_mixes(cores: usize, n_homo: usize, n_hetero: usize) -> Vec<Mix> {
    let pool = Benchmark::spec_and_gap();
    let mut mixes = Vec::with_capacity(n_homo + n_hetero);
    for i in 0..n_homo {
        let bench = pool[i % pool.len()];
        let mut m = Mix::homogeneous(bench, cores, 100 + i as u64 * 37);
        m.name = format!("homo-{:02}-{}", i, bench.label());
        mixes.push(m);
    }
    for i in 0..n_hetero {
        mixes.push(Mix::heterogeneous(&pool, cores, i as u64 + 1));
    }
    mixes
}

/// The Fig 19 server-workload set: `n` random mixes from the server pool.
pub fn server_mixes(cores: usize, n: usize) -> Vec<Mix> {
    (0..n)
        .map(|i| {
            let mut m = Mix::heterogeneous(Benchmark::server(), cores, 500 + i as u64);
            m.name = format!("server-{i:02}");
            m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadGen;

    #[test]
    fn homogeneous_mix_shape() {
        let m = Mix::homogeneous(Benchmark::Mcf, 16, 1);
        assert_eq!(m.cores(), 16);
        assert!(m.is_homogeneous());
        let mut seeds = m.seeds.clone();
        seeds.dedup();
        assert_eq!(seeds.len(), 16, "each core gets its own sim-point");
    }

    #[test]
    fn heterogeneous_mix_is_deterministic() {
        let pool = Benchmark::spec_and_gap();
        let a = Mix::heterogeneous(&pool, 8, 3);
        let b = Mix::heterogeneous(&pool, 8, 3);
        assert_eq!(a, b);
        let c = Mix::heterogeneous(&pool, 8, 4);
        assert_ne!(a.benchmarks, c.benchmarks);
    }

    #[test]
    fn paper_mixes_count_and_split() {
        let mixes = paper_mixes(4, 35, 35);
        assert_eq!(mixes.len(), 70);
        assert_eq!(mixes.iter().filter(|m| m.is_homogeneous()).count(), 35);
        assert!(mixes.iter().all(|m| m.cores() == 4));
    }

    #[test]
    fn mixes_build_working_generators() {
        let m = Mix::heterogeneous(&Benchmark::spec_and_gap(), 4, 9);
        let mut gens = m.build();
        assert_eq!(gens.len(), 4);
        for g in &mut gens {
            assert_eq!(g.collect(10).len(), 10);
        }
    }

    #[test]
    fn server_mixes_use_server_pool() {
        let mixes = server_mixes(16, 50);
        assert_eq!(mixes.len(), 50);
        for m in &mixes {
            assert!(m.benchmarks.iter().all(|b| Benchmark::server().contains(b)));
        }
    }

    #[test]
    fn build_core_matches_full_build() {
        let m = Mix::homogeneous(Benchmark::Gcc, 4, 7);
        let mut full = m.build();
        let mut single = m.build_core(2);
        assert_eq!(full[2].collect(50), single.collect(50));
    }
}

//! Primitive address patterns.
//!
//! Each pattern is a deterministic state machine producing cache-line
//! addresses within a private address region. Composition into realistic
//! workloads happens in [`crate::synthetic`].

use crate::Rng;

/// The address-pattern vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Sequential scan over `footprint` lines with `stride`, wrapping —
    /// streaming behaviour (lbm-like): no temporal reuse, uniform sets,
    /// trivially prefetchable.
    Stream {
        /// Lines in the region.
        footprint: u64,
        /// Stride in lines.
        stride: u64,
    },
    /// Cyclic walk over `footprint` lines — pure temporal reuse with reuse
    /// distance = footprint.
    Loop {
        /// Lines in the loop.
        footprint: u64,
    },
    /// Walk of a random permutation over `footprint` lines — dependent
    /// pointer chasing (mcf-like): no spatial locality, defeats stride
    /// prefetchers, reuse distance ≈ footprint.
    PointerChase {
        /// Lines in the linked structure.
        footprint: u64,
    },
    /// Zipf-distributed random accesses over `footprint` lines with
    /// exponent `alpha` — skewed popularity (graph vertex data): hot lines
    /// reuse quickly, cold tail thrashes, and set pressure becomes
    /// non-uniform (paper Fig 5a).
    Zipf {
        /// Lines in the region.
        footprint: u64,
        /// Skew exponent (0 = uniform; ~1 = heavy skew).
        alpha: f64,
    },
    /// Each PC owns a private small region of `lines_per_pc` lines and
    /// walks it cyclically — concentrated PCs (pr-like in paper Fig 2):
    /// all loads of one PC land on very few slices.
    PrivateRegion {
        /// Lines owned by each PC.
        lines_per_pc: u64,
        /// Lines between consecutive PCs' regions (≥ `lines_per_pc`).
        /// Page-sized spacing (64) keeps neighbouring PCs' lines on
        /// different pages so spatial prefetchers cannot chain them.
        spacing: u64,
    },
    /// A cyclic walk over a "column" of cache sets: `sets` consecutive
    /// line addresses repeated at `row_stride`-line strides, `depth` rows
    /// deep. Structures allocated with large power-of-two strides map to a
    /// narrow band of LLC sets, producing the high/low-MPKA set skew of
    /// paper Fig 5a — the behaviour Drishti's dynamic sampled cache
    /// exploits. Reuse distance is `sets × depth` accesses (a protectable
    /// working set when `depth` is near the associativity).
    SetColumn {
        /// Distinct consecutive set-index values touched.
        sets: u64,
        /// Lines per set (rows).
        depth: u64,
        /// Lines between rows (the structure's allocation stride; use the
        /// LLC set count, 2048, for maximum concentration).
        row_stride: u64,
        /// Accesses per program phase (0 = static). At each phase change
        /// the column jumps to a different set band and alternates between
        /// a cache-fitting depth (reusable phase) and a 3× depth
        /// (thrashing phase), so the correct PC classification *changes*
        /// and predictors must re-learn — the adaptation pressure that the
        /// paper's phase-change handling (§4.2) targets.
        phase_period: u64,
    },
    /// A loop whose footprint alternates between `small` (cache-fitting,
    /// reusable) and `big` (thrashing) every `period` accesses — a PC whose
    /// friendliness is phase-dependent, forcing continuous re-training.
    PhasedLoop {
        /// Footprint during even phases (lines).
        small: u64,
        /// Footprint during odd phases (lines).
        big: u64,
        /// Accesses per phase.
        period: u64,
    },
    /// Each PC cyclically walks `lines_per_pc` lines spaced `slice_stride`
    /// lines apart — the *anti-concentration* adversary. Paper Fig 2 shows
    /// most multi-load PCs map to one slice (the locality Drishti's
    /// per-slice predictors exploit); this pattern inverts that: with an
    /// odd `slice_stride`, consecutive touches of one PC land on distinct
    /// slices under any modulo/fold slice hash, so no single slice's
    /// predictor ever sees a PC's full reuse behaviour.
    SliceScatter {
        /// Lines owned by each PC.
        lines_per_pc: u64,
        /// Line distance between a PC's consecutive lines (odd values
        /// defeat power-of-two slice interleaving).
        slice_stride: u64,
    },
}

/// Runtime state for one pattern instance.
#[derive(Debug, Clone)]
pub struct PatternState {
    pattern: Pattern,
    base: u64,
    cursor: u64,
    /// Zipf sampling tables (cumulative weights over a bucketed footprint).
    zipf_cum: Vec<f64>,
    /// Pointer-chase permutation parameters (affine walk over a prime-ish
    /// footprint keeps memory O(1) while visiting all lines).
    chase_mult: u64,
    /// Program-stable salt: two instances of the *same benchmark* share it,
    /// so their set-column bands align across cores (same binary ⇒ same
    /// structure alignment), while their data lines stay disjoint.
    program_salt: u64,
}

impl PatternState {
    /// Instantiate `pattern` at address `base` (line address) with a
    /// program-stable `program_salt` (see `PatternState::program_salt`).
    pub fn with_salt(pattern: Pattern, base: u64, program_salt: u64, rng: &mut Rng) -> Self {
        let zipf_cum = match pattern {
            Pattern::Zipf { alpha, .. } => {
                // 256 buckets with Zipf weights; addresses are drawn
                // uniformly within the chosen bucket.
                let mut cum = Vec::with_capacity(256);
                let mut total = 0.0;
                for i in 0..256 {
                    total += 1.0 / ((i + 1) as f64).powf(alpha);
                    cum.push(total);
                }
                for c in &mut cum {
                    *c /= total;
                }
                cum
            }
            _ => Vec::new(),
        };
        let chase_mult = match pattern {
            Pattern::PointerChase { footprint } => {
                // An odd multiplier coprime with the footprint produces a
                // full-period affine permutation.
                let mut m = (rng.next_u64() | 1) % footprint.max(2);
                if m < 2 {
                    m = footprint / 2 + 1;
                }
                while gcd(m, footprint.max(1)) != 1 {
                    m += 1;
                }
                m
            }
            _ => 1,
        };
        PatternState {
            pattern,
            base,
            cursor: 0,
            zipf_cum,
            chase_mult,
            program_salt,
        }
    }

    /// Instantiate `pattern` at `base` with an instance-local salt.
    pub fn new(pattern: Pattern, base: u64, rng: &mut Rng) -> Self {
        let salt = rng.next_u64();
        PatternState::with_salt(pattern, base, salt, rng)
    }

    /// The pattern this state executes.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Produce the next line address; `pc_index` is the index of the PC
    /// issuing it within the owning stream (only [`Pattern::PrivateRegion`]
    /// uses it).
    pub fn next_line(&mut self, pc_index: u64, rng: &mut Rng) -> u64 {
        match self.pattern {
            Pattern::Stream { footprint, stride } => {
                let line = self.base + (self.cursor % footprint);
                self.cursor += stride;
                line
            }
            Pattern::Loop { footprint } => {
                let line = self.base + (self.cursor % footprint);
                self.cursor += 1;
                line
            }
            Pattern::PointerChase { footprint } => {
                self.cursor = (self.cursor.wrapping_mul(self.chase_mult) + 1) % footprint;
                self.base + self.cursor
            }
            Pattern::Zipf { footprint, .. } => {
                let u = rng.unit();
                let bucket = self
                    .zipf_cum
                    .iter()
                    .position(|&c| u <= c)
                    .unwrap_or(self.zipf_cum.len() - 1) as u64;
                let buckets = self.zipf_cum.len() as u64;
                let bucket_lines = (footprint / buckets).max(1);
                self.base + bucket * bucket_lines + rng.below(bucket_lines)
            }
            Pattern::PrivateRegion {
                lines_per_pc,
                spacing,
            } => {
                self.cursor += 1;
                self.base + pc_index * spacing.max(lines_per_pc) + (self.cursor % lines_per_pc)
            }
            Pattern::SetColumn {
                sets,
                depth,
                row_stride,
                phase_period,
            } => {
                let i = self.cursor;
                self.cursor += 1;
                let (band_offset, depth_eff) = match i.checked_div(phase_period) {
                    // phase_period == 0: a single static band.
                    None => (self.program_salt % row_stride, depth),
                    Some(phase) => {
                        let off = crate::Rng::new(phase ^ self.program_salt ^ 0x5e7c).next_u64()
                            % row_stride;
                        let d = if phase % 2 == 1 { depth * 3 } else { depth };
                        (off, d)
                    }
                };
                let set = i % sets;
                let row = (i / sets) % depth_eff;
                self.base + band_offset + row * row_stride + set
            }
            Pattern::PhasedLoop { small, big, period } => {
                let i = self.cursor;
                self.cursor += 1;
                // Phases are staggered per PC: at any instant some of the
                // stream's PCs are in their cache-fitting phase and others
                // in their thrashing phase. Distinct PCs therefore have
                // *distinct* current behaviour — merging them (as a
                // myopic predictor's index aliasing does) mixes opposite
                // classes, exactly as with real programs' PCs.
                let phase = i / period + pc_index;
                let footprint = if phase.is_multiple_of(2) { small } else { big };
                self.base + (i % footprint)
            }
            Pattern::SliceScatter {
                lines_per_pc,
                slice_stride,
            } => {
                self.cursor += 1;
                self.base
                    + pc_index * lines_per_pc * slice_stride
                    + (self.cursor % lines_per_pc) * slice_stride
            }
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn state(p: Pattern) -> (PatternState, Rng) {
        let mut rng = Rng::new(99);
        (PatternState::new(p, 1 << 20, &mut rng), rng)
    }

    #[test]
    fn stream_is_sequential_and_wraps() {
        let (mut s, mut rng) = state(Pattern::Stream {
            footprint: 4,
            stride: 1,
        });
        let lines: Vec<u64> = (0..6).map(|_| s.next_line(0, &mut rng)).collect();
        let b = 1 << 20;
        assert_eq!(lines, vec![b, b + 1, b + 2, b + 3, b, b + 1]);
    }

    #[test]
    fn loop_revisits_everything() {
        let (mut s, mut rng) = state(Pattern::Loop { footprint: 8 });
        let first: Vec<u64> = (0..8).map(|_| s.next_line(0, &mut rng)).collect();
        let second: Vec<u64> = (0..8).map(|_| s.next_line(0, &mut rng)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn pointer_chase_visits_all_lines() {
        let (mut s, mut rng) = state(Pattern::PointerChase { footprint: 64 });
        let seen: HashSet<u64> = (0..64).map(|_| s.next_line(0, &mut rng)).collect();
        assert_eq!(seen.len(), 64, "affine chase must be a full permutation");
    }

    #[test]
    fn pointer_chase_not_sequential() {
        let (mut s, mut rng) = state(Pattern::PointerChase { footprint: 1024 });
        let a = s.next_line(0, &mut rng);
        let b = s.next_line(0, &mut rng);
        let c = s.next_line(0, &mut rng);
        assert!(
            !(b == a + 1 && c == b + 1),
            "chase should not look like a stream"
        );
    }

    #[test]
    fn zipf_is_skewed() {
        let (mut s, mut rng) = state(Pattern::Zipf {
            footprint: 25_600,
            alpha: 1.0,
        });
        let mut first_bucket = 0;
        let n = 20_000;
        for _ in 0..n {
            let line = s.next_line(0, &mut rng) - (1 << 20);
            if line < 100 {
                first_bucket += 1;
            }
        }
        // Bucket 0 holds 100/25600 ≈ 0.4% of lines but ~16% of weight.
        assert!(
            first_bucket > n / 20,
            "hot bucket too cold: {first_bucket}/{n}"
        );
    }

    #[test]
    fn slice_scatter_strides_across_slices() {
        let (mut s, mut rng) = state(Pattern::SliceScatter {
            lines_per_pc: 8,
            slice_stride: 7,
        });
        for pc in 0..4u64 {
            let lines: Vec<u64> = (0..16).map(|_| s.next_line(pc, &mut rng)).collect();
            // Every PC's lines are confined to its own stripe…
            for &l in &lines {
                let off = l - (1 << 20) - pc * 8 * 7;
                assert!(off < 8 * 7, "pc {pc} escaped its stripe: {off}");
                assert_eq!(off % 7, 0, "lines must sit on the stride grid");
            }
            // …and consecutive touches land on different slices for any
            // power-of-two slice count up to 8 (odd stride ⇒ line mod
            // slices changes every step).
            for w in lines.windows(2) {
                for slices in [2u64, 4, 8] {
                    assert_ne!(w[0] % slices, w[1] % slices, "stride must hop slices");
                }
            }
        }
    }

    #[test]
    fn private_region_stays_per_pc() {
        let (mut s, mut rng) = state(Pattern::PrivateRegion {
            lines_per_pc: 8,
            spacing: 8,
        });
        for pc in 0..4u64 {
            for _ in 0..20 {
                let line = s.next_line(pc, &mut rng) - (1 << 20);
                assert!(line >= pc * 8 && line < (pc + 1) * 8);
            }
        }
    }
}

//! Offline trace analysis: stack distances, miss-ratio curves, working-set
//! and per-PC footprint statistics.
//!
//! These tools characterise a synthetic workload the way the paper
//! characterises its benchmarks: how much temporal reuse exists (and at
//! what distance), how big the working set is relative to an LLC slice
//! share, and how a PC's loads spread over lines (the raw ingredient of
//! the Fig 2 slice-concentration statistic).

use crate::TraceRecord;
use std::collections::HashMap;

/// Fenwick tree over access timestamps, used to count distinct-line stack
/// distances in O(log n) per access.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, v: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + i64::from(v)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of `[0, i]`.
    fn prefix(&self, mut i: usize) -> u32 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// LRU stack distance of every access: the number of *distinct* lines
/// touched since the previous access to the same line (`None` for first
/// touches). An access with stack distance `d` hits in any fully
/// associative LRU cache of capacity `> d`.
pub fn stack_distances(trace: &[TraceRecord]) -> Vec<Option<u64>> {
    let n = trace.len();
    let mut fen = Fenwick::new(n);
    let mut last: HashMap<u64, usize> = HashMap::new();
    let mut out = Vec::with_capacity(n);
    for (i, r) in trace.iter().enumerate() {
        match last.insert(r.line, i) {
            None => {
                out.push(None);
            }
            Some(prev) => {
                // Distinct lines in (prev, i) = accesses in the window that
                // are each line's most recent occurrence.
                let d = fen.prefix(i.saturating_sub(1)) - fen.prefix(prev);
                out.push(Some(u64::from(d)));
                fen.add(prev, -1); // prev is no longer the line's last access
            }
        }
        fen.add(i, 1);
    }
    out
}

/// A miss-ratio curve: miss ratio of a fully associative LRU cache as a
/// function of capacity (in lines), computed from stack distances.
#[derive(Debug, Clone, PartialEq)]
pub struct MissRatioCurve {
    /// Capacities evaluated (lines).
    pub capacities: Vec<u64>,
    /// Miss ratio at each capacity.
    pub miss_ratio: Vec<f64>,
}

impl MissRatioCurve {
    /// Build the curve at the given capacities.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or the trace is empty.
    pub fn from_trace(trace: &[TraceRecord], capacities: &[u64]) -> Self {
        assert!(!capacities.is_empty(), "need at least one capacity");
        assert!(!trace.is_empty(), "empty trace");
        let dists = stack_distances(trace);
        let miss_ratio = capacities
            .iter()
            .map(|&cap| {
                let misses = dists
                    .iter()
                    .filter(|d| match d {
                        None => true,
                        Some(d) => *d >= cap,
                    })
                    .count();
                misses as f64 / trace.len() as f64
            })
            .collect();
        MissRatioCurve {
            capacities: capacities.to_vec(),
            miss_ratio,
        }
    }
}

/// Per-PC footprint statistics — the ingredient of the paper's Fig 2.
#[derive(Debug, Clone, PartialEq)]
pub struct PcFootprint {
    /// PCs with ≥ 2 accesses, paired with their distinct-line counts.
    pub multi_access_pcs: Vec<(u64, u64)>,
    /// PCs with exactly one access.
    pub single_access_pcs: u64,
}

impl PcFootprint {
    /// Analyse a trace.
    pub fn from_trace(trace: &[TraceRecord]) -> Self {
        let mut per_pc: HashMap<u64, (u64, HashMap<u64, ()>)> = HashMap::new();
        for r in trace {
            let e = per_pc.entry(r.pc).or_default();
            e.0 += 1;
            e.1.insert(r.line, ());
        }
        let mut multi = Vec::new();
        let mut single = 0;
        for (pc, (accesses, lines)) in per_pc {
            if accesses >= 2 {
                multi.push((pc, lines.len() as u64));
            } else {
                single += 1;
            }
        }
        multi.sort_unstable();
        PcFootprint {
            multi_access_pcs: multi,
            single_access_pcs: single,
        }
    }

    /// Fraction of multi-access PCs that touch at most `k` distinct lines —
    /// a proxy for the one-slice PCs of Fig 2 (a 1-line PC is one-slice by
    /// construction).
    pub fn concentrated_fraction(&self, k: u64) -> f64 {
        if self.multi_access_pcs.is_empty() {
            return 0.0;
        }
        self.multi_access_pcs
            .iter()
            .filter(|(_, lines)| *lines <= k)
            .count() as f64
            / self.multi_access_pcs.len() as f64
    }
}

/// Distinct lines touched in the trace (the total footprint, in lines).
pub fn footprint_lines(trace: &[TraceRecord]) -> u64 {
    let mut seen: HashMap<u64, ()> = HashMap::new();
    for r in trace {
        seen.insert(r.line, ());
    }
    seen.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Benchmark;
    use crate::WorkloadGen;

    fn rec(pc: u64, line: u64) -> TraceRecord {
        TraceRecord {
            instr_gap: 1,
            pc,
            line,
            is_store: false,
        }
    }

    /// Naive O(n²) reference for stack distances.
    fn naive_stack(trace: &[TraceRecord]) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        for (i, r) in trace.iter().enumerate() {
            let prev = trace[..i].iter().rposition(|p| p.line == r.line);
            out.push(prev.map(|p| {
                let mut distinct = std::collections::HashSet::new();
                for t in &trace[p + 1..i] {
                    distinct.insert(t.line);
                }
                distinct.len() as u64
            }));
        }
        out
    }

    #[test]
    fn stack_distance_simple() {
        // a b a  → a's reuse has 1 distinct line (b) in between.
        let t = vec![rec(1, 10), rec(1, 20), rec(1, 10)];
        assert_eq!(stack_distances(&t), vec![None, None, Some(1)]);
    }

    #[test]
    fn stack_distance_matches_naive_reference() {
        let mut state = 0xABCDu64;
        let t: Vec<TraceRecord> = (0..400)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                rec(1, (state >> 33) % 40)
            })
            .collect();
        assert_eq!(stack_distances(&t), naive_stack(&t));
    }

    #[test]
    fn mrc_is_monotone_nonincreasing() {
        let mut w = Benchmark::Gcc.build(1);
        let t = w.collect(30_000);
        let caps: Vec<u64> = vec![64, 256, 1024, 4096, 16384, 65536];
        let mrc = MissRatioCurve::from_trace(&t, &caps);
        for win in mrc.miss_ratio.windows(2) {
            assert!(win[1] <= win[0] + 1e-12, "MRC must not increase: {mrc:?}");
        }
        assert!(mrc.miss_ratio[0] > mrc.miss_ratio[caps.len() - 1]);
    }

    #[test]
    fn mrc_zero_distance_always_hits_in_any_cache() {
        // Same line repeated: capacity 1 suffices after the cold miss.
        let t: Vec<TraceRecord> = (0..100).map(|_| rec(1, 5)).collect();
        let mrc = MissRatioCurve::from_trace(&t, &[1]);
        assert!((mrc.miss_ratio[0] - 0.01).abs() < 1e-9);
    }

    #[test]
    fn pc_footprint_distinguishes_scalar_pcs() {
        let t = vec![rec(1, 10), rec(1, 10), rec(2, 20), rec(2, 21), rec(3, 99)];
        let fp = PcFootprint::from_trace(&t);
        assert_eq!(fp.single_access_pcs, 1);
        assert_eq!(fp.multi_access_pcs.len(), 2);
        assert!((fp.concentrated_fraction(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn footprint_counts_distinct_lines() {
        let t = vec![rec(1, 1), rec(1, 2), rec(1, 1)];
        assert_eq!(footprint_lines(&t), 2);
    }

    #[test]
    fn graph_workloads_have_more_concentrated_pcs_than_xalan() {
        let frac = |b: Benchmark| {
            let mut w = b.build(3);
            let t = w.collect(60_000);
            PcFootprint::from_trace(&t).concentrated_fraction(2)
        };
        assert!(
            frac(Benchmark::PrKron) > frac(Benchmark::Xalan),
            "pr must concentrate more than xalan"
        );
    }
}

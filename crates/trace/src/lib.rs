//! Synthetic workload generation for the Drishti reproduction.
//!
//! The paper drives its simulator with SPEC CPU2017, GAP and server traces.
//! Those traces are not redistributable, so this crate synthesises access
//! streams that reproduce the three stream properties every Drishti
//! experiment depends on (see DESIGN.md §1):
//!
//! 1. **PC-to-slice scattering** — how many distinct lines each PC touches
//!    decides whether its loads scatter over LLC slices (xalan-like) or
//!    concentrate (pr-like), which is what makes per-slice predictors
//!    myopic (paper Fig 2);
//! 2. **per-set pressure skew** — Zipf-weighted region patterns create the
//!    high/low-MPKA set split of paper Fig 5 (mcf), streams create the
//!    uniform profile (lbm);
//! 3. **reuse-distance structure** — loops, pointer chases and scans give
//!    Belady-mimicking policies their opportunity (or lack of it).
//!
//! [`pattern`] provides the primitive address patterns, [`synthetic`]
//! composes them into weighted multi-PC workloads, [`presets`] names ~25
//! benchmark-like configurations, [`mix`] builds the paper's
//! homogeneous/heterogeneous multi-core mixes, [`replay`] materialises
//! traces once and shares them across concurrent sweep cells, and
//! [`store`] persists traces to disk (`drishti-trace/v1`) for streaming,
//! bounded-memory replay. [`shrink`] and [`transform`] serve the
//! conformance fuzzer: greedy minimization of failing traces and
//! behaviour-preserving transforms for metamorphic relations.
//!
//! When real traces *are* available, [`ingest`] converts ChampSim-format
//! files losslessly into the same `.drtr` container, and [`scenario`]
//! supplies the phase-alternating, adversarial and datacenter workload
//! families plus the family classification behind sweep reports'
//! `scenario_coverage` table (DESIGN.md §18).
//!
//! # Example
//!
//! ```
//! use drishti_trace::presets::Benchmark;
//! use drishti_trace::WorkloadGen;
//!
//! let mut w = Benchmark::Mcf.build(42);
//! let r = w.next_record();
//! assert!(r.pc > 0);
//! ```

pub mod analysis;
pub mod ingest;
pub mod mix;
pub mod pattern;
pub mod presets;
pub mod replay;
pub mod scenario;
pub mod shrink;
pub mod store;
pub mod synthetic;
pub mod transform;

/// One record of a core's memory trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Non-memory instructions retired before this access.
    pub instr_gap: u32,
    /// Program counter of the memory instruction.
    pub pc: u64,
    /// Cache-line address accessed.
    pub line: u64,
    /// Whether the access is a store.
    pub is_store: bool,
}

/// A deterministic, infinite generator of one core's memory trace.
pub trait WorkloadGen: std::fmt::Debug + Send {
    /// Benchmark-style name, e.g. `"mcf"`.
    fn name(&self) -> &str;

    /// Produce the next trace record.
    fn next_record(&mut self) -> TraceRecord;

    /// Collect `n` records into a vector (for offline oracles).
    fn collect(&mut self, n: usize) -> Vec<TraceRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }

    /// Advance the generator past `n` records without yielding them, as if
    /// [`WorkloadGen::next_record`] had been called `n` times. Used to
    /// restore a generator's position from a checkpoint: generators are
    /// deterministic, so rebuild-then-skip reproduces the exact stream.
    /// Implementations with random access (on-disk traces) may override
    /// this with a seek.
    fn skip_records(&mut self, n: u64) {
        for _ in 0..n {
            self.next_record();
        }
    }
}

/// A small, fast, seedable PRNG (xorshift64*), used by every generator so
/// traces are reproducible without external dependencies in the hot path.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seed the generator (zero is mapped to a fixed non-zero state).
    pub fn new(seed: u64) -> Self {
        Rng(if seed == 0 { 0x9e37_79b9 } else { seed })
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_bounds_respected() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}

//! Scenario-diversity families (DESIGN.md §18).
//!
//! Three workload families beyond the paper's SPEC/GAP/server archetypes,
//! each stressing a blind spot of a slicing-aware replacement policy:
//!
//! * **phase** — [`Benchmark::phase`] composites built on
//!   [`SyntheticWorkload::phased`]: the archetype flips every
//!   [`PHASE_PERIOD`] records, so predictors must detect the change and
//!   re-learn (paper §4.2's adaptation pressure, methodology per Bueno et
//!   al.'s representativeness work);
//! * **adversarial** — [`Benchmark::AdvScatter`], a seed-parameterised
//!   generator built around [`Pattern::SliceScatter`] whose knobs (scatter
//!   stride, PC count, pressure footprint) come from the seed; the search
//!   driver in `drishti_sim::conformance::adversarial` walks seed space
//!   for the worst case per policy;
//! * **datacenter** — [`datacenter_mix`]: many low-MPKI server cores
//!   sharing the LLC with a few thrashing batch cores, the consolidation
//!   shape where a shared-cache policy's isolation matters most.
//!
//! [`family_label`] classifies any [`Mix`] into one of these families (or
//! `"synthetic"`), feeding the `scenario_coverage` table of
//! `drishti-sweep/v1` reports.
//!
//! [`SyntheticWorkload::phased`]: crate::synthetic::SyntheticWorkload::phased
//! [`Pattern::SliceScatter`]: crate::pattern::Pattern::SliceScatter

use crate::mix::Mix;
use crate::pattern::Pattern;
use crate::presets::Benchmark;
use crate::synthetic::StreamSpec;
use crate::Rng;

/// Records per phase of the phase-alternating presets. Short enough that
/// even reduced-scale runs (tens of thousands of accesses) cross several
/// phase boundaries; long enough that a predictor converges within one
/// phase and its stale state is genuinely wrong at the flip.
pub const PHASE_PERIOD: u64 = 8 * 1024;

/// The batch thrashers the datacenter composite mixes in: streaming,
/// store-heavy, LLC-hostile presets.
pub const BATCH_POOL: [Benchmark; 4] = [
    Benchmark::Lbm,
    Benchmark::Bwaves,
    Benchmark::Cactu,
    Benchmark::Roms,
];

/// The seed-derived stream set behind [`Benchmark::AdvScatter`]. All knobs
/// come from `seed`, so the adversarial search driver explores a genuine
/// space: scatter stride (odd, defeating power-of-two slice interleaving),
/// per-PC line count, PC pool size, and the footprint of the background
/// pressure stream.
pub fn adv_scatter_streams(seed: u64) -> Vec<StreamSpec> {
    let mut rng = Rng::new(seed ^ 0xAD5C_A77E);
    let strides = [3u64, 5, 7, 9, 11, 13, 17, 21];
    let slice_stride = strides[(rng.next_u64() % strides.len() as u64) as usize];
    let lines_per_pc = 2 + rng.next_u64() % 15; // 2..=16
    let pcs = 64 + (rng.next_u64() % 193) as u32; // 64..=256
    let pressure_footprint = (1u64 << 18) << (rng.next_u64() % 3); // 256K..1M lines
    vec![
        StreamSpec::new(
            Pattern::SliceScatter {
                lines_per_pc,
                slice_stride,
            },
            pcs,
            0.6,
        ),
        StreamSpec::new(
            Pattern::Stream {
                footprint: pressure_footprint,
                stride: 1,
            },
            8,
            0.25,
        ),
        StreamSpec::new(
            Pattern::Loop {
                footprint: 24 * 1024,
            },
            12,
            0.15,
        ),
    ]
}

/// A datacenter consolidation mix named `dc-<seed>`: roughly three
/// quarters of the cores draw from the low-MPKI server pool
/// ([`Benchmark::server`]) and the remainder (always at least one) from
/// [`BATCH_POOL`]. Per-core seeds follow the heterogeneous-mix convention
/// (`seed * 1000 + core`), so recorded traces of a datacenter mix pass the
/// same header checks as any other mix's.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn datacenter_mix(cores: usize, seed: u64) -> Mix {
    assert!(cores > 0, "datacenter mix needs at least one core");
    let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let servers = Benchmark::server();
    let batch_cores = (cores / 4).max(1);
    let benchmarks = (0..cores)
        .map(|c| {
            if c < cores - batch_cores {
                servers[rng.below(servers.len() as u64) as usize]
            } else {
                BATCH_POOL[rng.below(BATCH_POOL.len() as u64) as usize]
            }
        })
        .collect();
    Mix {
        name: format!("dc-{seed:02}"),
        benchmarks,
        seeds: (0..cores as u64).map(|c| seed * 1000 + c).collect(),
    }
}

/// The scenario family a mix belongs to, as reported in the
/// `scenario_coverage` table: `"datacenter"` (by the `dc-` name
/// convention), `"adversarial"` (any core runs the scatter adversary),
/// `"phase"` (any core runs a phase composite), else `"synthetic"` — the
/// paper's plain archetype mixes. Ingested external traces are labelled
/// `"ingested"` by the CLI at preload time, not here: a mix object carries
/// no trace-source information.
pub fn family_label(mix: &Mix) -> &'static str {
    if mix.name.starts_with("dc-") {
        return "datacenter";
    }
    if mix.benchmarks.contains(&Benchmark::AdvScatter) {
        return "adversarial";
    }
    if mix
        .benchmarks
        .iter()
        .any(|b| Benchmark::phase().contains(b))
    {
        return "phase";
    }
    "synthetic"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadGen;

    #[test]
    fn adv_scatter_knobs_vary_with_seed() {
        let distinct: std::collections::HashSet<String> = (0..16)
            .map(|s| format!("{:?}", adv_scatter_streams(s)[0].pattern))
            .collect();
        assert!(distinct.len() > 4, "seed space too flat: {distinct:?}");
    }

    #[test]
    fn datacenter_mix_shape() {
        let m = datacenter_mix(8, 3);
        assert_eq!(m.name, "dc-03");
        assert_eq!(m.cores(), 8);
        let batch = m
            .benchmarks
            .iter()
            .filter(|b| BATCH_POOL.contains(b))
            .count();
        let server = m
            .benchmarks
            .iter()
            .filter(|b| Benchmark::server().contains(b))
            .count();
        assert_eq!(batch, 2, "8 cores → 2 batch thrashers");
        assert_eq!(server, 6);
        assert_eq!(m.seeds, (0..8).map(|c| 3000 + c).collect::<Vec<_>>());
        // Deterministic and buildable.
        assert_eq!(m, datacenter_mix(8, 3));
        for core in 0..m.cores() {
            assert_eq!(m.build_core(core).collect(50).len(), 50);
        }
    }

    #[test]
    fn single_core_datacenter_is_all_batch() {
        let m = datacenter_mix(1, 1);
        assert!(BATCH_POOL.contains(&m.benchmarks[0]));
    }

    #[test]
    fn family_labels() {
        use crate::mix::Mix;
        assert_eq!(family_label(&datacenter_mix(4, 1)), "datacenter");
        assert_eq!(
            family_label(&Mix::homogeneous(Benchmark::AdvScatter, 4, 1)),
            "adversarial"
        );
        assert_eq!(
            family_label(&Mix::homogeneous(Benchmark::PhaseMcfLbm, 4, 1)),
            "phase"
        );
        assert_eq!(
            family_label(&Mix::homogeneous(Benchmark::Mcf, 4, 1)),
            "synthetic"
        );
    }
}

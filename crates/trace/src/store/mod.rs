//! The `drishti-trace/v1` on-disk trace container.
//!
//! The paper's methodology is trace-driven; this module makes traces a
//! *storage* concern instead of a RAM-only one. A trace file is a small
//! header followed by fixed-size **frames** of delta+varint-encoded
//! [`TraceRecord`]s, each guarded by a checksum:
//!
//! ```text
//! header   magic "drtrace1" | version u32 | frame_len u32 | seed u64
//!          | record_count u64 | name_len u16 | name bytes
//! frame*   payload_len u32 | records u32 | fnv1a64 checksum u64 | payload
//! ```
//!
//! All integers are little-endian. Within a frame the codec is
//! self-contained (delta state resets per frame), so frames decode
//! independently — that is what makes bounded-memory streaming and
//! rewinding possible. See DESIGN.md §12 for the rationale and the exact
//! byte layout.
//!
//! * [`TraceWriter`] streams records out (one frame buffered at a time);
//! * [`StreamingTrace`] replays a file as a [`WorkloadGen`]
//!   holding at most one decoded frame in memory, bit-identical to the
//!   generator that recorded it (pinned by `tests/trace_store.rs`);
//! * [`read_trace`] / [`write_trace`] are the one-shot conveniences.
//!
//! Every malformed input surfaces as a typed [`StoreError`] naming the
//! offending frame — corruption never panics.
//!
//! [`TraceRecord`]: crate::TraceRecord
//! [`WorkloadGen`]: crate::WorkloadGen

mod codec;
mod reader;
mod writer;

pub use reader::{read_trace, StreamingTrace};
pub use writer::{write_trace, TraceWriter};

use std::fmt;

/// Schema identifier of the container format.
pub const SCHEMA: &str = "drishti-trace/v1";

/// File magic (first 8 bytes of every trace file).
pub const MAGIC: [u8; 8] = *b"drtrace1";

/// Container version written by this code.
pub const VERSION: u32 = 1;

/// Default records per frame. 4096 records ≈ 96 KiB decoded — small
/// enough that a streaming reader stays cache-friendly, large enough that
/// per-frame overhead (16-byte frame header) is negligible.
pub const DEFAULT_FRAME_LEN: u32 = 4096;

/// File extension used by convention (`<prefix>.coreNN.drtr`).
pub const EXTENSION: &str = "drtr";

/// Byte offset of the `record_count` field in the header (patched by
/// [`TraceWriter::finish`]): magic (8) + version (4) + frame_len (4) +
/// seed (8).
pub(crate) const COUNT_OFFSET: u64 = 24;

/// Trace metadata carried in the file header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Benchmark-style workload name (e.g. `"mcf"`).
    pub name: String,
    /// Sim-point seed the trace was generated with.
    pub seed: u64,
    /// Total records in the file.
    pub records: u64,
    /// Records per full frame (the last frame may be shorter).
    pub frame_len: u32,
}

/// Everything that can go wrong reading or writing a trace file.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (open, read, write, seek).
    Io(std::io::Error),
    /// The file does not start with the `drtrace1` magic.
    BadMagic {
        /// The bytes found where the magic should be.
        found: [u8; 8],
    },
    /// The file's container version is not one this code reads.
    UnsupportedVersion(u32),
    /// The header itself is malformed (zero frame length, bad name).
    BadHeader(String),
    /// The file ends in the middle of frame `frame` (0-based).
    Truncated {
        /// Index of the incomplete frame.
        frame: u64,
    },
    /// Frame `frame`'s payload does not match its stored checksum.
    ChecksumMismatch {
        /// Index of the corrupt frame.
        frame: u64,
        /// Checksum stored in the frame header.
        expected: u64,
        /// Checksum computed over the payload actually read.
        found: u64,
    },
    /// Frame `frame`'s payload failed to decode (overlong varint, length
    /// mismatch) despite a matching checksum.
    FrameDecode {
        /// Index of the undecodable frame.
        frame: u64,
        /// What the decoder tripped over.
        detail: String,
    },
    /// The frames hold a different record total than the header promises.
    CountMismatch {
        /// Record count from the header.
        header: u64,
        /// Records actually present across all frames.
        found: u64,
    },
    /// The file holds zero records but was asked to act as an (infinite)
    /// workload generator.
    EmptyTrace,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "trace store I/O error: {e}"),
            StoreError::BadMagic { found } => write!(
                f,
                "not a {SCHEMA} file: bad magic {found:02x?} (want {MAGIC:02x?})"
            ),
            StoreError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported {SCHEMA} version {v} (this build reads {VERSION})"
                )
            }
            StoreError::BadHeader(d) => write!(f, "malformed {SCHEMA} header: {d}"),
            StoreError::Truncated { frame } => {
                write!(f, "truncated trace: file ends inside frame {frame}")
            }
            StoreError::ChecksumMismatch {
                frame,
                expected,
                found,
            } => write!(
                f,
                "corrupt trace: frame {frame} checksum {found:#018x} != stored {expected:#018x}"
            ),
            StoreError::FrameDecode { frame, detail } => {
                write!(f, "corrupt trace: frame {frame} undecodable: {detail}")
            }
            StoreError::CountMismatch { header, found } => write!(
                f,
                "corrupt trace: header promises {header} records, frames hold {found}"
            ),
            StoreError::EmptyTrace => {
                write!(f, "trace holds zero records; cannot replay an empty trace")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

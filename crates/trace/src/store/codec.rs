//! Frame codec: delta + varint encoding of [`TraceRecord`]s and the
//! FNV-1a 64 checksum that guards each frame.
//!
//! Per record, in order:
//!
//! 1. `varint((instr_gap << 1) | is_store)` — gap and store bit packed;
//! 2. `varint(zigzag(pc - prev_pc))` — program counters stride forward,
//!    so deltas are tiny;
//! 3. `varint(zigzag(line - prev_line))` — cache lines cluster spatially.
//!
//! `prev_pc`/`prev_line` start at 0 **per frame**, never carried across a
//! frame boundary: each frame decodes with no context, which is what lets
//! [`StreamingTrace`](super::StreamingTrace) rewind by seeking to the
//! first frame.

use crate::TraceRecord;

/// FNV-1a 64-bit hash — the same flavour used by the sweep seed derivation,
/// chosen for being dependency-free and byte-order independent.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// LEB128-style unsigned varint (7 bits per byte, high bit = continue).
pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one varint from `buf` starting at `*pos`, advancing `*pos`.
///
/// Returns `None` on truncation or an overlong (> 10 byte) encoding.
pub(crate) fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        // The 10th byte may only carry the last single bit of a u64.
        if shift == 63 && byte & 0x7e != 0 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Maps signed deltas to small unsigned values (0, -1, 1, -2, … → 0, 1, 2, 3, …).
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes `records` into `out` (cleared first) as one frame payload.
pub(crate) fn encode_frame(records: &[TraceRecord], out: &mut Vec<u8>) {
    out.clear();
    let mut prev_pc: u64 = 0;
    let mut prev_line: u64 = 0;
    for r in records {
        put_varint(out, (u64::from(r.instr_gap) << 1) | u64::from(r.is_store));
        put_varint(out, zigzag(r.pc.wrapping_sub(prev_pc) as i64));
        put_varint(out, zigzag(r.line.wrapping_sub(prev_line) as i64));
        prev_pc = r.pc;
        prev_line = r.line;
    }
}

/// Decodes one frame payload into `out` (cleared first).
///
/// `count` is the record count from the frame header; the payload must
/// hold exactly that many records and no trailing bytes. Errors return a
/// human-readable detail string for [`StoreError::FrameDecode`]
/// (super::StoreError).
pub(crate) fn decode_frame(
    payload: &[u8],
    count: u32,
    out: &mut Vec<TraceRecord>,
) -> Result<(), String> {
    out.clear();
    let mut pos = 0usize;
    let mut prev_pc: u64 = 0;
    let mut prev_line: u64 = 0;
    for i in 0..count {
        let gap_store =
            get_varint(payload, &mut pos).ok_or_else(|| format!("bad gap varint at record {i}"))?;
        let gap = gap_store >> 1;
        if gap > u64::from(u32::MAX) {
            return Err(format!("instr_gap overflow at record {i}"));
        }
        let dpc =
            get_varint(payload, &mut pos).ok_or_else(|| format!("bad pc varint at record {i}"))?;
        let dline = get_varint(payload, &mut pos)
            .ok_or_else(|| format!("bad line varint at record {i}"))?;
        let pc = prev_pc.wrapping_add(unzigzag(dpc) as u64);
        let line = prev_line.wrapping_add(unzigzag(dline) as u64);
        out.push(TraceRecord {
            instr_gap: gap as u32,
            pc,
            line,
            is_store: gap_store & 1 == 1,
        });
        prev_pc = pc;
        prev_line = line;
    }
    if pos != payload.len() {
        return Err(format!(
            "{} trailing bytes after {count} records",
            payload.len() - pos
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_edges() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overlong() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn frame_round_trip() {
        let records = vec![
            TraceRecord {
                instr_gap: 0,
                pc: u64::MAX,
                line: 0,
                is_store: true,
            },
            TraceRecord {
                instr_gap: u32::MAX,
                pc: 0,
                line: u64::MAX,
                is_store: false,
            },
            TraceRecord {
                instr_gap: 7,
                pc: 0x4000_1234,
                line: 0x4000_1234 >> 6,
                is_store: false,
            },
        ];
        let mut payload = Vec::new();
        encode_frame(&records, &mut payload);
        let mut back = Vec::new();
        decode_frame(&payload, records.len() as u32, &mut back).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let records = vec![TraceRecord {
            instr_gap: 1,
            pc: 2,
            line: 3,
            is_store: false,
        }];
        let mut payload = Vec::new();
        encode_frame(&records, &mut payload);
        payload.push(0);
        let mut back = Vec::new();
        assert!(decode_frame(&payload, 1, &mut back).is_err());
    }
}

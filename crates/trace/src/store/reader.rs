//! Bounded-memory streaming trace reader.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use super::codec::{decode_frame, fnv1a64};
use super::{StoreError, TraceMeta, MAGIC, VERSION};
use crate::{TraceRecord, WorkloadGen};

/// Frame header: payload_len u32 | records u32 | checksum u64.
const FRAME_HEADER_LEN: usize = 16;

fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    err: impl FnOnce() -> StoreError,
) -> Result<(), StoreError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(err()),
        Err(e) => Err(StoreError::Io(e)),
    }
}

fn read_u32(r: &mut impl Read, err: impl FnOnce() -> StoreError) -> Result<u32, StoreError> {
    let mut b = [0u8; 4];
    read_exact_or(r, &mut b, err)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read, err: impl FnOnce() -> StoreError) -> Result<u64, StoreError> {
    let mut b = [0u8; 8];
    read_exact_or(r, &mut b, err)?;
    Ok(u64::from_le_bytes(b))
}

fn bad_header() -> StoreError {
    StoreError::BadHeader("file ends inside the header".into())
}

/// Parses the header, leaving `r` positioned at the first frame. Returns
/// the metadata and the byte offset of frame 0.
fn read_header(r: &mut BufReader<File>) -> Result<(TraceMeta, u64), StoreError> {
    let mut magic = [0u8; 8];
    read_exact_or(r, &mut magic, bad_header)?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic { found: magic });
    }
    let version = read_u32(r, bad_header)?;
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let frame_len = read_u32(r, bad_header)?;
    if frame_len == 0 {
        return Err(StoreError::BadHeader("frame length is zero".into()));
    }
    let seed = read_u64(r, bad_header)?;
    let records = read_u64(r, bad_header)?;
    if records == u64::MAX {
        return Err(StoreError::BadHeader(
            "record count never patched (writer not finished)".into(),
        ));
    }
    let mut nlen = [0u8; 2];
    read_exact_or(r, &mut nlen, bad_header)?;
    let mut name = vec![0u8; usize::from(u16::from_le_bytes(nlen))];
    read_exact_or(r, &mut name, bad_header)?;
    let name = String::from_utf8(name)
        .map_err(|_| StoreError::BadHeader("trace name is not UTF-8".into()))?;
    let first_frame = r.stream_position()?;
    Ok((
        TraceMeta {
            name,
            seed,
            records,
            frame_len,
        },
        first_frame,
    ))
}

/// Reads frame `index`'s header + payload into `payload`/`records`,
/// validating the checksum and decoding. `Ok(false)` means clean EOF at a
/// frame boundary.
fn read_frame(
    r: &mut BufReader<File>,
    index: u64,
    frame_len: u32,
    payload: &mut Vec<u8>,
    records: &mut Vec<TraceRecord>,
) -> Result<bool, StoreError> {
    let mut first = [0u8; 1];
    if r.read(&mut first)? == 0 {
        return Ok(false);
    }
    let mut rest = [0u8; FRAME_HEADER_LEN - 1];
    read_exact_or(r, &mut rest, || StoreError::Truncated { frame: index })?;
    let mut hdr = [0u8; FRAME_HEADER_LEN];
    hdr[0] = first[0];
    hdr[1..].copy_from_slice(&rest);
    let payload_len = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
    let count = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
    let checksum = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
    if count == 0 || count > frame_len {
        return Err(StoreError::FrameDecode {
            frame: index,
            detail: format!("record count {count} outside 1..={frame_len}"),
        });
    }
    payload.clear();
    payload.resize(payload_len as usize, 0);
    read_exact_or(r, payload, || StoreError::Truncated { frame: index })?;
    let found = fnv1a64(payload);
    if found != checksum {
        return Err(StoreError::ChecksumMismatch {
            frame: index,
            expected: checksum,
            found,
        });
    }
    decode_frame(payload, count, records).map_err(|detail| StoreError::FrameDecode {
        frame: index,
        detail,
    })?;
    Ok(true)
}

/// Replays a trace file as an infinite [`WorkloadGen`], holding at most one
/// decoded frame (plus its raw payload) in memory.
///
/// [`open`](StreamingTrace::open) performs a full validation pass —
/// checksums, decodability, header/frame record-count agreement — in
/// O(one frame) memory, so every corruption the format can express is
/// reported as a typed [`StoreError`] before the engine sees a single
/// record. After a clean open, the file is trusted: an I/O failure
/// mid-replay (disk yanked) panics with context rather than silently
/// changing results.
///
/// Like every generator in this crate the stream is infinite: reaching the
/// last record seeks back to frame 0 (the codec's per-frame delta reset
/// makes the rewind exact), mirroring `ReplayWorkload`'s wraparound.
#[derive(Debug)]
pub struct StreamingTrace {
    path: PathBuf,
    reader: BufReader<File>,
    meta: TraceMeta,
    first_frame: u64,
    /// Decoded records of the current frame.
    frame: Vec<TraceRecord>,
    /// Scratch buffer holding the current frame's raw payload.
    payload: Vec<u8>,
    /// Next index to serve out of `frame`.
    cursor: usize,
    /// Index of the next frame to read.
    next_frame: u64,
}

impl StreamingTrace {
    /// Opens and fully validates `path`.
    ///
    /// Fails with [`StoreError::EmptyTrace`] on a zero-record file: an
    /// empty trace cannot satisfy the infinite-generator contract.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut reader = BufReader::new(File::open(path)?);
        let (meta, first_frame) = read_header(&mut reader)?;
        // Validation pass: stream every frame once, counting records.
        let mut payload = Vec::new();
        let mut frame = Vec::new();
        let mut total: u64 = 0;
        let mut index: u64 = 0;
        while read_frame(&mut reader, index, meta.frame_len, &mut payload, &mut frame)? {
            total += frame.len() as u64;
            index += 1;
        }
        if total != meta.records {
            return Err(StoreError::CountMismatch {
                header: meta.records,
                found: total,
            });
        }
        if total == 0 {
            return Err(StoreError::EmptyTrace);
        }
        reader.seek(SeekFrom::Start(first_frame))?;
        Ok(StreamingTrace {
            path: path.to_path_buf(),
            reader,
            meta,
            first_frame,
            frame: Vec::new(),
            payload: Vec::new(),
            cursor: 0,
            next_frame: 0,
        })
    }

    /// Header metadata of the open trace.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Bytes of trace data currently resident: the decoded frame plus the
    /// raw payload scratch buffer. Used by tests to pin the
    /// bounded-memory guarantee; excludes the fixed-size `BufReader`
    /// block (8 KiB) and struct overhead.
    pub fn resident_bytes(&self) -> usize {
        self.frame.capacity() * std::mem::size_of::<TraceRecord>() + self.payload.capacity()
    }

    /// Loads the next frame, wrapping to frame 0 at EOF. Panics on
    /// I/O/corruption errors (the open-time validation pass already
    /// proved the file clean; see type docs).
    fn load_next_frame(&mut self) {
        let loaded = read_frame(
            &mut self.reader,
            self.next_frame,
            self.meta.frame_len,
            &mut self.payload,
            &mut self.frame,
        )
        .unwrap_or_else(|e| panic!("trace {} failed mid-replay: {e}", self.path.display()));
        if loaded {
            self.next_frame += 1;
        } else {
            // Wrap around: the per-frame delta reset makes this exact.
            self.reader
                .seek(SeekFrom::Start(self.first_frame))
                .unwrap_or_else(|e| panic!("trace {} rewind failed: {e}", self.path.display()));
            self.next_frame = 0;
            self.load_next_frame();
            return;
        }
        self.cursor = 0;
    }
}

impl WorkloadGen for StreamingTrace {
    fn name(&self) -> &str {
        &self.meta.name
    }

    fn next_record(&mut self) -> TraceRecord {
        if self.cursor >= self.frame.len() {
            self.load_next_frame();
        }
        let r = self.frame[self.cursor];
        self.cursor += 1;
        r
    }

    /// Seek past `n` records via frame arithmetic rather than replay: the
    /// stream wraps every `meta.records`, so only `n % records` matters,
    /// and whole frames before the target are skipped without decoding
    /// their deltas one record at a time.
    fn skip_records(&mut self, n: u64) {
        let mut remaining = n % self.meta.records;
        // Restart from frame 0; the per-frame delta reset makes any frame
        // boundary an exact re-entry point.
        self.reader
            .seek(SeekFrom::Start(self.first_frame))
            .unwrap_or_else(|e| panic!("trace {} rewind failed: {e}", self.path.display()));
        self.next_frame = 0;
        self.load_next_frame();
        while remaining >= self.frame.len() as u64 {
            remaining -= self.frame.len() as u64;
            self.load_next_frame();
        }
        self.cursor = remaining as usize;
    }
}

/// One-shot convenience: validates and materialises a whole trace file.
pub fn read_trace(path: &Path) -> Result<(TraceMeta, Vec<TraceRecord>), StoreError> {
    let mut reader = BufReader::new(File::open(path)?);
    let (meta, _) = read_header(&mut reader)?;
    let mut payload = Vec::new();
    let mut frame = Vec::new();
    let mut all = Vec::with_capacity(meta.records.min(1 << 24) as usize);
    let mut index: u64 = 0;
    while read_frame(&mut reader, index, meta.frame_len, &mut payload, &mut frame)? {
        all.extend_from_slice(&frame);
        index += 1;
    }
    if all.len() as u64 != meta.records {
        return Err(StoreError::CountMismatch {
            header: meta.records,
            found: all.len() as u64,
        });
    }
    Ok((meta, all))
}

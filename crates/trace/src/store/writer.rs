//! Streaming trace writer.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use super::codec::{encode_frame, fnv1a64};
use super::{StoreError, COUNT_OFFSET, DEFAULT_FRAME_LEN, MAGIC, VERSION};
use crate::TraceRecord;

/// Streams [`TraceRecord`]s into a `drishti-trace/v1` file, buffering at
/// most one frame in memory.
///
/// The header's record count is written as a placeholder and patched on
/// [`finish`](TraceWriter::finish) — a writer that is dropped without
/// `finish` leaves a file whose count mismatch is caught by the reader's
/// validation pass, so half-written traces can never replay silently.
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    frame_len: u32,
    pending: Vec<TraceRecord>,
    payload: Vec<u8>,
    written: u64,
}

impl TraceWriter {
    /// Creates `path` (truncating any existing file) with the default
    /// frame length and writes the header for a trace named `name` from
    /// seed `seed`.
    pub fn create(path: &Path, name: &str, seed: u64) -> Result<Self, StoreError> {
        Self::with_frame_len(path, name, seed, DEFAULT_FRAME_LEN)
    }

    /// As [`create`](TraceWriter::create) with an explicit records-per-frame.
    pub fn with_frame_len(
        path: &Path,
        name: &str,
        seed: u64,
        frame_len: u32,
    ) -> Result<Self, StoreError> {
        if frame_len == 0 {
            return Err(StoreError::BadHeader("frame length must be > 0".into()));
        }
        if name.len() > usize::from(u16::MAX) {
            return Err(StoreError::BadHeader(format!(
                "trace name too long ({} bytes)",
                name.len()
            )));
        }
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&frame_len.to_le_bytes())?;
        out.write_all(&seed.to_le_bytes())?;
        // Record count placeholder at COUNT_OFFSET, patched by finish().
        out.write_all(&u64::MAX.to_le_bytes())?;
        out.write_all(&(name.len() as u16).to_le_bytes())?;
        out.write_all(name.as_bytes())?;
        Ok(TraceWriter {
            out,
            frame_len,
            pending: Vec::with_capacity(frame_len as usize),
            payload: Vec::new(),
            written: 0,
        })
    }

    /// Appends one record, flushing a frame to disk when full.
    pub fn push(&mut self, rec: TraceRecord) -> Result<(), StoreError> {
        self.pending.push(rec);
        if self.pending.len() == self.frame_len as usize {
            self.flush_frame()?;
        }
        Ok(())
    }

    fn flush_frame(&mut self) -> Result<(), StoreError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        encode_frame(&self.pending, &mut self.payload);
        self.out
            .write_all(&(self.payload.len() as u32).to_le_bytes())?;
        self.out
            .write_all(&(self.pending.len() as u32).to_le_bytes())?;
        self.out.write_all(&fnv1a64(&self.payload).to_le_bytes())?;
        self.out.write_all(&self.payload)?;
        self.written += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the tail frame, patches the header record count and syncs
    /// the file. Returns the total records written.
    pub fn finish(mut self) -> Result<u64, StoreError> {
        self.flush_frame()?;
        let total = self.written;
        self.out.seek(SeekFrom::Start(COUNT_OFFSET))?;
        self.out.write_all(&total.to_le_bytes())?;
        self.out.flush()?;
        Ok(total)
    }
}

/// One-shot convenience: writes `records` to `path` in a single call.
pub fn write_trace(
    path: &Path,
    name: &str,
    seed: u64,
    records: &[TraceRecord],
) -> Result<u64, StoreError> {
    let mut w = TraceWriter::create(path, name, seed)?;
    for &r in records {
        w.push(r)?;
    }
    w.finish()
}

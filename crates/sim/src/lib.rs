//! Trace-driven many-core simulator for the Drishti reproduction.
//!
//! This crate assembles the substrates (`drishti-mem`, `drishti-noc`,
//! `drishti-policies`, `drishti-trace`) into the paper's evaluation
//! platform: per-core L1D/L2 with prefetchers, a sliced NUCA LLC governed
//! by a pluggable replacement policy, a mesh NoC, DDR DRAM channels, and a
//! simple out-of-order core model with ROB-bounded memory-level
//! parallelism (see DESIGN.md §3 for the substitution argument versus
//! ChampSim).
//!
//! * [`ckpt`] — the `drishti-ckpt/v1` checkpoint container: complete
//!   engine state on disk with per-section checksums, for bit-identical
//!   crash resume (DESIGN.md §14);
//! * [`config::SystemConfig`] — every knob the paper sweeps (core count,
//!   LLC slice size, L2 size, DRAM channels, prefetchers);
//! * [`conformance`] — the differential reference interpreter, the
//!   metamorphic-relation executor, and the seed-derived fuzz cells the
//!   `drishti-fuzz` binary drives;
//! * [`engine::Engine`] — min-clock actor scheduling of the cores through
//!   the shared memory system;
//! * [`metrics`] — weighted speedup, harmonic speedup, maximum individual
//!   slowdown, unfairness, MPKI/WPKI/APKI;
//! * [`energy`] — uncore (LLC + NoC + DRAM (+ NOCSTAR)) dynamic energy;
//! * [`pcstats`] — the PC-to-slice concentration analysis of paper Fig 2;
//! * [`runner`] — one-call experiment helpers (`run_mix`, alone-IPC
//!   baselines, normalised speedups);
//! * [`sampling`] — warmup/detailed interval sampling: fast-forward most
//!   of the trace, warm the hierarchy before each measured window, and
//!   extrapolate counts to full-run estimates;
//! * [`sweep`] — the parallel sweep harness: a std-only work-stealing
//!   pool over `(mix, policy, organisation)` cells with deterministic
//!   aggregation, a shared trace cache, and JSON sweep reports;
//! * [`telemetry`] — zero-overhead-when-disabled epoch sampling of
//!   per-core, per-slice, NoC and DRAM counters, with invariant checkers
//!   and `drishti-telemetry/v1` JSON timelines.
//!
//! # Example: one tiny 4-core run
//!
//! ```
//! use drishti_core::config::DrishtiConfig;
//! use drishti_policies::factory::PolicyKind;
//! use drishti_sim::config::SystemConfig;
//! use drishti_sim::runner::{run_mix, RunConfig};
//! use drishti_trace::mix::Mix;
//! use drishti_trace::presets::Benchmark;
//!
//! let mix = Mix::homogeneous(Benchmark::Gcc, 4, 1);
//! let rc = RunConfig {
//!     system: SystemConfig::paper_baseline(4),
//!     accesses_per_core: 20_000,
//!     warmup_accesses: 2_000,
//!     record_llc_stream: false,
//!     sampling: drishti_sim::sampling::SamplingSpec::off(),
//!     telemetry: drishti_sim::telemetry::TelemetrySpec::off(),
//!     engine: Default::default(),
//! };
//! let r = run_mix(&mix, PolicyKind::Lru, DrishtiConfig::baseline(4), &rc);
//! assert!(r.total_ipc() > 0.0);
//! ```

pub mod ckpt;
pub mod config;
pub mod conformance;
pub mod energy;
pub mod engine;
pub mod metrics;
pub mod pcstats;
pub mod runner;
pub mod sampling;
pub mod sweep;
pub mod telemetry;
